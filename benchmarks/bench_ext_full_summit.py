"""§V extension bench: projecting the job to all 27648 Summit GPUs."""

from repro.experiments import ext_full_summit


def test_full_summit_projection(benchmark, show):
    result = benchmark.pedantic(ext_full_summit.run, rounds=1, iterations=1)
    effs = [p.efficiency for p in result.points]
    # Efficiency keeps decaying past the paper's 1000-node envelope...
    assert effs == sorted(effs, reverse=True)
    assert result.full_machine.efficiency < 0.6
    # ...so the full machine buys far less than the ideal 4.61x.
    assert 1.2 < result.speedup_over_1000_nodes < 4.0
    # And mutation-level work stays infeasible on hardware alone (§V).
    assert result.mutation_level_days_full_machine > 100
    show(ext_full_summit.report(result))
