"""Fig. 3 bench: ED vs EA per-GPU workload, G = 50, 5 nodes (30 GPUs)."""

from repro.experiments import fig3_gpu_workload


def test_fig3_gpu_workload(benchmark, show):
    result = benchmark(fig3_gpu_workload.run, 50, 5)
    # Paper shape: ED areas differ wildly, EA bars are flat.
    assert result.n_gpus == 30
    assert result.ea_imbalance < 1.005
    assert result.ed_imbalance > 2.5
    # ED's first GPU holds the heaviest work; its last can be near-empty.
    assert result.ed_gpu_work[0] == result.ed_gpu_work.max()
    assert result.ed_gpu_work[-1] == result.ed_gpu_work.min()
    show(fig3_gpu_workload.report(result))
