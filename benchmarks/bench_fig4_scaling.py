"""Fig. 4 bench: strong (100-1000 nodes) and weak (100-500) scaling, BRCA.

Paper: strong-scaling efficiency 80.96-97.96% (avg 90.14% over 200-1000
nodes, 84.18% at 1000); weak scaling ~90% at 500 nodes (avg 94.6%).
"""

import numpy as np

from repro.experiments import fig4_scaling
from repro.telemetry import telemetry_session


def test_fig4_scaling_full_sweep(benchmark, show, bench_summary):
    with telemetry_session() as telemetry:
        result = benchmark.pedantic(
            lambda: fig4_scaling.run(elastic_nodes=[100, 400, 700, 1000]),
            rounds=1,
            iterations=1,
        )
    effs = [p.efficiency for p in result.strong]
    nodes = [p.n_nodes for p in result.strong]
    assert nodes[0] == 100 and nodes[-1] == 1000

    # Baseline is exact; efficiency decays with node count overall.
    assert effs[0] == 1.0
    assert all(0.75 <= e <= 1.0 for e in effs)
    assert effs[-1] < effs[1]

    # Headline bands (paper values +/- a few points).
    assert 0.78 <= result.strong_at_max_nodes <= 0.90  # paper 0.8418
    assert 0.85 <= result.strong_avg_efficiency <= 0.95  # paper 0.9014

    # Runtime itself must scale down ~linearly.
    runtimes = [p.runtime_s for p in result.strong]
    assert runtimes[-1] < runtimes[0] / 7

    # Weak scaling: high and flat-ish (paper avg 0.946).
    weak_effs = [p.efficiency for p in result.weak]
    assert all(0.85 <= e <= 1.001 for e in weak_effs)
    assert weak_effs == sorted(weak_effs, reverse=True)

    # Elastic strong scaling under ±20% mid-solve churn: the lease-
    # stealing fleet must hold efficiency at 1000 nodes — fine leases
    # absorb node jitter, so churn costs at most a modest overhead vs
    # the static fleet (and typically wins).
    elastic_effs = [p.efficiency for p in result.elastic]
    assert result.elastic[-1].n_nodes == 1000
    assert 0.80 <= result.elastic_at_max_nodes <= 1.05
    assert result.elastic_overhead_at_max < 0.15

    bench_summary(
        "fig4",
        values={
            "strong_nodes": nodes,
            "strong_efficiency": effs,
            "strong_runtime_s": runtimes,
            "strong_at_max_nodes": result.strong_at_max_nodes,
            "strong_avg_efficiency": result.strong_avg_efficiency,
            "weak_nodes": [p.n_nodes for p in result.weak],
            "weak_efficiency": weak_effs,
            "elastic_nodes": [p.n_nodes for p in result.elastic],
            "elastic_efficiency": elastic_effs,
            "elastic_runtime_s": [p.runtime_s for p in result.elastic],
            "elastic_at_max_nodes": result.elastic_at_max_nodes,
            "elastic_overhead_at_max": result.elastic_overhead_at_max,
        },
        telemetry=telemetry,
    )
    show(fig4_scaling.report(result))


def test_fig4_pool_backend_four_workers(benchmark, show):
    """Measured 4-worker pool arg-max: bit-exact vs single, stats shown.

    The process-pool analogue of Fig. 4's per-device partitioning: the
    equi-area cuts hand each worker a near-equal share of the C(g, h)
    combination workload, and the reported per-worker stats make the
    measured partition balance visible.
    """
    from repro.bitmatrix.matrix import BitMatrix
    from repro.core import FScoreParams, PoolEngine, PoolStats, SingleGpuEngine
    from repro.scheduling.schemes import scheme_for

    rng = np.random.default_rng(42)
    tumor = BitMatrix.from_dense(rng.random((60, 120)) < 0.35)
    normal = BitMatrix.from_dense(rng.random((60, 100)) < 0.1)
    params = FScoreParams(n_tumor=120, n_normal=100)
    scheme = scheme_for(3, 2)

    stats = PoolStats()
    with PoolEngine(scheme=scheme, n_workers=4) as eng:
        eng.best_combo(tumor, normal, params)  # warm the worker pool
        got = benchmark.pedantic(
            lambda: eng.best_combo(tumor, normal, params, stats=stats),
            rounds=3,
            iterations=1,
        )

    ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
    assert got == ref
    assert stats.n_workers == 4
    assert stats.n_inline_retries == 0
    # Equi-area cuts: every chunk's work within one thread of the mean.
    works = [c.work for c in stats.chunks]
    mean = sum(works) / len(works)
    assert max(works) <= mean + (tumor.n_genes - scheme.flattened)
    show(stats.describe())
