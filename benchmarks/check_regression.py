#!/usr/bin/env python
"""CI perf-regression gate over the committed ``BENCH_*.json`` baselines.

Compares the repo-root benchmark summaries (the *current* run) against
the committed snapshots in ``benchmarks/baselines/`` using the tolerance
bands in :mod:`repro.telemetry.regress` and exits non-zero when any
gated metric regressed::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --skip-wall
    PYTHONPATH=src python benchmarks/check_regression.py \\
        --current-dir . --baseline-dir benchmarks/baselines --names greedy

``--skip-wall`` drops wall-clock checks — the right mode when current
summaries were regenerated on a different machine than the baselines
(CI runners vs. the committing developer's box); the deterministic
counter and efficiency gates still apply.

Exit codes: 0 all gates pass, 1 regression detected, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.regress import DEFAULT_CHECKS, check_files  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate current BENCH_*.json against committed baselines"
    )
    parser.add_argument(
        "--current-dir", type=Path, default=REPO_ROOT,
        help="directory holding the current BENCH_<name>.json files",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=REPO_ROOT / "benchmarks" / "baselines",
        help="directory holding the committed baseline snapshots",
    )
    parser.add_argument(
        "--names", nargs="*", default=sorted(DEFAULT_CHECKS),
        help="benchmark names to gate (default: every name with checks)",
    )
    parser.add_argument(
        "--skip-wall", action="store_true",
        help="skip wall-clock checks (cross-machine comparison)",
    )
    args = parser.parse_args(argv)

    unknown = [n for n in args.names if n not in DEFAULT_CHECKS]
    if unknown:
        print(f"no checks defined for: {', '.join(unknown)}", file=sys.stderr)
        return 2

    pairs = [
        (
            name,
            args.current_dir / f"BENCH_{name}.json",
            args.baseline_dir / f"BENCH_{name}.json",
        )
        for name in args.names
    ]
    regressions, notes = check_files(pairs, skip_wall=args.skip_wall)
    for note in notes:
        print(note)
    if regressions:
        print(f"FAIL: {len(regressions)} perf regression(s)")
        for r in regressions:
            print(f"  {r.describe()}")
        return 1
    print(f"ok: {len(pairs)} benchmark summaries within tolerance bands")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
