"""Section I bench: CPU/GPU runtime estimates and the 6000-GPU speedup."""

from repro.experiments import table_runtime_estimates


def test_runtime_estimates(benchmark, show):
    result = benchmark.pedantic(table_runtime_estimates.run, rounds=1, iterations=1)
    # Order-of-magnitude anchors from the paper.
    assert 5_000 < result.cpu_3hit_min < 50_000  # paper 13860 min
    assert 5 < result.gpu_3hit_min < 60  # paper 23 min
    assert 50 < result.cpu_4hit_years < 1_000  # paper > 500 years
    assert 20 < result.gpu_4hit_days < 150  # paper > 40 days
    # Scale-out speedup in the thousands (paper 7192x).
    assert 1_000 < result.cluster_speedup < 20_000
    show(table_runtime_estimates.report(result))
