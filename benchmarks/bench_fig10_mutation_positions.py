"""Fig. 10 bench: IDH1 hotspot vs MUC6 scatter in LGG."""

from repro.experiments import fig10_mutation_positions


def test_fig10_mutation_positions(benchmark, show):
    result = benchmark(fig10_mutation_positions.run, 0)
    idh1_t = result.panel("IDH1", "tumor")
    idh1_n = result.panel("IDH1", "normal")
    muc6_t = result.panel("MUC6", "tumor")
    muc6_n = result.panel("MUC6", "normal")

    # Paper: 400/532 tumors mutated at R132; none in normals.
    assert idh1_t.peak_position == 132
    assert 350 <= int(idh1_t.counts[131]) <= 450
    assert int(idh1_n.counts[131]) <= 1
    assert idh1_t.peak_concentration > 0.85

    # MUC6 scatters uniformly in both cohorts (passenger signature).
    assert muc6_t.peak_concentration < 0.1
    assert muc6_n.peak_concentration < 0.1

    show(fig10_mutation_positions.report(result))
