"""Section III-E bench: 24.34 TB -> 47.5 GB -> 20 B reduction accounting."""

from repro.experiments import table_reduction_memory


def test_reduction_memory(benchmark, show):
    result = benchmark(table_reduction_memory.run)
    assert 24.0 < result.naive_tb < 24.8  # paper: 24.34 TB
    assert 45.0 < result.block_gb < 50.0  # paper: 47.5 GB
    assert result.plan["per_rank_bytes_to_root"] == 20
    assert result.plan["block_list_bytes"] * 512 >= result.plan["naive_list_bytes"]
    show(table_reduction_memory.report(result))
