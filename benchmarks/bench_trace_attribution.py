"""Causal-trace analysis bench: straggler attribution on an elastic solve.

Runs the acceptance scenario for the causal layer — a traced 4-rank
elastic solve with an injected straggler (0.4 s stall on rank 0) and a
rank crash whose lease is stolen — and writes ``BENCH_trace.json``.
The gates are the layer's core promises: the winner is bit-identical
with tracing on vs off, the extracted critical path tiles the trace
window (coverage >= 0.95), per-bucket attribution closes against total
rank-seconds within 1%, and the analyzer names the straggler's
comm-wait as the dominant loss bucket.  Analyzer wall time over the
trace lands in the summary so the regression gate can see analysis
throughput drift separately from solve time.
"""

import time

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.elastic import elastic_spmd_best_combo
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import FaultReport
from repro.scheduling.schemes import SCHEME_3X1
from repro.telemetry import analyze_trace, telemetry_session

N_RANKS = 4
N_LEASES = 8
STRAGGLER_DELAY_S = 0.4


def _instance():
    rng = np.random.default_rng(12345)
    t = rng.random((14, 30)) < 0.4
    n = rng.random((14, 24)) < 0.2
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=30, n_normal=24),
    )


def _plan():
    return FaultPlan(
        (
            FaultSpec(
                kind="straggler", site="rank", target=0,
                delay_s=STRAGGLER_DELAY_S,
            ),
            FaultSpec(kind="crash", site="rank", target=1),
        )
    )


def _solve(tumor, normal, params):
    return elastic_spmd_best_combo(
        SCHEME_3X1, tumor.n_genes, tumor, normal, params,
        n_ranks=N_RANKS, n_leases=N_LEASES, fault_plan=_plan(),
        report=FaultReport(), lease_ttl_s=5.0, max_wall_s=120.0,
    )


def test_traced_straggler_attribution(benchmark, show, bench_summary):
    tumor, normal, params = _instance()
    ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)

    got_off = _solve(tumor, normal, params)
    with telemetry_session() as telemetry:
        t0 = time.perf_counter()
        got_on = benchmark.pedantic(
            _solve, args=(tumor, normal, params), rounds=1, iterations=1
        )
        wall_traced = time.perf_counter() - t0

    # The gate: tracing observes the solve, never changes it.
    bit_identical = float(got_on == got_off == ref)
    assert bit_identical == 1.0

    spans = telemetry.tracer.export()
    steal_edges = sum(
        1
        for s in spans
        for link in s.get("links") or ()
        if link["kind"] == "steal"
    )
    assert steal_edges > 0, "crash produced no steal edge"

    # Analyzer throughput: best-of-5 over the real trace.
    analyze_walls = []
    for _ in range(5):
        a0 = time.perf_counter()
        report = analyze_trace(spans)
        analyze_walls.append(time.perf_counter() - a0)
    analyze_wall = min(analyze_walls)

    coverage = report["critical_path"]["coverage"]
    closure = report["attribution"]["closure"]
    comm_wait = report["attribution"]["buckets"]["comm_wait"]
    assert coverage >= 0.95
    assert abs(closure - 1.0) <= 0.01
    assert report["dominant_loss"] == "comm_wait"
    assert comm_wait >= STRAGGLER_DELAY_S * 0.8
    stall_on_path = any(
        seg["name"] == "comm.stall"
        for seg in report["critical_path"]["segments"]
    )
    assert stall_on_path, "straggler stall missing from the critical path"

    bench_summary(
        "trace",
        values={
            "n_ranks": N_RANKS,
            "n_leases": N_LEASES,
            "bit_identical": bit_identical,
            "span_count": len(spans),
            "steal_edges": steal_edges,
            "coverage": coverage,
            "closure": closure,
            "comm_wait_s": comm_wait,
            "comm_wait_dominant": float(
                report["dominant_loss"] == "comm_wait"
            ),
            "critical_path_s": report["critical_path"]["length_s"],
            "analyze_wall_s": analyze_wall,
            "spans_per_second": (
                len(spans) / analyze_wall if analyze_wall > 0 else 0.0
            ),
            "wall_seconds_traced": wall_traced,
        },
        telemetry=telemetry,
    )
    show(
        f"traced elastic solve: bit_identical={bit_identical:.0f}, "
        f"spans={len(spans)}, coverage={coverage:.3f}, "
        f"closure={closure:.4f}, dominant={report['dominant_loss']}, "
        f"comm_wait={comm_wait:.3f}s, analyze={analyze_wall * 1e3:.1f}ms"
    )
