"""Section III-C bench: naive prefix scan vs O(G) level-walk scheduler."""

from repro.experiments import table_scheduler_cost


def test_scheduler_cost(benchmark, show):
    result = benchmark.pedantic(table_scheduler_cost.run, rounds=1, iterations=1)
    # Where both run, they agree exactly and the level walk is faster.
    checked = 0
    for row in result.rows:
        if row.naive_s is not None:
            assert row.identical
            if row.n_threads > 100_000:
                assert row.level_walk_s < row.naive_s / 10
            checked += 1
    assert checked >= 2
    # Paper: the full Summit schedule computes in under a minute.
    assert result.paper_scale_s < 5.0
    show(table_scheduler_cost.report(result))
