"""§V extension bench: mutation-level search cost and discrimination."""

from repro.experiments import ext_mutation_level


def test_mutation_level_extension(benchmark, show):
    result = benchmark.pedantic(ext_mutation_level.run, rounds=1, iterations=1)
    # Paper §V: "~1e5" speedup needed for mutation-level 4-hit.
    assert 1.0e5 < result.mutation_factor < 2.0e5
    # "~4e5 per additional hit" (exact C-ratio is (M-h)/(h+1) ~ 8e4).
    assert 5.0e4 < result.extra_hit < 1.0e5
    # The motivating payoff: mutation resolution pinpoints hotspots.
    d = result.discrimination
    assert d.mutation_level_sharper
    assert d.mutation_hotspot_precision >= 0.6
    show(ext_mutation_level.report(result))
