"""Lazy-greedy pruning bench: pruned vs unpruned per-iteration trajectory.

Runs the same planted cohort through the single-GPU greedy loop with and
without the bound-table engine and writes ``BENCH_greedy.json`` — the
per-iteration combos-scored / word-reads / wall-time series plus the
headline aggregate reduction (the PR-over-PR tracked number).  Asserts
the acceptance bar: bit-identical solutions and >= 2x fewer combinations
scored from iteration 2 onward.
"""

from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.telemetry import telemetry_session


def _run(prune: bool):
    cohort = generate_cohort(
        CohortConfig(n_genes=40, n_tumor=120, n_normal=120, hits=3, seed=0)
    )
    solver = MultiHitSolver(hits=3, prune=prune)
    return solver.solve(cohort.tumor.values, cohort.normal.values)


def _trajectory(result):
    return [
        {
            "iteration": r.iteration,
            "combos_scored": r.combos_scored,
            "combos_pruned": r.combos_pruned,
            "word_reads": r.word_reads,
            "wall_seconds": r.wall_seconds,
        }
        for r in result.iterations
    ]


def test_greedy_pruning_trajectory(benchmark, show, bench_summary):
    base = _run(prune=False)

    with telemetry_session() as telemetry:
        pruned = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)

        # Soundness first: pruning must never change the answer.
        assert [c.genes for c in pruned.combinations] == [
            c.genes for c in base.combinations
        ]
        assert [(c.f, c.tp, c.tn) for c in pruned.combinations] == [
            (c.f, c.tp, c.tn) for c in base.combinations
        ]

        base_tail = sum(r.combos_scored for r in base.iterations[1:])
        pruned_tail = sum(r.combos_scored for r in pruned.iterations[1:])
        reads_base = sum(r.word_reads for r in base.iterations[1:])
        reads_pruned = sum(r.word_reads for r in pruned.iterations[1:])
        reduction = base_tail / max(1, pruned_tail)
        assert reduction >= 2.0, f"only {reduction:.2f}x from iteration 2 on"

        bench_summary(
            "greedy",
            values={
                "iterations": len(base.iterations),
                "combos_scored_unpruned": base_tail,
                "combos_scored_pruned": pruned_tail,
                "combos_reduction_from_iter2": round(reduction, 3),
                "word_reads_unpruned": reads_base,
                "word_reads_pruned": reads_pruned,
                "word_reads_reduction_from_iter2": round(
                    reads_base / max(1, reads_pruned), 3
                ),
                "wall_seconds_unpruned": sum(
                    r.wall_seconds for r in base.iterations
                ),
                "wall_seconds_pruned": sum(
                    r.wall_seconds for r in pruned.iterations
                ),
                # Kernel-counter run totals, including the final probe
                # iteration that breaks the loop without a record: must
                # equal the summary's ``prune`` rollup (fed from the
                # solver's per-iteration histogram observations) — the
                # cross-check tests hold these two accountings equal.
                "combos_scored_total_pruned": pruned.counters.combos_scored,
                "combos_pruned_total": pruned.counters.combos_pruned,
                "trajectory_unpruned": _trajectory(base),
                "trajectory_pruned": _trajectory(pruned),
            },
            telemetry=telemetry,
        )

    lines = [
        "Lazy-greedy pruning (40 genes, 3-hit, single backend)",
        f"  combos scored iters>=2: {base_tail} -> {pruned_tail} "
        f"({reduction:.1f}x)",
        "  iter | unpruned | pruned | pruned-away",
    ]
    for rb, rp in zip(base.iterations, pruned.iterations):
        lines.append(
            f"  {rb.iteration:4d} | {rb.combos_scored:8d} | "
            f"{rp.combos_scored:6d} | {rp.combos_pruned:11d}"
        )
    show("\n".join(lines))
