"""Gateway throughput bench: 8 concurrent tenant jobs vs direct solves.

Boots a real :class:`repro.service.Gateway` (4 supervisor threads,
``cost_aware`` dispatch) on a tmp state dir, submits 8 planted cohorts
from two tenants concurrently, and waits for the fleet to drain.  The
acceptance bar is exact: every job's winning combinations are
bit-identical to a direct :class:`MultiHitSolver` run on the same
cohort — multi-tenancy must cost correctness nothing.  The summary
(``BENCH_gateway.json``) records drained-fleet wall time, per-job wall
stats, and the gateway's ``job.*`` lifecycle counters so perf and
admission behaviour drift stay visible across PRs.

Not wired into the check_regression default gate (wall time is
machine-bound and the job mix is tiny); the bit-identity asserts are
the gate.
"""

import tempfile
import time

from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.service import Gateway

N_JOBS = 8
BACKENDS = ["single", "pool", "sequential", "single",
            "pool", "sequential", "single", "single"]


def _spec(seed: int, backend: str) -> dict:
    return {
        "tenant": f"tenant-{seed % 2}",
        "cohort": {"n_genes": 24, "n_tumor": 60, "n_normal": 60,
                   "hits": 3, "seed": seed},
        "solver": {"hits": 3, "backend": backend, "n_workers": 2},
    }


def _signature(combos) -> list:
    return [(tuple(c["genes"]), round(c["f"], 12)) for c in combos]


def _run_fleet(state_dir: str) -> tuple:
    gateway = Gateway(
        state_dir=state_dir, max_concurrent=4, max_workers=8,
        queue_depth=16, tenant_quota=8, policy="cost_aware",
    )
    with gateway:
        t0 = time.perf_counter()
        jobs = [
            gateway.submit(_spec(seed, backend))
            for seed, backend in enumerate(BACKENDS)
        ]
        done = gateway.wait([j.job_id for j in jobs], timeout=600)
        wall = time.perf_counter() - t0
    return done, wall, gateway.telemetry.metrics.to_dict()["counters"]


def test_gateway_fleet_bit_identical(benchmark, show, bench_summary):
    with tempfile.TemporaryDirectory() as state_dir:
        done, wall, counters = benchmark.pedantic(
            _run_fleet, args=(state_dir,), rounds=1, iterations=1
        )

    assert [j.state for j in done] == ["done"] * N_JOBS
    job_walls = []
    for job, backend in zip(done, BACKENDS):
        expected = MultiHitSolver(hits=3).solve(
            *(lambda c: (c.tumor.values, c.normal.values))(
                generate_cohort(CohortConfig(**job.spec["cohort"]))
            )
        )
        assert _signature(job.result["combinations"]) == [
            (c.genes, round(c.f, 12)) for c in expected.combinations
        ], f"{job.job_id} ({backend}) diverged from the direct solve"
        job_walls.append(job.progress["elapsed_s"])

    assert counters["job.submitted"] == N_JOBS
    assert counters["job.completed"] == N_JOBS
    assert counters.get("job.failed", 0) == 0

    serial = sum(job_walls)
    lines = [
        f"gateway fleet: {N_JOBS} jobs drained in {wall:.2f}s "
        f"(serial job wall {serial:.2f}s, overlap x{serial / wall:.2f})",
        f"  backends: {dict((b, BACKENDS.count(b)) for b in set(BACKENDS))}",
        f"  job wall s: min {min(job_walls):.3f} max {max(job_walls):.3f}",
        "  all 8 winners bit-identical to direct solves",
    ]
    show("\n".join(lines))

    bench_summary(
        "gateway",
        values={
            "n_jobs": N_JOBS,
            "backends": BACKENDS,
            "fleet_wall_s": round(wall, 4),
            "serial_job_wall_s": round(serial, 4),
            "overlap": round(serial / wall, 4),
            "job_wall_s_max": round(max(job_walls), 4),
            "bit_identical": True,
            "job_counters": {
                k: v for k, v in counters.items() if k.startswith("job.")
                and not k.startswith("job.kernel")
            },
        },
    )
