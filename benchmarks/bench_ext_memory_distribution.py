"""§V extension bench: per-GPU matrix-subset distribution sizing."""

from repro.experiments import ext_memory_distribution


def test_memory_distribution(benchmark, show):
    result = benchmark.pedantic(ext_memory_distribution.run, rounds=1, iterations=1)
    gene, mut = result.gene_level, result.mutation_level
    # Gene-level matrices are tiny; the mutation-level input is ~20x.
    assert mut.full_replication_bytes > 15 * gene.full_replication_bytes
    # Hot-set distribution keeps a meaningful fraction off-device.
    assert 0.2 < mut.mean_hot_fraction < 0.8
    assert mut.hot_set_fits
    show(ext_memory_distribution.report(result))
