"""Elastic churn bench: ±20% mid-solve fleet swap vs the static fleet.

Runs the same planted cohort through the in-process distributed solver
twice — once on a fixed 5-rank fleet, once on the elastic lease-stealing
path with a :meth:`FaultPlan.churn` scenario (one rank drains at 20%
solve progress, a fresh rank joins at 40%) — and writes
``BENCH_elastic.json``.  The acceptance bar is exact: the churned run's
selected combinations are bit-identical to the static run and every
combination is scored exactly once (the lease ledger's counter closure).
Lease traffic (grants / steals / forfeits) lands in the summary so the
regression gate can see scheduling-behaviour drift, not just winners.
"""

import time

from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.faults.plan import FaultPlan
from repro.telemetry import telemetry_session

N_NODES = 5
CHURN = dict(fraction=0.2, leave_at=0.2, join_at=0.4)


def _cohort():
    return generate_cohort(
        CohortConfig(n_genes=32, n_tumor=100, n_normal=100, hits=3, seed=7)
    )


def _signature(result):
    return [(c.genes, c.f, c.tp, c.tn) for c in result.combinations]


def _solve_elastic(t, n):
    solver = MultiHitSolver(
        hits=3,
        backend="distributed",
        n_nodes=N_NODES,
        elastic=True,
        fault_plan=FaultPlan.churn(N_NODES, **CHURN),
    )
    return solver.solve(t, n)


def test_elastic_churn_bit_identical(benchmark, show, bench_summary):
    cohort = _cohort()
    t, n = cohort.tumor.values, cohort.normal.values

    static = MultiHitSolver(hits=3, backend="distributed", n_nodes=N_NODES).solve(
        t, n
    )

    with telemetry_session() as telemetry:
        t0 = time.perf_counter()
        elastic = benchmark.pedantic(
            _solve_elastic, args=(t, n), rounds=1, iterations=1
        )
        wall = time.perf_counter() - t0

        # The gate: churn must not change the answer or the accounting.
        bit_identical = float(_signature(elastic) == _signature(static))
        assert bit_identical == 1.0
        scored_static = sum(r.combos_scored for r in static.iterations)
        scored_elastic = sum(r.combos_scored for r in elastic.iterations)
        assert scored_elastic == scored_static

        # The churn actually happened: membership events on the report.
        churn_events = [
            (e.kind, e.action)
            for e in elastic.fault_report.events
            if e.site == "membership"
        ]
        assert ("leave", "drained") in churn_events
        assert ("join", "joined") in churn_events

        counters = telemetry.metrics.counters
        grants = counters.get("lease.grants", 0)
        assert grants > 0

        bench_summary(
            "elastic",
            values={
                "n_nodes": N_NODES,
                "churn_fraction": CHURN["fraction"],
                "bit_identical": bit_identical,
                "combos_scored": scored_elastic,
                "combos_scored_static": scored_static,
                "iterations": len(elastic.iterations),
                "lease_grants": grants,
                "lease_steals": counters.get("lease.steals", 0),
                "lease_forfeited": counters.get("lease.forfeited", 0),
                "lease_completed": counters.get("lease.completed", 0),
                "churn_events": len(churn_events),
                "wall_seconds_elastic": wall,
                "wall_seconds_static": sum(
                    r.wall_seconds for r in static.iterations
                ),
            },
            telemetry=telemetry,
        )
    show(
        "elastic churn vs static: bit_identical="
        f"{bit_identical:.0f}, combos_scored={scored_elastic} "
        f"(static {scored_static}), lease_grants={grants}, "
        f"steals={counters.get('lease.steals', 0)}, "
        f"forfeits={counters.get('lease.forfeited', 0)}, "
        f"churn_events={churn_events}"
    )


def test_elastic_steal_recovery_bit_identical(benchmark, show):
    """A persistently dead rank's leases are stolen; the winner holds."""
    from repro.bitmatrix.matrix import BitMatrix
    from repro.core.distributed import DistributedEngine
    from repro.core.fscore import FScoreParams
    from repro.faults.plan import FaultSpec
    from repro.scheduling.schemes import scheme_for
    import numpy as np

    rng = np.random.default_rng(11)
    tumor = BitMatrix.from_dense(rng.random((40, 80)) < 0.35)
    normal = BitMatrix.from_dense(rng.random((40, 70)) < 0.1)
    params = FScoreParams(n_tumor=80, n_normal=70)
    scheme = scheme_for(3, 2)

    clean = DistributedEngine(scheme=scheme, n_nodes=4).best_combo(
        tumor, normal, params
    )
    plan = FaultPlan(
        (FaultSpec(kind="crash", site="rank", target=1, count=-1),)
    )
    engine = DistributedEngine(
        scheme=scheme, n_nodes=4, elastic=True, fault_plan=plan
    )
    got = benchmark.pedantic(
        lambda: engine.best_combo(tumor, normal, params), rounds=1, iterations=1
    )
    assert got == clean
    assert engine.report.n_rescheduled >= 1
    show(engine.report.describe())
