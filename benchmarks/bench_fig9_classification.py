"""Fig. 9 bench: 4-hit classifier accuracy over the 11 >=4-hit cancers.

Paper: 151 combinations total; average sensitivity 83% (CI 72-90%),
specificity 90% (CI 81-96%) on held-out 25% test splits.
"""

from repro.experiments import fig9_classification


def test_fig9_classification(benchmark, show):
    result = benchmark.pedantic(fig9_classification.run, rounds=1, iterations=1)
    assert len(result.performances) == 11

    # Headline bands (synthetic cohorts; paper 0.83 / 0.90).
    assert 0.70 <= result.mean_sensitivity <= 0.92
    assert 0.85 <= result.mean_specificity <= 1.0

    # Combination count lands near the paper's 151.
    assert 100 <= result.total_combinations <= 220

    # Ground truth: the planted drivers are recovered for every cancer.
    assert all(v >= 3 for v in result.planted_recovered.values())

    # Every per-cancer CI contains its point estimate.
    for p in result.performances:
        assert p.sensitivity_ci[0] <= p.sensitivity <= p.sensitivity_ci[1]
        assert p.specificity_ci[0] <= p.specificity <= p.specificity_ci[1]

    show(fig9_classification.report(result))
