"""Fig. 1 bench: the node abstraction / per-rank GPU assignment table."""

from repro.experiments import fig1_node_abstraction


def test_fig1_node_abstraction(benchmark, show):
    result = benchmark(fig1_node_abstraction.run, 200, 3)
    assert result.node.n_gpus == 6 and result.node.n_cpus == 2
    assigns = result.rank_assignments()
    assert len(assigns) == 3
    # Each rank drives six GPUs over contiguous, disjoint thread ranges.
    flat = [rng for gpus in assigns for rng in gpus]
    assert len(flat) == 18
    for (lo_a, hi_a), (lo_b, _) in zip(flat, flat[1:]):
        assert hi_a == lo_b
    show(fig1_node_abstraction.report(result))
