"""Fig. 2 bench: per-thread workload curves, 2x2 vs 3x1, G = 10."""

from repro.experiments import fig2_thread_workload


def test_fig2_thread_workload(benchmark, show):
    result = benchmark(fig2_thread_workload.run, 10)
    # Paper shape: same total work over more threads, G-fold smaller spread.
    assert result.work_2x2.sum() == result.work_3x1.sum() == 210
    assert result.spread_2x2 == 28  # C(8, 2)
    assert result.spread_3x1 == 7  # G - 3
    assert len(result.work_3x1) > len(result.work_2x2)
    show(fig2_thread_workload.report(result))
