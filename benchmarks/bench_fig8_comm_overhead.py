"""Fig. 8 bench: compute vs communication time, 1000-node BRCA run."""

from repro.experiments import fig8_comm_overhead


def test_fig8_comm_overhead(benchmark, show):
    result = benchmark.pedantic(fig8_comm_overhead.run, rounds=1, iterations=1)
    assert result.n_nodes == 1000
    # Paper: message-passing overhead hidden by the largest computation.
    assert result.comm_hidden
    assert result.comm_fraction < 0.25
    # Compute times vary (node jitter / straggler skew) but are same-scale.
    comp = result.compute_s
    assert comp.max() / comp.min() < 1.5
    show(fig8_comm_overhead.report(result))
