"""Fig. 6 bench: per-GPU utilization / DRAM / stalls, 2x2 on ACC, 600 GPUs."""

import numpy as np

from repro.experiments import fig6_utilization_2x2


def test_fig6_utilization_2x2(benchmark, show):
    result = benchmark.pedantic(fig6_utilization_2x2.run, rounds=1, iterations=1)
    prof = result.profile
    assert prof.n_gpus == 600

    u = prof.utilization
    # (a) utilization decays from 100% at GPU 0.
    assert u[0] == 1.0
    assert result.utilization_trend() < 0
    assert u[-1] < 0.5

    # (b) DRAM read throughput rises with GPU index, anti-correlated
    # with utilization (paper: inverse correlation up to ~GPU #500).
    d = prof.dram_read_bps
    assert d[-1] > 2 * d[0]
    assert np.corrcoef(u, d)[0, 1] < -0.7

    # Memory-bound -> compute-bound transition late in the range.
    t = result.transition_gpu
    assert t is not None and 300 < t < 600  # paper: ~#500

    # (c) stalls on the straggler GPUs are dominated by memory dependency.
    assert prof.stall_memory_dependency[0] > prof.stall_execution_dependency[0]
    assert prof.stall_memory_dependency[0] > 0.5

    show(fig6_utilization_2x2.report(result))
