"""Ablation: the reproduced shapes are robust to the timing-model constants.

DESIGN.md commits to *shape* claims (efficiency decays with node count;
EA beats ED; memopts speed things up).  This bench perturbs the main
tuning constants by 2x in both directions and asserts the shapes
survive — i.e. the reproduction does not hinge on a lucky constant.
"""

import dataclasses

import pytest

from repro.core.memopt import MemoryConfig
from repro.gpusim.timing import TimingTuning
from repro.perfmodel.runtime import JobModel
from repro.perfmodel.scaling import strong_scaling_sweep
from repro.perfmodel.workloads import ACC
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1

PERTURBATIONS = [
    {},
    {"cache_reuse": 32.0},
    {"cache_reuse": 128.0},
    {"issue_efficiency": 0.2},
    {"issue_efficiency": 0.6},
    {"latency_hide_threads": 80_000.0},
    {"compute_hide_threads": 20_000.0},
]


def _shapes_hold(tuning: TimingTuning) -> None:
    model = JobModel(scheme=SCHEME_3X1, tuning=tuning)
    pts = strong_scaling_sweep(model, ACC, [10, 20, 40], baseline_nodes=10)
    effs = [p.efficiency for p in pts]
    assert effs[0] == pytest.approx(1.0)
    assert all(0.2 < e <= 1.001 for e in effs)
    assert effs[-1] <= effs[0]

    ea = JobModel(scheme=SCHEME_2X2, scheduler="equiarea", tuning=tuning)
    ed = JobModel(scheme=SCHEME_2X2, scheduler="equidistance", tuning=tuning)
    assert ea.run(ACC, 10).total_s < ed.run(ACC, 10).total_s

    base = JobModel(
        scheme=SCHEME_3X1, tuning=tuning, memory=MemoryConfig(False, False, False)
    )
    opt = JobModel(scheme=SCHEME_3X1, tuning=tuning, memory=MemoryConfig(True, True, True))
    assert opt.single_gpu_seconds(ACC) < base.single_gpu_seconds(ACC)


def test_model_sensitivity(benchmark, show):
    def run_all():
        for overrides in PERTURBATIONS:
            _shapes_hold(dataclasses.replace(TimingTuning(), **overrides))
        return len(PERTURBATIONS)

    checked = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert checked == len(PERTURBATIONS)
    show(
        "Model sensitivity: efficiency decay, EA>ED, and memopt speedup "
        f"shapes hold under {checked} tuning perturbations (2x both ways "
        "on cache reuse, issue efficiency, latency/occupancy thresholds)."
    )
