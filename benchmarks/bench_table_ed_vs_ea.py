"""Section IV-B bench: ED vs EA runtimes (paper: 13943 s vs 4607 s, 3.03x)."""

from repro.experiments import table_ed_vs_ea


def test_ed_vs_ea(benchmark, show):
    result = benchmark.pedantic(table_ed_vs_ea.run, rounds=1, iterations=1)
    # EA wins by a multiple (paper 3.03x; our model lands 3-6x).
    assert 2.0 < result.speedup < 8.0
    assert result.ea_imbalance < 1.01
    assert result.ed_imbalance > 3.0
    # Functional: both schedules find the identical combination.
    assert result.same_winner
    show(table_ed_vs_ea.report(result))
