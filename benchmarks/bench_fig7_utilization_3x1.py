"""Fig. 7 bench: flat utilization, 3x1 on BRCA, 600 GPUs."""

from repro.experiments import fig7_utilization_3x1


def test_fig7_utilization_3x1(benchmark, show):
    result = benchmark.pedantic(fig7_utilization_3x1.run, rounds=1, iterations=1)
    assert result.profile.n_gpus == 600
    # Paper: balanced utilization across MPI processes.
    assert result.min_utilization > 0.97
    assert result.utilization_spread < 0.03
    show(fig7_utilization_3x1.report(result))
