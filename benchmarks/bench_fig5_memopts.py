"""Fig. 5 bench: MemOpt1 / MemOpt2 / BitSplicing speedups (paper: ~3x)."""

from repro.experiments import fig5_memopts


def test_fig5_memory_optimizations(benchmark, show):
    result = benchmark.pedantic(fig5_memopts.run, rounds=1, iterations=1)
    sp = result.model_speedups
    # Cumulative speedups increase with each optimization, ending near 3x.
    assert sp == sorted(sp)
    assert sp[0] == 1.0
    assert 1.2 < sp[1] < 2.0  # +MemOpt1
    assert 1.8 < sp[2] < 3.0  # +MemOpt2
    assert 2.5 < sp[3] < 5.0  # +BitSplicing (paper ~3x)
    # Measured word-read reductions follow the same staircase.
    reds = result.read_reductions
    assert reds[0] == 1.0 and reds[1] > 1.2 and reds[2] > reds[1] and reds[3] > reds[2]
    show(fig5_memopts.report(result))
