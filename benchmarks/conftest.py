"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one paper table or figure: it runs
the experiment driver (timed via pytest-benchmark), asserts the paper's
qualitative shape, and prints the same rows/series the paper reports
(visible with ``pytest benchmarks/ --benchmark-only -s``; recorded in
EXPERIMENTS.md).
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
