"""Benchmark harness configuration.

Each ``bench_*`` module regenerates one paper table or figure: it runs
the experiment driver (timed via pytest-benchmark), asserts the paper's
qualitative shape, and prints the same rows/series the paper reports
(visible with ``pytest benchmarks/ --benchmark-only -s``; recorded in
EXPERIMENTS.md).

``bench_summary`` writes a repo-root ``BENCH_<name>.json`` through the
:mod:`repro.telemetry` summary exporter — the machine-readable perf
trajectory: each run overwrites the file, so committed snapshots show
how headline numbers (scaling efficiency, counter totals, span times)
move across PRs.
"""

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def show(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show


@pytest.fixture
def bench_summary():
    """Write ``BENCH_<name>.json`` at the repo root via the summary exporter.

    ``values`` lands in the summary's ``extra`` block; pass the session
    from ``telemetry_session()`` as ``telemetry`` to also include the
    run's counters, histograms, and per-span aggregates.
    """
    from repro.telemetry.export import write_summary

    def _write(name: str, values=None, telemetry=None) -> Path:
        return write_summary(
            REPO_ROOT / f"BENCH_{name}.json",
            name=name,
            telemetry=telemetry,
            extra=values,
        )

    return _write
