"""Microbenchmarks: the computational kernels behind every experiment.

These are the ablation-grade measurements DESIGN.md calls out: bit-matrix
AND+popcount throughput (the 32x-compression payoff), closed-form index
decoding (the per-thread cost the 128-bit workaround keeps cheap), the
O(G) scheduler, and one full greedy iteration of the vectorized engine.
"""

import math

import numpy as np
import pytest

from repro.combinatorics.tetrahedral import triple_from_linear_array
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1


@pytest.fixture(scope="module")
def cohort():
    return generate_cohort(
        CohortConfig(n_genes=80, n_tumor=256, n_normal=256, hits=3, seed=0)
    )


def test_bitmatrix_and_popcount_throughput(benchmark, cohort):
    tumor = cohort.tumor.to_bitmatrix()
    genes = np.array([3, 17, 41])

    count = benchmark(tumor.count_samples_with_all, genes)
    dense = np.logical_and.reduce(cohort.tumor.values[genes], axis=0).sum()
    assert count == dense


def test_dense_vs_packed_counting(benchmark, cohort):
    # The dense-boolean baseline for the same AND+popcount (paper's
    # motivation for the compressed representation).
    dense = cohort.tumor.values
    genes = [3, 17, 41]

    def run():
        return int(np.logical_and.reduce(dense[genes], axis=0).sum())

    count = benchmark(run)
    assert count == cohort.tumor.to_bitmatrix().count_samples_with_all(genes)


def test_closed_form_triple_decode(benchmark):
    lam = np.arange(0, 1_000_000, dtype=np.uint64)

    i, j, k = benchmark(triple_from_linear_array, lam)
    assert int(k[-1]) == 182  # C(182,3) = 988260 <= 999999 < C(183,3)
    assert (i < j).all() and (j < k).all()


def test_equiarea_schedule_paper_scale(benchmark):
    schedule = benchmark(equiarea_schedule, SCHEME_3X1, 19411, 6000)
    assert schedule.boundaries[-1] == math.comb(19411, 3)


def test_single_engine_one_iteration(benchmark, cohort):
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    params = FScoreParams(n_tumor=256, n_normal=256)
    engine = SingleGpuEngine(scheme=SCHEME_3X1)

    best = benchmark.pedantic(
        engine.best_combo, args=(tumor, normal, params), rounds=1, iterations=1
    )
    assert best is not None and best.tp > 0
