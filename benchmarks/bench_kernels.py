"""Microbenchmarks: the computational kernels behind every experiment.

These are the ablation-grade measurements DESIGN.md calls out: bit-matrix
AND+popcount throughput (the 32x-compression payoff), closed-form index
decoding (the per-thread cost the 128-bit workaround keeps cheap), the
O(G) scheduler, and one full greedy iteration of the vectorized engine.
"""

import math
import time

import numpy as np
import pytest

from repro.combinatorics.tetrahedral import triple_from_linear_array
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.memopt import fused_word_reads
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1, scheme_for
from repro.scheduling.workload import total_threads


@pytest.fixture(scope="module")
def cohort():
    return generate_cohort(
        CohortConfig(n_genes=80, n_tumor=256, n_normal=256, hits=3, seed=0)
    )


def test_bitmatrix_and_popcount_throughput(benchmark, cohort):
    tumor = cohort.tumor.to_bitmatrix()
    genes = np.array([3, 17, 41])

    count = benchmark(tumor.count_samples_with_all, genes)
    dense = np.logical_and.reduce(cohort.tumor.values[genes], axis=0).sum()
    assert count == dense


def test_dense_vs_packed_counting(benchmark, cohort):
    # The dense-boolean baseline for the same AND+popcount (paper's
    # motivation for the compressed representation).
    dense = cohort.tumor.values
    genes = [3, 17, 41]

    def run():
        return int(np.logical_and.reduce(dense[genes], axis=0).sum())

    count = benchmark(run)
    assert count == cohort.tumor.to_bitmatrix().count_samples_with_all(genes)


def test_closed_form_triple_decode(benchmark):
    lam = np.arange(0, 1_000_000, dtype=np.uint64)

    i, j, k = benchmark(triple_from_linear_array, lam)
    assert int(k[-1]) == 182  # C(182,3) = 988260 <= 999999 < C(183,3)
    assert (i < j).all() and (j < k).all()


def test_equiarea_schedule_paper_scale(benchmark):
    schedule = benchmark(equiarea_schedule, SCHEME_3X1, 19411, 6000)
    assert schedule.boundaries[-1] == math.comb(19411, 3)


def test_single_engine_one_iteration(benchmark, cohort):
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    params = FScoreParams(n_tumor=256, n_normal=256)
    engine = SingleGpuEngine(scheme=SCHEME_3X1)

    best = benchmark.pedantic(
        engine.best_combo, args=(tumor, normal, params), rounds=1, iterations=1
    )
    assert best is not None and best.tp > 0


def test_sparse_vs_dense_kernel_traffic(benchmark, show, bench_summary):
    """Sparsity-driven scan vs the dense fused path on a planted sparse
    instance (<= 5% mutation density, realistic for cohort matrices).

    Writes ``BENCH_kernels.json`` — the PR-over-PR tracked kernel traffic
    numbers the ``kernel-sparse`` CI gate compares against the committed
    baseline.  Acceptance bar: bit-identical winner, exact counter
    closure against the dense charge, and >= 30% fewer word reads than
    the dense *fused* traffic model.
    """
    cohort = generate_cohort(
        CohortConfig(
            n_genes=100, n_tumor=800, n_normal=800, hits=3,
            n_driver_combos=1, background_scale=0.07,
            sporadic_fraction=0.05, seed=0,
        )
    )
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    density_t = float(cohort.tumor.values.mean())
    density_n = float(cohort.normal.values.mean())
    assert density_t <= 0.05 and density_n <= 0.05  # the planted premise

    params = FScoreParams(n_tumor=800, n_normal=800)
    scheme = scheme_for(3, 2)
    g = tumor.n_genes
    end = total_threads(scheme, g)
    w = tumor.n_words + normal.n_words
    # word_stride 8 keeps several stride slices per matrix (13 words
    # each here), so the nonzero-mask skip has grain to work with.
    stride = 8

    dense_c = KernelCounters()
    t0 = time.perf_counter()
    dense_best = best_in_thread_range(
        scheme, g, tumor, normal, params, 0, end, counters=dense_c
    )
    wall_dense = time.perf_counter() - t0

    sparse_c = KernelCounters()

    def run_sparse():
        return best_in_thread_range(
            scheme, g, tumor, normal, params, 0, end,
            counters=sparse_c, sparse=True, word_stride=stride,
        )

    t0 = time.perf_counter()
    sparse_best = benchmark.pedantic(run_sparse, rounds=1, iterations=1)
    wall_sparse = time.perf_counter() - t0

    # Exactness and closure before any perf claim.
    assert sparse_best == dense_best
    assert sparse_c.combos_scored == dense_c.combos_scored
    assert (
        sparse_c.word_reads + sparse_c.word_reads_skipped == dense_c.word_reads
    )

    fused_model = fused_word_reads(scheme, g, w, 0, end)
    reduction = 1.0 - sparse_c.word_reads / fused_model
    assert reduction >= 0.30, f"only {reduction:.1%} below the fused model"

    bench_summary(
        "kernels",
        values={
            "density_tumor": round(density_t, 4),
            "density_normal": round(density_n, 4),
            "word_stride": stride,
            "combos_scored": sparse_c.combos_scored,
            "word_reads_dense_model": dense_c.word_reads,
            "word_reads_fused_model": fused_model,
            "word_reads_sparse": sparse_c.word_reads,
            "word_reads_skipped": sparse_c.word_reads_skipped,
            "reduction_vs_fused": round(reduction, 4),
            "prefix_and_hits": sparse_c.prefix_and_hits,
            "zero_prefix_runs_skipped": sparse_c.zero_prefix_runs_skipped,
            "strides_skipped_sparse": sparse_c.strides_skipped_sparse,
            "wall_seconds_dense": wall_dense,
            "wall_seconds_sparse": wall_sparse,
        },
    )
    show(
        "Sparse kernel path (100 genes, 3-hit, densities "
        f"{density_t:.1%}/{density_n:.1%}, stride {stride})\n"
        f"  word reads: fused model {fused_model} -> sparse "
        f"{sparse_c.word_reads} ({reduction:.1%} reduction)\n"
        f"  prefix AND hits {sparse_c.prefix_and_hits}, zero-prefix runs "
        f"{sparse_c.zero_prefix_runs_skipped}, strides skipped "
        f"{sparse_c.strides_skipped_sparse}"
    )
