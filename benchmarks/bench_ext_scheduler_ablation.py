"""§V extension bench: latency-aware scheduling remedies, 600 GPUs."""

from repro.experiments import ext_scheduler_ablation


def test_scheduler_ablation(benchmark, show):
    result = benchmark.pedantic(ext_scheduler_ablation.run, rounds=1, iterations=1)
    # The 2x2 straggler is occupancy-bound: resizing recovers ~nothing...
    assert result.resizing_improvement < 1.3
    # ...while interleaving (same work, uniform occupancy) recovers a lot.
    assert result.interleave_improvement > 2.0
    # The paper's own remedy (3x1) is the gold standard.
    assert result.scheme3x1_times.max() <= result.il_times.max()
    show(ext_scheduler_ablation.report(result))
