"""Mutation-level discovery: the paper's Section V future-work direction.

Gene-level search cannot tell a driver hotspot (IDH1 R132) from a
passenger gene that is merely frequently mutated — the Fig. 10 problem.
This example synthesizes a positional cohort with planted hotspot
drivers, runs the same greedy engine over *mutation features* instead of
genes, and shows that the mutation-level result names the exact hotspot
positions.

Run:  python examples/mutation_level_extension.py
"""

from repro.mutlevel import (
    PositionalCohortConfig,
    compare_resolutions,
    extra_hit_factor,
    generate_positional_cohort,
    mutation_level_factor,
    solve_mutation_level,
)


def main() -> None:
    cfg = PositionalCohortConfig(
        n_genes=30,
        n_tumor=150,
        n_normal=150,
        hits=3,
        n_driver_combos=2,
        background_rate=0.10,
        seed=4,
    )
    cohort = generate_positional_cohort(cfg)
    print("planted driver hotspots:")
    for g, pos in sorted(cohort.hotspots.items()):
        print(f"  {cohort.gene_name(g)} at position {pos}")

    tumor = cohort.tumor_matrix(min_recurrence=2)
    normal = cohort.normal_matrix(features=tumor)
    print(f"\nmutation matrix: {tumor.n_features} recurrent features "
          f"x {tumor.n_samples} samples "
          f"(vs {cfg.n_genes} genes — the paper quotes ~20x at TCGA scale)")

    result = solve_mutation_level(tumor, normal, hits=3, max_iterations=4)
    print("\nmutation-level combinations (gene:position):")
    for labels in result.labels:
        print(f"  {labels}")

    report = compare_resolutions(cohort)
    print(f"\ngene-level driver precision:      {report.gene_driver_precision:.2f}")
    print(f"mutation-level hotspot precision: {report.mutation_hotspot_precision:.2f}")
    print(f"hotspot features recovered: "
          f"{report.hotspot_features_found}/{report.planted_hotspots}")

    print("\nwhy the paper calls this future work (Section V):")
    print(f"  gene -> mutation search-space growth (4-hit): "
          f"{mutation_level_factor():.2e}x")
    print(f"  each additional hit at mutation level: {extra_hit_factor(4):.2e}x")


if __name__ == "__main__":
    main()
