"""Paper-scale Summit performance study (Figs. 4, 6, 7, 8 in one script).

Uses the virtual-time performance model driven by the *real* equi-area
schedules at G = 19411 to predict strong/weak scaling, per-GPU
utilization profiles, and the compute/communication split — no GPUs
required.

Run:  python examples/summit_scaling_study.py
"""

from repro import JobModel, SCHEME_2X2, SCHEME_3X1
from repro.perfmodel import ACC, BRCA, strong_scaling_sweep, weak_scaling_sweep
from repro.perfmodel.utilization import profile_schedule


def main() -> None:
    model = JobModel(scheme=SCHEME_3X1)

    print("=== strong scaling, BRCA, 3x1 scheme (paper Fig. 4a) ===")
    for p in strong_scaling_sweep(model, BRCA, [100, 200, 400, 600, 800, 1000]):
        bar = "#" * int(p.efficiency * 40)
        print(f"  {p.n_nodes:5d} nodes  {p.runtime_s:9.1f} s  "
              f"eff {p.efficiency * 100:5.1f}%  {bar}")

    print("\n=== weak scaling, BRCA, first iteration (paper Fig. 4b) ===")
    for p in weak_scaling_sweep(model, BRCA, [100, 200, 300, 400, 500]):
        print(f"  {p.n_nodes:5d} nodes  {p.runtime_s:9.1f} s  "
              f"eff {p.efficiency * 100:5.1f}%")

    print("\n=== why 2x2 was abandoned: per-GPU utilization (Figs. 6 vs 7) ===")
    bad = profile_schedule(SCHEME_2X2, ACC, 100)
    good = profile_schedule(SCHEME_3X1, BRCA, 100)
    print(f"  2x2 on ACC : utilization {bad.utilization.min():.2f} .. "
          f"{bad.utilization.max():.2f} "
          f"(memory->compute transition at GPU #{bad.memory_to_compute_transition()})")
    print(f"  3x1 on BRCA: utilization {good.utilization.min():.2f} .. "
          f"{good.utilization.max():.2f} (flat)")

    print("\n=== communication overhead at 1000 nodes (paper Fig. 8) ===")
    job = model.run(BRCA, 1000)
    comm_frac = job.rank_comm_s.sum() / (
        job.rank_comm_s.sum() + job.rank_compute_s.sum()
    )
    print(f"  mean rank compute {job.rank_compute_s.mean():8.1f} s")
    print(f"  mean rank comm    {job.rank_comm_s.mean():8.2f} s "
          f"({comm_frac * 100:.1f}% — hidden under the slowest rank)")
    print(f"  predicted job time {job.total_s:.0f} s")


if __name__ == "__main__":
    main()
