"""Kernel deep dive: block execution, roofline, occupancy.

Follows one greedy iteration at the hardware-structure level:

1. run the real maxF kernel block by block (the CUDA structure, with the
   in-kernel stage-1 reduction that shrinks the candidate list 512x);
2. place the kernel on the V100 roofline to see why the optimized
   configuration is compute-bound;
3. compute its occupancy and connect the numbers to the timing model's
   latency-hiding thresholds.

Run:  python examples/kernel_deep_dive.py
"""

from repro import FScoreParams
from repro.scheduling.schemes import scheme_for
from repro.core.memopt import MemoryConfig
from repro.data.registry import dataset
from repro.gpusim import BlockKernelExecutor, KernelResources, occupancy
from repro.perfmodel import operating_point, ridge_intensity


def main() -> None:
    cohort = dataset("acc-mini")
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    params = FScoreParams(n_tumor=tumor.n_samples, n_normal=normal.n_samples)

    scheme = scheme_for(cohort.config.hits, cohort.config.hits - 1)

    print("=== 1. block-level execution of the maxF kernel ===")
    executor = BlockKernelExecutor(scheme=scheme, block_size=512)
    launch = executor.launch(tumor, normal, params)
    names = ",".join(cohort.tumor.gene_names[g] for g in launch.winner.genes)
    print(f"  grid: {launch.n_blocks} blocks x 512 threads")
    print(f"  stage-1 (in-kernel) reduction: {sum(b.n_threads for b in launch.blocks)} "
          f"threads -> {launch.stage1_records} block records "
          f"-> 1 winner after parallelReduceMax")
    print(f"  winner: {names}  F={launch.winner.f:.4f}")
    profile = launch.busy_profile()
    print(f"  per-block cycles: min {profile.min():.0f}, max {profile.max():.0f} "
          "(low-id blocks hold the heavy threads)")

    print("\n=== 2. roofline placement (V100) ===")
    print(f"  ridge: {ridge_intensity():.2f} ops/byte")
    for mem, label in [
        (MemoryConfig(False, False, False), "no optimizations"),
        (MemoryConfig(), "MemOpt1+2 + BitSplicing"),
    ]:
        p = operating_point(scheme, words=tumor.n_words + normal.n_words, memory=mem)
        side = "compute-bound" if p.compute_bound else "memory-bound"
        print(f"  {label:24s}: {p.intensity:6.1f} ops/byte -> {side}")

    print("\n=== 3. occupancy of the scoring kernel ===")
    occ = occupancy(KernelResources(words=tumor.n_words + normal.n_words))
    print(f"  {occ.blocks_per_sm} blocks/SM, {occ.threads_per_sm} threads/SM "
          f"({occ.fraction:.0%} occupancy, limited by {occ.limiter})")
    print(f"  device-wide resident threads: {occ.device_threads} "
          "(the timing model's latency-hiding budget)")
    print("  a 2x2 partition with only thousands of threads cannot reach this "
          "-> the Fig. 6 stragglers")


if __name__ == "__main__":
    main()
