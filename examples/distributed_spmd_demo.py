"""Distributed greedy search as a real SPMD program over simulated ranks.

Demonstrates the paper's execution structure end-to-end: an equi-area
schedule partitions the 3x1 thread grid over 4 simulated Summit nodes
(x6 GPUs); each rank runs on its own thread, searches its partitions,
and the 20-byte winners are reduced to rank 0 through the MPI-like
communicator — then the full greedy loop runs distributed and is checked
against the single-engine result.

Run:  python examples/distributed_spmd_demo.py
"""

from repro import (
    CohortConfig,
    FScoreParams,
    MultiHitSolver,
    SCHEME_3X1,
    equiarea_schedule,
    generate_cohort,
)
from repro.cluster import spmd_best_combo

N_NODES = 4
GPUS_PER_NODE = 6


def main() -> None:
    cohort = generate_cohort(
        CohortConfig(n_genes=36, n_tumor=120, n_normal=120, hits=4, seed=3)
    )
    tumor = cohort.tumor.to_bitmatrix()
    normal = cohort.normal.to_bitmatrix()
    params = FScoreParams(n_tumor=tumor.n_samples, n_normal=normal.n_samples)

    schedule = equiarea_schedule(SCHEME_3X1, tumor.n_genes, N_NODES * GPUS_PER_NODE)
    print(schedule.describe())
    work = schedule.work_per_part()
    for rank in range(N_NODES):
        parts = work[rank * GPUS_PER_NODE : (rank + 1) * GPUS_PER_NODE]
        print(f"  rank {rank}: per-GPU work {parts}")

    print(f"\nrunning one greedy iteration as SPMD over {N_NODES} ranks...")
    winner = spmd_best_combo(
        N_NODES, schedule, tumor, normal, params, gpus_per_rank=GPUS_PER_NODE
    )
    names = ",".join(cohort.tumor.gene_names[g] for g in winner.genes)
    print(f"  global winner: {names}  F={winner.f:.4f} TP={winner.tp} TN={winner.tn}")
    assert winner.genes in cohort.planted, "first pick should be a planted driver"

    print("\nrunning the full greedy loop with the distributed backend...")
    dist = MultiHitSolver(
        hits=4, backend="distributed", n_nodes=N_NODES, gpus_per_node=GPUS_PER_NODE
    ).solve(cohort.tumor.values, cohort.normal.values)
    single = MultiHitSolver(hits=4).solve(cohort.tumor.values, cohort.normal.values)
    assert [c.genes for c in dist.combinations] == [c.genes for c in single.combinations]
    print(f"  distributed == single-engine: {len(dist.combinations)} combinations, "
          f"coverage {dist.coverage:.1%}")


if __name__ == "__main__":
    main()
