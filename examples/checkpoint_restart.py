"""Checkpoint / restart: surviving the scheduler's time limit.

The paper notes Summit capped sub-100-node allocations at two hours —
long greedy runs must survive being killed.  The greedy loop checkpoints
naturally between iterations; this example simulates a job that is
killed mid-run and relaunched with the identical command, and verifies
the resumed run matches an uninterrupted one bit-for-bit.

Run:  python examples/checkpoint_restart.py
"""

import tempfile
from pathlib import Path

from repro import MultiHitSolver
from repro.core.checkpoint import load_state, solve_with_checkpoints
from repro.data.registry import dataset


def main() -> None:
    cohort = dataset("demo")
    t, n = cohort.tumor.values, cohort.normal.values

    reference = MultiHitSolver(hits=3).solve(t, n)
    print(f"uninterrupted run: {len(reference.combinations)} combinations, "
          f"coverage {reference.coverage:.1%}")

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "greedy.ckpt.json"

        # --- allocation 1: killed by the scheduler after 4 iterations ---
        print("\nallocation 1 (simulated 2-hour limit: 4 iterations)...")
        solve_with_checkpoints(MultiHitSolver(hits=3, max_iterations=4), t, n, ckpt)
        state = load_state(ckpt)
        print(f"  checkpoint: {state.n_found} combinations found, "
              f"{state.n_uncovered} tumor samples still uncovered")

        # --- allocation 2: same command, resumes automatically ---
        print("allocation 2 (resumes from the checkpoint)...")
        resumed = solve_with_checkpoints(MultiHitSolver(hits=3), t, n, ckpt)
        print(f"  finished: {len(resumed.combinations)} combinations, "
              f"{len(resumed.iterations)} iterations run in this allocation")

    same = [c.genes for c in resumed.combinations] == [
        c.genes for c in reference.combinations
    ]
    print(f"\nresumed result identical to uninterrupted run: {same}")
    assert same


if __name__ == "__main__":
    main()
