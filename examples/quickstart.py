"""Quickstart: find multi-hit combinations in a synthetic cohort.

Generates a small planted-combination cohort, runs the greedy weighted-
set-cover solver, and checks the planted drivers were recovered.

Run:  python examples/quickstart.py
"""

from repro import CohortConfig, MultiHitSolver, generate_cohort


def main() -> None:
    # A laptop-size instance: 40 genes, 3 planted 3-hit driver combos.
    cohort = generate_cohort(
        CohortConfig(
            n_genes=40,
            n_tumor=150,
            n_normal=150,
            hits=3,
            n_driver_combos=3,
            seed=7,
        )
    )
    print(f"cohort: {cohort.tumor.n_genes} genes, "
          f"{cohort.tumor.n_samples} tumor / {cohort.normal.n_samples} normal samples")
    print(f"planted drivers: {cohort.planted_names}")

    solver = MultiHitSolver(hits=3)
    result = solver.solve(cohort.tumor.values, cohort.normal.values)

    print(f"\nfound {len(result.combinations)} combinations "
          f"covering {result.coverage:.1%} of tumor samples:")
    planted = set(cohort.planted)
    for combo in result.combinations:
        names = ", ".join(cohort.tumor.gene_names[g] for g in combo.genes)
        tag = "  <-- planted driver" if combo.genes in planted else ""
        print(f"  F={combo.f:.4f}  TP={combo.tp:3d}  TN={combo.tn:3d}  ({names}){tag}")

    recovered = sum(1 for p in cohort.planted if p in {c.genes for c in result.combinations})
    print(f"\nrecovered {recovered}/{len(cohort.planted)} planted driver combinations")
    assert recovered == len(cohort.planted), "expected full driver recovery"


if __name__ == "__main__":
    main()
