"""BRCA-style 4-hit discovery with train/test evaluation (Fig. 9 workflow).

Synthesizes a BRCA-shaped cohort (911 tumor / 1019 normal samples, gene
count reduced so the exhaustive 4-hit search runs on a laptop), solves on
the 75% training split, and scores the resulting classifier on the
held-out 25% — the exact evaluation protocol of Section IV-F.

Run:  python examples/brca_four_hit_discovery.py
"""

from repro import (
    MultiHitClassifier,
    MultiHitSolver,
    cancer,
    generate_cohort,
    sensitivity_specificity,
    train_test_split,
)
from repro.io.results import save_result


def main() -> None:
    brca = cancer("BRCA")
    print(f"{brca.name} ({brca.abbrev}): {brca.n_tumor} tumor / "
          f"{brca.n_normal} normal samples (paper-exact counts)")

    # Reduced gene universe: C(60, 4) ~ 4.9e5 combinations per iteration.
    cohort = generate_cohort(cancer=brca, n_genes=60, hits=4, seed=1)

    train_tumor, test_tumor = train_test_split(cohort.tumor, 0.75, seed=1)
    train_normal, test_normal = train_test_split(cohort.normal, 0.75, seed=2)
    print(f"train: {train_tumor.n_samples}+{train_normal.n_samples}  "
          f"test: {test_tumor.n_samples}+{test_normal.n_samples}")

    solver = MultiHitSolver(hits=4, max_iterations=16)
    result = solver.solve(train_tumor.values, train_normal.values)
    print(f"\n{len(result.combinations)} four-hit combinations found on training data")
    for rec in result.iterations[:5]:
        names = ",".join(cohort.tumor.gene_names[g] for g in rec.combination.genes)
        print(f"  iter {rec.iteration}: {names}  F={rec.combination.f:.4f} "
              f"covered {rec.newly_covered} new samples "
              f"({rec.remaining_after} remaining)")

    clf = MultiHitClassifier.from_result(result)
    perf = sensitivity_specificity(
        clf.predict(test_tumor), clf.predict(test_normal), name=brca.abbrev
    )
    print(f"\nheld-out performance: {perf.describe()}")
    print("(paper averages across 11 cancers: sensitivity 0.83, specificity 0.90)")

    save_result(result, "brca_four_hit_result.json")
    print("result archived to brca_four_hit_result.json")


if __name__ == "__main__":
    main()
