"""End-to-end MAF pipeline: mutation calls -> matrices -> combinations.

Mirrors the paper's data path (Section III-G): mutation calls in MAF
format are summarized into binary gene-sample matrices, which feed the
solver.  Here the calls themselves are synthesized (with an IDH1-like
hotspot), written to disk, read back, and solved.

Run:  python examples/maf_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CohortConfig, MultiHitSolver, generate_cohort
from repro.data.maf import MafRecord, read_maf, summarize_maf, write_maf


def cohort_to_maf(matrix, rng) -> list[MafRecord]:
    """Emit one MAF record per (gene, sample) mutation with a position."""
    records = []
    genes, samples = np.nonzero(matrix.values)
    for g, s in zip(genes, samples):
        records.append(
            MafRecord(
                gene=matrix.gene_names[g],
                sample=matrix.sample_ids[s],
                protein_position=int(rng.integers(1, 500)),
                variant_class="Missense_Mutation",
            )
        )
    return records


def main() -> None:
    rng = np.random.default_rng(0)
    cohort = generate_cohort(
        CohortConfig(n_genes=30, n_tumor=90, n_normal=90, hits=3, seed=11)
    )

    with tempfile.TemporaryDirectory() as tmp:
        tumor_maf = Path(tmp) / "tumor.maf"
        normal_maf = Path(tmp) / "normal.maf"
        write_maf(cohort_to_maf(cohort.tumor, rng), tumor_maf)
        write_maf(cohort_to_maf(cohort.normal, rng), normal_maf)
        print(f"wrote {tumor_maf.stat().st_size} bytes of tumor calls, "
              f"{normal_maf.stat().st_size} of normal calls")

        # Read back and summarize over a shared gene/sample universe.
        genes = list(cohort.tumor.gene_names)
        tumor = summarize_maf(
            read_maf(tumor_maf), genes=genes, samples=list(cohort.tumor.sample_ids)
        )
        normal = summarize_maf(
            read_maf(normal_maf), genes=genes, samples=list(cohort.normal.sample_ids)
        )
        assert np.array_equal(tumor.values, cohort.tumor.values), "lossless round-trip"

    result = MultiHitSolver(hits=3).solve(tumor.values, normal.values)
    print(f"solved from MAF: {len(result.combinations)} combinations, "
          f"coverage {result.coverage:.1%}")
    top = result.combinations[0]
    print("top combination:",
          ", ".join(tumor.gene_names[g] for g in top.genes),
          f"(F={top.f:.4f})")
    assert top.genes in cohort.planted


if __name__ == "__main__":
    main()
