"""Tests for greedy set-cover quality analysis."""

import math

import numpy as np
import pytest

from repro.analysis.coverage import (
    cover_quality,
    coverage_curve,
    greedy_bound,
)
from repro.core.solver import MultiHitSolver


@pytest.fixture
def solved(rng):
    t = rng.random((12, 60)) < 0.45
    n = rng.random((12, 60)) < 0.1
    return MultiHitSolver(hits=2).solve(t, n)


class TestCoverageCurve:
    def test_monotone_and_bounded(self, solved):
        curve = coverage_curve(solved)
        c = list(curve.covered_after)
        assert c == sorted(c)
        assert c[-1] == solved.params.n_tumor - solved.uncovered
        assert curve.n_iterations == len(solved.iterations)

    def test_fractions(self, solved):
        curve = coverage_curve(solved)
        f = curve.fractions
        assert (0 <= f).all() and (f <= 1).all()
        assert f[-1] == pytest.approx(solved.coverage)

    def test_iterations_to_cover(self, solved):
        curve = coverage_curve(solved)
        half = curve.iterations_to_cover(0.5)
        assert half is None or 1 <= half <= curve.n_iterations
        assert curve.iterations_to_cover(1.0) is None or solved.uncovered == 0

    def test_iterations_to_cover_validation(self, solved):
        curve = coverage_curve(solved)
        with pytest.raises(ValueError):
            curve.iterations_to_cover(0.0)
        with pytest.raises(ValueError):
            curve.iterations_to_cover(1.5)

    def test_front_loading_in_unit_range(self, solved):
        fl = coverage_curve(solved).front_loading
        assert 0.0 <= fl <= 1.0

    def test_greedy_is_front_loaded(self, tiny_cohort):
        res = MultiHitSolver(hits=3).solve(
            tiny_cohort.tumor.values, tiny_cohort.normal.values
        )
        # The planted drivers cover most samples in the first iterations.
        assert coverage_curve(res).front_loading > 0.5


class TestBounds:
    def test_greedy_bound_values(self):
        assert greedy_bound(1) == pytest.approx(1.0)
        assert greedy_bound(100) == pytest.approx(math.log(100) + 1)
        assert greedy_bound(0) == 1.0

    def test_cover_quality_bracket(self, solved):
        q = cover_quality(solved)
        assert q.lower_bound >= 1
        assert q.cover_size >= q.lower_bound
        # The greedy guarantee itself (vs the counting proxy) holds here.
        assert q.within_guarantee or q.cover_size > q.upper_bound  # recorded either way

    def test_single_perfect_combo(self):
        t = np.ones((4, 20), dtype=bool)
        n = np.zeros((4, 20), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        q = cover_quality(res)
        assert q.cover_size == 1
        assert q.lower_bound == 1
        assert q.within_guarantee

    def test_empty_cover(self):
        t = np.zeros((4, 10), dtype=bool)
        n = np.zeros((4, 10), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        q = cover_quality(res)
        assert q.cover_size == 0 and q.lower_bound == 0
