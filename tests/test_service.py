"""Tests for the solve-as-a-service gateway (repro.service)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.service import (
    AdmissionQueue,
    Gateway,
    JobState,
    JobStore,
    QueueFullError,
    QuotaExceededError,
    dispatch_policy,
    validate_spec,
)
from repro.service.dispatch import FleetState
from repro.service.jobs import Job


def signature(combos):
    """Order-sensitive bit-identity signature of a combination list."""
    return [(tuple(c["genes"]) if isinstance(c, dict) else tuple(c.genes),
             round(c["f"] if isinstance(c, dict) else c.f, 12))
            for c in combos]


def spec_for(seed, hits=3, n_genes=20, n_tumor=50, n_normal=50, solver=None):
    return {
        "tenant": f"tenant-{seed % 2}",
        "cohort": {
            "n_genes": n_genes, "n_tumor": n_tumor, "n_normal": n_normal,
            "hits": hits, "seed": seed,
        },
        "solver": dict(solver or {}, hits=hits),
    }


def direct_solve(spec):
    cohort = generate_cohort(CohortConfig(**spec["cohort"]))
    solver = MultiHitSolver(hits=spec["solver"]["hits"])
    return solver.solve(cohort.tumor.values, cohort.normal.values)


# ---------------------------------------------------------------------------
# job store


class TestJobStore:
    def test_roundtrip_and_restart_reload(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("acme", {"cohort": {"n_genes": 8}})
        store.transition(job.job_id, JobState.ADMITTED,
                         dispatch={"backend": "single"})
        store.transition(job.job_id, JobState.RUNNING)
        store.update(job.job_id, progress={"iterations": 3})

        reloaded = JobStore(tmp_path)
        got = reloaded.get(job.job_id)
        assert got is not None
        assert got.state == JobState.RUNNING
        assert got.tenant == "acme"
        assert got.dispatch == {"backend": "single"}
        assert got.progress == {"iterations": 3}

    def test_illegal_transitions_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("t", {})
        with pytest.raises(ValueError, match="illegal transition"):
            store.transition(job.job_id, JobState.DONE)  # queued -> done
        store.transition(job.job_id, JobState.CANCELLED)
        with pytest.raises(ValueError, match="illegal transition"):
            store.transition(job.job_id, JobState.RUNNING)  # terminal

    def test_requeue_is_the_only_backward_edge(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("t", {})
        store.transition(job.job_id, JobState.ADMITTED)
        store.transition(job.job_id, JobState.RUNNING)
        assert store.requeue(job.job_id).state == JobState.QUEUED
        store.transition(job.job_id, JobState.CANCELLED)
        with pytest.raises(ValueError, match="terminal"):
            store.requeue(job.job_id)

    def test_unreadable_file_skipped(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("t", {})
        (tmp_path / "jobs" / "job-torn.json").write_text("{not json")
        reloaded = JobStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get(job.job_id) is not None

    def test_schema_guard(self):
        with pytest.raises(ValueError, match="schema"):
            Job.from_payload({"schema": "bogus/v9"})


# ---------------------------------------------------------------------------
# admission queue


class TestAdmissionQueue:
    def test_depth_bound(self):
        q = AdmissionQueue(depth=2, tenant_quota=0)
        q.submit("a", "t1")
        q.submit("b", "t2")
        with pytest.raises(QueueFullError):
            q.submit("c", "t3")
        # claiming does NOT free capacity (job still in flight)...
        assert q.claim(timeout=0) == "a"
        with pytest.raises(QueueFullError):
            q.submit("c", "t3")
        # ...releasing does.
        q.release("a")
        q.submit("c", "t3")

    def test_tenant_quota(self):
        q = AdmissionQueue(depth=16, tenant_quota=2)
        q.submit("a", "noisy")
        q.submit("b", "noisy")
        with pytest.raises(QuotaExceededError):
            q.submit("c", "noisy")
        q.submit("d", "quiet")  # other tenants unaffected
        q.release("a")
        q.submit("c", "noisy")  # freed slot reopens the quota

    def test_fifo_claim_and_abandon(self):
        q = AdmissionQueue(depth=8)
        for jid in ("a", "b", "c"):
            q.submit(jid, "t")
        assert q.abandon("b") is True
        assert q.abandon("b") is False  # already gone
        assert [q.claim(timeout=0), q.claim(timeout=0)] == ["a", "c"]
        assert q.claim(timeout=0) is None
        assert q.tenant_load("t") == 2  # abandon released b's slot


# ---------------------------------------------------------------------------
# dispatch


class TestDispatch:
    def _job(self, spec=None):
        return Job(job_id="job-x", tenant="t", spec=spec or spec_for(0))

    def test_round_robin_rotates(self):
        policy = dispatch_policy("round_robin")
        fleet = FleetState(max_workers=8, backends=("single", "pool"))
        backends = [policy.choose(self._job(), fleet).backend for _ in range(4)]
        assert backends == ["single", "pool", "single", "pool"]

    def test_pins_honored_and_clamped(self):
        policy = dispatch_policy("round_robin")
        fleet = FleetState(max_workers=4)
        decision = policy.choose(
            self._job({"cohort": {"n_genes": 20},
                       "solver": {"backend": "pool", "n_workers": 99}}),
            fleet,
        )
        assert decision.backend == "pool"
        assert decision.n_workers == 4  # clamped to the fleet

    def test_weighted_by_load_prefers_idle_backend(self):
        policy = dispatch_policy("weighted_by_load")
        fleet = FleetState(max_workers=8, backends=("single", "pool"))
        first = policy.choose(self._job(spec_for(1, n_genes=40)), fleet)
        fleet.register("job-a", first)
        second = policy.choose(self._job(spec_for(2, n_genes=40)), fleet)
        assert second.backend != first.backend

    def test_cost_aware_sizes_to_the_job(self):
        policy = dispatch_policy("cost_aware")
        fleet = FleetState(max_workers=8)
        small = policy.choose(self._job(spec_for(0, n_genes=10)), fleet)
        assert small.backend == "single"
        assert small.n_workers == 1
        big = policy.choose(self._job(spec_for(0, n_genes=600)), fleet)
        assert big.backend == "pool"
        assert big.n_workers >= 2
        assert big.est_cost > small.est_cost

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            dispatch_policy("lowest_bidder")


# ---------------------------------------------------------------------------
# spec validation


class TestValidateSpec:
    def test_accepts_minimal(self):
        tenant, spec = validate_spec(
            {"cohort": {"n_genes": 8, "n_tumor": 10, "n_normal": 10}}
        )
        assert tenant == "anonymous"
        assert spec["cohort"]["n_genes"] == 8

    @pytest.mark.parametrize("payload", [
        [],
        {"cohort": {}},
        {"cohort": {"n_genes": 8, "n_tumor": 10, "n_normal": 10,
                    "evil_knob": 1}},
        {"cohort": {"n_genes": -4, "n_tumor": 10, "n_normal": 10}},
        {"cohort": {"n_genes": 8, "n_tumor": 10, "n_normal": 10},
         "solver": {"backend": "mainframe"}},
        {"tenant": "", "cohort": {"n_genes": 8, "n_tumor": 10, "n_normal": 10}},
    ])
    def test_rejects(self, payload):
        with pytest.raises(ValueError):
            validate_spec(payload)


# ---------------------------------------------------------------------------
# end-to-end: the gateway
#
# These boot a real gateway (ephemeral port, tmp state dir) and exercise
# the acceptance criteria: concurrent mixed-backend jobs bit-identical
# to direct solves, 429 on over-quota, cancellation within an iteration,
# crash isolation, and restart recovery.


@pytest.fixture
def slow_iterations(monkeypatch):
    """Stretch every greedy iteration to >= 50ms (via the checkpoint wrapper).

    Returns the list of per-iteration ``n_found`` observations, which
    doubles as a "has the solve started yet" signal.  Makes the
    cancellation/backpressure tests deterministic: a job cannot finish
    before the test reacts to it.
    """
    from repro.core import checkpoint as checkpoint_mod

    real = checkpoint_mod.solve_with_checkpoints
    started = []

    def slowed(solver, tumor, normal, path, on_iteration=None, **kw):
        def slow_iteration(state):
            started.append(state.n_found)
            time.sleep(0.05)
            if on_iteration is not None:
                on_iteration(state)
        return real(solver, tumor, normal, path,
                    on_iteration=slow_iteration, **kw)

    monkeypatch.setattr(
        "repro.core.checkpoint.solve_with_checkpoints", slowed)
    return started


def _wait_started(started, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not started and time.monotonic() < deadline:
        time.sleep(0.01)
    assert started, "no job reached its first iteration"


def _http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


class TestGatewayEndToEnd:
    def test_concurrent_mixed_backends_bit_identical(self, tmp_path):
        """>= 8 concurrent jobs across mixed backends match direct solves."""
        backends = ["single", "pool", "sequential", "single",
                    "pool", "sequential", "single", "single"]
        specs = [
            spec_for(seed, solver={"backend": b, "n_workers": 2})
            for seed, b in enumerate(backends)
        ]
        with Gateway(state_dir=tmp_path, max_concurrent=4,
                     queue_depth=16, tenant_quota=8) as gw:
            jobs = [gw.submit(spec) for spec in specs]
            done = gw.wait([j.job_id for j in jobs], timeout=300)
        assert [j.state for j in done] == [JobState.DONE] * 8
        for job, spec in zip(done, specs):
            expected = direct_solve(spec)
            assert signature(job.result["combinations"]) == signature(
                expected.combinations
            ), f"job {job.job_id} ({spec['solver']['backend']}) diverged"
            assert job.result["uncovered"] == expected.uncovered
        # lifecycle counters moved on the gateway session
        counters = gw.telemetry.metrics.to_dict()["counters"]
        assert counters["job.submitted"] == 8
        assert counters["job.completed"] == 8
        # per-job kernel traffic was folded in under job.*
        assert any(k.startswith("job.") and "combos" in k for k in counters)

    def test_http_roundtrip_and_errors(self, tmp_path):
        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            url = gw.url
            # malformed JSON -> 400
            req = urllib.request.Request(
                f"{url}/v1/jobs", data=b"{oops", method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10)
            assert err.value.code == 400
            # bad spec -> 400
            status, body, _ = _http("POST", f"{url}/v1/jobs",
                                    {"cohort": {"n_genes": 0}})
            assert status == 400 and "error" in body
            # unknown job -> 404 (status, result, cancel)
            for method, path in [("GET", "/v1/jobs/job-nope"),
                                 ("GET", "/v1/jobs/job-nope/result"),
                                 ("DELETE", "/v1/jobs/job-nope")]:
                status, _, _ = _http(method, f"{url}{path}")
                assert status == 404
            # wrong method on a known path -> 405
            status, _, _ = _http("DELETE", f"{url}/v1/jobs")
            assert status == 405
            # happy path: submit -> poll -> result
            status, sub, _ = _http("POST", f"{url}/v1/jobs", spec_for(3))
            assert status == 202 and sub["state"] == JobState.QUEUED
            jid = sub["job_id"]
            gw.wait([jid], timeout=120)
            status, body, _ = _http("GET", f"{url}/v1/jobs/{jid}")
            assert status == 200 and body["state"] == JobState.DONE
            status, body, _ = _http("GET", f"{url}/v1/jobs/{jid}/result")
            assert status == 200
            assert signature(body["result"]["combinations"]) == signature(
                direct_solve(spec_for(3)).combinations
            )
            # result of a terminal job again, list filters, healthz
            status, body, _ = _http("GET", f"{url}/v1/jobs?state=done")
            assert [j["job_id"] for j in body["jobs"]] == [jid]
            status, body, _ = _http("GET", f"{url}/healthz")
            assert status == 200 and body["jobs"] == 1

    def test_trace_endpoint_serves_causal_analysis(
        self, tmp_path, slow_iterations
    ):
        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            url = gw.url
            status, _, _ = _http("GET", f"{url}/v1/jobs/job-nope/trace")
            assert status == 404
            status, sub, _ = _http("POST", f"{url}/v1/jobs", spec_for(5))
            assert status == 202
            jid = sub["job_id"]
            # Mid-run: the trace file is not written yet, but the
            # trace id minted at submission is already servable.
            _wait_started(slow_iterations)
            status, body, _ = _http("GET", f"{url}/v1/jobs/{jid}/trace")
            assert status == 409 and body["trace_id"]
            gw.wait([jid], timeout=120)
            job = gw.job(jid)
            status, body, _ = _http("GET", f"{url}/v1/jobs/{jid}/trace")
            assert status == 200
            assert body["trace_id"] == job.trace_id
            report = body["report"]
            assert report["schema"] == "repro.telemetry.critpath/v1"
            assert report["trace_id"] == job.trace_id
            assert report["attribution"]["closure"] == pytest.approx(
                1.0, abs=0.01
            )
            # Default response trims the full segment list.
            assert "segments" not in report["critical_path"]
            assert report["critical_path"]["top_segments"]
            # ?spans=1 ships the raw spans, all on the job's trace.
            status, body, _ = _http(
                "GET", f"{url}/v1/jobs/{jid}/trace?spans=1"
            )
            assert status == 200 and body["spans"]
            assert {s.get("trace") for s in body["spans"]} == {job.trace_id}
            assert "segments" in body["report"]["critical_path"]

    def test_over_quota_is_429_with_retry_after(self, tmp_path, slow_iterations):
        with Gateway(state_dir=tmp_path, max_concurrent=1,
                     queue_depth=2, tenant_quota=2) as gw:
            url = gw.url
            # the slowed first job occupies the single supervisor
            spec = spec_for(0, n_genes=28)
            codes = []
            for _ in range(3):
                status, body, headers = _http("POST", f"{url}/v1/jobs", spec)
                codes.append(status)
            assert codes[:2] == [202, 202]
            assert codes[2] == 429
            assert int(headers["Retry-After"]) >= 1
            # rejection is audited on the gateway session
            counters = gw.telemetry.metrics.to_dict()["counters"]
            assert counters["job.rejected"] == 1
            terminal = gw.wait(
                [j.job_id for j in gw.jobs() if j.state != JobState.FAILED],
                timeout=120,
            )
            assert all(j.state == JobState.DONE for j in terminal)

    def test_queued_job_cancels_instantly(self, tmp_path, slow_iterations):
        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            blocker = gw.submit(spec_for(0, n_genes=28))
            victim = gw.submit(spec_for(1))
            status, body, _ = _http(
                "DELETE", f"{gw.url}/v1/jobs/{victim.job_id}")
            assert status == 202
            got = gw.job(victim.job_id)
            assert got.state == JobState.CANCELLED
            assert got.result is None  # never ran
            # double-cancel of a terminal job -> 409
            status, _, _ = _http(
                "DELETE", f"{gw.url}/v1/jobs/{victim.job_id}")
            assert status == 409
            gw.wait([blocker.job_id], timeout=120)

    def test_running_job_cancels_within_one_iteration(
        self, tmp_path, slow_iterations
    ):
        """Cancel lands between greedy iterations, keeping partial work."""
        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            job = gw.submit(spec_for(0, n_genes=32, n_tumor=120, n_normal=120))
            _wait_started(slow_iterations)
            at_cancel = slow_iterations[-1]
            assert gw.cancel(job.job_id) is True
            done = gw.wait([job.job_id], timeout=60)[0]
        assert done.state == JobState.CANCELLED
        assert done.result["cancelled"] is True
        found = len(done.result["combinations"])
        # the cooperative stop fired within one iteration of the request
        assert at_cancel <= found <= at_cancel + 2
        full = direct_solve(spec_for(0, n_genes=32, n_tumor=120, n_normal=120))
        assert found < len(full.combinations)
        # ...and the partial prefix is bit-identical to the full run's
        assert signature(done.result["combinations"]) == signature(
            full.combinations[:found])

    def test_crashing_job_isolated_with_flight_dump(self, tmp_path):
        bad = {
            "tenant": "clumsy",
            "cohort": {"dataset": "no-such-dataset"},
            "solver": {"hits": 3},
        }
        with Gateway(state_dir=tmp_path, max_concurrent=2) as gw:
            crash = gw.submit(bad)
            good = gw.submit(spec_for(5))
            done = gw.wait([crash.job_id, good.job_id], timeout=120)
        crashed, ok = done
        assert crashed.state == JobState.FAILED
        assert crashed.error and "no-such-dataset" in crashed.error
        # the healthy job was untouched by its neighbor's crash
        assert ok.state == JobState.DONE
        assert signature(ok.result["combinations"]) == signature(
            direct_solve(spec_for(5)).combinations)
        # the black box landed, namespaced by job id
        dumps = list((tmp_path / "flight").glob(
            f"blackbox-{crash.job_id}-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "job-failed"
        assert not list((tmp_path / "flight").glob(
            f"blackbox-{ok.job_id}-*.json"))
        counters = gw.telemetry.metrics.to_dict()["counters"]
        assert counters["job.failed"] == 1
        assert counters["job.completed"] == 1

    def test_metrics_endpoint_exposes_job_counters(self, tmp_path):
        from repro.telemetry.prom import validate_prometheus

        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            job = gw.submit(spec_for(7))
            gw.wait([job.job_id], timeout=120)
            with urllib.request.urlopen(f"{gw.url}/metrics", timeout=10) as r:
                text = r.read().decode()
        validate_prometheus(text)
        assert "repro_job_submitted 1" in text
        assert "repro_job_completed 1" in text
        assert "repro_job_wall_s_count 1" in text


class TestRestartRecovery:
    def test_interrupted_job_resumes_from_checkpoint(self, tmp_path):
        """A job found running at boot re-queues and resumes, bit-identical."""
        spec = {
            "cohort": {"n_genes": 20, "n_tumor": 50, "n_normal": 50,
                       "hits": 3, "seed": 9},
            "solver": {"hits": 3, "backend": "single"},
        }
        # Simulate a gateway that died mid-solve: a running-state job
        # record plus a 3-iteration checkpoint on disk.
        store = JobStore(tmp_path)
        job = store.new_job("phoenix", spec)
        store.transition(job.job_id, JobState.ADMITTED)
        store.transition(job.job_id, JobState.RUNNING)
        from repro.core.checkpoint import solve_with_checkpoints

        cohort = generate_cohort(CohortConfig(**spec["cohort"]))
        ckpt_dir = tmp_path / "checkpoints"
        ckpt_dir.mkdir()
        solve_with_checkpoints(
            MultiHitSolver(hits=3, max_iterations=3),
            cohort.tumor.values, cohort.normal.values,
            ckpt_dir / f"{job.job_id}.json",
        )
        del store

        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw:
            assert gw._recovered == 1
            counters = gw.telemetry.metrics.to_dict()["counters"]
            assert counters["job.recovered"] == 1
            done = gw.wait([job.job_id], timeout=120)[0]
        assert done.state == JobState.DONE
        full = direct_solve(spec)
        assert signature(done.result["combinations"]) == signature(
            full.combinations)
        # the solve resumed: only the post-checkpoint iterations ran
        assert len(done.result["iterations"]) == len(full.iterations) - 3

    def test_cancel_requested_job_finalized_at_boot(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("t", spec_for(0))
        store.update(job.job_id, cancel_requested=True)
        del store
        with Gateway(state_dir=tmp_path) as gw:
            assert gw.job(job.job_id).state == JobState.CANCELLED
            assert gw._recovered == 0

    def test_shutdown_leaves_running_job_resumable(
        self, tmp_path, slow_iterations
    ):
        """Gateway stop is not a tenant cancel: the job stays ``running``."""
        spec = spec_for(0, n_genes=32, n_tumor=120, n_normal=120,
                        solver={"backend": "single"})
        gw = Gateway(state_dir=tmp_path, max_concurrent=1)
        gw.start()
        job = gw.submit(spec)
        _wait_started(slow_iterations)
        gw.stop()  # interrupts the solve mid-flight
        interrupted = JobStore(tmp_path).get(job.job_id)
        assert interrupted.state == JobState.RUNNING  # resumable, not cancelled
        assert not interrupted.cancel_requested
        ckpt = tmp_path / "checkpoints" / f"{job.job_id}.json"
        assert ckpt.exists()

        # Boot a second gateway on the same state dir: the job re-queues
        # and resumes from its checkpoint, landing bit-identical.
        with Gateway(state_dir=tmp_path, max_concurrent=1) as gw2:
            assert gw2._recovered == 1
            done = gw2.wait([job.job_id], timeout=120)[0]
        assert done.state == JobState.DONE
        plain = {k: v for k, v in spec.items() if k != "tenant"}
        full = direct_solve(plain)
        assert signature(done.result["combinations"]) == signature(
            full.combinations)
