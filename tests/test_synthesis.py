"""Tests for the planted-combination cohort generator."""

import numpy as np
import pytest

from repro.data.cancers import cancer
from repro.data.synthesis import CohortConfig, generate_cohort


def cfg(**kw):
    base = dict(n_genes=40, n_tumor=100, n_normal=80, hits=3, n_driver_combos=3, seed=1)
    base.update(kw)
    return CohortConfig(**base)


class TestConfig:
    def test_needs_room_for_drivers(self):
        with pytest.raises(ValueError):
            CohortConfig(n_genes=10, n_tumor=5, n_normal=5, hits=4, n_driver_combos=3)

    def test_penetrance_range(self):
        with pytest.raises(ValueError):
            cfg(driver_penetrance=1.5)

    def test_sporadic_range(self):
        with pytest.raises(ValueError):
            cfg(sporadic_fraction=1.0)


class TestGeneration:
    def test_shapes_and_labels(self):
        c = generate_cohort(cfg())
        assert c.tumor.values.shape == (40, 100)
        assert c.normal.values.shape == (40, 80)
        assert len(c.tumor.gene_names) == 40
        assert c.tumor.gene_names == c.normal.gene_names
        assert len(set(c.tumor.sample_ids)) == 100

    def test_planted_combos_disjoint_and_sorted(self):
        c = generate_cohort(cfg())
        seen = set()
        for combo in c.planted:
            assert list(combo) == sorted(combo)
            assert not (set(combo) & seen)
            seen |= set(combo)

    def test_deterministic_by_seed(self):
        a = generate_cohort(cfg(seed=9))
        b = generate_cohort(cfg(seed=9))
        np.testing.assert_array_equal(a.tumor.values, b.tumor.values)
        assert a.planted == b.planted

    def test_different_seeds_differ(self):
        a = generate_cohort(cfg(seed=1))
        b = generate_cohort(cfg(seed=2))
        assert not np.array_equal(a.tumor.values, b.tumor.values)

    def test_assignment_consistent_with_mutations(self):
        c = generate_cohort(cfg(driver_penetrance=1.0, sporadic_fraction=0.0))
        # With full penetrance every assigned sample carries its combo.
        for s, a in enumerate(c.assignment):
            combo = c.planted[a]
            assert c.tumor.values[list(combo), s].all()

    def test_drivers_enriched_in_tumors(self):
        c = generate_cohort(cfg())
        driver_genes = [g for combo in c.planted for g in combo]
        t_freq = c.tumor.values[driver_genes].mean()
        n_freq = c.normal.values[driver_genes].mean()
        assert t_freq > n_freq + 0.1

    def test_sporadic_fraction_approximate(self):
        c = generate_cohort(cfg(n_tumor=2000, sporadic_fraction=0.25))
        frac = (c.assignment < 0).mean()
        assert 0.18 < frac < 0.32

    def test_background_rates_recorded(self):
        c = generate_cohort(cfg())
        assert c.background_rates.shape == (40,)
        assert (c.background_rates >= 0).all()

    def test_planted_names(self):
        c = generate_cohort(cfg())
        names = c.planted_names
        assert len(names) == 3
        assert all(n.startswith("G") for combo in names for n in combo)


class TestFromCatalog:
    def test_catalog_counts_respected(self):
        acc = cancer("ACC")
        c = generate_cohort(cancer=acc, n_genes=60)
        assert c.tumor.n_samples == acc.n_tumor
        assert c.normal.n_samples == acc.n_normal
        assert c.config.hits == acc.estimated_hits

    def test_requires_config_or_cancer(self):
        with pytest.raises(ValueError):
            generate_cohort()

    def test_overrides_only_with_cancer(self):
        with pytest.raises(ValueError):
            generate_cohort(cfg(), n_genes=10)
