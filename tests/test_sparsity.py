"""Sparsity-driven scoring path: index units, exactness, counter closure.

The contract under test: ``sparse=True`` is a *traffic* optimization —
``(f, tp, tn)``, winners, and ``combos_scored`` are bit-identical to the
dense path on every backend, and the metered traffic closes exactly
(``word_reads + word_reads_skipped`` reproduces the dense charge).
"""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.sparsity import SparsityIndex, stride_any_mask
from repro.bitmatrix.splicing import splice_columns
from repro.core.bounds import BoundTable
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import (
    KernelCounters,
    fused_pair_popcount,
    score_combos,
    score_combos_reference,
    tp_zero_ceiling,
)
from repro.core.memopt import fused_word_reads, sparse_fused_word_reads
from repro.core.solver import MultiHitSolver
from repro.scheduling.schemes import scheme_for
from repro.scheduling.workload import total_threads


def _all_combos(g, h):
    return np.array(list(itertools.combinations(range(g), h)), dtype=np.int64)


def _signature(combos):
    return [(c.genes, c.f, c.tp, c.tn) for c in combos]


# -- the index ------------------------------------------------------------


class TestSparsityIndex:
    def test_stride_any_mask_basics(self):
        words = np.zeros((3, 10), dtype=np.uint64)
        words[0, 0] = 1
        words[1, 9] = 1
        mask = stride_any_mask(words, 4)  # strides [0:4) [4:8) [8:10)
        np.testing.assert_array_equal(
            mask,
            [[True, False, False], [False, False, True], [False, False, False]],
        )

    def test_single_row_and_empty_width(self):
        row = np.array([0, 0, 7], dtype=np.uint64)
        np.testing.assert_array_equal(stride_any_mask(row, 2), [False, True])
        assert stride_any_mask(np.zeros((2, 0), np.uint64), 4).shape == (2, 0)
        with pytest.raises(ValueError):
            stride_any_mask(row, 0)

    def test_build_and_caching(self):
        rng = np.random.default_rng(0)
        m = BitMatrix.from_dense(rng.random((6, 200)) < 0.05)
        idx = m.sparsity(2)
        assert isinstance(idx, SparsityIndex)
        assert m.sparsity(2) is idx  # cached per stride
        assert m.sparsity(4) is not idx
        np.testing.assert_array_equal(idx.row_popcounts, m.popcount_rows())
        assert idx.n_strides == (m.n_words + 1) // 2
        assert 0.0 <= idx.nonzero_fraction <= 1.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SparsityIndex.build(np.zeros(4, np.uint64), 2)

    def test_nonzero_fraction_extremes(self):
        dense = BitMatrix.from_dense(np.ones((3, 130), dtype=bool))
        assert dense.sparsity(1).nonzero_fraction == 1.0
        empty = BitMatrix.from_dense(np.zeros((3, 130), dtype=bool))
        assert empty.sparsity(1).nonzero_fraction == 0.0


# -- kernel exactness and closure -----------------------------------------


def _adversarial_matrix(rng, g, n_samples, kind):
    """Matrices engineered to stress each sparse mechanism."""
    if kind == "zero_rows":
        dense = rng.random((g, n_samples)) < 0.2
        dense[:: max(2, g // 3)] = False  # several all-zero rows
    elif kind == "single_bit":
        dense = np.zeros((g, n_samples), dtype=bool)
        dense[np.arange(g), rng.integers(0, n_samples, g)] = True
    elif kind == "dense":
        dense = rng.random((g, n_samples)) < 0.9
    else:  # sparse
        dense = rng.random((g, n_samples)) < 0.03
    return BitMatrix.from_dense(dense)


KINDS = ["zero_rows", "single_bit", "dense", "sparse"]


class TestSparseScoreCombos:
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=4),
        st.sampled_from(KINDS),
        st.sampled_from(KINDS),
        st.sampled_from([1, 3, 8, 64]),
    )
    def test_matches_reference_adversarial(self, seed, h, tk, nk, stride):
        rng = np.random.default_rng(seed)
        g = int(rng.integers(h + 1, 10))
        ns = int(rng.integers(1, 500))
        tumor = _adversarial_matrix(rng, g, ns, tk)
        normal = _adversarial_matrix(rng, g, ns, nk)
        params = FScoreParams(n_tumor=ns, n_normal=ns)
        combos = _all_combos(g, h)
        f, tp, tn = score_combos(
            tumor, normal, combos, params, sparse=True, word_stride=stride
        )
        rf, rtp, rtn = score_combos_reference(tumor, normal, combos, params)
        np.testing.assert_array_equal(tp, rtp)
        np.testing.assert_array_equal(tn, rtn)
        np.testing.assert_array_equal(f, rf)

    def test_post_splice_widths(self):
        # BitSplicing makes ragged widths (and wider zero tails); the
        # sparse path must stay exact on the compacted matrices.
        rng = np.random.default_rng(5)
        dense_t = rng.random((8, 300)) < 0.1
        dense_n = rng.random((8, 300)) < 0.05
        tumor = BitMatrix.from_dense(dense_t)
        normal = BitMatrix.from_dense(dense_n)
        keep = rng.random(300) < 0.3
        tumor_s = splice_columns(tumor, keep)
        params = FScoreParams(n_tumor=tumor_s.n_samples, n_normal=300)
        combos = _all_combos(8, 3)
        for stride in (1, 2, 64):
            f, tp, tn = score_combos(
                tumor_s, normal, combos, params, sparse=True, word_stride=stride
            )
            rf, rtp, rtn = score_combos_reference(tumor_s, normal, combos, params)
            np.testing.assert_array_equal(tp, rtp)
            np.testing.assert_array_equal(tn, rtn)

    @pytest.mark.parametrize("kind", KINDS)
    def test_counter_closure(self, kind):
        rng = np.random.default_rng(9)
        tumor = _adversarial_matrix(rng, 9, 400, kind)
        normal = _adversarial_matrix(rng, 9, 400, "sparse")
        params = FScoreParams(n_tumor=400, n_normal=400)
        combos = _all_combos(9, 3)
        dense_c = KernelCounters()
        score_combos(tumor, normal, combos, params, dense_c, word_stride=2)
        sparse_c = KernelCounters()
        score_combos(
            tumor, normal, combos, params, sparse_c, word_stride=2, sparse=True
        )
        # Identical work accounting; traffic closes against the dense charge.
        assert sparse_c.combos_scored == dense_c.combos_scored == len(combos)
        assert (
            sparse_c.word_reads + sparse_c.word_reads_skipped
            == dense_c.word_reads
            == len(combos) * 3 * (tumor.n_words + normal.n_words)
        )
        assert sparse_c.word_reads >= 0
        # Prefix caching always engages for h > 1 on the full combo grid.
        assert sparse_c.prefix_and_hits > 0

    def test_zero_prefix_skip_is_gated_and_sound(self):
        # A tumor matrix with an all-zero gene makes every run through it
        # zero-prefix.  Without skip_below the values stay exact; with a
        # strictly-better incumbent the skipped rows report the ceiling.
        rng = np.random.default_rng(2)
        dense_t = rng.random((6, 100)) < 0.3
        dense_t[5] = False  # gene 5 kills any combo containing it
        tumor = BitMatrix.from_dense(dense_t)
        normal = BitMatrix.from_dense(rng.random((6, 100)) < 0.1)
        params = FScoreParams(n_tumor=100, n_normal=100)
        combos = _all_combos(6, 3)
        rf, rtp, rtn = score_combos_reference(tumor, normal, combos, params)
        # Exact without skip_below.
        f, tp, tn = score_combos(tumor, normal, combos, params, sparse=True)
        np.testing.assert_array_equal(tn, rtn)
        ceiling = tp_zero_ceiling(params)
        c = KernelCounters()
        f2, tp2, tn2 = score_combos(
            tumor, normal, combos, params, c, sparse=True,
            skip_below=ceiling + 0.1,
        )
        assert c.zero_prefix_runs_skipped > 0
        np.testing.assert_array_equal(tp2, rtp)  # tp is exact either way
        skipped = tp2 == 0
        # Skipped rows sit exactly at the ceiling — a sound upper bound
        # that can never beat or tie a strictly-better incumbent.
        assert np.all(f2 <= np.maximum(rf, ceiling))
        assert np.all(f2[~skipped] == rf[~skipped])
        # With skip_below at/below the ceiling nothing is skipped.
        c2 = KernelCounters()
        f3, _, tn3 = score_combos(
            tumor, normal, combos, params, c2, sparse=True, skip_below=ceiling
        )
        assert c2.zero_prefix_runs_skipped == 0
        np.testing.assert_array_equal(tn3, rtn)

    def test_fused_pair_popcount_masked_matches(self):
        rng = np.random.default_rng(4)
        base = rng.integers(0, 1 << 63, size=(7, 9), dtype=np.uint64)
        inner = rng.integers(0, 1 << 63, size=(5, 9), dtype=np.uint64)
        base[2] = 0
        inner[[0, 3]] = 0
        for ws in (1, 2, 4, 64):
            c = KernelCounters()
            got = fused_pair_popcount(
                base, inner, ws,
                stride_any_mask(base, ws), stride_any_mask(inner, ws), c,
            )
            want = fused_pair_popcount(base, inner, ws)
            np.testing.assert_array_equal(got, want)
        # Fully-zero sides skip every stride.
        z = np.zeros_like(base)
        c = KernelCounters()
        got = fused_pair_popcount(
            z, inner, 2, stride_any_mask(z, 2), stride_any_mask(inner, 2), c
        )
        assert not got.any()
        assert c.strides_skipped_sparse == 5  # ceil(9 / 2)


# -- engine / backend equivalence -----------------------------------------


class TestEngineSparseEquivalence:
    def _instance(self, seed=0, g=12, ns=180):
        rng = np.random.default_rng(seed)
        tumor = BitMatrix.from_dense(rng.random((g, ns)) < 0.08)
        normal = BitMatrix.from_dense(rng.random((g, ns)) < 0.04)
        return tumor, normal, FScoreParams(n_tumor=ns, n_normal=ns)

    @pytest.mark.parametrize("scheme", [scheme_for(3, 3), scheme_for(3, 2)])
    @pytest.mark.parametrize("stride", [1, 2, 64])
    def test_winner_bit_identical(self, scheme, stride):
        tumor, normal, params = self._instance()
        dense = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        got = SingleGpuEngine(
            scheme=scheme, sparse=True, word_stride=stride
        ).best_combo(tumor, normal, params)
        assert got == dense

    @pytest.mark.parametrize("scheme", [scheme_for(3, 3), scheme_for(3, 2)])
    def test_pruned_sparse_matches_dense(self, scheme):
        tumor, normal, params = self._instance(seed=3)
        g = tumor.n_genes
        dense = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        table = BoundTable.build(scheme, g, n_blocks=8)
        c = KernelCounters()
        eng = SingleGpuEngine(scheme=scheme, sparse=True)
        first = eng.best_combo(
            tumor, normal, params, counters=c, bounds=table, iteration=0
        )
        again = eng.best_combo(
            tumor, normal, params, counters=c, bounds=table, iteration=1
        )
        assert first == dense
        assert again == dense

    def test_engine_counter_closure_unpruned(self):
        # Same scan, sparse vs dense: identical combos_scored, and the
        # sparse traffic plus its skipped complement reproduces the
        # dense model charge exactly.
        tumor, normal, params = self._instance(seed=7)
        scheme = scheme_for(3, 2)
        end = total_threads(scheme, tumor.n_genes)
        dense_c, sparse_c = KernelCounters(), KernelCounters()
        a = best_in_thread_range(
            scheme, tumor.n_genes, tumor, normal, params, 0, end,
            counters=dense_c,
        )
        b = best_in_thread_range(
            scheme, tumor.n_genes, tumor, normal, params, 0, end,
            counters=sparse_c, sparse=True,
        )
        assert a == b
        assert sparse_c.combos_scored == dense_c.combos_scored
        assert (
            sparse_c.word_reads + sparse_c.word_reads_skipped
            == dense_c.word_reads
        )
        assert sparse_c.word_reads < dense_c.word_reads  # 8% density: must win

    def test_counters_merge_new_fields(self):
        a = KernelCounters(
            strides_skipped_sparse=1, prefix_and_hits=2,
            zero_prefix_runs_skipped=3, word_reads_skipped=4,
        )
        a.merge(
            KernelCounters(
                strides_skipped_sparse=10, prefix_and_hits=20,
                zero_prefix_runs_skipped=30, word_reads_skipped=40,
            )
        )
        assert (
            a.strides_skipped_sparse, a.prefix_and_hits,
            a.zero_prefix_runs_skipped, a.word_reads_skipped,
        ) == (11, 22, 33, 44)


class TestSolverBackendsSparse:
    def _cohort(self, seed=1):
        rng = np.random.default_rng(seed)
        t = rng.random((10, 40)) < 0.25
        n = rng.random((10, 40)) < 0.1
        return t, n

    def test_serial_pool_distributed_elastic_agree(self):
        t, n = self._cohort()
        ref = MultiHitSolver(hits=3, sparse=False).solve(t, n)
        configs = [
            dict(),
            dict(prune=True),
            dict(backend="pool", n_workers=2),
            dict(backend="pool", n_workers=2, prune=True),
            dict(backend="distributed", n_nodes=2),
            dict(backend="distributed", n_nodes=2, elastic=True),
        ]
        for kw in configs:
            got = MultiHitSolver(hits=3, sparse=True, **kw).solve(t, n)
            assert _signature(got.combinations) == _signature(ref.combinations)
            assert got.uncovered == ref.uncovered
            assert (
                got.counters.combos_scored + got.counters.combos_pruned
                == ref.counters.combos_scored
            )

    def test_solver_closure_and_savings(self):
        t, n = self._cohort(seed=6)
        dense = MultiHitSolver(hits=3, sparse=False).solve(t, n)
        sparse = MultiHitSolver(hits=3, sparse=True).solve(t, n)
        sc, dc = sparse.counters, dense.counters
        assert sc.combos_scored == dc.combos_scored
        assert sc.word_reads + sc.word_reads_skipped == dc.word_reads
        assert sc.word_reads <= dc.word_reads

    def test_solver_validates_word_stride(self):
        with pytest.raises(ValueError):
            MultiHitSolver(word_stride=12)
        with pytest.raises(ValueError):
            MultiHitSolver(word_stride=0)
        MultiHitSolver(word_stride=8)  # ok


# -- traffic model ---------------------------------------------------------


class TestSparseTrafficModel:
    def test_reduces_to_fused_model(self):
        scheme = scheme_for(4, 3)
        args = (scheme, 20, 7, 0, total_threads(scheme, 20))
        assert sparse_fused_word_reads(*args) == fused_word_reads(*args)

    def test_monotone_in_both_knobs(self):
        scheme = scheme_for(4, 3)
        args = (scheme, 20, 7, 0, total_threads(scheme, 20))
        full = sparse_fused_word_reads(*args)
        assert sparse_fused_word_reads(*args, nonzero_fraction=0.5) < full
        assert sparse_fused_word_reads(*args, prefix_run_length=4.0) < full
        assert sparse_fused_word_reads(*args, nonzero_fraction=0.0) == 0

    def test_validates(self):
        scheme = scheme_for(4, 3)
        with pytest.raises(ValueError):
            sparse_fused_word_reads(scheme, 20, 7, 0, 10, nonzero_fraction=1.5)
        with pytest.raises(ValueError):
            sparse_fused_word_reads(scheme, 20, 7, 0, 10, prefix_run_length=0.5)
