"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.core.fscore import FScoreParams
from repro.data.synthesis import CohortConfig, generate_cohort


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrices(rng) -> tuple[np.ndarray, np.ndarray, FScoreParams]:
    """A 15-gene random instance: (tumor dense, normal dense, params)."""
    tumor = rng.random((15, 40)) < 0.3
    normal = rng.random((15, 35)) < 0.2
    return tumor, normal, FScoreParams(n_tumor=40, n_normal=35)


@pytest.fixture
def small_bitmatrices(small_matrices) -> tuple[BitMatrix, BitMatrix, FScoreParams]:
    t, n, params = small_matrices
    return BitMatrix.from_dense(t), BitMatrix.from_dense(n), params


@pytest.fixture
def tiny_cohort():
    """A planted 3-hit cohort small enough for exhaustive solving."""
    return generate_cohort(
        CohortConfig(
            n_genes=24, n_tumor=60, n_normal=60, hits=3, n_driver_combos=2, seed=42
        )
    )
