"""Tests for MAF handling and summarization."""

import numpy as np

from repro.data.maf import MafRecord, read_maf, summarize_maf, write_maf


RECORDS = [
    MafRecord("TP53", "S1", 175),
    MafRecord("TP53", "S2", 273),
    MafRecord("KRAS", "S1", 12),
    MafRecord("IDH1", "S3", 132),
    MafRecord("TP53", "S1", 200, "Silent"),  # protein-silent: excluded
]


class TestRecords:
    def test_protein_altering_flag(self):
        assert MafRecord("X", "S", 1).protein_altering
        assert not MafRecord("X", "S", 1, "Silent").protein_altering
        assert not MafRecord("X", "S", 1, "3'UTR").protein_altering


class TestSummarize:
    def test_matrix_contents(self):
        m = summarize_maf(RECORDS)
        assert m.gene_names == ("IDH1", "KRAS", "TP53")
        assert m.sample_ids == ("S1", "S2", "S3")
        assert m.values[m.gene_index("TP53"), 0]  # TP53 in S1
        assert m.values[m.gene_index("TP53"), 1]
        assert not m.values[m.gene_index("KRAS"), 2]

    def test_silent_excluded_by_default(self):
        only_silent = [MafRecord("GENE", "S1", 5, "Silent")]
        m = summarize_maf(only_silent)
        assert m.n_genes == 0

    def test_silent_included_on_request(self):
        only_silent = [MafRecord("GENE", "S1", 5, "Silent")]
        m = summarize_maf(only_silent, protein_altering_only=False)
        assert m.n_genes == 1
        assert m.values[0, 0]

    def test_explicit_universe(self):
        m = summarize_maf(RECORDS, genes=["TP53", "EGFR"], samples=["S1", "S9"])
        assert m.gene_names == ("TP53", "EGFR")
        assert m.values[0, 0] and not m.values[1, 0]
        assert not m.values[:, 1].any()

    def test_duplicate_calls_idempotent(self):
        dup = RECORDS + [MafRecord("TP53", "S1", 175)]
        a = summarize_maf(RECORDS)
        b = summarize_maf(dup)
        np.testing.assert_array_equal(a.values, b.values)


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "calls.maf"
        write_maf(RECORDS, path)
        back = read_maf(path)
        assert back == RECORDS

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.maf"
        write_maf([], path)
        assert read_maf(path) == []

    def test_summary_survives_roundtrip(self, tmp_path):
        path = tmp_path / "calls.maf"
        write_maf(RECORDS, path)
        a = summarize_maf(RECORDS)
        b = summarize_maf(read_maf(path))
        np.testing.assert_array_equal(a.values, b.values)
        assert a.gene_names == b.gene_names
