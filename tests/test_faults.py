"""Fault-injection matrix: crash / hang / recv-fault / straggler across
the pool, in-process distributed, SPMD, and gpusim layers.

The contract under test is the tentpole guarantee: under **any**
deterministic :class:`FaultPlan`, a solve completes and its selected
combinations are bit-identical to the failure-free run — recovery
changes who searches a λ-range, never the winner — and a run killed
mid-iteration resumes from its checkpoint to an identical final result.
"""

import time

import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.comm import CommAbortedError, SimCommWorld
from repro.cluster.mpi_program import spmd_best_combo
from repro.cluster.runtime import RankFailedError, SPMDRunner
from repro.core.checkpoint import load_state, solve_with_checkpoints
from repro.core.distributed import DistributedEngine
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.pool import PoolDegradedWarning, PoolEngine
from repro.core.solver import MultiHitSolver
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultReport,
    FaultSpec,
    RetryPolicy,
    reschedule_ranges,
)
from repro.gpusim.executor import BlockKernelExecutor
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1, scheme_for
from repro.scheduling.workload import cumulative_work_before


def signature(combos):
    return [(c.genes, round(c.f, 12), c.tp, c.tn) for c in combos]


@pytest.fixture
def instance(rng):
    t = rng.random((14, 30)) < 0.4
    n = rng.random((14, 24)) < 0.2
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=30, n_normal=24),
    )


@pytest.fixture
def cohort(rng):
    t = rng.random((12, 40)) < 0.4
    n = rng.random((12, 40)) < 0.15
    return t, n


# -- the plan itself -----------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nope", site="pool")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", site="nowhere")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", site="pool", count=0)

    def test_one_shot_take(self):
        plan = FaultPlan((FaultSpec(kind="crash", site="pool", target=1, at_call=0),))
        assert plan.peek("pool", 1, 0) is not None
        assert plan.take("pool", 1, 0).kind == "crash"
        assert plan.take("pool", 1, 0) is None  # spent
        assert plan.n_pending == 0

    def test_persistent_fault_keeps_firing(self):
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=2, count=-1),))
        for _ in range(5):
            assert plan.take("rank", 2) is not None
        assert plan.n_pending == 1

    def test_call_and_target_matching(self):
        plan = FaultPlan((FaultSpec(kind="hang", site="pool", target=0, at_call=3),))
        assert plan.take("pool", 0, 2) is None  # wrong call
        assert plan.take("pool", 1, 3) is None  # wrong target
        assert plan.take("rank", 0, 3) is None  # wrong site
        assert plan.take("pool", 0, 3) is not None

    def test_reset_rearms(self):
        plan = FaultPlan((FaultSpec(kind="crash", site="pool"),))
        assert plan.take("pool", 0) is not None
        assert plan.take("pool", 0) is None
        plan.reset()
        assert plan.take("pool", 0) is not None

    def test_seeded_plan_is_reproducible(self):
        a = FaultPlan.random(seed=7, n_faults=5)
        b = FaultPlan.random(seed=7, n_faults=5)
        assert a.specs == b.specs
        assert FaultPlan.random(seed=8, n_faults=5).specs != a.specs

    def test_describe(self):
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", count=-1),))
        text = plan.describe()
        assert "crash" in text and "persistent" in text


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(resubmits=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_exponential_backoff(self):
        policy = RetryPolicy(resubmits=3, backoff_s=0.1, backoff_factor=2.0)
        assert policy.max_attempts == 4
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            policy.backoff(0)

    def test_straggler_threshold(self):
        assert not RetryPolicy().is_straggler(100.0)
        policy = RetryPolicy(straggler_after_s=0.5)
        assert policy.is_straggler(0.6)
        assert not policy.is_straggler(0.4)


class TestRescheduleRanges:
    def test_shares_cover_dead_ranges_exactly(self):
        scheme, g = SCHEME_3X1, 24
        schedule = equiarea_schedule(scheme, g, 6)
        dead_parts = [2, 3]
        shares = reschedule_ranges(schedule, dead_parts, 3)
        assert len(shares) == 3
        pieces = sorted(
            (lo, hi) for survivor in shares for (_, lo, hi) in survivor
        )
        # The union of pieces is exactly the dead partitions' ranges.
        expect_work = sum(
            cumulative_work_before(scheme, g, schedule.thread_range(p)[1])
            - cumulative_work_before(scheme, g, schedule.thread_range(p)[0])
            for p in dead_parts
        )
        got_work = sum(
            cumulative_work_before(scheme, g, hi)
            - cumulative_work_before(scheme, g, lo)
            for lo, hi in pieces
        )
        assert got_work == expect_work
        for (_, a), (b, _) in zip(pieces, pieces[1:]):
            assert b >= a  # pieces never overlap
        for _, lo, hi in (t for survivor in shares for t in survivor):
            assert lo < hi

    def test_needs_survivors(self):
        schedule = equiarea_schedule(SCHEME_3X1, 12, 4)
        with pytest.raises(ValueError):
            reschedule_ranges(schedule, [0], 0)


# -- pool column of the matrix -------------------------------------------


class TestPoolInjection:
    def _ref(self, instance, scheme):
        tumor, normal, params = instance
        return SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)

    def test_injected_crash_bit_exact(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref = self._ref(instance, scheme)
        plan = FaultPlan((FaultSpec(kind="crash", site="pool", target=0, at_call=0),))
        with PoolEngine(scheme=scheme, n_workers=2, fault_plan=plan) as eng:
            with pytest.warns(PoolDegradedWarning):
                got = eng.best_combo(tumor, normal, params)
            assert got == ref
            assert eng.report.n_detected >= 1
            assert eng.report.events[0].kind == "crash"
            assert any(e.action == "inline-retry" for e in eng.report.events)

    def test_transient_crash_recovered_by_resubmission(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref = self._ref(instance, scheme)
        plan = FaultPlan((FaultSpec(kind="crash", site="pool", target=0, at_call=0),))
        policy = RetryPolicy(resubmits=1)
        with PoolEngine(
            scheme=scheme, n_workers=2, fault_plan=plan, retry_policy=policy
        ) as eng:
            with pytest.warns(PoolDegradedWarning):
                got = eng.best_combo(tumor, normal, params)
            assert got == ref
            assert any(e.action == "resubmitted" for e in eng.report.events)
            assert not any(e.action == "inline-retry" for e in eng.report.events)

    def test_injected_hang_recovered_by_deadline(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(2, 1)
        ref = self._ref(instance, scheme)
        plan = FaultPlan(
            (FaultSpec(kind="hang", site="pool", target=0, at_call=0, delay_s=10.0),)
        )
        policy = RetryPolicy(deadline_s=0.3)
        with PoolEngine(
            scheme=scheme, n_workers=2, fault_plan=plan, retry_policy=policy
        ) as eng:
            with pytest.warns(PoolDegradedWarning):
                got = eng.best_combo(tumor, normal, params)
            assert got == ref
            assert eng.report.events[0].kind == "hang"

    def test_injected_straggler_observed_not_retried(self, instance):
        import warnings as _warnings

        tumor, normal, params = instance
        scheme = scheme_for(2, 1)
        ref = self._ref(instance, scheme)
        plan = FaultPlan(
            (FaultSpec(kind="straggler", site="pool", target=0, delay_s=0.15),)
        )
        policy = RetryPolicy(straggler_after_s=0.05)
        with PoolEngine(
            scheme=scheme, n_workers=2, fault_plan=plan, retry_policy=policy
        ) as eng:
            with _warnings.catch_warnings(record=True) as caught:
                _warnings.simplefilter("always")
                got = eng.best_combo(tumor, normal, params)
            assert got == ref
            assert not [
                w for w in caught if issubclass(w.category, PoolDegradedWarning)
            ]
            stragglers = [e for e in eng.report.events if e.kind == "straggler"]
            assert stragglers and stragglers[0].action == "observed"

    def test_solver_with_plan_matches_clean_run(self, cohort):
        t, n = cohort
        clean = MultiHitSolver(hits=2, backend="pool", n_workers=2).solve(t, n)
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", site="pool", target=0, at_call=0),
                FaultSpec(kind="crash", site="pool", target=1, at_call=1),
            )
        )
        with pytest.warns(PoolDegradedWarning):
            faulty = MultiHitSolver(
                hits=2, backend="pool", n_workers=2, fault_plan=plan
            ).solve(t, n)
        assert signature(faulty.combinations) == signature(clean.combinations)
        assert faulty.uncovered == clean.uncovered
        assert faulty.fault_report is not None
        assert faulty.fault_report.n_retries >= 1
        assert "FaultReport" in faulty.fault_report.describe()


# -- in-process distributed column ---------------------------------------


class TestDistributedInjection:
    def _engines(self, fault_plan=None, retry_policy=None):
        kwargs = dict(scheme=scheme_for(3, 2), n_nodes=3, gpus_per_node=2)
        clean = DistributedEngine(**kwargs)
        faulty = DistributedEngine(
            **kwargs,
            fault_plan=fault_plan,
            retry_policy=retry_policy or RetryPolicy(),
        )
        return clean, faulty

    def test_persistent_rank_crash_rescheduled_bit_exact(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=1, count=-1),))
        clean, faulty = self._engines(plan)
        ref_counters, counters = KernelCounters(), KernelCounters()
        ref = clean.best_combo(tumor, normal, params, counters=ref_counters)
        got = faulty.best_combo(tumor, normal, params, counters=counters)
        assert got == ref
        assert faulty.report.n_rescheduled >= 1
        assert faulty.report.dead_ranks == (1,)
        # The rescheduled pieces are searched exactly once: counters match.
        assert counters.combos_scored == ref_counters.combos_scored

    def test_transient_crash_retried_in_place(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=0, at_call=0),))
        clean, faulty = self._engines(plan, RetryPolicy(resubmits=1))
        ref = clean.best_combo(tumor, normal, params)
        got = faulty.best_combo(tumor, normal, params)
        assert got == ref
        assert any(e.action == "resubmitted" for e in faulty.report.events)
        assert faulty.report.n_rescheduled == 0

    def test_persistent_hang_detected_and_rescheduled(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan((FaultSpec(kind="hang", site="rank", target=2, count=-1),))
        clean, faulty = self._engines(plan)
        assert faulty.best_combo(tumor, normal, params) == clean.best_combo(
            tumor, normal, params
        )
        assert faulty.report.events[0].kind == "hang"
        assert faulty.report.dead_ranks == (2,)

    def test_straggler_observed(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan(
            (FaultSpec(kind="straggler", site="rank", target=1, delay_s=0.05),)
        )
        clean, faulty = self._engines(plan)
        assert faulty.best_combo(tumor, normal, params) == clean.best_combo(
            tumor, normal, params
        )
        assert any(
            e.kind == "straggler" and e.action == "observed"
            for e in faulty.report.events
        )
        assert faulty.report.n_rescheduled == 0

    def test_all_ranks_dead_recovers_at_root(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan(
            tuple(
                FaultSpec(kind="crash", site="rank", target=r, count=-1)
                for r in range(3)
            )
        )
        clean, faulty = self._engines(plan)
        assert faulty.best_combo(tumor, normal, params) == clean.best_combo(
            tumor, normal, params
        )
        assert faulty.report.dead_ranks == (0, 1, 2)

    def test_solver_distributed_with_plan_matches_clean(self, cohort):
        t, n = cohort
        clean = MultiHitSolver(hits=2, backend="distributed", n_nodes=2).solve(t, n)
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=1, count=-1),))
        faulty = MultiHitSolver(
            hits=2, backend="distributed", n_nodes=2, fault_plan=plan
        ).solve(t, n)
        assert signature(faulty.combinations) == signature(clean.combinations)
        assert faulty.fault_report is not None
        assert faulty.fault_report.n_rescheduled >= 1


# -- SPMD column ---------------------------------------------------------


class TestSpmdInjection:
    def _ref(self, instance):
        tumor, normal, params = instance
        return SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)

    def test_rank_crash_restarts_on_survivors(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 6)
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=1, count=-1),))
        report = FaultReport()
        got = spmd_best_combo(
            3, schedule, tumor, normal, params, gpus_per_rank=2,
            fault_plan=plan, report=report, recv_timeout_s=10.0,
        )
        ref = self._ref(instance)
        assert got.genes == ref.genes and got.f == ref.f
        assert report.n_rescheduled >= 1
        assert 1 in report.dead_ranks
        assert any(e.action == "restarted" for e in report.events)

    def test_recv_drop_times_out_and_recovers(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 6)
        # Drop one message delivered to rank 0 (the gather at the root):
        # the root times out, is declared dead, and the survivors rerun.
        plan = FaultPlan((FaultSpec(kind="recv_drop", site="comm", target=0),))
        report = FaultReport()
        got = spmd_best_combo(
            3, schedule, tumor, normal, params, gpus_per_rank=2,
            fault_plan=plan, report=report, recv_timeout_s=1.0,
        )
        ref = self._ref(instance)
        assert got.genes == ref.genes and got.f == ref.f
        assert report.n_rescheduled >= 1

    def test_recv_delay_is_harmless(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 6)
        plan = FaultPlan(
            (FaultSpec(kind="recv_delay", site="comm", target=0, delay_s=0.1),)
        )
        got = spmd_best_combo(
            3, schedule, tumor, normal, params, gpus_per_rank=2,
            fault_plan=plan, recv_timeout_s=10.0,
        )
        ref = self._ref(instance)
        assert got.genes == ref.genes and got.f == ref.f

    def test_hung_rank_detected_by_heartbeat(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 6)
        plan = FaultPlan(
            (FaultSpec(kind="hang", site="rank", target=1, delay_s=1.0),)
        )
        report = FaultReport()
        t0 = time.monotonic()
        got = spmd_best_combo(
            3, schedule, tumor, normal, params, gpus_per_rank=2,
            fault_plan=plan, report=report,
            recv_timeout_s=30.0, heartbeat_timeout_s=0.3,
        )
        elapsed = time.monotonic() - t0
        ref = self._ref(instance)
        assert got.genes == ref.genes and got.f == ref.f
        # The heartbeat detector named the hung rank well before the
        # peers' 30 s recv timeout would have.
        assert elapsed < 15.0
        assert any(e.kind == "hang" for e in report.events)
        assert report.n_rescheduled >= 1

    def test_straggler_rank_finishes_late_bit_exact(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 6)
        plan = FaultPlan(
            (FaultSpec(kind="straggler", site="rank", target=2, delay_s=0.1),)
        )
        got = spmd_best_combo(
            3, schedule, tumor, normal, params, gpus_per_rank=2,
            fault_plan=plan, recv_timeout_s=10.0,
        )
        ref = self._ref(instance)
        assert got.genes == ref.genes and got.f == ref.f

    def test_every_rank_dead_raises(self, instance):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 14, 4)
        plan = FaultPlan(
            tuple(
                FaultSpec(kind="crash", site="rank", target=r, count=-1)
                for r in range(2)
            )
        )
        with pytest.raises(RankFailedError):
            spmd_best_combo(
                2, schedule, tumor, normal, params, gpus_per_rank=2,
                fault_plan=plan, recv_timeout_s=5.0,
            )


class TestSpmdFailFast:
    def test_survivors_abort_instead_of_draining_timeout(self):
        """A dead peer must not leave survivors blocked for recv_timeout_s."""

        def prog(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("boom")
            return comm.recv(source=1)  # would block 60 s without the abort

        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as err:
            SPMDRunner(2, recv_timeout_s=60.0).run(prog)
        assert time.monotonic() - t0 < 5.0
        assert err.value.failed_ranks == [1]
        assert "rank 1 failed" in str(err.value)

    def test_aborted_peers_are_not_blamed(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                raise ValueError("root died")
            comm.recv(source=0)

        with pytest.raises(RankFailedError) as err:
            SPMDRunner(3, recv_timeout_s=60.0).run(prog)
        assert err.value.failed_ranks == [0]

    def test_world_abort_breaks_barrier_and_recv(self):
        world = SimCommWorld(2, recv_timeout_s=60.0)
        world.abort("test abort")
        with pytest.raises(CommAbortedError, match="test abort"):
            world.comm(0).recv(source=1)


# -- gpusim column -------------------------------------------------------


class TestGpusimInjection:
    def test_straggler_scales_cycles_not_winner(self, instance):
        tumor, normal, params = instance
        clean = BlockKernelExecutor(scheme=scheme_for(2, 1)).launch(
            tumor, normal, params
        )
        plan = FaultPlan(
            (FaultSpec(kind="straggler", site="gpu", target=0, slowdown=3.0),)
        )
        report = FaultReport()
        slow = BlockKernelExecutor(
            scheme=scheme_for(2, 1), fault_plan=plan, report=report
        ).launch(tumor, normal, params)
        assert slow.winner == clean.winner
        assert slow.blocks[0].cycles == pytest.approx(clean.blocks[0].cycles * 3.0)
        for fast, ref in zip(slow.blocks[1:], clean.blocks[1:]):
            assert fast.cycles == pytest.approx(ref.cycles)
        assert any(e.site == "gpu" for e in report.events)

    def test_device_crash_raises(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan((FaultSpec(kind="crash", site="gpu", target=0),))
        with pytest.raises(FaultInjected):
            BlockKernelExecutor(scheme=scheme_for(2, 1), fault_plan=plan).launch(
                tumor, normal, params
            )


# -- checkpointed recovery -----------------------------------------------


class TestCheckpointedRecovery:
    def test_killed_mid_run_resumes_to_identical_result(self, cohort, tmp_path):
        t, n = cohort
        clean = MultiHitSolver(hits=2).solve(t, n)
        path = tmp_path / "run.ckpt"
        # Simulated walltime kill after two iterations.
        solve_with_checkpoints(
            MultiHitSolver(hits=2, max_iterations=2), t, n, path
        )
        assert load_state(path).n_found == 2
        resumed = solve_with_checkpoints(MultiHitSolver(hits=2), t, n, path)
        assert signature(resumed.combinations) == signature(clean.combinations)
        assert resumed.uncovered == clean.uncovered

    def test_faulty_pool_run_killed_and_resumed(self, cohort, tmp_path):
        """Injection + kill + resume composes to the clean answer."""
        t, n = cohort
        clean = MultiHitSolver(hits=2).solve(t, n)
        path = tmp_path / "run.ckpt"
        plan = FaultPlan((FaultSpec(kind="crash", site="pool", target=0, at_call=0),))
        with pytest.warns(PoolDegradedWarning):
            solve_with_checkpoints(
                MultiHitSolver(
                    hits=2, backend="pool", n_workers=2,
                    fault_plan=plan, max_iterations=1,
                ),
                t, n, path,
            )
        resumed = solve_with_checkpoints(
            MultiHitSolver(hits=2, backend="pool", n_workers=2), t, n, path
        )
        assert signature(resumed.combinations) == signature(clean.combinations)
        assert resumed.uncovered == clean.uncovered
