"""Tests for the per-GPU memory-footprint planner."""

import numpy as np

from repro.perfmodel.memory import plan_memory
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1


class TestPlanMemory:
    def test_full_replication_size(self):
        sched = equiarea_schedule(SCHEME_3X1, 1000, 6)
        plan = plan_memory(sched, words=10)
        assert plan.full_replication_bytes == 1000 * 10 * 8

    def test_hot_set_shrinks_with_partition_index(self):
        sched = equiarea_schedule(SCHEME_3X1, 2000, 12)
        plan = plan_memory(sched, words=4)
        hot = plan.hot_bytes
        # Later partitions' inner loops span fewer rows.
        assert hot[0] > hot[-1]
        assert (np.diff(hot) <= 0).all()

    def test_hot_fraction_below_one(self):
        sched = equiarea_schedule(SCHEME_3X1, 2000, 12)
        plan = plan_memory(sched, words=4)
        assert 0 < plan.mean_hot_fraction < 1.0

    def test_hot_plus_stream_covers_at_most_matrix(self):
        sched = equiarea_schedule(SCHEME_3X1, 500, 8)
        plan = plan_memory(sched, words=2)
        assert (plan.hot_bytes <= plan.full_replication_bytes).all()
        assert (plan.streamable_bytes <= plan.full_replication_bytes).all()

    def test_fits_flags(self):
        sched = equiarea_schedule(SCHEME_3X1, 100, 2)
        plan = plan_memory(sched, words=1)
        assert plan.replication_fits and plan.hot_set_fits

    def test_empty_partitions(self):
        sched = equiarea_schedule(SCHEME_3X1, 5, 30)
        plan = plan_memory(sched, words=1)
        assert (plan.hot_bytes >= 0).all()

    def test_mutation_scale_plan(self):
        # The Section V case: 4e5 rows still schedulable and plannable.
        sched = equiarea_schedule(SCHEME_3X1, 400_000, 24)
        plan = plan_memory(sched, words=31)
        assert plan.full_replication_bytes == 400_000 * 31 * 8
        assert plan.hot_set_fits
