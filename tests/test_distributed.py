"""Tests for the distributed engine (schedule -> per-GPU -> reduction)."""

import pytest

from repro.core.distributed import DistributedEngine, rank_best_combo
from repro.core.engine import SingleGpuEngine
from repro.core.reduction import ReductionStats
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1


class TestDistributedEngine:
    @pytest.mark.parametrize("n_nodes,gpn", [(1, 1), (2, 3), (5, 6), (30, 2)])
    def test_matches_single_gpu(self, small_bitmatrices, n_nodes, gpn):
        tumor, normal, params = small_bitmatrices
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=n_nodes, gpus_per_node=gpn)
        got = eng.best_combo(tumor, normal, params)
        assert got.genes == ref.genes and got.f == ref.f

    @pytest.mark.parametrize("scheduler", ["equiarea", "equidistance"])
    def test_both_schedulers_same_result(self, small_bitmatrices, scheduler):
        tumor, normal, params = small_bitmatrices
        eng = DistributedEngine(
            scheme=SCHEME_2X2, n_nodes=3, gpus_per_node=2, scheduler=scheduler
        )
        ref = SingleGpuEngine(scheme=SCHEME_2X2).best_combo(tumor, normal, params)
        got = eng.best_combo(tumor, normal, params)
        assert got.genes == ref.genes

    def test_unknown_scheduler(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=2, scheduler="magic")
        with pytest.raises(ValueError):
            eng.best_combo(tumor, normal, params)

    def test_reduction_stats_filled(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        stats = ReductionStats()
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=4, gpus_per_node=2)
        eng.best_combo(tumor, normal, params, reduction_stats=stats)
        assert stats.stage_entries[0] == 4  # one candidate per rank

    def test_more_gpus_than_threads(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=500, gpus_per_node=6)
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        got = eng.best_combo(tumor, normal, params)
        assert got.genes == ref.genes


class TestRankBestCombo:
    def test_rank_partitions_cover_grid(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=3, gpus_per_node=2)
        schedule = eng.build_schedule(tumor.n_genes)
        from repro.core.reduction import multi_stage_reduce

        winners = [
            rank_best_combo(schedule, r, 2, tumor, normal, params) for r in range(3)
        ]
        combined = multi_stage_reduce(winners)
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        assert combined.genes == ref.genes

    def test_rank_beyond_partitions_returns_none(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        eng = DistributedEngine(scheme=SCHEME_3X1, n_nodes=2, gpus_per_node=2)
        schedule = eng.build_schedule(tumor.n_genes)
        assert rank_best_combo(schedule, 99, 2, tumor, normal, params) is None


class TestThreadedRank:
    def test_threaded_partitions_same_result(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        seq = DistributedEngine(scheme=SCHEME_3X1, n_nodes=2, gpus_per_node=3)
        par = DistributedEngine(
            scheme=SCHEME_3X1, n_nodes=2, gpus_per_node=3, n_workers=3
        )
        a = seq.best_combo(tumor, normal, params)
        b = par.best_combo(tumor, normal, params)
        assert a.genes == b.genes and a.f == b.f

    def test_threaded_first_pick_matches_single_backend(self, rng):
        from repro.bitmatrix.matrix import BitMatrix
        from repro.core.fscore import FScoreParams
        from repro.core.solver import MultiHitSolver
        from repro.scheduling.schemes import scheme_for

        t = rng.random((11, 30)) < 0.4
        n = rng.random((11, 30)) < 0.12
        ref = MultiHitSolver(hits=3, backend="single").solve(t, n)

        engine = DistributedEngine(
            scheme=scheme_for(3, 2), n_nodes=2, gpus_per_node=3, n_workers=2
        )
        got = engine.best_combo(
            BitMatrix.from_dense(t),
            BitMatrix.from_dense(n),
            FScoreParams(n_tumor=30, n_normal=30),
        )
        assert got.genes == ref.combinations[0].genes
