"""Tests for the simulated V100: device, timing model, counters, profiler."""

import pytest

from repro.gpusim.counters import metrics_from_timing
from repro.gpusim.device import V100
from repro.gpusim.kernel import KernelStats
from repro.gpusim.profiler import Profiler
from repro.gpusim.timing import KernelTiming, TimingTuning, kernel_time


def stats(n_threads=200_000, n_combos=10**9, words=31, rows=2, pre=2, max_combos=None):
    if max_combos is None:
        max_combos = max(1, (n_combos + n_threads - 1) // n_threads) * 4
    return KernelStats(
        n_threads=n_threads,
        n_combos=n_combos,
        words_per_combo=words,
        rows_per_combo=rows,
        prefetched_rows=pre,
        bytes_read=n_combos * rows * words * 8,
        max_thread_combos=max_combos,
    )


class TestDevice:
    def test_v100_shape(self):
        assert V100.n_cores == 5120
        assert V100.max_resident_threads == 163_840
        assert V100.dram_bytes == 16 * 1024**3
        assert V100.peak_int_ops_per_s == pytest.approx(5120 * 1.53e9)


class TestKernelStats:
    def test_validation(self):
        with pytest.raises(ValueError):
            KernelStats(-1, 0, 1, 1, 0, 0, 0)
        with pytest.raises(ValueError):
            # 10 threads x 1 max combo < 100 combos: inconsistent.
            KernelStats(10, 100, 1, 1, 0, 0, 1)

    def test_blocks(self):
        s = stats(n_threads=1025)
        assert s.n_blocks == 3
        assert s.mean_thread_combos == pytest.approx(10**9 / 1025)


class TestTimingModel:
    def test_empty_launch(self):
        t = kernel_time(KernelStats(0, 0, 10, 2, 2, 0, 0))
        assert t.busy_s == 0.0
        assert t.total_s == TimingTuning().kernel_launch_s

    def test_more_work_takes_longer(self):
        a = kernel_time(stats(n_combos=10**8))
        b = kernel_time(stats(n_combos=10**9))
        assert b.busy_s > a.busy_s

    def test_wider_words_take_longer(self):
        a = kernel_time(stats(words=8))
        b = kernel_time(stats(words=32))
        assert b.busy_s > a.busy_s

    def test_fewer_loaded_rows_is_faster(self):
        # The MemOpt effect: removing loop loads removes instructions.
        slow = kernel_time(stats(rows=4, pre=0))
        fast = kernel_time(stats(rows=2, pre=2))
        assert fast.busy_s < slow.busy_s

    def test_low_occupancy_exposes_latency(self):
        # Same combos spread over few threads -> issue-hide derating.
        few = kernel_time(stats(n_threads=2_000, max_combos=10**9))
        many = kernel_time(stats(n_threads=2_000_000, max_combos=10**6))
        assert few.busy_s > many.busy_s
        assert few.issue_hide < 1.0
        assert many.issue_hide == 1.0

    def test_low_occupancy_is_memory_bound(self):
        t = kernel_time(stats(n_threads=2_000, max_combos=10**9))
        assert t.bound == "memory"

    def test_tail_bound_when_one_thread_dominates(self):
        t = kernel_time(
            KernelStats(
                n_threads=500_000,
                n_combos=10**6,
                words_per_combo=31,
                rows_per_combo=2,
                prefetched_rows=2,
                bytes_read=10**6 * 496,
                max_thread_combos=10**6,  # one thread owns everything
            )
        )
        assert t.t_tail_s > t.t_compute_s

    def test_bound_labels(self):
        t = KernelTiming(1.0, 0.1, 2.0, 0.5, 0.0, 1.0, 1.0)
        assert t.bound == "memory"
        t = KernelTiming(3.0, 0.1, 2.0, 0.5, 0.0, 1.0, 1.0)
        assert t.bound == "compute"
        t = KernelTiming(1.0, 0.1, 2.0, 5.0, 0.0, 1.0, 1.0)
        assert t.bound in ("tail", "memory")  # memory wins on equal issue_hide<1


class TestCounters:
    def test_stall_fractions_sum_to_one(self):
        s = stats()
        t = kernel_time(s)
        m = metrics_from_timing(s, t, dram_bytes=s.bytes_read / 64)
        total = (
            m.stall_memory_dependency
            + m.stall_memory_throttle
            + m.stall_execution_dependency
            + m.stall_other
        )
        assert total == pytest.approx(1.0)

    def test_idle_gpu(self):
        s = KernelStats(0, 0, 1, 1, 0, 0, 0)
        m = metrics_from_timing(s, kernel_time(s), dram_bytes=0)
        assert m.bound == "idle"

    def test_dram_throughput_positive(self):
        s = stats()
        m = metrics_from_timing(s, kernel_time(s), dram_bytes=s.bytes_read / 64)
        assert 0 < m.dram_read_bps
        assert 0 < m.dram_write_bps < m.dram_read_bps


class TestProfiler:
    def test_slowest_gpu_has_unit_utilization(self):
        launches = [stats(n_combos=c) for c in (10**8, 5 * 10**8, 10**9)]
        prof = Profiler().profile(launches)
        assert prof.utilization.max() == pytest.approx(1.0)
        assert prof.utilization.argmax() == 2

    def test_transition_detection(self):
        # Construct launches where early GPUs are latency-bound and later
        # ones compute-bound.
        launches = [
            stats(n_threads=1_000, max_combos=10**9),
            stats(n_threads=5_000, max_combos=10**9),
            stats(n_threads=500_000),
            stats(n_threads=800_000),
        ]
        prof = Profiler().profile(launches)
        assert prof.bounds[0] == "memory"
        assert prof.bounds[-1] == "compute"
        idx = prof.memory_to_compute_transition()
        assert idx == 2

    def test_profile_arrays_aligned(self):
        launches = [stats(), stats(n_combos=2 * 10**9)]
        prof = Profiler().profile(launches)
        assert prof.n_gpus == 2
        assert len(prof.busy_s) == len(prof.dram_read_bps) == 2
