"""Tests for the lambda <-> (i, j, k) tetrahedral map (Algorithm 3)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.tetrahedral import (
    linear_from_triple,
    sqrt_729l2_minus_3_logexp,
    tetrahedral_size,
    triple_from_linear,
    triple_from_linear_array,
    triple_from_linear_closed_form,
)


class TestForwardMap:
    def test_first_triples(self):
        assert linear_from_triple(0, 1, 2) == 0
        assert linear_from_triple(0, 1, 3) == 1
        assert linear_from_triple(0, 2, 3) == 2
        assert linear_from_triple(1, 2, 3) == 3
        assert linear_from_triple(0, 1, 4) == 4

    def test_rejects_bad_order(self):
        for bad in [(0, 0, 1), (2, 1, 3), (0, 3, 3), (-1, 0, 1)]:
            with pytest.raises(ValueError):
                linear_from_triple(*bad)


class TestInverseScalar:
    def test_roundtrip_exhaustive(self):
        for lam in range(tetrahedral_size(40)):
            i, j, k = triple_from_linear(lam)
            assert 0 <= i < j < k
            assert linear_from_triple(i, j, k) == lam

    def test_enumeration_order_is_colex(self):
        g = 15
        expected = sorted(
            itertools.combinations(range(g), 3), key=lambda t: (t[2], t[1], t[0])
        )
        got = [triple_from_linear(lam) for lam in range(tetrahedral_size(g))]
        assert got == expected

    def test_huge_lambda_exact(self):
        lam = 10**24
        t = triple_from_linear(lam)
        assert linear_from_triple(*t) == lam

    @given(st.integers(min_value=0, max_value=10**18))
    def test_hypothesis_roundtrip(self, lam):
        t = triple_from_linear(lam)
        assert linear_from_triple(*t) == lam


class TestClosedForm:
    def test_matches_scalar_small(self):
        lam = np.arange(tetrahedral_size(30), dtype=np.uint64)
        i, j, k = triple_from_linear_closed_form(lam)
        for idx in range(len(lam)):
            assert (int(i[idx]), int(j[idx]), int(k[idx])) == triple_from_linear(idx)

    def test_paper_scale_window(self):
        # Last threads of the BRCA 3x1 grid: lambda near C(19411, 3).
        top = math.comb(19411, 3)
        lam = np.arange(top - 8, top, dtype=np.uint64)
        i, j, k = triple_from_linear_array(lam)
        assert int(k[-1]) == 19410
        for a, b, c, l0 in zip(i, j, k, lam):
            assert linear_from_triple(int(a), int(b), int(c)) == int(l0)

    def test_tetrahedral_boundaries(self):
        # At C(k, 3) the triple resets to (0, 1, k).
        ks = np.arange(3, 4000, 113)
        lam = np.array([math.comb(int(k), 3) for k in ks], dtype=np.uint64)
        i, j, k = triple_from_linear_closed_form(lam)
        np.testing.assert_array_equal(i, 0)
        np.testing.assert_array_equal(j, 1)
        np.testing.assert_array_equal(k, ks)

    def test_logexp_and_direct_forms_agree(self):
        lam = np.arange(1, 5000, dtype=np.uint64)
        a = triple_from_linear_closed_form(lam, use_logexp=True)
        b = triple_from_linear_closed_form(lam, use_logexp=False)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            triple_from_linear_closed_form(np.array([1 << 60], dtype=np.uint64))

    def test_mutation_level_grid_range(self):
        # C(4e5, 3) ~ 1.1e16 exceeds 2**52; the repair loops keep the
        # decode exact out there (needed by the Section V extension).
        top = math.comb(400_000, 3)
        lam = np.array([top - 1, top - 12345], dtype=np.uint64)
        i, j, k = triple_from_linear_closed_form(lam)
        for a, b, c, l0 in zip(i, j, k, lam):
            assert linear_from_triple(int(a), int(b), int(c)) == int(l0)

    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=(1 << 52) - 1))
    def test_hypothesis_closed_form_exact(self, lam):
        i, j, k = triple_from_linear_closed_form(np.array([lam], dtype=np.uint64))
        assert linear_from_triple(int(i[0]), int(j[0]), int(k[0])) == lam


class TestLogExpDiscriminant:
    def test_matches_exact_value(self):
        # 3*lam * (243*lam - 1/lam) == 729*lam^2 - 3, so the log/exp route
        # must reproduce sqrt(729*lam^2 - 3) to float precision.
        for lam in [1, 2, 1000, 10**9, 2**40, 2**51]:
            got = float(sqrt_729l2_minus_3_logexp(np.array([lam], dtype=np.float64))[0])
            exact = 729 * lam * lam - 3
            assert abs(got * got - exact) / exact < 1e-9

    def test_rejects_lambda_below_one(self):
        with pytest.raises(ValueError):
            sqrt_729l2_minus_3_logexp(np.array([0.0]))

    def test_avoids_128bit_overflow_range(self):
        # 729 * (2**51)**2 overflows u64 (needs 128-bit); the log/exp path
        # must still be finite and positive there.
        lam = np.array([2.0**51], dtype=np.float64)
        got = sqrt_729l2_minus_3_logexp(lam)
        assert np.isfinite(got[0]) and got[0] > 0


class TestSize:
    def test_sizes(self):
        assert tetrahedral_size(2) == 0
        assert tetrahedral_size(3) == 1
        assert tetrahedral_size(10) == 120
        assert tetrahedral_size(19411) == math.comb(19411, 3)
