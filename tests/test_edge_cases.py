"""Edge cases and failure injection across module boundaries."""

import numpy as np
import pytest

import repro.core.engine as engine_mod
from repro.bitmatrix.matrix import BitMatrix
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.sequential import sequential_best_combo
from repro.core.solver import MultiHitSolver
from repro.scheduling.schemes import SCHEME_3X1, Scheme


class TestEngineChunking:
    def test_tiny_chunks_do_not_change_results(self, monkeypatch, rng):
        """Force multi-chunk processing within every level."""
        t = rng.random((13, 40)) < 0.35
        n = rng.random((13, 30)) < 0.15
        params = FScoreParams(n_tumor=40, n_normal=30)
        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        monkeypatch.setattr(engine_mod, "_CHUNK_ELEMENTS", 37)
        got = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        assert got.genes == ref.genes and got.f == ref.f

    def test_tiny_chunks_d0_scheme(self, monkeypatch, rng):
        from repro.scheduling.schemes import Scheme

        t = rng.random((10, 30)) < 0.4
        n = rng.random((10, 30)) < 0.1
        params = FScoreParams(n_tumor=30, n_normal=30)
        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        ref = SingleGpuEngine(scheme=Scheme(3, 0)).best_combo(tumor, normal, params)
        monkeypatch.setattr(engine_mod, "_CHUNK_ELEMENTS", 7)
        got = SingleGpuEngine(scheme=Scheme(3, 0)).best_combo(tumor, normal, params)
        assert got.genes == ref.genes


class TestDegenerateInputs:
    def test_no_normal_samples(self):
        # F reduces to alpha*TP/Nt; solver must still run.
        rng = np.random.default_rng(3)
        t = rng.random((8, 20)) < 0.5
        n = np.zeros((8, 0), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        assert res.params.n_normal == 0
        assert all(c.tn == 0 for c in res.combinations)
        assert res.coverage > 0

    def test_single_tumor_sample(self):
        t = np.ones((5, 1), dtype=bool)
        n = np.zeros((5, 3), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        assert len(res.combinations) == 1
        assert res.uncovered == 0

    def test_all_zero_tumor(self):
        t = np.zeros((6, 10), dtype=bool)
        n = np.zeros((6, 10), dtype=bool)
        res = MultiHitSolver(hits=3).solve(t, n)
        assert res.combinations == []
        assert res.uncovered == 10

    def test_all_ones_everything(self):
        t = np.ones((6, 10), dtype=bool)
        n = np.ones((6, 10), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        # One combination (lex-smallest) covers everything; TN = 0.
        assert len(res.combinations) == 1
        assert res.combinations[0].genes == (0, 1)
        assert res.combinations[0].tn == 0

    def test_genes_exactly_hits(self):
        rng = np.random.default_rng(1)
        t = rng.random((4, 15)) < 0.6
        n = rng.random((4, 15)) < 0.1
        res = MultiHitSolver(hits=4).solve(t, n)
        assert all(c.genes == (0, 1, 2, 3) for c in res.combinations)

    def test_width_64_boundary(self):
        # Exactly one packed word, then exactly two.
        for s in (63, 64, 65, 128):
            rng = np.random.default_rng(s)
            t = rng.random((6, s)) < 0.5
            n = rng.random((6, s)) < 0.1
            ref = sequential_best_combo(t, n, 2, FScoreParams(n_tumor=s, n_normal=s))
            got = SingleGpuEngine(scheme=Scheme(1, 1)).best_combo(
                BitMatrix.from_dense(t),
                BitMatrix.from_dense(n),
                FScoreParams(n_tumor=s, n_normal=s),
            )
            assert got.genes == ref.genes


class TestRangeEdges:
    def test_single_thread_range(self, rng):
        t = rng.random((12, 30)) < 0.4
        n = rng.random((12, 30)) < 0.1
        params = FScoreParams(n_tumor=30, n_normal=30)
        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        # Thread 0 of 3x1 owns combos (0,1,2,l); compare to brute force.
        got = best_in_thread_range(SCHEME_3X1, 12, tumor, normal, params, 0, 1)

        best = None
        for l in range(3, 12):
            combo = (0, 1, 2, l)
            tp = int(np.logical_and.reduce(t[list(combo)], axis=0).sum())
            tn = 30 - int(np.logical_and.reduce(n[list(combo)], axis=0).sum())
            f = (0.1 * tp + tn) / 60
            if best is None or f > best[0] or (f == best[0] and combo < best[1]):
                best = (f, combo)
        assert got.genes == best[1]
        assert got.f == pytest.approx(best[0])

    def test_last_thread_range(self, rng):
        t = rng.random((12, 30)) < 0.4
        n = rng.random((12, 30)) < 0.1
        params = FScoreParams(n_tumor=30, n_normal=30)
        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        from repro.scheduling.workload import total_threads

        total = total_threads(SCHEME_3X1, 12)
        # The very last threads have empty inner loops (top index 11).
        got = best_in_thread_range(
            SCHEME_3X1, 12, tumor, normal, params, total - 1, total
        )
        assert got is None  # thread (9,10,11) has no l > 11
