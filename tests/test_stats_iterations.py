"""Tests for cohort statistics and the iteration-model fitter."""

import numpy as np
import pytest

from repro.data.stats import (
    cooccurrence_matrix,
    pairwise_log_odds,
    summarize_matrix,
)

from repro.perfmodel.iterations import fit_iteration_model
from repro.core.solver import MultiHitSolver


class TestSummary:
    def test_values(self):
        dense = np.array([[1, 1, 0], [0, 0, 0], [1, 0, 1]], dtype=bool)
        s = summarize_matrix(dense)
        assert s.n_genes == 3 and s.n_samples == 3
        assert s.mutation_rate == pytest.approx(4 / 9)
        assert s.mutations_per_sample_max == 2
        assert s.silent_genes == 1
        assert "silent" in s.describe()

    def test_accepts_gene_sample_matrix(self, tiny_cohort):
        s = summarize_matrix(tiny_cohort.tumor)
        assert s.n_genes == tiny_cohort.tumor.n_genes


class TestCooccurrence:
    def test_counts(self):
        dense = np.array([[1, 1, 0], [1, 0, 0], [0, 1, 1]], dtype=bool)
        c = cooccurrence_matrix(dense)
        assert c[0, 0] == 2  # diagonal = per-gene counts
        assert c[0, 1] == 1  # genes 0,1 share sample 0
        assert c[1, 2] == 0
        np.testing.assert_array_equal(c, c.T)

    def test_planted_combo_coocurs(self, tiny_cohort):
        lo = pairwise_log_odds(tiny_cohort.tumor)
        combo = tiny_cohort.planted[0]
        within = [lo[a, b] for a in combo for b in combo if a < b]
        # Genes of the same planted combination co-occur strongly.
        assert min(within) > 1.0

    def test_cross_combo_not_enriched(self, tiny_cohort):
        lo = pairwise_log_odds(tiny_cohort.tumor)
        a = tiny_cohort.planted[0][0]
        b = tiny_cohort.planted[1][0]
        within = lo[tiny_cohort.planted[0][0], tiny_cohort.planted[0][1]]
        across = lo[a, b]
        assert across < within

    def test_log_odds_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        dense = rng.random((6, 40)) < 0.3
        lo = pairwise_log_odds(dense)
        np.testing.assert_allclose(lo, lo.T)
        np.testing.assert_array_equal(np.diag(lo), 0.0)
        assert np.isfinite(lo).all()


class TestIterationFit:
    def test_fit_recovers_trajectory(self, rng):
        t = rng.random((12, 80)) < 0.4
        n = rng.random((12, 80)) < 0.1
        result = MultiHitSolver(hits=2).solve(t, n)
        fit = fit_iteration_model(result)
        assert fit.n_iterations == len(result.iterations)
        assert 0 < fit.cover_fraction < 1
        assert fit.rmse < result.params.n_tumor  # sane scale
        assert len(fit.empirical_fractions) == fit.n_iterations

    def test_fitted_model_plugs_into_jobmodel(self, rng):
        from repro.perfmodel.runtime import JobModel
        from repro.perfmodel.workloads import ACC
        from repro.scheduling.schemes import SCHEME_3X1

        t = rng.random((12, 60)) < 0.45
        n = rng.random((12, 60)) < 0.1
        result = MultiHitSolver(hits=2).solve(t, n)
        fit = fit_iteration_model(result)
        model = JobModel(scheme=SCHEME_3X1, iteration_model=fit.model)
        job = model.run(ACC, 2)
        assert len(job.iteration_s) == fit.n_iterations

    def test_empty_result(self):
        t = np.zeros((5, 6), dtype=bool)
        n = np.zeros((5, 6), dtype=bool)
        result = MultiHitSolver(hits=2).solve(t, n)
        fit = fit_iteration_model(result)
        assert fit.n_iterations == 1
        assert fit.cover_fraction == 0.0
