"""Tests for the thread-backed SimComm communicator."""

import operator

import pytest

from repro.cluster.comm import SimComm, SimCommWorld
from repro.cluster.runtime import SPMDRunner


class TestWorld:
    def test_needs_ranks(self):
        with pytest.raises(ValueError):
            SimCommWorld(0)

    def test_rank_range_checked(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            SimComm(world, 5)

    def test_introspection(self):
        world = SimCommWorld(3)
        comm = world.comm(1)
        assert comm.Get_rank() == 1
        assert comm.Get_size() == 3
        assert comm.size == 3


class TestPointToPoint:
    def test_send_recv(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send({"x": 42}, dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        results = SPMDRunner(2).run(prog)
        assert results[1] == {"x": 42}

    def test_tags_are_independent_channels(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            # Receive in the opposite order of sending: tags must match.
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        results = SPMDRunner(2).run(prog)
        assert results[1] == ("a", "b")

    def test_dest_validated(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            world.comm(0).send("x", dest=9)


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            data = {"k": [1, 2, 3]} if comm.Get_rank() == 0 else None
            return comm.bcast(data, root=0)

        results = SPMDRunner(4).run(prog)
        assert all(r == {"k": [1, 2, 3]} for r in results)

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.Get_rank() ** 2, root=0)

        results = SPMDRunner(4).run(prog)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_scatter(self):
        def prog(comm):
            objs = [f"part{i}" for i in range(3)] if comm.Get_rank() == 0 else None
            return comm.scatter(objs, root=0)

        results = SPMDRunner(3).run(prog)
        assert results == ["part0", "part1", "part2"]

    def test_scatter_validates_length(self):
        def prog(comm):
            objs = [1] if comm.Get_rank() == 0 else None
            return comm.scatter(objs, root=0)

        # The non-root rank is orphaned waiting for its part; the short
        # recv timeout surfaces both failures quickly.
        with pytest.raises(RuntimeError):
            SPMDRunner(2, recv_timeout_s=0.3).run(prog)

    def test_reduce_deterministic_order(self):
        def prog(comm):
            return comm.reduce(f"r{comm.Get_rank()}", op=operator.add, root=0)

        results = SPMDRunner(4).run(prog)
        assert results[0] == "r0r1r2r3"  # strict rank order

    def test_allreduce(self):
        def prog(comm):
            return comm.allreduce(comm.Get_rank() + 1, op=operator.mul)

        results = SPMDRunner(4).run(prog)
        assert results == [24, 24, 24, 24]

    def test_barrier(self):
        def prog(comm):
            comm.barrier()
            return comm.Get_rank()

        assert SPMDRunner(3).run(prog) == [0, 1, 2]

    def test_nonzero_root(self):
        def prog(comm):
            return comm.gather(comm.Get_rank(), root=2)

        results = SPMDRunner(3).run(prog)
        assert results[2] == [0, 1, 2]
        assert results[0] is None


class TestErrors:
    def test_rank_exception_propagates(self):
        def prog(comm):
            if comm.Get_rank() == 1:
                raise ValueError("boom")
            comm.barrier()
            return 1

        with pytest.raises(RuntimeError, match="rank 1"):
            SPMDRunner(2).run(prog)
