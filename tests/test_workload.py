"""Tests for the per-thread / per-level workload model (Fig. 2)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, SCHEME_4X1, Scheme
from repro.scheduling.workload import (
    level_range,
    level_thread_counts,
    level_work,
    thread_top_index,
    thread_work_array,
    total_threads,
    total_work,
    work_prefix_by_level,
)

ALL_SCHEMES = [Scheme(1, 1), Scheme(2, 1), SCHEME_2X2, SCHEME_3X1, SCHEME_4X1]


def brute_force_work(scheme, g):
    """Per-thread work by explicit enumeration."""
    out = []
    for combo in sorted(
        itertools.combinations(range(g), scheme.flattened),
        key=lambda t: tuple(reversed(t)),
    ):
        out.append(math.comb(g - 1 - combo[-1], scheme.inner))
    return np.array(out, dtype=float)


class TestThreadWork:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_matches_brute_force(self, scheme):
        g = 12
        lam = np.arange(total_threads(scheme, g), dtype=np.uint64)
        np.testing.assert_array_equal(
            thread_work_array(scheme, g, lam), brute_force_work(scheme, g)
        )

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_sums_to_total_work(self, scheme):
        g = 14
        lam = np.arange(total_threads(scheme, g), dtype=np.uint64)
        assert thread_work_array(scheme, g, lam).sum() == total_work(scheme, g)

    def test_fig2_spread(self):
        # Paper Fig. 2: at G=10 the 2x2 spread is C(8,2)=28, the 3x1 spread is 7.
        g = 10
        w2 = thread_work_array(SCHEME_2X2, g, np.arange(45, dtype=np.uint64))
        w3 = thread_work_array(SCHEME_3X1, g, np.arange(120, dtype=np.uint64))
        assert w2.max() == 28 and w2.min() == 0
        assert w3.max() == 7 and w3.min() == 0

    def test_work_decreases_with_level(self):
        g = 30
        works = [level_work(SCHEME_3X1, g, m) for m in range(2, g - 1)]
        assert works == sorted(works, reverse=True)


class TestLevels:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_level_ranges_tile_the_grid(self, scheme):
        g = 15
        covered = 0
        for m in range(g):
            lo, hi = level_range(scheme, m)
            assert lo == covered or hi == lo  # contiguous (empty levels allowed)
            covered = max(covered, hi)
        assert covered == total_threads(scheme, g)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_level_counts(self, scheme):
        g = 15
        counts = level_thread_counts(scheme, g)
        assert counts.sum() == total_threads(scheme, g)
        for m in range(g):
            lo, hi = level_range(scheme, m)
            assert hi - lo == counts[m]

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_top_index_consistent_with_ranges(self, scheme):
        g = 13
        lam = np.arange(total_threads(scheme, g), dtype=np.uint64)
        tops = thread_top_index(scheme, lam)
        for m in range(g):
            lo, hi = level_range(scheme, m)
            if hi > lo:
                assert (tops[lo:hi] == m).all()


class TestPrefix:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_prefix_matches_cumsum(self, scheme):
        g = 16
        prefix = work_prefix_by_level(scheme, g)
        lam = np.arange(total_threads(scheme, g), dtype=np.uint64)
        work = thread_work_array(scheme, g, lam)
        for m in range(g):
            lo, _ = level_range(scheme, m)
            assert prefix[m] == int(work[:lo].sum())
        assert prefix[g] == total_work(scheme, g)

    def test_prefix_exact_at_paper_scale(self):
        # Float64 would round C(19411, 4); the prefix must stay exact ints.
        prefix = work_prefix_by_level(SCHEME_3X1, 19411)
        assert prefix[-1] == math.comb(19411, 4)

    @given(st.integers(min_value=4, max_value=60))
    def test_hypothesis_vandermonde(self, g):
        # Sum over levels of count*work telescopes to C(g, hits).
        assert work_prefix_by_level(SCHEME_3X1, g)[-1] == math.comb(g, 4)
