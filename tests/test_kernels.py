"""Tests for the vectorized scoring kernels."""

import itertools

import numpy as np
import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.core.fscore import FScoreParams
from repro.core.kernels import (
    DEFAULT_WORD_STRIDE,
    WORD_STRIDE,
    KernelCounters,
    best_of,
    fused_pair_popcount,
    resolve_word_stride,
    score_combos,
    score_combos_reference,
    validate_word_stride,
)


class TestScoreCombos:
    def test_matches_dense_reference(self, small_matrices):
        t, n, params = small_matrices
        tumor = BitMatrix.from_dense(t)
        normal = BitMatrix.from_dense(n)
        combos = np.array(list(itertools.combinations(range(8), 3)))
        f, tp, tn = score_combos(tumor, normal, combos, params)
        for row, fv, tpv, tnv in zip(combos, f, tp, tn):
            e_tp = int(np.logical_and.reduce(t[row], axis=0).sum())
            e_tn = params.n_normal - int(np.logical_and.reduce(n[row], axis=0).sum())
            assert tpv == e_tp
            assert tnv == e_tn
            assert fv == pytest.approx((0.1 * e_tp + e_tn) / params.denominator)

    def test_empty_block(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        f, tp, tn = score_combos(tumor, normal, np.empty((0, 3), dtype=int), params)
        assert len(f) == len(tp) == len(tn) == 0

    def test_rejects_1d(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        with pytest.raises(ValueError):
            score_combos(tumor, normal, np.array([1, 2, 3]), params)

    def test_does_not_mutate_matrices(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        before_t = tumor.words.copy()
        before_n = normal.words.copy()
        score_combos(tumor, normal, np.array([[0, 1, 2], [3, 4, 5]]), params)
        np.testing.assert_array_equal(tumor.words, before_t)
        np.testing.assert_array_equal(normal.words, before_n)

    def test_counters_accumulate(self, small_bitmatrices):
        tumor, normal, params = small_bitmatrices
        counters = KernelCounters()
        combos = np.array([[0, 1], [2, 3], [4, 5]])
        score_combos(tumor, normal, combos, params, counters)
        assert counters.combos_scored == 3
        assert counters.word_reads == 3 * 2 * (tumor.n_words + normal.n_words)
        score_combos(tumor, normal, combos, params, counters)
        assert counters.combos_scored == 6

    def test_counters_merge(self):
        a = KernelCounters(combos_scored=1, word_reads=2, word_ops=3)
        b = KernelCounters(combos_scored=10, word_reads=20, word_ops=30)
        a.merge(b)
        assert (a.combos_scored, a.word_reads, a.word_ops) == (11, 22, 33)

    def test_counters_merge_fusion_fields(self):
        a = KernelCounters(supers_skipped=1, decode_strides=2, inner_tables_built=3)
        b = KernelCounters(supers_skipped=10, decode_strides=20, inner_tables_built=30)
        a.merge(b)
        assert (a.supers_skipped, a.decode_strides, a.inner_tables_built) == (
            11,
            22,
            33,
        )


class TestFusedKernels:
    """The word-stride fused paths must be bit-identical to the
    single-shot reference — popcounts are exact integers, so any drift
    is a bug, not rounding."""

    def _random_matrices(self, rng, n_genes, n_samples):
        t = rng.random((n_genes, n_samples)) < 0.35
        n = rng.random((n_genes, n_samples)) < 0.15
        tumor = BitMatrix.from_dense(t)
        normal = BitMatrix.from_dense(n)
        params = FScoreParams(n_tumor=n_samples, n_normal=n_samples, alpha=0.1)
        return tumor, normal, params

    @pytest.mark.parametrize("n_samples", [70, 64 * WORD_STRIDE + 130])
    def test_score_combos_matches_reference(self, n_samples):
        # The wide case spans multiple word strides (n_words > WORD_STRIDE),
        # so the fused accumulator actually folds across stride slices.
        rng = np.random.default_rng(42)
        tumor, normal, params = self._random_matrices(rng, 30, n_samples)
        for h in (2, 3, 4):
            combos = np.sort(
                rng.choice(30, size=(50, h), replace=True), axis=1
            )
            combos = combos[(np.diff(combos, axis=1) > 0).all(axis=1)]
            f, tp, tn = score_combos(tumor, normal, combos, params)
            rf, rtp, rtn = score_combos_reference(tumor, normal, combos, params)
            np.testing.assert_array_equal(tp, rtp)
            np.testing.assert_array_equal(tn, rtn)
            np.testing.assert_array_equal(f, rf)

    @pytest.mark.parametrize("n_words", [1, WORD_STRIDE - 1, WORD_STRIDE, WORD_STRIDE + 3])
    def test_fused_pair_popcount_matches_broadcast(self, n_words):
        rng = np.random.default_rng(7)
        base = rng.integers(0, 1 << 63, size=(13, n_words), dtype=np.uint64)
        inner = rng.integers(0, 1 << 63, size=(9, n_words), dtype=np.uint64)
        got = fused_pair_popcount(base, inner)
        want = (
            np.bitwise_count(base[:, None, :] & inner[None, :, :])
            .sum(axis=2)
            .astype(np.int64)
        )
        np.testing.assert_array_equal(got, want)


class TestBestOf:
    def test_empty(self):
        assert best_of(np.empty((0, 2)), np.array([]), np.array([]), np.array([])) is None

    def test_picks_max(self):
        combos = np.array([[0, 1], [0, 2], [1, 2]])
        f = np.array([0.1, 0.9, 0.5])
        best = best_of(combos, f, np.array([1, 2, 3]), np.array([4, 5, 6]))
        assert best.genes == (0, 2)
        assert best.f == pytest.approx(0.9)
        assert (best.tp, best.tn) == (2, 5)

    def test_tie_break_lexicographic(self):
        combos = np.array([[1, 3], [0, 9], [0, 5]])
        f = np.array([0.5, 0.5, 0.5])
        best = best_of(combos, f, np.zeros(3, int), np.zeros(3, int))
        assert best.genes == (0, 5)

    def test_many_ties_vectorized_lexmin(self):
        # Regression for the tie-break: thousands of tied rows must
        # resolve to the lexicographically smallest tuple (and recover
        # that row's tp/tn), without a Python min() over the tie set.
        rng = np.random.default_rng(3)
        combos = np.sort(
            rng.integers(0, 50, size=(5000, 3), dtype=np.int64), axis=1
        )
        combos = combos[(np.diff(combos, axis=1) > 0).all(axis=1)]
        f = np.full(len(combos), 0.25)
        f[::7] = 0.75  # a large tied subset at the max
        tied = combos[f == 0.75]
        want = min(map(tuple, tied.tolist()))
        tp = np.arange(len(combos))
        tn = np.arange(len(combos)) + 1000
        best = best_of(combos, f, tp, tn)
        assert best.genes == want
        row = int(np.flatnonzero((combos == np.array(want)).all(axis=1))[0])
        assert (best.tp, best.tn) == (row, row + 1000)

    def test_all_rows_tied(self):
        combos = np.array([[2, 9], [0, 3], [0, 1], [5, 6]])
        f = np.full(4, 0.5)
        best = best_of(combos, f, np.arange(4), np.arange(4))
        assert best.genes == (0, 1)
        assert best.tp == 2


class TestWordStride:
    def test_resolve_default_and_validation(self):
        assert resolve_word_stride(None) == DEFAULT_WORD_STRIDE == WORD_STRIDE
        assert resolve_word_stride(3) == 3
        for bad in (0, -8):
            with pytest.raises(ValueError):
                resolve_word_stride(bad)

    def test_solver_policy_multiple_of_8(self):
        for ok in (8, 64, 4096):
            assert validate_word_stride(ok) == ok
        for bad in (0, -8, 3, 12, 65):
            with pytest.raises(ValueError):
                validate_word_stride(bad)

    @pytest.mark.parametrize("stride", [1, 8, 4096])
    @pytest.mark.parametrize("sparse", [False, True])
    def test_bit_identity_across_strides(self, stride, sparse):
        # The stride is a traffic knob, never a results knob: popcounts
        # are exact at any slice width (1 = word-at-a-time, 4096 >> any
        # matrix width here = single-shot).
        rng = np.random.default_rng(11)
        t = rng.random((20, 300)) < 0.3
        n = rng.random((20, 300)) < 0.1
        tumor = BitMatrix.from_dense(t)
        normal = BitMatrix.from_dense(n)
        params = FScoreParams(n_tumor=300, n_normal=300)
        combos = np.array(list(itertools.combinations(range(20), 3))[:200])
        f, tp, tn = score_combos(
            tumor, normal, combos, params, word_stride=stride, sparse=sparse
        )
        rf, rtp, rtn = score_combos_reference(tumor, normal, combos, params)
        np.testing.assert_array_equal(tp, rtp)
        np.testing.assert_array_equal(tn, rtn)
        np.testing.assert_array_equal(f, rf)
