"""Tests for the dataset registry and the experiment runner."""

import numpy as np
import pytest

from repro.data.registry import DATASETS, dataset, dataset_names
from repro.experiments.runner import ExperimentOutcome, compose_report, run_all


class TestRegistry:
    def test_names_listed(self):
        names = dataset_names()
        assert "demo" in names and "brca-mini" in names
        assert DATASETS == names

    def test_deterministic(self):
        a = dataset("demo")
        b = dataset("demo")
        np.testing.assert_array_equal(a.tumor.values, b.tumor.values)
        assert a.planted == b.planted

    def test_catalog_backed_entries_use_paper_counts(self):
        brca = dataset("brca-mini")
        assert brca.tumor.n_samples == 911
        assert brca.normal.n_samples == 1019
        assert brca.config.hits == 4

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            dataset("nope")

    def test_all_entries_buildable_and_solvable(self):
        from repro.core.solver import MultiHitSolver

        for name in dataset_names():
            c = dataset(name)
            assert c.tumor.n_genes >= c.config.hits
            if name == "tiny-2hit":
                res = MultiHitSolver(hits=2, max_iterations=2).solve(
                    c.tumor.values, c.normal.values
                )
                assert res.combinations


class TestRunner:
    def test_subset_run(self):
        outcomes = run_all(names=["fig1", "fig2", "reduction-memory"])
        assert [o.name for o in outcomes] == ["fig1", "fig2", "reduction-memory"]
        assert all(o.ok for o in outcomes)
        assert all(o.seconds >= 0 for o in outcomes)

    def test_unknown_experiment_captured(self):
        outcomes = run_all(names=["nope"])
        assert not outcomes[0].ok
        assert outcomes[0].error == "unknown experiment"

    def test_skip(self):
        outcomes = run_all(names=["fig1", "fig2"], skip={"fig2"})
        assert [o.name for o in outcomes] == ["fig1"]

    def test_compose_report(self):
        outcomes = [
            ExperimentOutcome("fig2", "line1\nline2", None, 0.1),
            ExperimentOutcome("broken", None, "ValueError: x", 0.0),
        ]
        text = compose_report(outcomes)
        assert "1/2 experiments succeeded" in text
        assert "## fig2" in text and "line1" in text
        assert "FAILED: ValueError: x" in text


class TestCliIntegration:
    def test_experiment_output_file(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "fig2.txt"
        assert main(["experiment", "fig2", "--output", str(out)]) == 0
        assert "Fig 2" in out.read_text()

    def test_solve_dataset_flag(self, capsys):
        from repro.cli import main

        assert main(["solve", "--dataset", "tiny-2hit"]) == 0
        out = capsys.readouterr().out
        assert "16 genes" in out
