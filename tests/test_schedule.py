"""Tests for the Schedule container."""

import numpy as np
import pytest

from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import SCHEME_3X1, Scheme
from repro.scheduling.workload import thread_work_array, total_threads, total_work


def make(boundaries, scheme=SCHEME_3X1, g=12):
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries))


class TestValidation:
    def test_must_span_grid(self):
        t = total_threads(SCHEME_3X1, 12)
        with pytest.raises(ValueError):
            make([0, t - 1])
        with pytest.raises(ValueError):
            make([1, t])

    def test_must_be_monotone(self):
        t = total_threads(SCHEME_3X1, 12)
        with pytest.raises(ValueError):
            make([0, 50, 40, t])

    def test_needs_one_partition(self):
        with pytest.raises(ValueError):
            make([0])

    def test_empty_partitions_allowed(self):
        t = total_threads(SCHEME_3X1, 12)
        s = make([0, 0, t, t])
        assert s.n_parts == 3
        assert s.thread_range(0) == (0, 0)


class TestWorkAccounting:
    @pytest.mark.parametrize("cuts", [[0.5], [0.1, 0.35, 0.8], [0.25, 0.5, 0.75]])
    def test_work_per_part_matches_brute_force(self, cuts):
        g = 14
        scheme = SCHEME_3X1
        t = total_threads(scheme, g)
        boundaries = [0] + [int(t * c) for c in cuts] + [t]
        s = make(boundaries, scheme, g)
        work = thread_work_array(scheme, g, np.arange(t, dtype=np.uint64))
        for p in range(s.n_parts):
            lo, hi = s.thread_range(p)
            assert s.work_per_part()[p] == int(work[lo:hi].sum())

    def test_total_work_conserved(self):
        g = 14
        t = total_threads(SCHEME_3X1, g)
        s = make([0, t // 3, 2 * t // 3, t], g=g)
        assert sum(s.work_per_part()) == total_work(SCHEME_3X1, g)
        s.validate()

    def test_thread_counts(self):
        g = 12
        t = total_threads(SCHEME_3X1, g)
        s = make([0, 10, t], g=g)
        np.testing.assert_array_equal(s.thread_counts(), [10, t - 10])

    def test_imbalance_single_part_is_one(self):
        g = 12
        t = total_threads(SCHEME_3X1, g)
        assert make([0, t], g=g).imbalance() == 1.0

    def test_describe_mentions_policy(self):
        g = 12
        t = total_threads(SCHEME_3X1, g)
        s = Schedule(scheme=SCHEME_3X1, g=g, boundaries=(0, t), policy="equiarea")
        assert "equiarea" in s.describe()

    def test_work_for_2x2_scheme(self):
        scheme = Scheme(2, 2)
        g = 12
        t = total_threads(scheme, g)
        s = make([0, t // 2, t], scheme, g)
        work = thread_work_array(scheme, g, np.arange(t, dtype=np.uint64))
        assert s.work_per_part() == [
            int(work[: t // 2].sum()),
            int(work[t // 2 :].sum()),
        ]
