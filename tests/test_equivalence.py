"""Cross-engine equivalence: the library's central correctness property.

Every engine (sequential oracle, vectorized single-GPU with any scheme,
distributed with any schedule, SPMD under SimComm) must return the
identical greedy output — same combinations, same F values, same cover
sets — on arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.memopt import MemoryConfig
from repro.core.sequential import sequential_solve
from repro.core.solver import MultiHitSolver
from repro.scheduling.schemes import scheme_for


def signature(combos):
    return [(c.genes, round(c.f, 12), c.tp, c.tn) for c in combos]


@st.composite
def instances(draw):
    g = draw(st.integers(min_value=6, max_value=12))
    nt = draw(st.integers(min_value=3, max_value=25))
    nn = draw(st.integers(min_value=1, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    density_t = draw(st.floats(min_value=0.1, max_value=0.7))
    density_n = draw(st.floats(min_value=0.0, max_value=0.4))
    rng = np.random.default_rng(seed)
    return (
        rng.random((g, nt)) < density_t,
        rng.random((g, nn)) < density_n,
    )


class TestGreedyEquivalence:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instances(), st.integers(min_value=2, max_value=4))
    def test_single_engine_equals_oracle(self, instance, hits):
        t, n = instance
        if t.shape[0] <= hits:
            return
        ref = signature(sequential_solve(t, n, hits))
        got = signature(MultiHitSolver(hits=hits).solve(t, n).combinations)
        assert got == ref

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instances())
    def test_distributed_equals_oracle(self, instance):
        t, n = instance
        hits = 3
        if t.shape[0] <= hits:
            return
        ref = signature(sequential_solve(t, n, hits))
        got = signature(
            MultiHitSolver(hits=hits, backend="distributed", n_nodes=3, gpus_per_node=2)
            .solve(t, n)
            .combinations
        )
        assert got == ref

    @pytest.mark.parametrize("flattened", [1, 2, 3, 4])
    def test_every_scheme_same_greedy_output(self, rng, flattened):
        t = rng.random((11, 30)) < 0.4
        n = rng.random((11, 25)) < 0.15
        hits = 4
        ref = signature(MultiHitSolver(hits=hits).solve(t, n).combinations)
        got = signature(
            MultiHitSolver(hits=hits, scheme=scheme_for(hits, flattened))
            .solve(t, n)
            .combinations
        )
        assert got == ref

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instances())
    def test_splice_equals_mask(self, instance):
        t, n = instance
        if t.shape[0] <= 2:
            return
        a = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=True)).solve(t, n)
        b = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=False)).solve(t, n)
        assert signature(a.combinations) == signature(b.combinations)
        assert a.uncovered == b.uncovered
