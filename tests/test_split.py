"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.data.matrices import GeneSampleMatrix
from repro.data.split import train_test_split


def matrix(n_samples=100, n_genes=5, seed=0):
    rng = np.random.default_rng(seed)
    return GeneSampleMatrix(
        rng.random((n_genes, n_samples)) < 0.5,
        tuple(f"g{i}" for i in range(n_genes)),
        tuple(f"s{i}" for i in range(n_samples)),
    )


class TestSplit:
    def test_75_25_partition(self):
        m = matrix(100)
        train, test = train_test_split(m, 0.75, seed=1)
        assert train.n_samples == 75
        assert test.n_samples == 25
        assert set(train.sample_ids) | set(test.sample_ids) == set(m.sample_ids)
        assert not set(train.sample_ids) & set(test.sample_ids)

    def test_columns_preserved(self):
        m = matrix(40)
        train, test = train_test_split(m, 0.5, seed=2)
        for part in (train, test):
            for k, sid in enumerate(part.sample_ids):
                orig = m.sample_ids.index(sid)
                np.testing.assert_array_equal(part.values[:, k], m.values[:, orig])

    def test_deterministic(self):
        m = matrix(60)
        a = train_test_split(m, 0.75, seed=7)
        b = train_test_split(m, 0.75, seed=7)
        assert a[0].sample_ids == b[0].sample_ids

    def test_seed_changes_split(self):
        m = matrix(60)
        a = train_test_split(m, 0.75, seed=7)
        b = train_test_split(m, 0.75, seed=8)
        assert a[0].sample_ids != b[0].sample_ids

    def test_both_sides_nonempty_even_extreme(self):
        m = matrix(10)
        train, test = train_test_split(m, 0.999, seed=0)
        assert test.n_samples >= 1
        train, test = train_test_split(m, 0.001, seed=0)
        assert train.n_samples >= 1

    def test_validation(self):
        m = matrix(10)
        with pytest.raises(ValueError):
            train_test_split(m, 0.0)
        with pytest.raises(ValueError):
            train_test_split(m, 1.0)
        with pytest.raises(ValueError):
            train_test_split(matrix(1), 0.5)
