"""Tests for generic combinatorial-number-system decoding."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.decode import combos_from_linear, top_index_array


class TestTopIndex:
    def test_order1_is_identity(self):
        lam = np.arange(100)
        np.testing.assert_array_equal(top_index_array(lam, 1), lam)

    def test_matches_definition(self):
        for order in (2, 3, 4, 5):
            lam = np.arange(0, 2000, 7)
            got = top_index_array(lam, order)
            for l0, m in zip(lam, got):
                assert math.comb(int(m), order) <= l0 < math.comb(int(m) + 1, order)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            top_index_array(np.array([0]), 0)
        with pytest.raises(ValueError):
            top_index_array(np.array([-1]), 2)

    @given(
        st.integers(min_value=0, max_value=10**15),
        st.integers(min_value=1, max_value=6),
    )
    def test_hypothesis_bracket(self, lam, order):
        m = int(top_index_array(np.array([lam]), order)[0])
        assert math.comb(m, order) <= lam < math.comb(m + 1, order)


class TestCombosFromLinear:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_exhaustive_colex_order(self, order):
        g = 12
        expected = sorted(
            itertools.combinations(range(g), order), key=lambda t: tuple(reversed(t))
        )
        got = combos_from_linear(np.arange(len(expected)), order)
        assert [tuple(r) for r in got] == expected

    def test_rows_strictly_increasing(self):
        got = combos_from_linear(np.arange(0, 100000, 997), 4)
        assert (np.diff(got, axis=1) > 0).all()

    def test_rank_roundtrip_large(self):
        lam = np.array([0, 10**6, 10**12, 10**15])
        got = combos_from_linear(lam, 4)
        for l0, row in zip(lam, got):
            rank = sum(math.comb(int(row[r]), r + 1) for r in range(4))
            assert rank == l0
