"""Tests for generic combinatorial-number-system decoding."""

import itertools
import math
import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.decode import (
    binomial_clamped,
    combos_from_linear,
    top_index_array,
)


def _encode(combo) -> int:
    """Combinatorial-number-system rank of a strictly increasing tuple."""
    return sum(math.comb(int(c), r + 1) for r, c in enumerate(combo))


class TestBinomialClamped:
    def test_exact_small(self):
        for order in (1, 2, 3, 4, 5):
            x = np.arange(0, 200)
            got = binomial_clamped(x, order)
            for xi, gi in zip(x, got):
                assert int(gi) == math.comb(int(xi), order)

    def test_exact_where_naive_product_wraps(self):
        # The naive falling product x*(x-1)*(x-2)*(x-3) wraps int64 from
        # x ~ 55k, but C(x, 4) itself still fits; divide-as-you-go must
        # return the exact value there.
        for x in (55_000, 60_000, 80_000):
            got = int(binomial_clamped(np.array([x]), 4)[0])
            assert got == math.comb(x, 4)

    def test_clamps_instead_of_wrapping(self):
        # Lanes whose intermediates would overflow clamp *to* the guard
        # (never wrap negative); every clamped lane's true value sits
        # above the guard, so boundary comparisons stay exact.
        x = np.array([10, 60_000, 2_000_000, 40_000_000])
        got = binomial_clamped(x, 4)
        assert int(got[0]) == math.comb(10, 4)
        assert int(got[-1]) == 1 << 60  # C(4e7, 4) ~ 1e29 >> guard
        assert (got > 0).all()
        assert (got[1:] >= got[:-1]).all()
        for xi, gi in zip(x, got):
            if int(gi) == 1 << 60:
                assert math.comb(int(xi), 4) > 1 << 60

    def test_rejects_unsupported_order(self):
        with pytest.raises(ValueError):
            binomial_clamped(np.array([10]), 9)


class TestTopIndex:
    def test_order1_is_identity(self):
        lam = np.arange(100)
        np.testing.assert_array_equal(top_index_array(lam, 1), lam)

    def test_matches_definition(self):
        for order in (2, 3, 4, 5):
            lam = np.arange(0, 2000, 7)
            got = top_index_array(lam, order)
            for l0, m in zip(lam, got):
                assert math.comb(int(m), order) <= l0 < math.comb(int(m) + 1, order)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            top_index_array(np.array([0]), 0)
        with pytest.raises(ValueError):
            top_index_array(np.array([-1]), 2)

    @given(
        st.integers(min_value=0, max_value=10**15),
        st.integers(min_value=1, max_value=6),
    )
    def test_hypothesis_bracket(self, lam, order):
        m = int(top_index_array(np.array([lam]), order)[0])
        assert math.comb(m, order) <= lam < math.comb(m + 1, order)


class TestCombosFromLinear:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_exhaustive_colex_order(self, order):
        g = 12
        expected = sorted(
            itertools.combinations(range(g), order), key=lambda t: tuple(reversed(t))
        )
        got = combos_from_linear(np.arange(len(expected)), order)
        assert [tuple(r) for r in got] == expected

    def test_rows_strictly_increasing(self):
        got = combos_from_linear(np.arange(0, 100000, 997), 4)
        assert (np.diff(got, axis=1) > 0).all()

    def test_rank_roundtrip_large(self):
        lam = np.array([0, 10**6, 10**12, 10**15])
        got = combos_from_linear(lam, 4)
        for l0, row in zip(lam, got):
            rank = sum(math.comb(int(row[r]), r + 1) for r in range(4))
            assert rank == l0

    @pytest.mark.parametrize("order", [1, 2, 3, 4])
    @pytest.mark.parametrize("m", [8, 33, 1000, 60_000])
    def test_boundary_roundtrip(self, order, m):
        # lambda = 0, C(m, h) - 1 (last id below gene count m), and
        # C(m, h) (first id whose top index is m itself).
        total = math.comb(m, order)
        lam = np.array([0, total - 1, total])
        got = combos_from_linear(lam, order)
        assert got[0].tolist() == list(range(order))
        assert got[1].tolist() == list(range(m - order, m))
        assert got[2].tolist() == list(range(order - 1)) + [m]
        for l0, row in zip(lam, got):
            assert _encode(row) == int(l0)

    @given(
        st.integers(min_value=1, max_value=4).flatmap(
            lambda order: st.tuples(
                st.just(order),
                st.lists(
                    st.integers(min_value=0, max_value=70_000),
                    min_size=order,
                    max_size=order,
                    unique=True,
                ),
            )
        )
    )
    def test_encode_decode_roundtrip(self, order_and_genes):
        order, genes = order_and_genes
        combo = sorted(genes)
        got = combos_from_linear(np.array([_encode(combo)]), order)
        assert got[0].tolist() == combo


class TestOverflowRegression:
    def test_order4_decode_at_60k_genes_terminates(self):
        # Regression: _falling_product wrapped int64 negative around
        # C(55000, 4), making the repair loop's `C(m+1) <= lam` test
        # permanently true — an infinite spin.  Run the decode on a
        # worker thread with a hard join timeout so a reintroduced hang
        # fails the test instead of wedging the suite.
        lam = np.array([math.comb(60_000, 4) - 1])
        result = []

        def work():
            result.append(combos_from_linear(lam, 4))

        t = threading.Thread(target=work, daemon=True)
        t.start()
        t.join(timeout=10.0)
        assert not t.is_alive(), "order-4 decode at 60k genes hung"
        assert result[0][0].tolist() == [59_996, 59_997, 59_998, 59_999]

    def test_top_index_rejects_lambda_at_guard(self):
        with pytest.raises(ValueError):
            top_index_array(np.array([1 << 60]), 4)
