"""Tests for the SPMD rank program (the real distributed code path)."""

import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.mpi_program import spmd_best_combo
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.equidistance import equidistance_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1


@pytest.fixture
def instance(rng):
    t = rng.random((16, 40)) < 0.35
    n = rng.random((16, 30)) < 0.15
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=40, n_normal=30),
    )


class TestSpmdSolve:
    @pytest.mark.parametrize("n_ranks,gpr", [(1, 6), (2, 3), (4, 2)])
    def test_matches_single_engine(self, instance, n_ranks, gpr):
        tumor, normal, params = instance
        schedule = equiarea_schedule(SCHEME_3X1, 16, n_ranks * gpr)
        got = spmd_best_combo(n_ranks, schedule, tumor, normal, params, gpus_per_rank=gpr)
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        assert got.genes == ref.genes and got.f == ref.f

    def test_equidistance_schedule_same_winner(self, instance):
        tumor, normal, params = instance
        sched = equidistance_schedule(SCHEME_2X2, 16, 6)
        got = spmd_best_combo(3, sched, tumor, normal, params, gpus_per_rank=2)
        ref = SingleGpuEngine(scheme=SCHEME_2X2).best_combo(tumor, normal, params)
        assert got.genes == ref.genes

    def test_all_ranks_agree(self, instance):
        # spmd_best_combo itself asserts agreement; exercise a config
        # where some ranks have empty partitions.
        tumor, normal, params = instance
        sched = equiarea_schedule(SCHEME_3X1, 16, 8)
        got = spmd_best_combo(8, sched, tumor, normal, params, gpus_per_rank=1)
        assert got is not None
