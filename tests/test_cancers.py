"""Tests for the cancer-type catalog."""

import pytest

from repro.data.cancers import CANCER_CATALOG, cancer, four_hit_cancers


class TestCatalog:
    def test_thirty_one_types(self):
        assert len(CANCER_CATALOG) == 31

    def test_eleven_four_hit(self):
        fh = four_hit_cancers()
        assert len(fh) == 11
        assert all(c.estimated_hits >= 4 for c in fh)

    def test_paper_exact_values(self):
        brca = cancer("BRCA")
        assert brca.n_tumor == 911  # stated in Section IV
        assert brca.n_genes == 19411  # stated in Section III-E
        lgg = cancer("LGG")
        assert lgg.n_tumor == 532 and lgg.n_normal == 329  # Fig. 10 text

    def test_acc_is_smallest(self):
        acc = cancer("ACC")
        assert acc.n_tumor <= min(c.n_tumor for c in four_hit_cancers())

    def test_esca_present_and_four_hit(self):
        # ESCA is the 2x2 scaling counterexample in Section IV-D.
        assert cancer("ESCA").four_hit

    def test_lookup_case_insensitive(self):
        assert cancer("brca") is cancer("BRCA")

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown cancer"):
            cancer("XXXX")

    def test_all_fields_sane(self):
        for c in CANCER_CATALOG.values():
            assert c.n_tumor > 0
            assert c.n_normal > 0
            assert c.n_genes > 1000
            assert 2 <= c.estimated_hits <= 9
