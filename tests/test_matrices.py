"""Tests for the labeled GeneSampleMatrix."""

import numpy as np
import pytest

from repro.data.matrices import GeneSampleMatrix


def make(g=4, s=6, seed=0):
    rng = np.random.default_rng(seed)
    return GeneSampleMatrix(
        rng.random((g, s)) < 0.5,
        tuple(f"g{i}" for i in range(g)),
        tuple(f"s{i}" for i in range(s)),
    )


class TestValidation:
    def test_label_lengths_checked(self):
        with pytest.raises(ValueError):
            GeneSampleMatrix(np.zeros((2, 3), dtype=bool), ("a",), ("x", "y", "z"))
        with pytest.raises(ValueError):
            GeneSampleMatrix(np.zeros((2, 3), dtype=bool), ("a", "b"), ("x",))

    def test_must_be_2d(self):
        with pytest.raises(ValueError):
            GeneSampleMatrix(np.zeros(3, dtype=bool), ("a", "b", "c"), ())


class TestOps:
    def test_to_bitmatrix_roundtrip(self):
        m = make()
        np.testing.assert_array_equal(m.to_bitmatrix().to_dense(), m.values)

    def test_select_samples(self):
        m = make(s=6)
        sub = m.select_samples(np.array([0, 3, 5]))
        assert sub.sample_ids == ("s0", "s3", "s5")
        np.testing.assert_array_equal(sub.values, m.values[:, [0, 3, 5]])

    def test_gene_index(self):
        m = make()
        assert m.gene_index("g2") == 2
        with pytest.raises(KeyError):
            m.gene_index("nope")

    def test_mutation_frequency(self):
        values = np.array([[1, 1, 0, 0], [1, 0, 0, 0]], dtype=bool)
        m = GeneSampleMatrix(values, ("a", "b"), ("w", "x", "y", "z"))
        np.testing.assert_allclose(m.mutation_frequency(), [0.5, 0.25])

    def test_empty_samples_frequency(self):
        m = GeneSampleMatrix(np.zeros((2, 0), dtype=bool), ("a", "b"), ())
        np.testing.assert_array_equal(m.mutation_frequency(), [0.0, 0.0])
