"""Tests for the F-score (Equation 1)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fscore import DEFAULT_ALPHA, FScoreParams, fscore


class TestParams:
    def test_defaults(self):
        p = FScoreParams(n_tumor=10, n_normal=20)
        assert p.alpha == DEFAULT_ALPHA == 0.1
        assert p.denominator == 30.0

    def test_validation(self):
        # Zero tumor samples is legal (empty cohorts solve trivially);
        # negative counts are not.
        assert FScoreParams(n_tumor=0, n_normal=5).n_tumor == 0
        with pytest.raises(ValueError):
            FScoreParams(n_tumor=-1, n_normal=5)
        with pytest.raises(ValueError):
            FScoreParams(n_tumor=5, n_normal=-1)
        with pytest.raises(ValueError):
            FScoreParams(n_tumor=5, n_normal=5, alpha=-0.5)

    def test_frozen(self):
        p = FScoreParams(n_tumor=10, n_normal=20)
        with pytest.raises(AttributeError):
            p.alpha = 1.0


class TestFScore:
    def test_equation_one(self):
        p = FScoreParams(n_tumor=40, n_normal=60)
        # F = (0.1 * TP + TN) / (Nt + Nn)
        assert fscore(10, 50, p) == pytest.approx((0.1 * 10 + 50) / 100)

    def test_perfect_combination(self):
        p = FScoreParams(n_tumor=40, n_normal=60)
        assert fscore(40, 60, p) == pytest.approx((4 + 60) / 100)

    def test_vectorized(self):
        p = FScoreParams(n_tumor=10, n_normal=10)
        tp = np.array([0, 5, 10])
        tn = np.array([10, 5, 0])
        np.testing.assert_allclose(fscore(tp, tn, p), (0.1 * tp + tn) / 20.0)

    def test_tn_dominates_tp(self):
        # The alpha penalty means one true negative outweighs one true
        # positive (the algorithm's documented bias correction).
        p = FScoreParams(n_tumor=50, n_normal=50)
        assert fscore(1, 0, p) < fscore(0, 1, p)

    @given(
        st.integers(min_value=1, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_hypothesis_monotone(self, nt, nn, tp, tn):
        p = FScoreParams(n_tumor=nt, n_normal=max(nn, 1))
        tp = min(tp, nt)
        tn = min(tn, max(nn, 1))
        base = float(fscore(tp, tn, p))
        if tp + 1 <= nt:
            assert float(fscore(tp + 1, tn, p)) > base
        if tn + 1 <= max(nn, 1):
            assert float(fscore(tp, tn + 1, p)) > base

    def test_bounded_by_max(self):
        p = FScoreParams(n_tumor=10, n_normal=10)
        assert float(fscore(10, 10, p)) == pytest.approx((0.1 * 10 + 10) / 20)
        assert float(fscore(0, 0, p)) == 0.0
