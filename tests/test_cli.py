"""Tests for the CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.hits == 3
        assert args.backend == "single"


class TestCommands:
    def test_solve(self, capsys, tmp_path):
        out = tmp_path / "res.json"
        code = main(
            [
                "solve",
                "--genes", "25", "--tumor", "60", "--normal", "60",
                "--hits", "2", "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "combinations" in captured
        assert "[planted]" in captured
        payload = json.loads(out.read_text())
        assert payload["combinations"]

    def test_solve_distributed(self, capsys):
        code = main(
            ["solve", "--genes", "20", "--tumor", "40", "--normal", "40",
             "--hits", "2", "--backend", "distributed", "--nodes", "2"]
        )
        assert code == 0

    def test_solve_checkpoint_roundtrip(self, capsys, tmp_path):
        """Interrupted run + relaunch through --checkpoint reproduces the
        uninterrupted run's combination listing exactly."""
        base = [
            "solve", "--genes", "22", "--tumor", "50", "--normal", "50",
            "--hits", "2", "--seed", "3",
        ]
        assert main(base) == 0
        clean = capsys.readouterr().out

        ckpt = tmp_path / "run.ckpt"
        flags = ["--checkpoint", str(ckpt), "--checkpoint-every", "2"]
        # First pass writes the checkpoint (complete run, file persisted)...
        assert main(base + flags) == 0
        captured = capsys.readouterr()
        first = captured.out
        assert "resuming" not in captured.out + captured.err
        assert ckpt.exists()
        # ...second pass resumes from it and lands on the same answer.
        # The informational note goes to stderr; stdout stays the
        # machine-readable combination listing.
        assert main(base + flags) == 0
        captured = capsys.readouterr()
        second = captured.out
        assert f"resuming from checkpoint {ckpt}" in captured.err
        assert "resuming" not in second

        def combos(text):
            return [ln for ln in text.splitlines() if ln.lstrip().startswith("F=")]

        assert combos(first) == combos(clean)
        assert combos(second) == combos(clean)

    def test_solve_checkpoint_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            main(
                ["solve", "--genes", "20", "--tumor", "40", "--normal", "40",
                 "--hits", "2", "--checkpoint", str(tmp_path / "c.json"),
                 "--checkpoint-every", "0"]
            )

    def test_experiment_list(self, capsys):
        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "ed-vs-ea" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "nope"]) == 2

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "Fig 2" in capsys.readouterr().out

    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "BRCA" in out and "911" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--genes", "30", "--gpus", "4"]) == 0
        out = capsys.readouterr().out
        assert "equiarea" in out
        assert "gpu   3" in out


class TestNewCommands:
    def test_roofline(self, capsys):
        assert main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "ridge intensity" in out
        assert "3x1/baseline" in out

    def test_dataset_roundtrip(self, capsys, tmp_path):
        path = str(tmp_path / "c.npz")
        assert main(["dataset", "generate", path, "--genes", "25",
                     "--hits", "2", "--seed", "3"]) == 0
        assert main(["dataset", "info", path]) == 0
        out = capsys.readouterr().out
        assert "25 genes" in out
        assert "planted" in out

    def test_dataset_from_catalog(self, capsys, tmp_path):
        path = str(tmp_path / "acc.npz")
        assert main(["dataset", "generate", path, "--cancer", "ACC",
                     "--genes", "30"]) == 0
        out = capsys.readouterr().out
        assert "77+85 samples" in out  # ACC catalog counts

    def test_schedule_interleaved(self, capsys):
        assert main(["schedule", "--genes", "40", "--gpus", "4",
                     "--policy", "interleaved"]) == 0
        assert "interleaved" in capsys.readouterr().out

    def test_schedule_costaware(self, capsys):
        assert main(["schedule", "--genes", "40", "--gpus", "4",
                     "--policy", "costaware"]) == 0
        assert "costaware" in capsys.readouterr().out
