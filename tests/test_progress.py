"""Tests for the progress/ETA monitor.

* ``eta_seconds`` prefers measured throughput, falls back to the model;
* ``perfmodel_rate`` matches the perf-model arithmetic and is sane;
* a sample over a live solve reports the iteration accounting the
  solver published (scheduled = C(G, h); done <= scheduled);
* the monitor thread renders and re-exports gauges, and the status
  line carries fault/heartbeat annotations when they exist.
"""

import io
import math

import pytest

from repro.core.solver import MultiHitSolver
from repro.telemetry import (
    ProgressMonitor,
    ProgressSnapshot,
    eta_seconds,
    perfmodel_rate,
    telemetry_session,
)


class TestEta:
    def test_measured_rate_wins(self):
        # 100 of 300 done in 10s -> 10/s -> 20s left (model ignored).
        assert eta_seconds(100, 300, 10.0, model_rate=1.0) == pytest.approx(20.0)

    def test_model_prior_before_data(self):
        assert eta_seconds(0, 300, 5.0, model_rate=30.0) == pytest.approx(10.0)

    def test_no_rate_no_eta(self):
        assert eta_seconds(0, 300, 5.0) is None

    def test_complete_is_zero(self):
        assert eta_seconds(300, 300, 10.0) == 0.0
        assert eta_seconds(400, 300, 10.0) == 0.0


class TestPerfmodelRate:
    def test_matches_device_throughput(self):
        """The rate is per-combination device throughput: peak int-ops *
        issue efficiency / ops-per-combo, so it cancels ``C(G, h)`` and
        is independent of the gene count."""
        from repro.core.memopt import MemoryConfig
        from repro.gpusim.device import V100
        from repro.gpusim.timing import TimingTuning
        from repro.scheduling.schemes import SCHEME_3X1

        words = 100
        tuning, mem = TimingTuning(), MemoryConfig()
        pre = min(mem.prefetched_rows, SCHEME_3X1.flattened)
        rows = (SCHEME_3X1.flattened - pre) + SCHEME_3X1.inner
        expected = (
            V100.peak_int_ops_per_s
            * tuning.issue_efficiency
            / tuning.ops_per_combo(words, rows)
        )
        assert perfmodel_rate(SCHEME_3X1, 12000, words) == pytest.approx(expected)
        assert perfmodel_rate(SCHEME_3X1, 500, words) == pytest.approx(expected)

    def test_rate_positive_and_scales_down_with_width(self):
        from repro.scheduling.schemes import SCHEME_3X1

        narrow = perfmodel_rate(SCHEME_3X1, 1000, 10)
        wide = perfmodel_rate(SCHEME_3X1, 1000, 1000)
        assert narrow > wide > 0


class TestStatusLine:
    def _snap(self, **kw):
        base = dict(
            elapsed_s=65.0, iteration=3, combos_examined=5000,
            iteration_done=500, iteration_total=1000, fraction=0.5,
            rate_combos_per_s=1234.0, eta_s=30.0,
            heartbeat_stale_s=None, fault_events=0,
        )
        base.update(kw)
        return ProgressSnapshot(**base)

    def test_core_fields(self):
        line = self._snap().status_line()
        assert "iter 3" in line and "50.0%" in line
        assert "500/1,000" in line and "1,234/s" in line
        assert "eta 30s" in line and "elapsed 1.1m" in line
        assert "faults" not in line and "hb" not in line

    def test_fault_and_heartbeat_annotations(self):
        line = self._snap(fault_events=2, heartbeat_stale_s=3.25).status_line()
        assert "faults 2" in line and "hb 3.2s" in line


class TestLiveSampling:
    def test_sample_reflects_solver_accounting(self, small_matrices):
        t, n, _ = small_matrices
        monitor = ProgressMonitor(interval_s=10.0)  # sample manually
        with telemetry_session() as tel:
            monitor.telemetry = tel
            result = MultiHitSolver(hits=2).solve(t, n)
            snap = monitor.sample()
        g = t.shape[0]
        assert snap.iteration_total == math.comb(g, 2)
        assert snap.iteration == len(result.iterations) + 1  # final probe
        assert snap.combos_examined == (
            result.counters.combos_scored + result.counters.combos_pruned
        )
        assert 0.0 <= snap.fraction <= 1.0
        # The sample re-exported itself as gauges for /metrics.
        gauges = tel.metrics.to_dict()["gauges"]
        assert gauges["progress.fraction"] == snap.fraction

    def test_monitor_thread_renders_and_stops(self, small_matrices):
        t, n, _ = small_matrices
        stream = io.StringIO()
        with telemetry_session() as tel:
            with ProgressMonitor(
                telemetry=tel, interval_s=0.01, stream=stream
            ) as monitor:
                MultiHitSolver(hits=2, backend="pool", n_workers=2).solve(t, n)
            assert monitor._thread is None  # stopped on exit
        out = stream.getvalue()
        assert out.endswith("\n")  # final newline after the last rewrite
        assert "iter" in out and "elapsed" in out
        assert monitor.samples  # collected at least the final sample

    def test_monitor_without_telemetry_is_inert(self):
        monitor = ProgressMonitor(interval_s=0.01, stream=None)
        snap = monitor.sample()  # NULL_TELEMETRY: all zeros, no crash
        assert snap.combos_examined == 0 and snap.iteration_total == 0
        assert snap.eta_s is None

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ProgressMonitor(interval_s=0.0)
