"""Tests for the Summit node description."""

from repro.cluster.node import SUMMIT_NODE, SummitNodeSpec


class TestSummitNode:
    def test_paper_shape(self):
        # Fig. 1: 2 Power9 CPUs + 6 V100s, one MPI process per node.
        assert SUMMIT_NODE.n_cpus == 2
        assert SUMMIT_NODE.n_gpus == 6
        assert SUMMIT_NODE.mpi_processes == 1

    def test_memory_sizes(self):
        # Section III-E: 512 GB CPU memory, 16 GB per GPU.
        assert SUMMIT_NODE.cpu_memory_bytes == 512 * 1024**3
        assert SUMMIT_NODE.gpu_memory_bytes == 16 * 1024**3
        assert SUMMIT_NODE.total_gpu_memory_bytes == 96 * 1024**3

    def test_custom_spec(self):
        node = SummitNodeSpec(n_gpus=4)
        assert node.total_gpu_memory_bytes == 4 * 16 * 1024**3
