"""Tests for the permutation-test control."""

import numpy as np
import pytest

from repro.analysis.controls import permutation_test_best_f
from repro.data.synthesis import CohortConfig, generate_cohort


class TestPermutationTest:
    def test_planted_signal_is_significant(self):
        cohort = generate_cohort(
            CohortConfig(
                n_genes=16, n_tumor=60, n_normal=60, hits=2,
                n_driver_combos=2, seed=3,
            )
        )
        test = permutation_test_best_f(
            cohort.tumor.values, cohort.normal.values,
            hits=2, n_permutations=30, seed=0,
        )
        assert test.significant
        assert test.p_value <= 1 / 31 + 1e-9
        assert test.z_score > 2.0

    def test_pure_noise_is_not_significant(self):
        rng = np.random.default_rng(7)
        t = rng.random((14, 50)) < 0.25
        n = rng.random((14, 50)) < 0.25
        test = permutation_test_best_f(t, n, hits=2, n_permutations=30, seed=1)
        assert not test.significant

    def test_p_value_never_zero(self):
        rng = np.random.default_rng(0)
        t = rng.random((10, 20)) < 0.5
        n = rng.random((10, 20)) < 0.5
        test = permutation_test_best_f(t, n, hits=2, n_permutations=10)
        assert 0 < test.p_value <= 1.0

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        t = rng.random((10, 25)) < 0.4
        n = rng.random((10, 25)) < 0.2
        a = permutation_test_best_f(t, n, hits=2, n_permutations=8, seed=5)
        b = permutation_test_best_f(t, n, hits=2, n_permutations=8, seed=5)
        np.testing.assert_array_equal(a.null_f, b.null_f)
        assert a.observed_f == b.observed_f

    def test_gene_axis_checked(self):
        with pytest.raises(ValueError):
            permutation_test_best_f(
                np.zeros((4, 5), dtype=bool), np.zeros((5, 5), dtype=bool)
            )

    def test_null_length(self):
        rng = np.random.default_rng(3)
        t = rng.random((8, 15)) < 0.4
        n = rng.random((8, 15)) < 0.2
        test = permutation_test_best_f(t, n, hits=2, n_permutations=12)
        assert len(test.null_f) == 12
        assert test.n_permutations == 12
