"""Lease lifecycle: grant -> renew -> expire -> steal -> deterministic merge.

The :class:`LeaseLedger` is the work-stealing currency of the elastic
scale-out; these tests pin its state machine and the determinism
argument — the merge input is the per-lease winners in lease-id order,
so who completed what, in which order, with how many steals and
duplicates, cannot change the winner.
"""

import random

import pytest

from repro.cluster.leases import LEASE_STATES, Lease, LeaseLedger
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.kernels import KernelCounters
from repro.core.reduction import ReductionStats
from repro.scheduling.schemes import SCHEME_3X1, scheme_for
from repro.scheduling.workload import cumulative_work_before, total_threads


@pytest.fixture
def ledger():
    return LeaseLedger.build(SCHEME_3X1, 20, n_leases=6)


class TestLedgerConstruction:
    def test_build_covers_the_grid_equi_area(self):
        g = 24
        ledger = LeaseLedger.build(SCHEME_3X1, g, n_leases=8)
        total = total_threads(SCHEME_3X1, g)
        assert ledger.boundaries[0] == 0
        assert ledger.boundaries[-1] == total
        spans = [(lease.lam_start, lease.lam_end) for lease in ledger.leases]
        assert all(hi > lo for lo, hi in spans)
        for (_, a), (b, _) in zip(spans, spans[1:]):
            assert a == b  # contiguous, no gaps or overlaps
        # Equi-area: per-lease work stays within a factor of the mean
        # plus one thread's worth of quantisation.
        works = [
            cumulative_work_before(SCHEME_3X1, g, hi)
            - cumulative_work_before(SCHEME_3X1, g, lo)
            for lo, hi in spans
        ]
        mean = sum(works) / len(works)
        assert max(works) <= 2 * mean

    def test_needs_at_least_one_range(self):
        with pytest.raises(ValueError):
            LeaseLedger((0,))

    def test_states_enumeration(self):
        assert LEASE_STATES == ("available", "granted", "completed")
        lease = Lease(lease_id=0, lam_start=0, lam_end=10)
        assert lease.state == "available" and lease.span == 10


class TestLifecycle:
    def test_acquire_grants_lowest_id_first(self, ledger):
        a = ledger.acquire(0)
        b = ledger.acquire(1)
        assert (a.lease_id, b.lease_id) == (0, 1)
        assert a.state == "granted" and a.holder == 0
        assert ledger.n_granted == 2 and ledger.n_grants == 2

    def test_exhausted_pool_returns_none(self):
        ledger = LeaseLedger((0, 5, 10))
        assert ledger.acquire(0) is not None
        assert ledger.acquire(0) is not None
        assert ledger.acquire(0) is None

    def test_complete_then_done(self):
        ledger = LeaseLedger((0, 5, 10))
        for _ in range(2):
            lease = ledger.acquire(0)
            assert ledger.complete(lease.lease_id, 0, result=None)
        assert ledger.done and ledger.n_completed == 2
        assert ledger.completed_fraction() == 1.0

    def test_renew_extends_deadline(self):
        ledger = LeaseLedger((0, 5, 10), ttl_s=1.0)
        lease = ledger.acquire(0, now=100.0)
        assert lease.deadline == pytest.approx(101.0)
        assert ledger.renew(0, now=105.0) == 1
        assert lease.deadline == pytest.approx(106.0)
        assert not ledger.expire(now=105.5)

    def test_renew_without_ttl_is_noop(self):
        ledger = LeaseLedger((0, 5, 10))
        ledger.acquire(0)
        assert ledger.renew(0) == 0

    def test_heartbeats_renew_granted_leases(self):
        ledger = LeaseLedger((0, 5, 10), ttl_s=1.0)
        lease = ledger.acquire(2, now=100.0)
        # Rank 2's communicator traffic beats at t=104: the lease deadline
        # follows the heartbeat with no explicit renew call.
        ledger.sync_heartbeats([0.0, 0.0, 104.0], now=104.0)
        assert lease.deadline == pytest.approx(105.0)
        # A beat older than the armed deadline never shortens it.
        ledger.sync_heartbeats([0.0, 0.0, 50.0], now=104.0)
        assert lease.deadline == pytest.approx(105.0)

    def test_expire_reclaims_and_next_grant_is_a_steal(self):
        ledger = LeaseLedger((0, 5, 10), ttl_s=1.0)
        lease = ledger.acquire(0, now=100.0)
        reclaimed = ledger.expire(now=102.0)
        assert reclaimed == [lease]
        assert lease.state == "available" and lease.holder is None
        assert lease.previous_holders == [0]
        assert ledger.n_expired == 1 and ledger.n_steals == 0
        stolen = ledger.acquire(1, now=102.0)
        assert stolen is lease and stolen.holder == 1
        assert ledger.n_steals == 1 and stolen.grants == 2

    def test_forfeit_returns_only_that_holders_leases(self):
        ledger = LeaseLedger((0, 5, 10, 15))
        a, b = ledger.acquire(0), ledger.acquire(1)
        dropped = ledger.forfeit(0)
        assert dropped == [a] and a.state == "available"
        assert b.state == "granted"
        assert ledger.n_forfeited == 1

    def test_retire_bars_future_grants(self):
        ledger = LeaseLedger((0, 5, 10))
        ledger.acquire(0)
        ledger.retire(0)
        assert ledger.acquire(0) is None  # barred
        assert ledger.n_forfeited == 1
        assert ledger.acquire(1) is not None  # others unaffected

    def test_duplicate_completion_dropped(self):
        ledger = LeaseLedger((0, 5, 10), ttl_s=1.0)
        lease = ledger.acquire(0, now=100.0)
        ledger.expire(now=102.0)
        ledger.acquire(1, now=102.0)  # the steal
        assert ledger.complete(lease.lease_id, 1, result="thief")
        # The original holder resurfaces with the same range's answer.
        assert not ledger.complete(lease.lease_id, 0, result="straggler")
        assert ledger.n_duplicates == 1
        assert lease.result == "thief" and lease.completed_by == 1

    def test_straggler_completion_accepted_before_thief(self):
        """A resurfaced holder may beat the thief; the range answer wins."""
        ledger = LeaseLedger((0, 5, 10), ttl_s=1.0)
        lease = ledger.acquire(0, now=100.0)
        ledger.expire(now=102.0)
        ledger.acquire(1, now=102.0)
        assert ledger.complete(lease.lease_id, 0, result="straggler")
        assert not ledger.complete(lease.lease_id, 1, result="thief")
        assert lease.completed_by == 0 and ledger.n_duplicates == 1

    def test_holders_and_counts(self):
        ledger = LeaseLedger((0, 5, 10, 15))
        ledger.acquire(3)
        ledger.acquire(7)
        assert ledger.holders() == {3, 7}
        assert (ledger.n_available, ledger.n_granted, ledger.n_completed) == (
            1, 2, 0,
        )

    def test_describe_and_assignment_rows(self, ledger):
        ledger.acquire(0)
        text = ledger.describe()
        assert "granted" in text and "steals=0" in text
        rows = ledger.assignment_rows(call=2)
        assert len(rows) == ledger.n_leases
        assert rows[0]["holder"] == 0 and rows[0]["call"] == 2


class TestDeterministicMerge:
    def test_merge_requires_all_completed(self):
        ledger = LeaseLedger((0, 5, 10))
        lease = ledger.acquire(0)
        ledger.complete(lease.lease_id, 0, result=None)
        with pytest.raises(RuntimeError, match="not completed"):
            ledger.merge()

    def test_merge_is_order_and_holder_independent(self, small_bitmatrices):
        """Completing leases in shuffled order by arbitrary holders gives
        the same winner as the single-GPU reference — the determinism
        guarantee the whole elastic path rests on."""
        tumor, normal, params = small_bitmatrices
        scheme, g = scheme_for(3, 2), tumor.n_genes
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)

        def solve(order_seed):
            ledger = LeaseLedger.build(scheme, g, n_leases=7)
            order = list(range(ledger.n_leases))
            random.Random(order_seed).shuffle(order)
            for i in order:
                lease = ledger.leases[i]
                counters = KernelCounters()
                winner = best_in_thread_range(
                    scheme, g, tumor, normal, params,
                    lease.lam_start, lease.lam_end, counters=counters,
                )
                ledger.complete(i, holder=order_seed % 3, result=winner,
                                counters=counters)
            stats = ReductionStats()
            merged = ledger.merge(stats=stats)
            assert stats.stage_entries and stats.stage_entries[0] <= ledger.n_leases
            total = KernelCounters()
            ledger.merge_counters(total)
            return merged, total.combos_scored

        winners = [solve(seed) for seed in (0, 1, 2)]
        assert all(w == winners[0] for w in winners)
        assert winners[0][0] == ref
        # Counter closure: every combination scored exactly once.
        assert all(n == winners[0][1] for _, n in winners)

    def test_merge_counters_skips_missing(self):
        ledger = LeaseLedger((0, 5, 10))
        for i in range(2):
            lease = ledger.acquire(9)
            ledger.complete(lease.lease_id, 9, result=None,
                            counters=KernelCounters() if i == 0 else None)
        total = KernelCounters()
        ledger.merge_counters(total)  # one None counter: no crash
        assert total.combos_scored == 0
