"""Tests for the equi-area scheduler (the paper's O(G) level walk)."""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.equiarea import equiarea_schedule, equiarea_schedule_naive
from repro.scheduling.equidistance import equidistance_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, SCHEME_4X1, Scheme
from repro.scheduling.workload import level_work, total_threads, total_work

SCHEMES = [Scheme(1, 1), Scheme(2, 1), SCHEME_2X2, SCHEME_3X1, SCHEME_4X1]


class TestLevelWalkCorrectness:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n_parts", [1, 2, 5, 13, 30])
    def test_identical_to_naive(self, scheme, n_parts):
        g = 20
        fast = equiarea_schedule(scheme, g, n_parts)
        naive = equiarea_schedule_naive(scheme, g, n_parts)
        assert fast.boundaries == naive.boundaries

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_covers_all_work(self, scheme):
        for n_parts in (1, 3, 8):
            s = equiarea_schedule(scheme, 18, n_parts)
            assert sum(s.work_per_part()) == total_work(scheme, 18)

    @pytest.mark.parametrize("scheme", [SCHEME_2X2, SCHEME_3X1])
    def test_balance_bound(self, scheme):
        # Each partition exceeds the ideal share by at most one thread's
        # work (the cut granularity).
        g, n_parts = 40, 7
        s = equiarea_schedule(scheme, g, n_parts)
        ideal = total_work(scheme, g) / n_parts
        max_thread = level_work(scheme, g, scheme.flattened - 1)
        for w in s.work_per_part():
            assert w <= ideal + max_thread

    def test_beats_equidistance(self):
        for g, n_parts in [(30, 5), (50, 30), (80, 12)]:
            ea = equiarea_schedule(SCHEME_3X1, g, n_parts)
            ed = equidistance_schedule(SCHEME_3X1, g, n_parts)
            assert ea.imbalance() < ed.imbalance()

    def test_more_parts_than_threads(self):
        s = equiarea_schedule(SCHEME_3X1, 5, 50)
        assert s.n_parts == 50
        assert sum(s.work_per_part()) == math.comb(5, 4)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            equiarea_schedule(SCHEME_3X1, 10, 0)
        with pytest.raises(ValueError):
            equiarea_schedule_naive(SCHEME_3X1, 10, 0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=5, max_value=26),
        st.integers(min_value=1, max_value=40),
        st.sampled_from(SCHEMES),
    )
    def test_hypothesis_fast_equals_naive(self, g, n_parts, scheme):
        fast = equiarea_schedule(scheme, g, n_parts)
        naive = equiarea_schedule_naive(scheme, g, n_parts)
        assert fast.boundaries == naive.boundaries

    def test_naive_exact_past_float64(self):
        # Regression: the naive reference accumulated per-thread work in
        # float64, which is exact only up to 2^53 and cannot even
        # evaluate deep inner ranges (binomial_float caps at k = 4), so
        # the "identical boundaries" guarantee silently broke at scale.
        # C(200, 10) combinations of work is well past 2^53; the naive
        # scan must still cut exactly where the O(G) level walk does.
        scheme = Scheme(1, 9)
        g = 200
        assert total_work(scheme, g) > 2**53
        fast = equiarea_schedule(scheme, g, 7)
        naive = equiarea_schedule_naive(scheme, g, 7)
        assert fast.boundaries == naive.boundaries
        assert sum(naive.work_per_part()) == total_work(scheme, g)


class TestPaperScale:
    def test_full_summit_schedule_is_fast_and_balanced(self):
        # Paper: < 1 minute for the full schedule (we expect < 5 s here).
        t0 = time.perf_counter()
        s = equiarea_schedule(SCHEME_3X1, 19411, 6000)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0
        assert s.n_parts == 6000
        assert s.boundaries[-1] == math.comb(19411, 3)
        work = s.work_per_part()
        assert sum(work) == math.comb(19411, 4)
        assert max(work) / (sum(work) / len(work)) < 1.000001

    def test_2x2_paper_scale(self):
        s = equiarea_schedule(SCHEME_2X2, 19411, 600)
        assert sum(s.work_per_part()) == math.comb(19411, 4)


class TestEquidistance:
    def test_equal_thread_counts(self):
        s = equidistance_schedule(SCHEME_3X1, 30, 7)
        counts = np.diff(s.boundaries)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == total_threads(SCHEME_3X1, 30)

    def test_first_partition_heaviest(self):
        s = equidistance_schedule(SCHEME_3X1, 40, 10)
        work = s.work_per_part()
        assert work[0] == max(work)
        assert work[-1] == min(work)

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            equidistance_schedule(SCHEME_3X1, 10, 0)
