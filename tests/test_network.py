"""Tests for the alpha-beta network model."""


import pytest

from repro.cluster.network import SUMMIT_NETWORK, NetworkModel


class TestP2P:
    def test_latency_plus_bandwidth(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_bps=1e9)
        assert net.p2p_time(0) == pytest.approx(1e-6)
        assert net.p2p_time(10**9) == pytest.approx(1.000001)

    def test_monotone_in_bytes(self):
        net = SUMMIT_NETWORK
        assert net.p2p_time(100) < net.p2p_time(10_000)


class TestTreeReduce:
    def test_single_rank_free(self):
        assert SUMMIT_NETWORK.tree_reduce_time(1, 1000) == 0.0

    def test_log_depth(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_bps=1e12, per_rank_software_overhead_s=0.0)
        t2 = net.tree_reduce_time(2, 0)
        for n, depth in [(4, 2), (8, 3), (1000, 10), (1024, 10)]:
            assert net.tree_reduce_time(n, 0) == pytest.approx(depth * t2 / 1)

    def test_paper_scale_reduce_is_microseconds(self):
        # 20-byte candidate reduce across 1000 ranks costs ~tens of
        # microseconds — why Fig. 8 shows communication hidden by compute.
        t = SUMMIT_NETWORK.tree_reduce_time(1000, 20)
        assert t < 1e-3

    def test_bcast_symmetry(self):
        assert SUMMIT_NETWORK.bcast_time(64, 100) == SUMMIT_NETWORK.tree_reduce_time(64, 100)

    def test_allreduce_is_reduce_plus_bcast(self):
        n, b = 16, 128
        assert SUMMIT_NETWORK.allreduce_time(n, b) == pytest.approx(
            SUMMIT_NETWORK.tree_reduce_time(n, b) + SUMMIT_NETWORK.bcast_time(n, b)
        )
