"""Tests for result JSON serialization."""

import pytest

from repro.core.solver import MultiHitSolver
from repro.io.results import load_result, result_to_dict, save_result


@pytest.fixture
def solved(rng):
    t = rng.random((10, 30)) < 0.4
    n = rng.random((10, 30)) < 0.1
    return MultiHitSolver(hits=2).solve(t, n)


class TestRoundTrip:
    def test_save_load(self, solved, tmp_path):
        path = tmp_path / "result.json"
        save_result(solved, path)
        back = load_result(path)
        assert [c.genes for c in back.combinations] == [
            c.genes for c in solved.combinations
        ]
        assert back.params == solved.params
        assert back.uncovered == solved.uncovered
        assert back.counters.combos_scored == solved.counters.combos_scored
        assert len(back.iterations) == len(solved.iterations)
        assert back.coverage == pytest.approx(solved.coverage)

    def test_dict_is_json_clean(self, solved):
        import json

        payload = json.dumps(result_to_dict(solved))
        assert "combinations" in payload

    def test_iteration_details_preserved(self, solved, tmp_path):
        path = tmp_path / "r.json"
        save_result(solved, path)
        back = load_result(path)
        for a, b in zip(solved.iterations, back.iterations):
            assert a.newly_covered == b.newly_covered
            assert a.tumor_words == b.tumor_words
            assert a.combination.genes == b.combination.genes
