"""Integration tests: every experiment driver runs and reproduces its shape.

Heavy experiments run with reduced parameters; the full-parameter runs
live in the benchmark harness.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig2_thread_workload,
    fig3_gpu_workload,
    fig4_scaling,
    fig5_memopts,
    fig6_utilization_2x2,
    fig7_utilization_3x1,
    fig8_comm_overhead,
    fig9_classification,
    fig10_mutation_positions,
    table_ed_vs_ea,
    table_reduction_memory,
    table_runtime_estimates,
    table_scheduler_cost,
)
from repro.perfmodel.workloads import ACC


class TestRegistry:
    def test_all_registered(self):
        assert len(EXPERIMENTS) == 18
        for mod in EXPERIMENTS.values():
            assert hasattr(mod, "run") and hasattr(mod, "report")


class TestFig1:
    def test_node_abstraction(self):
        from repro.experiments import fig1_node_abstraction

        r = fig1_node_abstraction.run(g=100, n_nodes=2)
        assigns = r.rank_assignments()
        assert len(assigns) == 2
        assert all(len(gpus) == 6 for gpus in assigns)
        text = fig1_node_abstraction.report(r)
        assert "2 Power9 CPUs + 6 V100 GPUs" in text
        assert "1 MPI process per node" in text


class TestFig2:
    def test_shapes(self):
        r = fig2_thread_workload.run(g=10)
        # Paper: 45 vs 120 threads; spreads 28 vs 7.
        assert len(r.work_2x2) == 45 and len(r.work_3x1) == 120
        assert r.spread_2x2 == 28 and r.spread_3x1 == 7
        assert "Fig 2" in fig2_thread_workload.report(r)


class TestFig3:
    def test_ea_flattens_workload(self):
        r = fig3_gpu_workload.run(g=50, n_nodes=5)
        assert r.ea_imbalance < 1.01
        assert r.ed_imbalance > 2.0
        assert r.ed_gpu_work.sum() == r.ea_gpu_work.sum()
        assert "imbalance" in fig3_gpu_workload.report(r)


class TestFig4:
    def test_reduced_sweep_shape(self):
        r = fig4_scaling.run(
            workload=ACC, strong_nodes=[10, 20, 40], weak_nodes=[10, 20]
        )
        effs = [p.efficiency for p in r.strong]
        assert effs[0] == pytest.approx(1.0)
        assert all(0.3 < e <= 1.001 for e in effs)
        assert effs[-1] < 1.0  # efficiency decays
        assert 0.5 < r.weak[-1].efficiency <= 1.001
        assert "strong scaling" in fig4_scaling.report(r)


class TestFig5:
    def test_speedups_monotone(self):
        r = fig5_memopts.run(reduced_genes=25)
        sp = r.model_speedups
        assert sp[0] == 1.0
        assert sp == sorted(sp)
        assert 2.0 < r.combined_model_speedup < 6.0  # paper ~3x
        reds = r.read_reductions
        assert reds[2] > reds[1] > reds[0] == 1.0
        assert "Fig 5" in fig5_memopts.report(r)


class TestFig6:
    def test_decaying_utilization_and_transition(self):
        # 300 GPUs puts the low-index partitions in the occupancy-starved
        # straggler regime the figure shows (120 GPUs is too few).
        r = fig6_utilization_2x2.run(n_nodes=50)
        u = r.profile.utilization
        assert u[0] == pytest.approx(1.0)
        assert r.utilization_trend() < 0
        d = r.profile.dram_read_bps
        assert d[-1] > d[0]
        t = r.transition_gpu
        assert t is None or 0 < t <= 300
        assert "Fig 6" in fig6_utilization_2x2.report(r)


class TestFig7:
    def test_flat_utilization(self):
        r = fig7_utilization_3x1.run(n_nodes=10)
        assert r.min_utilization > 0.95
        assert r.utilization_spread < 0.05
        assert "Fig 7" in fig7_utilization_3x1.report(r)


class TestFig8:
    def test_comm_hidden(self):
        r = fig8_comm_overhead.run(workload=ACC, n_nodes=50)
        assert r.comm_hidden
        assert 0 <= r.comm_fraction < 0.5
        assert "Fig 8" in fig8_comm_overhead.report(r)


class TestFig9:
    def test_reduced_pipeline_bands(self):
        r = fig9_classification.run(reduced_genes=30, max_iterations=6, seed=11)
        assert len(r.performances) == 11
        assert 0.5 < r.mean_sensitivity <= 1.0
        assert 0.7 < r.mean_specificity <= 1.0
        assert r.total_combinations > 11
        assert "Fig 9" in fig9_classification.report(r)


class TestFig10:
    def test_driver_vs_passenger_contrast(self):
        r = fig10_mutation_positions.run()
        idh1 = r.panel("IDH1", "tumor")
        assert idh1.peak_position == 132
        assert idh1.peak_concentration > 0.8
        muc6 = r.panel("MUC6", "tumor")
        assert muc6.peak_concentration < 0.1
        assert int(r.panel("IDH1", "normal").counts[131]) <= 1
        assert "Fig 10" in fig10_mutation_positions.report(r)


class TestEdVsEa:
    def test_speedup_band(self):
        r = table_ed_vs_ea.run(workload=ACC, n_nodes=20, reduced_genes=20)
        assert r.speedup > 1.5  # paper 3.03x; direction + magnitude
        assert r.same_winner
        assert "speedup" in table_ed_vs_ea.report(r)


class TestReductionMemory:
    def test_paper_numbers(self):
        r = table_reduction_memory.run()
        assert 24.0 < r.naive_tb < 24.8  # paper 24.34 TB
        assert 45.0 < r.block_gb < 50.0  # paper 47.5 GB
        assert "24.34" in table_reduction_memory.report(r)


class TestRuntimeEstimates:
    def test_orders_of_magnitude(self):
        r = table_runtime_estimates.run(n_nodes=100)
        assert 5_000 < r.cpu_3hit_min < 50_000  # paper 13860
        assert 5 < r.gpu_3hit_min < 60  # paper 23
        assert 50 < r.cpu_4hit_years < 1000  # paper >500
        assert 20 < r.gpu_4hit_days < 150  # paper >40
        assert r.cluster_speedup > 100
        assert "13860" in table_runtime_estimates.report(r)


class TestSchedulerCost:
    def test_level_walk_fast_and_identical(self):
        r = table_scheduler_cost.run(gene_counts=[40, 80], paper_scale_g=2000)
        for row in r.rows:
            if row.naive_s is not None:
                assert row.identical
                assert row.level_walk_s < row.naive_s
        assert r.paper_scale_s < 5.0
        assert "level walk" in table_scheduler_cost.report(r)
