"""Tests for the lambda <-> (i, j) triangular index map (Algorithms 1-2)."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.triangular import (
    linear_from_pair,
    pair_from_linear,
    pair_from_linear_array,
    triangular_size,
)


class TestForwardMap:
    def test_first_pairs(self):
        assert linear_from_pair(0, 1) == 0
        assert linear_from_pair(0, 2) == 1
        assert linear_from_pair(1, 2) == 2
        assert linear_from_pair(0, 3) == 3

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            linear_from_pair(2, 2)
        with pytest.raises(ValueError):
            linear_from_pair(3, 1)
        with pytest.raises(ValueError):
            linear_from_pair(-1, 0)


class TestInverseScalar:
    def test_roundtrip_exhaustive(self):
        for lam in range(triangular_size(60)):
            i, j = pair_from_linear(lam)
            assert 0 <= i < j
            assert linear_from_pair(i, j) == lam

    def test_enumeration_order_is_colex(self):
        g = 25
        expected = sorted(itertools.combinations(range(g), 2), key=lambda p: (p[1], p[0]))
        got = [pair_from_linear(lam) for lam in range(triangular_size(g))]
        assert got == expected

    def test_huge_lambda_exact(self):
        lam = 10**30  # far beyond float precision
        i, j = pair_from_linear(lam)
        assert linear_from_pair(i, j) == lam

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pair_from_linear(-1)

    @given(st.integers(min_value=0, max_value=10**18))
    def test_hypothesis_roundtrip(self, lam):
        i, j = pair_from_linear(lam)
        assert linear_from_pair(i, j) == lam


class TestInverseVectorized:
    def test_matches_scalar(self):
        lam = np.arange(triangular_size(80), dtype=np.uint64)
        i, j = pair_from_linear_array(lam)
        for idx in range(0, len(lam), 97):
            si, sj = pair_from_linear(int(lam[idx]))
            assert (i[idx], j[idx]) == (si, sj)

    def test_triangular_boundaries(self):
        # Exactly at triangular numbers the pair resets to i = 0.
        boundaries = np.array(
            [math.comb(j, 2) for j in range(2, 2000, 37)], dtype=np.uint64
        )
        i, j = pair_from_linear_array(boundaries)
        np.testing.assert_array_equal(i, 0)

    def test_large_lambda_window(self):
        base = math.comb(19411, 2) - 5  # last pairs at paper scale
        lam = np.arange(base, base + 5, dtype=np.uint64)
        i, j = pair_from_linear_array(lam)
        assert int(j[-1]) == 19410
        assert int(i[-1]) == 19409
        for a, b, l0 in zip(i, j, lam):
            assert linear_from_pair(int(a), int(b)) == int(l0)

    def test_overflow_guard(self):
        with pytest.raises(OverflowError):
            pair_from_linear_array(np.array([1 << 53], dtype=np.uint64))

    @given(st.integers(min_value=0, max_value=(1 << 52) - 1))
    def test_hypothesis_vectorized_exact(self, lam):
        i, j = pair_from_linear_array(np.array([lam], dtype=np.uint64))
        assert linear_from_pair(int(i[0]), int(j[0])) == lam


class TestSize:
    def test_sizes(self):
        assert triangular_size(0) == 0
        assert triangular_size(1) == 0
        assert triangular_size(2) == 1
        assert triangular_size(10) == 45
