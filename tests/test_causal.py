"""Tests for end-to-end causal tracing (repro.telemetry.causal/critpath).

The invariants the causal layer promises:

* contexts are plain dicts minted only by enabled sessions; every
  ``link``-shaped API is a no-op on ``None`` so call sites never branch
  on enabled/disabled;
* SimComm ``recv`` records a ``message`` edge to the sender's span,
  pool workers re-root under the dispatching span via ``dispatch``
  edges, stolen-lease searches link the victim via ``steal`` edges,
  and the reduce links every lease completion via ``complete`` edges;
* ``(pid, span_id)`` stays unique across absorbed worker spans, and
  every recorded link resolves to a recorded span (edge integrity);
* the critical-path extractor tiles the trace window (coverage >= 0.95
  on real traces) and threads across ranks through causal edges;
* per-bucket attribution closes against total rank-seconds within 1%;
* winners are bit-identical with tracing on vs off (the acceptance
  criterion) — contexts observe scheduling, never influence it.
"""

import json
import os

import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.cli import main
from repro.cluster.elastic import elastic_spmd_best_combo
from repro.cluster.runtime import SPMDRunner
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.core.solver import MultiHitSolver
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import FaultReport
from repro.scheduling.schemes import SCHEME_3X1
from repro.telemetry import (
    NOOP_SPAN,
    Stopwatch,
    Telemetry,
    analyze_trace,
    attribute_time,
    classify_span,
    critical_path,
    dominant_loss,
    format_report,
    load_trace,
    telemetry_session,
    write_jsonl,
)
from repro.telemetry.causal import context_key, current_context, new_trace_id
from repro.telemetry.spans import Span


# ---------------------------------------------------------------------------
# context propagation API


class TestContexts:
    def test_enabled_context_shape(self):
        tel = Telemetry()
        assert tel.context() is None  # no span open
        with tel.span("work", cat="t") as span:
            ctx = tel.context()
        assert ctx == {"trace": tel.trace_id, "pid": os.getpid(), "id": span.span_id}
        assert context_key(ctx) == (os.getpid(), span.span_id)

    def test_disabled_context_is_none_and_mints_no_trace(self):
        tel = Telemetry(enabled=False)
        assert tel.trace_id is None
        assert tel.context() is None
        with tel.span("work"):
            assert tel.context() is None
        assert context_key(None) is None

    def test_noop_and_stopwatch_link_return_self(self):
        assert NOOP_SPAN.link({"pid": 1, "id": 2}) is NOOP_SPAN
        sw = Stopwatch()
        assert sw.link({"pid": 1, "id": 2}) is sw

    def test_link_none_records_nothing(self):
        tel = Telemetry()
        with tel.span("a") as span:
            span.link(None)
        assert span.links is None  # lazy list never allocated

    def test_span_dict_roundtrips_trace_and_links(self):
        tel = Telemetry()
        with tel.span("a") as span:
            span.link({"trace": tel.trace_id, "pid": 7, "id": 9}, kind="message")
        d = span.to_dict()
        assert d["trace"] == tel.trace_id
        assert d["links"] == [{"pid": 7, "id": 9, "kind": "message"}]
        back = Span.from_dict(json.loads(json.dumps(d)))
        assert back.trace_id == tel.trace_id
        assert back.links == [{"pid": 7, "id": 9, "kind": "message"}]

    def test_adopt_context_reroots_stack_roots(self):
        trace = new_trace_id()
        tel = Telemetry()
        tel.adopt_context({"trace": trace, "pid": 42, "id": 17})
        assert tel.trace_id == trace
        with tel.span("root") as root:
            with tel.span("child") as child:
                pass
        # Only the stack root re-roots; the child keeps its tree parent.
        assert root.links == [{"pid": 42, "id": 17, "kind": "dispatch"}]
        assert child.links is None
        assert child.parent_id == root.span_id
        assert root.trace_id == trace and child.trace_id == trace

    def test_adopt_none_or_disabled_is_noop(self):
        tel = Telemetry()
        before = tel.trace_id
        tel.adopt_context(None)
        assert tel.trace_id == before and tel.tracer.remote_parent is None
        off = Telemetry(enabled=False)
        off.adopt_context({"trace": "t", "pid": 1, "id": 2})
        assert off.trace_id is None

    def test_current_context_resolves_installed_session(self):
        with telemetry_session() as tel:
            with tel.span("work") as span:
                ctx = current_context()
            assert ctx["id"] == span.span_id
        assert current_context() is None  # NULL session after exit


def _edge_integrity(spans):
    """Every recorded link must resolve to a recorded span."""
    keys = {(s["pid"], s["id"]) for s in spans}
    assert len(keys) == len(spans), "duplicate (pid, span_id)"
    for s in spans:
        for link in s.get("links") or ():
            assert (link["pid"], link["id"]) in keys, (s["name"], link)


# ---------------------------------------------------------------------------
# message edges across SimComm


class TestMessageEdges:
    def test_recv_links_to_send(self):
        def prog(comm):
            if comm.Get_rank() == 0:
                comm.send("payload", dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        with telemetry_session() as tel:
            SPMDRunner(2).run(prog)
        spans = tel.tracer.export()
        _edge_integrity(spans)
        sends = [s for s in spans if s["name"] == "comm.send"]
        recvs = [s for s in spans if s["name"] == "comm.recv"]
        assert len(sends) == 1 and len(recvs) == 1
        (link,) = recvs[0]["links"]
        assert link["kind"] == "message"
        # The edge crosses ranks: the recv's cause lives on rank 0.
        sender = next(
            s for s in spans if (s["pid"], s["id"]) == (link["pid"], link["id"])
        )
        assert sender["rank"] == 0 and recvs[0]["rank"] == 1

    def test_collectives_thread_edges_through_root(self):
        import operator

        def prog(comm):
            value = comm.bcast(comm.Get_rank() * 0 + 7, root=0)
            return comm.reduce(value, operator.add, root=0)

        with telemetry_session() as tel:
            SPMDRunner(3).run(prog)
        spans = tel.tracer.export()
        _edge_integrity(spans)
        linked = [s for s in spans if s["name"] == "comm.recv" and s.get("links")]
        # Every completed recv (bcast fan-out + reduce fan-in) is linked.
        assert len(linked) == 4

    def test_disabled_ships_no_context(self):
        from repro.cluster.comm import SimCommWorld

        world = SimCommWorld(2)
        world.comm(0).send("x", dest=1)
        box = world._box(0, 1, 0)
        obj, ctx = box.get_nowait()
        assert obj == "x" and ctx is None


# ---------------------------------------------------------------------------
# dispatch edges across the pool


class TestPoolDispatch:
    def test_worker_spans_reroot_and_share_trace(self, small_matrices):
        t, n, _params = small_matrices
        solver = MultiHitSolver(hits=2, backend="pool", n_workers=2)
        with telemetry_session() as tel:
            solver.solve(t, n)
        spans = tel.tracer.export()
        _edge_integrity(spans)
        parent_pid = os.getpid()
        worker_spans = [s for s in spans if s["pid"] != parent_pid]
        assert worker_spans, "no spans absorbed from pool workers"
        # Worker spans join the dispatching trace end to end.
        assert {s.get("trace") for s in worker_spans} == {tel.trace_id}
        dispatch_links = [
            link
            for s in worker_spans
            for link in s.get("links") or ()
            if link["kind"] == "dispatch"
        ]
        assert dispatch_links, "no dispatch edges from worker roots"
        assert {link["pid"] for link in dispatch_links} == {parent_pid}


# ---------------------------------------------------------------------------
# critical path + attribution units (synthetic traces)


def _mk(name, pid, sid, t0, t1, tid=0, parent=None, links=None, cat="t",
        rank=None, attrs=None):
    d = {
        "name": name, "cat": cat, "id": sid, "pid": pid, "tid": tid,
        "start_ns": t0, "end_ns": t1,
    }
    if parent is not None:
        d["parent"] = parent
    if links:
        d["links"] = links
    if rank is not None:
        d["rank"] = rank
    if attrs:
        d["attrs"] = attrs
    return d


class TestCriticalPath:
    def test_empty_trace(self):
        cp = critical_path([])
        assert cp["length_s"] == 0.0 and cp["segments"] == []

    def test_single_span_covers_window(self):
        cp = critical_path([_mk("solve", 1, 1, 0, 1_000_000_000)])
        assert cp["coverage"] == pytest.approx(1.0)
        assert cp["length_s"] == pytest.approx(1.0)

    def test_nested_spans_tile_without_overlap(self):
        spans = [
            _mk("solve", 1, 1, 0, 100),
            _mk("iter", 1, 2, 10, 50, parent=1),
            _mk("iter", 1, 3, 60, 90, parent=1),
        ]
        cp = critical_path(spans)
        assert cp["coverage"] == pytest.approx(1.0)
        for a, b in zip(cp["segments"], cp["segments"][1:]):
            assert b["t0_ns"] >= a["t1_ns"]  # no double counting

    def test_path_crosses_lanes_through_message_link(self):
        # Lane A: recv blocks [0, 80]; lane B: the send that unblocks it
        # ends at 70.  The path must descend into lane B's work.
        spans = [
            _mk("comm.recv", 1, 1, 0, 80, tid=1, cat="comm",
                links=[{"pid": 1, "id": 2, "kind": "message"}]),
            _mk("comm.send", 1, 2, 65, 70, tid=2, cat="comm", parent=3),
            _mk("work", 1, 3, 0, 75, tid=2),
        ]
        cp = critical_path(spans)
        names_on_path = {seg["name"] for seg in cp["segments"]}
        assert "work" in names_on_path  # threaded into the sender's lane
        assert cp["coverage"] >= 0.95

    def test_steal_link_reaches_victim(self):
        spans = [
            _mk("spmd.rank", 1, 1, 0, 40, tid=1, rank=0),
            _mk("lease.search", 1, 2, 50, 100, tid=2, rank=1,
                attrs={"stolen": True},
                links=[{"pid": 1, "id": 1, "kind": "steal"}]),
        ]
        cp = critical_path(spans)
        ranks_on_path = {seg["rank"] for seg in cp["segments"] if seg["rank"] is not None}
        assert ranks_on_path == {0, 1}

    def test_deep_chain_no_recursion_limit(self):
        # 5000 chained message hops: an explicit work stack or bust.
        spans = []
        for i in range(5000):
            links = [{"pid": 1, "id": i, "kind": "message"}] if i else None
            spans.append(_mk("hop", 1, i + 1, i * 10, i * 10 + 15, tid=i,
                             links=links))
        cp = critical_path(spans)
        assert len(cp["segments"]) >= 5000


class TestAttribution:
    def test_classify_buckets(self):
        assert classify_span({"name": "comm.recv", "cat": "comm"}) == "comm_wait"
        assert classify_span({"name": "lease.wait", "cat": "spmd"}) == "lease_wait"
        assert classify_span({"name": "fault.retry", "cat": "fault"}) == "retry"
        assert classify_span({"name": "fault.reschedule", "cat": "fault"}) == "steal"
        assert classify_span(
            {"name": "lease.search", "cat": "spmd", "attrs": {"stolen": True}}
        ) == "steal"
        assert classify_span({"name": "save", "cat": "checkpoint"}) == "checkpoint"
        assert classify_span({"name": "spmd.rank", "cat": "spmd"}) == "idle"
        assert classify_span({"name": "scan", "cat": "kernel"}) == "compute"

    def test_exclusive_time_closure(self):
        spans = [
            _mk("spmd.rank", 1, 1, 0, 100, tid=1, cat="spmd"),
            _mk("lease.search", 1, 2, 10, 60, tid=1, parent=1),
            _mk("comm.recv", 1, 3, 60, 90, tid=1, parent=1, cat="comm"),
        ]
        attr = attribute_time(spans)
        assert attr["total_s"] == pytest.approx(100 / 1e9)
        assert attr["buckets"]["compute"] == pytest.approx(50 / 1e9)
        assert attr["buckets"]["comm_wait"] == pytest.approx(30 / 1e9)
        assert attr["buckets"]["idle"] == pytest.approx(20 / 1e9)
        assert attr["closure"] == pytest.approx(1.0)

    def test_lanes_split_by_pid_tid(self):
        spans = [
            _mk("a", 1, 1, 0, 50, tid=1),
            _mk("a", 1, 2, 0, 70, tid=2),
            _mk("a", 2, 3, 0, 30, tid=1),
        ]
        attr = attribute_time(spans)
        assert len(attr["lanes"]) == 3
        assert attr["total_s"] == pytest.approx(150 / 1e9)

    def test_dominant_loss_skips_compute_and_idle(self):
        report = {
            "attribution": {
                "buckets": {
                    "compute": 10.0, "idle": 5.0, "comm_wait": 2.0,
                    "lease_wait": 1.0, "retry": 0.0, "steal": 0.0,
                    "checkpoint": 0.0,
                }
            }
        }
        assert dominant_loss(report) == "comm_wait"
        report["attribution"]["buckets"]["comm_wait"] = 0.0
        assert dominant_loss(report) == "lease_wait"

    def test_all_compute_has_no_dominant_loss(self):
        spans = [_mk("scan", 1, 1, 0, 100)]
        assert analyze_trace(spans)["dominant_loss"] is None


class TestTraceIO:
    def test_load_trace_jsonl_roundtrip(self, tmp_path):
        tel = Telemetry()
        with tel.span("solve", cat="solver"):
            with tel.span("iteration", cat="solver"):
                pass
        path = write_jsonl(tmp_path / "trace.jsonl", tel)
        spans = load_trace(path)
        assert [s["name"] for s in spans] == ["iteration", "solve"]
        assert all(s.get("trace") == tel.trace_id for s in spans)
        assert "type" not in spans[0]

    def test_load_trace_json_list_and_payload(self, tmp_path):
        spans = [_mk("a", 1, 1, 0, 10)]
        p1 = tmp_path / "list.json"
        p1.write_text(json.dumps(spans))
        assert load_trace(p1) == spans
        p2 = tmp_path / "payload.json"
        p2.write_text(json.dumps({"spans": spans}))
        assert load_trace(p2) == spans

    def test_format_report_smoke(self):
        spans = [
            _mk("solve", 1, 1, 0, 1_000_000, rank=0),
            _mk("comm.recv", 1, 2, 100, 500_000, parent=1, cat="comm"),
        ]
        text = format_report(analyze_trace(spans))
        assert "critical path" in text
        assert "comm_wait" in text
        assert "dominant loss bucket: comm_wait" in text


# ---------------------------------------------------------------------------
# the CLI


class TestTraceCLI:
    def _write_trace(self, tmp_path):
        tel = Telemetry()
        with tel.span("solve", cat="solver"):
            with tel.span("comm.recv", cat="comm"):
                pass
        return write_jsonl(tmp_path / "trace.jsonl", tel), tel.trace_id

    def test_analyze_text(self, capsys, tmp_path):
        path, trace_id = self._write_trace(tmp_path)
        assert main(["trace", "analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert trace_id in out and "critical path" in out

    def test_analyze_json(self, capsys, tmp_path):
        path, trace_id = self._write_trace(tmp_path)
        assert main(["trace", "analyze", str(path), "--json", "--top", "3"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.telemetry.critpath/v1"
        assert report["trace_id"] == trace_id
        assert report["attribution"]["closure"] == pytest.approx(1.0, abs=0.01)

    def test_analyze_missing_file(self, capsys, tmp_path):
        assert main(["trace", "analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_analyze_empty_trace(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "analyze", str(path)]) == 2


# ---------------------------------------------------------------------------
# acceptance: traced elastic solve with straggler + steal


class TestElasticAcceptance:
    @pytest.fixture
    def instance(self, rng):
        t = rng.random((14, 30)) < 0.4
        n = rng.random((14, 24)) < 0.2
        return (
            BitMatrix.from_dense(t),
            BitMatrix.from_dense(n),
            FScoreParams(n_tumor=30, n_normal=24),
        )

    def _solve(self, instance, traced):
        tumor, normal, params = instance
        plan = FaultPlan(
            (
                FaultSpec(kind="straggler", site="rank", target=0, delay_s=0.4),
                FaultSpec(kind="crash", site="rank", target=1),
            )
        )
        kwargs = dict(
            n_ranks=4, n_leases=8, fault_plan=plan, report=FaultReport(),
            lease_ttl_s=5.0, max_wall_s=120.0,
        )
        if not traced:
            return elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params, **kwargs
            ), None
        with telemetry_session() as tel:
            got = elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params, **kwargs
            )
        return got, tel

    def test_traced_solve_end_to_end(self, instance):
        tumor, normal, params = instance
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(tumor, normal, params)
        got_off, _ = self._solve(instance, traced=False)
        got_on, tel = self._solve(instance, traced=True)
        # Winners bit-identical with tracing on vs off (and correct).
        assert got_on == got_off == ref

        spans = tel.tracer.export()
        _edge_integrity(spans)
        by_key = {(s["pid"], s["id"]): s for s in spans}

        # The steal edge chains the thief's timeline to the crashed
        # victim's rank span, across ranks.
        steals = [
            (s, link)
            for s in spans
            for link in s.get("links") or ()
            if link["kind"] == "steal"
        ]
        assert steals, "crash produced no steal edge"
        for thief, link in steals:
            victim = by_key[(link["pid"], link["id"])]
            assert victim["rank"] != thief["rank"]
            assert victim["end_ns"] <= thief["end_ns"]  # cause precedes effect

        # The reduce causally depends on every completed lease.
        reduce_span = next(s for s in spans if s["name"] == "reduce")
        completes = [
            link for link in reduce_span["links"] if link["kind"] == "complete"
        ]
        assert len(completes) == 8  # one per lease
        complete_ranks = {by_key[(l["pid"], l["id"])].get("rank") for l in completes}
        assert len(complete_ranks) >= 2  # chain crosses ranks

        report = analyze_trace(spans)
        # Critical path covers the window, attribution closes within 1%.
        assert report["critical_path"]["coverage"] >= 0.95
        assert report["attribution"]["closure"] == pytest.approx(1.0, abs=0.01)
        # The injected straggler's stall is the dominant loss bucket.
        assert report["dominant_loss"] == "comm_wait"
        assert report["attribution"]["buckets"]["comm_wait"] >= 0.35
        # ... and it sits on the critical path.
        stall_segments = [
            seg for seg in report["critical_path"]["segments"]
            if seg["name"] == "comm.stall"
        ]
        assert stall_segments
