"""Tests for the profiler's bound classification and transition point.

Covers the Section IV-C/IV-D machinery the telemetry subsystem absorbs:
:attr:`KernelTiming.bound` (which resource limits a launch, including
the issue-starvation rule that calls a low-occupancy GPU memory-bound),
:attr:`GpuProfile.bounds`, and
:meth:`GpuProfile.memory_to_compute_transition` — the paper's "around
GPU #500 of 600 the devices stop being memory-bound" observation.
"""

import pytest

from repro.gpusim.counters import GpuMetrics
from repro.gpusim.kernel import KernelStats
from repro.gpusim.profiler import GpuProfile, Profiler
from repro.gpusim.timing import KernelTiming
from repro.telemetry import telemetry_session


def _timing(compute=0.0, setup=0.0, memory=0.0, tail=0.0, issue_hide=1.0):
    return KernelTiming(
        t_compute_s=compute,
        t_setup_s=setup,
        t_memory_s=memory,
        t_tail_s=tail,
        launch_s=12e-6,
        hide_factor=1.0,
        issue_hide=issue_hide,
    )


def _metrics(bound: str) -> GpuMetrics:
    return GpuMetrics(
        busy_s=1.0,
        dram_read_bps=0.0,
        dram_write_bps=0.0,
        utilization=1.0,
        stall_memory_dependency=0.25,
        stall_memory_throttle=0.25,
        stall_execution_dependency=0.25,
        stall_other=0.25,
        issue_efficiency=1.0,
        bound=bound,
    )


class TestKernelTimingBound:
    def test_memory_bound_when_dram_time_dominates(self):
        assert _timing(compute=1.0, memory=5.0).bound == "memory"

    def test_compute_bound_when_instructions_dominate(self):
        assert _timing(compute=5.0, setup=1.0, memory=2.0).bound == "compute"

    def test_tail_bound_when_heaviest_thread_dominates(self):
        assert _timing(compute=1.0, memory=1.0, tail=9.0).bound == "tail"

    def test_issue_starvation_counts_as_memory_bound(self):
        # Compute time is the arithmetic max, but issue_hide < 1 means
        # the pipelines are stalled behind dependent loads: NVPROF would
        # blame memory, and so does the model.
        t = _timing(compute=5.0, memory=1.0, issue_hide=0.4)
        assert t.busy_s == pytest.approx(5.0)
        assert t.bound == "memory"

    def test_setup_counts_toward_compute_side(self):
        assert _timing(compute=2.0, setup=2.0, memory=3.0).bound == "compute"


class TestMemoryToComputeTransition:
    def test_mixed_profile_transitions_after_last_memory_gpu(self):
        profile = GpuProfile(
            [_metrics(b) for b in ("memory", "memory", "compute", "compute")]
        )
        assert profile.bounds == ["memory", "memory", "compute", "compute"]
        assert profile.memory_to_compute_transition() == 2

    def test_interleaved_uses_last_memory_bound_gpu(self):
        profile = GpuProfile(
            [_metrics(b) for b in ("memory", "compute", "memory", "compute")]
        )
        assert profile.memory_to_compute_transition() == 3

    def test_no_memory_bound_gpu_means_transition_at_zero(self):
        profile = GpuProfile([_metrics("compute")] * 3)
        assert profile.memory_to_compute_transition() == 0

    def test_all_memory_bound_means_no_transition(self):
        profile = GpuProfile([_metrics("memory")] * 3)
        assert profile.memory_to_compute_transition() is None

    def test_empty_profile(self):
        profile = GpuProfile([])
        assert profile.n_gpus == 0
        assert profile.memory_to_compute_transition() == 0


class TestProfilerIntegration:
    """End-to-end: KernelStats -> timing model -> profile -> registry."""

    @staticmethod
    def _launches():
        # Low-index equi-area GPUs: few heavy threads -> issue-starved
        # (memory-bound); high-index GPUs: many light threads -> compute.
        heavy = KernelStats(
            n_threads=2_000,
            n_combos=2_000_000,
            words_per_combo=4,
            rows_per_combo=1,
            prefetched_rows=2,
            bytes_read=2_000_000 * 4 * 8,
            max_thread_combos=1_000,
        )
        light = KernelStats(
            n_threads=200_000,
            n_combos=2_000_000,
            words_per_combo=4,
            rows_per_combo=1,
            prefetched_rows=2,
            bytes_read=2_000_000 * 8,
            max_thread_combos=10,
        )
        return [heavy, heavy, light, light]

    def test_bounds_and_transition(self):
        profile = Profiler().profile(self._launches())
        assert profile.bounds == ["memory", "memory", "compute", "compute"]
        assert profile.memory_to_compute_transition() == 2
        # utilization is normalized against the slowest GPU.
        assert profile.utilization.max() == pytest.approx(1.0)
        assert profile.busy_s.shape == (4,)

    def test_profile_feeds_metrics_registry(self):
        with telemetry_session() as tel:
            Profiler().profile(self._launches())
        state = tel.metrics.to_dict()
        assert state["counters"]["gpusim.bound.memory"] == 2
        assert state["counters"]["gpusim.bound.compute"] == 2
        assert state["gauges"]["gpusim.memory_to_compute_transition"] == 2
        assert state["histograms"]["gpusim.utilization"]["count"] == 4
        assert state["histograms"]["gpusim.busy_s"]["max"] > 0.0
        assert [s["name"] for s in tel.tracer.export()] == ["gpusim.profile"]

    def test_profile_records_nothing_when_disabled(self):
        profile = Profiler().profile(self._launches())
        assert profile.n_gpus == 4  # same result, no session to feed
