"""Tests for checkpoint/resume of the greedy loop."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    SolverState,
    load_state,
    save_state,
    solve_with_checkpoints,
)
from repro.core.memopt import MemoryConfig
from repro.core.solver import MultiHitSolver


@pytest.fixture
def instance(rng):
    t = rng.random((12, 50)) < 0.4
    n = rng.random((12, 50)) < 0.12
    return t, n


def signature(result):
    return [(c.genes, round(c.f, 12)) for c in result.combinations]


class TestResume:
    def test_resume_matches_uninterrupted(self, instance, tmp_path):
        t, n = instance
        full = MultiHitSolver(hits=2).solve(t, n)

        # Run 3 iterations, checkpoint, then resume to completion.
        states = []
        partial_solver = MultiHitSolver(hits=2, max_iterations=3)
        partial_solver.solve(t, n, on_iteration=states.append)
        assert len(states) == 3
        resumed = MultiHitSolver(hits=2).solve(t, n, resume=states[-1])

        assert signature(resumed) == signature(full)
        assert resumed.uncovered == full.uncovered
        assert len(resumed.iterations) == len(full.iterations) - 3

    def test_resume_with_mask_mode(self, instance):
        t, n = instance
        full = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=False)).solve(t, n)
        states = []
        MultiHitSolver(
            hits=2, max_iterations=2, memory=MemoryConfig(bitsplice=False)
        ).solve(t, n, on_iteration=states.append)
        resumed = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=False)).solve(
            t, n, resume=states[-1]
        )
        assert signature(resumed) == signature(full)

    def test_state_counts(self, instance):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=2).solve(t, n, on_iteration=states.append)
        assert states[0].n_found == 1
        assert states[1].n_found == 2
        assert states[0].n_uncovered >= states[1].n_uncovered


class TestValidation:
    def test_hits_mismatch_rejected(self, instance):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        with pytest.raises(ValueError, match="2-hit"):
            MultiHitSolver(hits=3).solve(t, n, resume=states[-1])

    def test_alpha_mismatch_rejected(self, instance):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        with pytest.raises(ValueError, match="alpha"):
            MultiHitSolver(hits=2, alpha=0.5).solve(t, n, resume=states[-1])

    def test_wrong_matrix_rejected(self, instance, rng):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        other = rng.random((12, 49)) < 0.4
        with pytest.raises(ValueError, match="samples"):
            MultiHitSolver(hits=2).solve(other, n[:, :49], resume=states[-1])

    def test_inconsistent_checkpoint_rejected(self, instance):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        bad = SolverState(
            hits=2,
            alpha=0.1,
            combinations=states[-1].combinations,
            active=np.ones(50, dtype=bool),  # claims nothing was covered
        )
        if any(c.tp > 0 for c in bad.combinations):
            with pytest.raises(ValueError, match="inconsistent"):
                MultiHitSolver(hits=2).solve(t, n, resume=bad)


class TestPersistence:
    def test_json_roundtrip(self, instance, tmp_path):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=2).solve(t, n, on_iteration=states.append)
        path = tmp_path / "ckpt.json"
        save_state(states[-1], path)
        back = load_state(path)
        assert back.hits == 2
        assert back.combinations == states[-1].combinations
        np.testing.assert_array_equal(back.active, states[-1].active)

    def test_version_check(self, instance, tmp_path):
        import json

        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        path = tmp_path / "ckpt.json"
        save_state(states[-1], path)
        raw = json.loads(path.read_text())
        raw["format_version"] = 9
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="unsupported"):
            load_state(path)

    def test_solve_with_checkpoints_end_to_end(self, instance, tmp_path):
        t, n = instance
        path = tmp_path / "run.json"
        full = MultiHitSolver(hits=2).solve(t, n)

        # "Job killed" after 2 iterations...
        interrupted = MultiHitSolver(hits=2, max_iterations=2)
        solve_with_checkpoints(interrupted, t, n, path)
        assert path.exists()
        # ...relaunch with the identical call, now unbounded.
        result = solve_with_checkpoints(MultiHitSolver(hits=2), t, n, path)
        assert signature(result) == signature(full)
        # Final checkpoint reflects the completed run.
        assert load_state(path).n_found == len(full.combinations)


class TestAtomicity:
    def test_save_leaves_no_temp_file(self, instance, tmp_path):
        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=1).solve(t, n, on_iteration=states.append)
        path = tmp_path / "ckpt.json"
        save_state(states[-1], path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_crash_mid_write_preserves_previous_checkpoint(
        self, instance, tmp_path, monkeypatch
    ):
        """A kill during the write (simulated at fsync) must leave the
        previous complete snapshot in place, with no torn file."""
        import os as _os

        t, n = instance
        states = []
        MultiHitSolver(hits=2, max_iterations=2).solve(t, n, on_iteration=states.append)
        path = tmp_path / "ckpt.json"
        save_state(states[0], path)
        before = path.read_bytes()

        def dying_fsync(fd):
            raise OSError("simulated power loss")

        monkeypatch.setattr(_os, "fsync", dying_fsync)
        with pytest.raises(OSError, match="simulated"):
            save_state(states[1], path)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old snapshot intact
        assert not (tmp_path / "ckpt.json.tmp").exists()
        assert load_state(path).n_found == states[0].n_found


class TestCadence:
    def test_every_n_write_count(self, instance, tmp_path, monkeypatch):
        import repro.core.checkpoint as ckpt_module

        t, n = instance
        path = tmp_path / "run.json"
        writes = []
        real_save = ckpt_module.save_state
        monkeypatch.setattr(
            ckpt_module,
            "save_state",
            lambda state, p: (writes.append(state.n_found), real_save(state, p)),
        )
        solve_with_checkpoints(MultiHitSolver(hits=2, max_iterations=5), t, n, path, every=2)
        # Iterations 2 and 4 hit the cadence; iteration 5 is the final
        # guaranteed save.
        assert writes == [2, 4, 5]
        assert load_state(path).n_found == 5

    def test_every_n_resumes_bit_exact(self, instance, tmp_path):
        t, n = instance
        full = MultiHitSolver(hits=2).solve(t, n)
        path = tmp_path / "run.json"
        solve_with_checkpoints(
            MultiHitSolver(hits=2, max_iterations=3), t, n, path, every=3
        )
        result = solve_with_checkpoints(MultiHitSolver(hits=2), t, n, path, every=3)
        assert signature(result) == signature(full)

    def test_every_validation(self, instance, tmp_path):
        t, n = instance
        with pytest.raises(ValueError, match="every"):
            solve_with_checkpoints(
                MultiHitSolver(hits=2), t, n, tmp_path / "x.json", every=0
            )
