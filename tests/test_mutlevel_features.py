"""Tests for mutation features and call expansion."""

import numpy as np
import pytest

from repro.data.maf import MafRecord
from repro.mutlevel.features import MutationFeature, MutationMatrix, expand_calls

CALLS = [
    MafRecord("IDH1", "S1", 132),
    MafRecord("IDH1", "S2", 132),
    MafRecord("IDH1", "S3", 97),
    MafRecord("MUC6", "S1", 5),
    MafRecord("MUC6", "S2", 900),
    MafRecord("TP53", "S3", 175, "Silent"),  # excluded: not protein-altering
]


class TestFeature:
    def test_label(self):
        assert MutationFeature("IDH1", 132).label == "IDH1:132"
        assert MutationFeature("IDH1", 131, bin_size=10).label == "IDH1:131-140"

    def test_contains(self):
        f = MutationFeature("X", 11, bin_size=10)
        assert f.contains(11) and f.contains(20)
        assert not f.contains(10) and not f.contains(21)

    def test_ordering_is_gene_then_position(self):
        feats = sorted(
            [MutationFeature("B", 1), MutationFeature("A", 9), MutationFeature("A", 2)]
        )
        assert [f.label for f in feats] == ["A:2", "A:9", "B:1"]


class TestExpandCalls:
    def test_exact_positions(self):
        m = expand_calls(CALLS)
        labels = [f.label for f in m.features]
        assert labels == ["IDH1:97", "IDH1:132", "MUC6:5", "MUC6:900"]
        assert m.sample_ids == ("S1", "S2", "S3")
        hot = m.feature_index("IDH1", 132)
        np.testing.assert_array_equal(m.values[hot], [True, True, False])

    def test_silent_excluded(self):
        m = expand_calls(CALLS)
        assert all(f.gene != "TP53" for f in m.features)

    def test_binning_merges_positions(self):
        m = expand_calls(CALLS, bin_size=50)
        idh1 = [f for f in m.features if f.gene == "IDH1"]
        # 97 and 132 land in different 50-wide bins (51-100, 101-150).
        assert len(idh1) == 2
        wide = expand_calls(CALLS, bin_size=200)
        idh1w = [f for f in wide.features if f.gene == "IDH1"]
        assert len(idh1w) == 1  # both in bin 1-200

    def test_min_recurrence_filters(self):
        m = expand_calls(CALLS, min_recurrence=2)
        assert [f.label for f in m.features] == ["IDH1:132"]

    def test_explicit_sample_universe(self):
        m = expand_calls(CALLS, samples=["S1", "S9"])
        assert m.sample_ids == ("S1", "S9")
        assert not m.values[:, 1].any()

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            expand_calls(CALLS, bin_size=0)


class TestMutationMatrix:
    def test_validation(self):
        with pytest.raises(ValueError):
            MutationMatrix(
                np.zeros((2, 2), dtype=bool),
                (MutationFeature("A", 1),),
                ("s1", "s2"),
            )
        with pytest.raises(ValueError):
            MutationMatrix(
                np.zeros((1, 2), dtype=bool),
                (MutationFeature("A", 1),),
                ("s1",),
            )

    def test_to_bitmatrix(self):
        m = expand_calls(CALLS)
        np.testing.assert_array_equal(m.to_bitmatrix().to_dense(), m.values)

    def test_collapse_to_genes(self):
        m = expand_calls(CALLS)
        dense, genes = m.collapse_to_genes()
        assert genes == ("IDH1", "MUC6")
        # IDH1 mutated in S1 (132), S2 (132), S3 (97).
        np.testing.assert_array_equal(dense[0], [True, True, True])
        np.testing.assert_array_equal(dense[1], [True, True, False])

    def test_feature_index_missing(self):
        m = expand_calls(CALLS)
        with pytest.raises(KeyError):
            m.feature_index("IDH1", 999)

    def test_expansion_factor(self):
        # Mutation matrices have more rows than genes — the 20x effect.
        m = expand_calls(CALLS)
        _, genes = m.collapse_to_genes()
        assert m.n_features > len(genes)
