"""Cross-module property tests (hypothesis fuzzing of core invariants)."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bitmatrix.matrix import BitMatrix
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.gpusim.executor import BlockKernelExecutor
from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import SCHEME_3X1, Scheme
from repro.scheduling.workload import thread_work_array, total_threads


@st.composite
def random_boundaries(draw):
    """A valid random Schedule over a small 3x1 grid."""
    g = draw(st.integers(min_value=5, max_value=18))
    total = total_threads(SCHEME_3X1, g)
    n_cuts = draw(st.integers(min_value=0, max_value=6))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=total),
                min_size=n_cuts,
                max_size=n_cuts,
            )
        )
    )
    return Schedule(
        scheme=SCHEME_3X1, g=g, boundaries=tuple([0] + cuts + [total])
    )


class TestScheduleFuzz:
    @settings(max_examples=40, deadline=None)
    @given(random_boundaries())
    def test_work_accounting_matches_brute_force(self, schedule):
        lam = np.arange(total_threads(SCHEME_3X1, schedule.g), dtype=np.uint64)
        work = thread_work_array(SCHEME_3X1, schedule.g, lam)
        expected = [
            int(work[lo:hi].sum())
            for lo, hi in (
                schedule.thread_range(p) for p in range(schedule.n_parts)
            )
        ]
        assert schedule.work_per_part() == expected

    @settings(max_examples=40, deadline=None)
    @given(random_boundaries())
    def test_total_work_conserved(self, schedule):
        assert sum(schedule.work_per_part()) == math.comb(schedule.g, 4)


@st.composite
def small_instances(draw):
    g = draw(st.integers(min_value=6, max_value=10))
    nt = draw(st.integers(min_value=2, max_value=20))
    nn = draw(st.integers(min_value=1, max_value=20))
    seed = draw(st.integers(min_value=0, max_value=10**9))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(min_value=0.05, max_value=0.8))
    return (
        BitMatrix.from_dense(rng.random((g, nt)) < density),
        BitMatrix.from_dense(rng.random((g, nn)) < density / 2),
        FScoreParams(n_tumor=nt, n_normal=nn),
        g,
    )


class TestExecutorEngineEquivalence:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(small_instances(), st.integers(min_value=1, max_value=3))
    def test_block_executor_matches_engine(self, instance, flattened):
        tumor, normal, params, g = instance
        hits = flattened + 1
        if g <= hits:
            return
        scheme = Scheme(flattened, 1)
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        got = BlockKernelExecutor(scheme=scheme, block_size=16).launch(
            tumor, normal, params
        )
        if ref is None:
            assert got.winner is None
        else:
            assert got.winner.genes == ref.genes
            assert got.winner.f == pytest.approx(ref.f, abs=1e-15)


class TestFScoreOrderInvariance:
    @settings(max_examples=30, deadline=None)
    @given(small_instances())
    def test_winner_independent_of_gene_relabeling(self, instance):
        """Reversing gene order must relabel, not change, the winner."""
        tumor, normal, params, g = instance
        if g <= 3:
            return
        scheme = Scheme(2, 1)
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)

        rev = np.arange(g)[::-1]
        tumor_r = BitMatrix.from_dense(tumor.to_dense()[rev])
        normal_r = BitMatrix.from_dense(normal.to_dense()[rev])
        got = SingleGpuEngine(scheme=scheme).best_combo(tumor_r, normal_r, params)
        assert got.f == pytest.approx(ref.f, abs=1e-15)
        # Same F is guaranteed; the winning set maps back to an equally
        # scoring set under the relabeling.
        back = tuple(sorted(g - 1 - x for x in got.genes))
        from repro.core.kernels import score_combos

        f_back, _, _ = score_combos(tumor, normal, np.array([back]), params)
        assert f_back[0] == pytest.approx(ref.f, abs=1e-12)
