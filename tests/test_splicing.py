"""Tests for BitSplicing (covered-column removal)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.splicing import splice_columns


class TestSplice:
    def test_removes_columns(self, rng):
        dense = rng.random((6, 100)) < 0.4
        keep = rng.random(100) < 0.5
        m = splice_columns(BitMatrix.from_dense(dense), keep)
        assert m.n_samples == int(keep.sum())
        np.testing.assert_array_equal(m.to_dense(), dense[:, keep])

    def test_word_width_shrinks(self):
        dense = np.ones((2, 200), dtype=bool)
        keep = np.zeros(200, dtype=bool)
        keep[:64] = True
        m = splice_columns(BitMatrix.from_dense(dense), keep)
        assert m.n_words == 1  # 200 samples (4 words) -> 64 samples (1 word)

    def test_keep_all_returns_same_object(self, rng):
        m = BitMatrix.from_dense(rng.random((3, 50)) < 0.5)
        assert splice_columns(m, np.ones(50, dtype=bool)) is m

    def test_keep_none(self, rng):
        m = BitMatrix.from_dense(rng.random((3, 50)) < 0.5)
        out = splice_columns(m, np.zeros(50, dtype=bool))
        assert out.n_samples == 0
        assert out.n_words == 0

    def test_shape_check(self, rng):
        m = BitMatrix.from_dense(rng.random((3, 50)) < 0.5)
        with pytest.raises(ValueError):
            splice_columns(m, np.ones(51, dtype=bool))

    def test_popcounts_preserved_on_kept_columns(self, rng):
        dense = rng.random((5, 130)) < 0.3
        keep = rng.random(130) < 0.7
        m = splice_columns(BitMatrix.from_dense(dense), keep)
        np.testing.assert_array_equal(m.popcount_rows(), dense[:, keep].sum(axis=1))

    @given(
        arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=1, max_value=150),
            ),
        ),
        st.data(),
    )
    def test_hypothesis_matches_dense_slice(self, dense, data):
        keep = data.draw(arrays(dtype=bool, shape=dense.shape[1]))
        m = splice_columns(BitMatrix.from_dense(dense), keep)
        np.testing.assert_array_equal(m.to_dense(), dense[:, keep])
