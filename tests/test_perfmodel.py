"""Tests for the paper-scale performance model."""

import math

import numpy as np
import pytest

from repro.core.memopt import MemoryConfig
from repro.gpusim.timing import TimingTuning, kernel_time
from repro.perfmodel.runtime import (
    IterationModel,
    JobModel,
    partition_kernel_stats,
    partition_profiles,
    gpu_busy_times,
)
from repro.perfmodel.scaling import (
    scaling_efficiency,
    strong_scaling_sweep,
    weak_scaling_sweep,
)
from repro.perfmodel.utilization import profile_schedule
from repro.perfmodel.workloads import ACC, BRCA, WorkloadSpec
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1


class TestWorkloads:
    def test_brca_paper_values(self):
        assert BRCA.g == 19411
        assert BRCA.n_tumor == 911
        assert BRCA.tumor_words == 15

    def test_words_sum(self):
        w = WorkloadSpec("X", 100, 64, 65)
        assert w.tumor_words == 1 and w.normal_words == 2 and w.words == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("X", 3, 10, 10)
        with pytest.raises(ValueError):
            WorkloadSpec("X", 10, 0, 10)


class TestIterationModel:
    def test_geometric_cover(self):
        m = IterationModel(n_iterations=4, cover_fraction=0.5)
        assert m.tumor_samples_remaining(100) == [100, 50, 25, 12]

    def test_never_below_one(self):
        m = IterationModel(n_iterations=10, cover_fraction=0.9)
        assert min(m.tumor_samples_remaining(10)) == 1


class TestPartitionStats:
    def test_stats_consistent_with_schedule(self):
        g = 60
        schedule = equiarea_schedule(SCHEME_3X1, g, 12)
        work = schedule.work_per_part()
        total_combos = 0
        for p in range(12):
            s = partition_kernel_stats(schedule, p, work[p], 2, 2, MemoryConfig())
            lo, hi = schedule.thread_range(p)
            assert s.n_threads == hi - lo
            total_combos += s.n_combos
        assert total_combos == math.comb(g, 4)

    def test_cached_profiles_match_direct(self):
        g = 40
        schedule = equiarea_schedule(SCHEME_3X1, g, 6)
        mem = MemoryConfig()
        direct = [
            partition_kernel_stats(schedule, p, w, 3, 2, mem)
            for p, w in enumerate(schedule.work_per_part())
        ]
        via_profiles = gpu_busy_times(schedule, 3, 2, mem)
        for p, s in enumerate(direct):
            assert kernel_time(s).total_s == pytest.approx(via_profiles[p])

    def test_empty_partition(self):
        schedule = equiarea_schedule(SCHEME_3X1, 5, 20)
        profs = partition_profiles(schedule, MemoryConfig())
        assert any(p.n_threads == 0 for p in profs)


class TestJobModel:
    def test_runtime_decreases_with_nodes(self):
        m = JobModel(scheme=SCHEME_3X1)
        t100 = m.run(ACC, 4).total_s
        t400 = m.run(ACC, 16).total_s
        assert t400 < t100

    def test_efficiency_below_one_and_reasonable(self):
        m = JobModel(scheme=SCHEME_3X1)
        pts = strong_scaling_sweep(m, ACC, [4, 8, 16], baseline_nodes=4)
        assert pts[0].efficiency == pytest.approx(1.0)
        for p in pts[1:]:
            assert 0.3 < p.efficiency <= 1.0

    def test_paper_scale_strong_scaling_band(self):
        # The headline reproduction: efficiency at 1000 nodes in the
        # paper's neighbourhood (paper: 84.18%; accept 75-95%).
        m = JobModel(scheme=SCHEME_3X1)
        pts = strong_scaling_sweep(m, BRCA, [100, 1000])
        eff = pts[-1].efficiency
        assert 0.75 < eff < 0.95

    def test_memopts_speed_up_job(self):
        base = JobModel(scheme=SCHEME_3X1, memory=MemoryConfig(False, False, False))
        opt = JobModel(scheme=SCHEME_3X1, memory=MemoryConfig(True, True, True))
        assert opt.run(ACC, 4).total_s < base.run(ACC, 4).total_s

    def test_equiarea_beats_equidistance(self):
        ea = JobModel(scheme=SCHEME_2X2, scheduler="equiarea")
        ed = JobModel(scheme=SCHEME_2X2, scheduler="equidistance")
        assert ea.run(ACC, 4).total_s < ed.run(ACC, 4).total_s

    def test_deterministic(self):
        m = JobModel(scheme=SCHEME_3X1)
        assert m.run(ACC, 4).total_s == m.run(ACC, 4).total_s

    def test_job_result_fields(self):
        m = JobModel(scheme=SCHEME_3X1)
        r = m.run(ACC, 4, max_iterations=3)
        assert len(r.iteration_s) == 3
        assert r.n_nodes == 4
        assert r.total_s == pytest.approx(
            sum(r.iteration_s) + r.setup_s, rel=1e-6
        )

    def test_single_gpu_vs_cpu_ratio(self):
        m = JobModel(scheme=SCHEME_3X1)
        gpu = m.single_gpu_seconds(BRCA)
        cpu = m.single_cpu_seconds(BRCA)
        assert cpu / gpu == pytest.approx(
            V100_EFFECTIVE / 2.2e9, rel=1e-6
        )

    def test_unknown_scheduler(self):
        m = JobModel(scheme=SCHEME_3X1, scheduler="nope")
        with pytest.raises(ValueError):
            m.run(ACC, 2)


from repro.gpusim.device import V100  # noqa: E402

V100_EFFECTIVE = V100.peak_int_ops_per_s * TimingTuning().issue_efficiency


class TestScalingSweeps:
    def test_scaling_efficiency_formula(self):
        # Doubling nodes with the same runtime halves efficiency.
        assert scaling_efficiency(100, 100.0, 200, 100.0) == pytest.approx(0.5)
        assert scaling_efficiency(100, 100.0, 200, 50.0) == pytest.approx(1.0)

    def test_weak_scaling_fixed_work_per_gpu(self):
        m = JobModel(scheme=SCHEME_3X1)
        pts = weak_scaling_sweep(m, ACC, [4, 8], baseline_nodes=4)
        assert pts[0].efficiency == pytest.approx(1.0)
        assert 0.5 < pts[1].efficiency <= 1.01

    def test_baseline_added_if_missing(self):
        m = JobModel(scheme=SCHEME_3X1)
        pts = strong_scaling_sweep(m, ACC, [8], baseline_nodes=4)
        assert [p.n_nodes for p in pts] == [4, 8]


class TestUtilizationProfiles:
    # 50 nodes (300 GPUs) puts the low-index 2x2 partitions in the
    # occupancy-starved straggler regime of Fig. 6; fewer GPUs give each
    # partition enough threads to stay occupied and the profile is flat.
    def test_2x2_acc_shape(self):
        prof = profile_schedule(SCHEME_2X2, ACC, 50)
        u = prof.utilization
        # Decaying utilization: first GPU is the straggler.
        assert u[0] == pytest.approx(1.0)
        assert u[-1] < 0.8
        x = np.arange(len(u))
        assert np.polyfit(x, u, 1)[0] < 0

    def test_2x2_dram_increases(self):
        prof = profile_schedule(SCHEME_2X2, ACC, 50)
        d = prof.dram_read_bps
        assert d[-1] > d[0]

    def test_2x2_small_allocation_is_flat(self):
        # Control: at 60 GPUs every partition has enough threads, so no
        # straggler appears — documents the regime boundary.
        prof = profile_schedule(SCHEME_2X2, ACC, 10)
        assert prof.utilization.min() > 0.9

    def test_3x1_brca_flat(self):
        prof = profile_schedule(SCHEME_3X1, BRCA, 10)
        u = prof.utilization
        assert u.min() > 0.95


class TestJobTracing:
    def test_trace_records_all_iterations(self):
        m = JobModel(scheme=SCHEME_3X1)
        r = m.run(ACC, 3, max_iterations=4, trace=True)
        assert r.trace is not None
        assert r.trace.n_iterations == 4
        # compute + reduce + bcast + host-compute per rank per iteration.
        assert len(r.trace.events) == 4 * 3 * 4

    def test_trace_off_by_default(self):
        m = JobModel(scheme=SCHEME_3X1)
        assert m.run(ACC, 2, max_iterations=1).trace is None

    def test_critical_path_consistent_with_comm(self):
        m = JobModel(scheme=SCHEME_3X1)
        r = m.run(ACC, 4, max_iterations=2, trace=True)
        # The straggler rank exists and its wait accounting is non-negative.
        for it in range(2):
            assert r.trace.critical_rank(it) in range(4)
            assert r.trace.wait_time(it) >= 0.0
