"""Tests for the roofline analysis and occupancy calculator."""

import pytest

from repro.core.memopt import MemoryConfig
from repro.gpusim.device import V100
from repro.gpusim.occupancy import KernelResources, occupancy
from repro.gpusim.timing import TimingTuning
from repro.perfmodel.roofline import operating_point, ridge_intensity
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1


class TestRoofline:
    def test_ridge_matches_device_ratio(self):
        t = TimingTuning()
        ridge = ridge_intensity()
        assert ridge == pytest.approx(
            V100.peak_int_ops_per_s * t.issue_efficiency / V100.dram_bandwidth_bps
        )

    def test_optimized_kernel_is_compute_bound(self):
        # With prefetch + cache reuse, the BRCA-scale 3x1 kernel sits well
        # right of the ridge — matching the flat Fig. 7 profile.
        p = operating_point(SCHEME_3X1, words=31)
        assert p.compute_bound
        assert p.attainable_ops_per_s == p.peak_ops_per_s

    def test_no_prefetch_lowers_intensity(self):
        opt = operating_point(SCHEME_3X1, words=31, memory=MemoryConfig())
        base = operating_point(
            SCHEME_3X1, words=31, memory=MemoryConfig(False, False, False)
        )
        assert base.dram_bytes_per_combo > opt.dram_bytes_per_combo
        # More loads also add instructions, so intensity moves less than
        # bytes alone would suggest — but it must not increase.
        assert base.intensity <= opt.intensity

    def test_no_cache_reuse_can_flip_memory_bound(self):
        import dataclasses

        raw = operating_point(
            SCHEME_3X1,
            words=31,
            memory=MemoryConfig(False, False, False),
            tuning=dataclasses.replace(TimingTuning(), cache_reuse=1.0),
        )
        assert not raw.compute_bound
        assert raw.attainable_ops_per_s < raw.peak_ops_per_s

    def test_labels(self):
        p = operating_point(SCHEME_2X2, words=4)
        assert "2x2" in p.label


class TestOccupancy:
    def test_default_kernel_fits(self):
        occ = occupancy(KernelResources())
        assert occ.blocks_per_sm >= 1
        assert 0 < occ.fraction <= 1.0
        assert occ.device_threads <= V100.max_resident_threads

    def test_prefetch_costs_local_memory_not_occupancy(self):
        # The paper's prefetch lands in local memory: same occupancy,
        # larger per-thread stack footprint.
        none = occupancy(KernelResources(prefetched_rows=0))
        both = occupancy(KernelResources(prefetched_rows=2))
        assert both.threads_per_sm == none.threads_per_sm
        assert KernelResources(prefetched_rows=2).local_bytes_per_thread == 496
        assert KernelResources(prefetched_rows=0).local_bytes_per_thread == 0

    def test_register_pressure_limits_occupancy(self):
        heavy = occupancy(KernelResources(base_registers=128))
        light = occupancy(KernelResources(base_registers=32))
        assert heavy.threads_per_sm < light.threads_per_sm
        assert heavy.limiter == "registers"

    def test_thread_limit_kicks_in_for_light_kernels(self):
        light = occupancy(KernelResources(base_registers=8, prefetched_rows=0, words=1))
        assert light.limiter in ("threads", "blocks")
        assert light.threads_per_sm == V100.max_threads_per_sm

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            KernelResources(block_size=100)
        with pytest.raises(ValueError):
            KernelResources(block_size=0)

    def test_timing_threshold_consistent_with_occupancy(self):
        # The timing model's latency-hide threshold (~160k threads) is the
        # full-occupancy device capacity; the calculator should reach the
        # same order for the real kernel.
        occ = occupancy(KernelResources())
        assert occ.device_threads > 40_000  # at least the issue-hide level
