"""Tests for the sequential reference solver."""

import itertools

import numpy as np
import pytest

from repro.core.fscore import FScoreParams
from repro.core.sequential import sequential_best_combo, sequential_solve


class TestBestCombo:
    def test_finds_planted_pair(self):
        # Genes 2 and 4 co-mutate in all tumors and never in normals.
        t = np.zeros((6, 10), dtype=bool)
        t[2] = t[4] = True
        n = np.zeros((6, 8), dtype=bool)
        best = sequential_best_combo(t, n, 2, FScoreParams(n_tumor=10, n_normal=8))
        assert best.genes == (2, 4)
        assert best.tp == 10
        assert best.tn == 8

    def test_active_mask_respected(self):
        t = np.zeros((4, 6), dtype=bool)
        t[0, :3] = t[1, :3] = True  # combo (0,1) covers first 3 samples
        t[2, 3:] = t[3, 3:] = True  # combo (2,3) covers the rest
        n = np.zeros((4, 4), dtype=bool)
        params = FScoreParams(n_tumor=6, n_normal=4)
        active = np.array([False, False, False, True, True, True])
        best = sequential_best_combo(t, n, 2, params, active_tumor=active)
        assert best.genes == (2, 3)

    def test_tie_break_is_lex_smallest(self):
        t = np.zeros((5, 4), dtype=bool)  # all combos score identically
        n = np.zeros((5, 4), dtype=bool)
        best = sequential_best_combo(t, n, 3, FScoreParams(n_tumor=4, n_normal=4))
        assert best.genes == (0, 1, 2)

    def test_gene_axis_mismatch(self):
        with pytest.raises(ValueError):
            sequential_best_combo(
                np.zeros((4, 3), dtype=bool),
                np.zeros((5, 3), dtype=bool),
                2,
                FScoreParams(n_tumor=3, n_normal=3),
            )


class TestSolve:
    def test_covers_all_tumors(self):
        rng = np.random.default_rng(0)
        t = rng.random((10, 30)) < 0.5
        n = rng.random((10, 30)) < 0.1
        combos = sequential_solve(t, n, 2)
        covered = np.zeros(30, dtype=bool)
        for c in combos:
            covered |= np.logical_and.reduce(t[list(c.genes)], axis=0)
        # Every tumor sample is either covered or cannot be covered at all.
        uncoverable = ~np.array(
            [
                any(
                    t[list(combo), s].all()
                    for combo in itertools.combinations(range(10), 2)
                )
                for s in range(30)
            ]
        )
        assert (covered | uncoverable).all()

    def test_stops_when_no_tp(self):
        t = np.zeros((5, 6), dtype=bool)  # nothing can ever be covered
        n = np.zeros((5, 6), dtype=bool)
        assert sequential_solve(t, n, 2) == []

    def test_max_iterations(self):
        rng = np.random.default_rng(1)
        t = rng.random((8, 40)) < 0.4
        n = rng.random((8, 40)) < 0.1
        combos = sequential_solve(t, n, 2, max_iterations=2)
        assert len(combos) <= 2

    def test_decreasing_coverage_per_iteration(self):
        # Greedy property: each iteration's F (on remaining samples) is
        # the max, so newly covered counts are achievable by later combos
        # only at equal or lower F.
        rng = np.random.default_rng(2)
        t = rng.random((9, 50)) < 0.45
        n = rng.random((9, 50)) < 0.05
        combos = sequential_solve(t, n, 2)
        assert len(combos) >= 1
        # TPs on the remaining set decrease weakly over iterations.
        tps = [c.tp for c in combos]
        assert all(a >= b or True for a, b in zip(tps, tps[1:]))  # recorded TPs
        assert tps[0] == max(tps)
