"""Tests for the flight recorder: ring semantics and black-box dumps.

The operational promises:

* the ring is bounded (oldest events evicted) and thread-safe;
* a rank crash produces a dump carrying the failed rank's final spans,
  the fault report, and the λ-ranges rescheduled onto survivors;
* the pool's first degradation and an unhandled solver exception each
  leave a black box;
* dumps are atomic, schema-stamped, and capped by ``max_dumps``;
* a session without a recorder behaves exactly as before (no listener).
"""

import json
import warnings

import pytest

from repro.core.solver import MultiHitSolver
from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry import FLIGHT_SCHEMA, FlightRecorder, telemetry_session


def _plan(site, target=0, at_call=1, kind="crash", **kw):
    return FaultPlan([FaultSpec(kind=kind, site=site, target=target,
                                at_call=at_call, **kw)])


class TestRing:
    def test_capacity_evicts_oldest(self, tmp_path):
        fr = FlightRecorder(out_dir=tmp_path, capacity=3)
        for i in range(5):
            fr.note("tick", i=i)
        timeline = fr.timeline()
        assert len(timeline) == 3
        assert [e["i"] for e in timeline] == [2, 3, 4]
        # seq keeps counting past evictions (a post-mortem can tell how
        # much history the ring dropped).
        assert [e["seq"] for e in timeline] == [2, 3, 4]

    def test_span_listener_feeds_ring(self, tmp_path):
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            with tel.span("work", cat="test"):
                pass
        events = [e for e in fr.timeline() if e["type"] == "span"]
        assert [e["name"] for e in events] == ["work"]

    def test_detach_uninstalls_listener(self, tmp_path):
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            tel.attach_flight(None)
            assert tel.tracer.listener is None
            with tel.span("quiet", cat="test"):
                pass
        assert fr.timeline() == []

    def test_dump_cap(self, tmp_path):
        fr = FlightRecorder(out_dir=tmp_path, max_dumps=2)
        assert fr.dump("one") is not None
        assert fr.dump("two") is not None
        assert fr.dump("three") is None
        assert len(list(tmp_path.glob("blackbox-*.json"))) == 2

    def test_dump_is_schema_stamped_and_atomic(self, tmp_path):
        fr = FlightRecorder(out_dir=tmp_path / "deep" / "dir")
        fr.note("hello", x=1)
        path = fr.dump("unit test!")
        assert path is not None and path.exists()
        assert "unit-test" in path.name  # reason slugged into the name
        payload = json.loads(path.read_text())
        assert payload["schema"] == FLIGHT_SCHEMA
        assert payload["timeline"][-1]["kind"] == "hello"
        # No tmp litter from the atomic write.
        assert list(path.parent.glob("*.tmp")) == []


class TestRankCrashDump:
    def test_distributed_reschedule_dump(self, tmp_path, small_matrices):
        """A dead rank's dump names the rank, its spans, and the re-cut
        λ-ranges — the ISSUE's acceptance scenario."""
        t, n, _ = small_matrices
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            result = MultiHitSolver(
                hits=2, backend="distributed", n_nodes=2,
                fault_plan=_plan("rank", target=0, at_call=1),
            ).solve(t, n)
        assert result.fault_report.dead_ranks == (0,)
        dumps = sorted(tmp_path.glob("blackbox-*.json"))
        assert dumps, "no black box written for a rescheduled rank"
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "rank-rescheduled"

        report = payload["fault_report"]
        assert report["dead_ranks"] == [0]
        assert report["n_detected"] >= 1
        # Every rescheduled λ-range is present with a survivor owner.
        assert report["rescheduled"]
        for r in report["rescheduled"]:
            assert r["dead_rank"] == 0
            assert r["survivor"] != 0
            assert r["lam_end"] > r["lam_start"]

        # The ring holds the crash detection and the reschedule notes...
        kinds = {(e["type"], e.get("kind")) for e in payload["timeline"]}
        assert ("fault", "crash") in kinds
        assert ("note", "reschedule") in kinds
        # ...and the assignments say what every rank was searching.
        ranks = {row["rank"] for row in payload["assignments"]["distributed"]}
        assert ranks == {0, 1}

    def test_spmd_failed_run_dump_has_failed_rank_spans(self, rng, tmp_path):
        """A world that dies beyond the restart budget dumps with the
        failed ranks named and their final spans on the timeline."""
        from repro.bitmatrix.matrix import BitMatrix
        from repro.cluster.mpi_program import spmd_best_combo
        from repro.cluster.runtime import RankFailedError
        from repro.core.fscore import FScoreParams
        from repro.faults.policy import RetryPolicy
        from repro.scheduling.equiarea import equiarea_schedule
        from repro.scheduling.schemes import SCHEME_3X1

        t = BitMatrix.from_dense(rng.random((14, 30)) < 0.4)
        n = BitMatrix.from_dense(rng.random((14, 30)) < 0.1)
        params = FScoreParams(n_tumor=30, n_normal=30)
        schedule = equiarea_schedule(SCHEME_3X1, 14, 4)
        # Every rank crashes persistently -> no survivors to restart on,
        # so the failure escapes and the runner dumps on the way out.
        plan = FaultPlan(
            [
                FaultSpec(kind="crash", site="rank", target=0, count=-1),
                FaultSpec(kind="crash", site="rank", target=1, count=-1),
            ]
        )
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            with pytest.raises(RankFailedError):
                spmd_best_combo(
                    2, schedule, t, n, params, gpus_per_rank=2,
                    fault_plan=plan,
                    retry_policy=RetryPolicy(resubmits=0, backoff_s=0.0),
                )
        dumps = sorted(tmp_path.glob("blackbox-*.json"))
        assert dumps
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "rank-failed"
        assert payload["exception"]["type"] == "RankFailedError"
        failed = payload["exception"]["failed_ranks"]
        assert failed and set(failed) <= {0, 1}
        # The failed ranks' lifetime spans made it onto the ring:
        # Span.__exit__ records even when the body raised.
        span_ranks = {
            e.get("rank")
            for e in payload["timeline"]
            if e["type"] == "span" and e["name"] == "spmd.rank"
        }
        assert set(failed) <= span_ranks

    def test_spmd_restart_dump_carries_rescheduled_ranges(self, rng, tmp_path):
        """A *survived* failure (restart on survivors) dumps with each
        survivor's inherited λ-ranges in the assignments block."""
        from repro.bitmatrix.matrix import BitMatrix
        from repro.cluster.mpi_program import spmd_best_combo
        from repro.core.fscore import FScoreParams
        from repro.faults.report import FaultReport
        from repro.scheduling.equiarea import equiarea_schedule
        from repro.scheduling.schemes import SCHEME_3X1

        t = BitMatrix.from_dense(rng.random((14, 30)) < 0.4)
        n = BitMatrix.from_dense(rng.random((14, 30)) < 0.1)
        params = FScoreParams(n_tumor=30, n_normal=30)
        schedule = equiarea_schedule(SCHEME_3X1, 14, 4)
        report = FaultReport()
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            clean = spmd_best_combo(2, schedule, t, n, params, gpus_per_rank=2)
            got = spmd_best_combo(
                2, schedule, t, n, params, gpus_per_rank=2,
                fault_plan=_plan("rank", target=0, at_call=0),
                report=report, call=0,
            )
        assert got == clean  # recovery is bit-identical
        restart = [
            json.loads(p.read_text())
            for p in sorted(tmp_path.glob("blackbox-*.json"))
            if "rank-restart" in p.name
        ]
        assert restart, "no rank-restart black box"
        payload = restart[0]
        spmd = payload["assignments"]["spmd"]
        assert [row["survivor"] for row in spmd] == [1]
        ranges = spmd[0]["extra_ranges"]
        assert ranges and all(r["lam_end"] > r["lam_start"] for r in ranges)
        assert payload["fault_report"]["rescheduled"]


class TestPoolAndSolverDumps:
    def test_pool_degraded_dump(self, tmp_path, small_matrices):
        t, n, _ = small_matrices
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                MultiHitSolver(
                    hits=2, backend="pool", n_workers=2,
                    fault_plan=_plan("pool", target=0, at_call=1),
                ).solve(t, n)
        names = [p.name for p in sorted(tmp_path.glob("blackbox-*.json"))]
        assert any("pool-degraded" in name for name in names)

    def test_solver_exception_dump(self, tmp_path, small_matrices):
        t, n, _ = small_matrices
        fr = FlightRecorder(out_dir=tmp_path)

        boom = RuntimeError("mid-solve failure")

        def explode(_state):
            raise boom

        with telemetry_session() as tel:
            tel.attach_flight(fr)
            with pytest.raises(RuntimeError, match="mid-solve"):
                MultiHitSolver(hits=2).solve(t, n, on_iteration=explode)
        dumps = sorted(tmp_path.glob("blackbox-*.json"))
        assert dumps
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "solver-exception"
        assert payload["exception"]["message"] == "mid-solve failure"
        # The registry snapshot rode along.  ``kernel.*`` is only
        # absorbed at end of solve (never reached here); the live
        # ``progress.*`` feed is what a mid-solve post-mortem carries.
        assert payload["metrics"]["counters"]["progress.combos_scored"] > 0

    def test_no_dump_without_fault(self, tmp_path, small_matrices):
        t, n, _ = small_matrices
        fr = FlightRecorder(out_dir=tmp_path)
        with telemetry_session() as tel:
            tel.attach_flight(fr)
            MultiHitSolver(hits=2, backend="pool", n_workers=2).solve(t, n)
        assert list(tmp_path.glob("blackbox-*.json")) == []
        # The ring still has the run's history, ready had anything died.
        assert any(e["type"] == "span" for e in fr.timeline())
