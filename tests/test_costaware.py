"""Tests for cost-aware / latency-aware / interleaved scheduling."""

import numpy as np
import pytest

from repro.core.memopt import MemoryConfig
from repro.perfmodel.runtime import gpu_busy_times, interleaved_gpu_busy_times
from repro.perfmodel.workloads import ACC
from repro.scheduling.costaware import (
    ThreadCostModel,
    costaware_schedule,
    latency_aware_schedule,
    schedule_cost_per_part,
)
from repro.scheduling.equiarea import equiarea_schedule, lambda_cut_for_work
from repro.scheduling.interleaved import interleaved_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1
from repro.scheduling.workload import (
    thread_work_array,
    total_threads,
    total_work,
    work_prefix_by_level,
)


class TestLambdaCutForWork:
    def test_matches_cumulative_scan(self):
        g = 25
        scheme = SCHEME_3X1
        lam = np.arange(total_threads(scheme, g), dtype=np.uint64)
        cumulative = np.concatenate([[0.0], np.cumsum(thread_work_array(scheme, g, lam))])
        prefix = work_prefix_by_level(scheme, g)
        for target in [0, 1, 7, 100, total_work(scheme, g) // 3]:
            expected = int(np.searchsorted(cumulative, target, side="left"))
            assert lambda_cut_for_work(scheme, g, target, prefix) == expected
        # At or beyond the total, the cut lands at the end of the grid.
        assert lambda_cut_for_work(scheme, g, total_work(scheme, g), prefix) == len(lam)

    def test_extremes(self):
        assert lambda_cut_for_work(SCHEME_3X1, 20, 0) == 0
        assert lambda_cut_for_work(SCHEME_3X1, 20, 10**9) == total_threads(SCHEME_3X1, 20)


class TestCostAware:
    def test_zero_setup_equals_equiarea(self):
        cost = ThreadCostModel(setup=0.0, per_combo=1.0)
        ea = equiarea_schedule(SCHEME_3X1, 40, 7)
        ca = costaware_schedule(SCHEME_3X1, 40, 7, cost)
        assert ca.boundaries == ea.boundaries

    def test_setup_shifts_boundaries_toward_light_threads(self):
        # With heavy setup the tail (many tiny threads) costs more, so
        # cost-aware gives tail partitions fewer threads than equi-area.
        cost = ThreadCostModel(setup=10_000.0, per_combo=1.0)
        ea = equiarea_schedule(SCHEME_3X1, 60, 6)
        ca = costaware_schedule(SCHEME_3X1, 60, 6, cost)
        assert ca.boundaries != ea.boundaries
        # The last partition shrinks in thread count.
        assert (ca.boundaries[-1] - ca.boundaries[-2]) < (
            ea.boundaries[-1] - ea.boundaries[-2]
        )

    def test_cost_balanced(self):
        cost = ThreadCostModel(setup=500.0, per_combo=2.0)
        ca = costaware_schedule(SCHEME_2X2, 50, 8, cost)
        costs = schedule_cost_per_part(ca, cost)
        assert max(costs) / (sum(costs) / len(costs)) < 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            costaware_schedule(SCHEME_3X1, 20, 0)


class TestLatencyAware:
    def test_never_worse_than_equiarea(self):
        memory = MemoryConfig()

        def times_fn(s):
            return gpu_busy_times(s, ACC.tumor_words, ACC.normal_words, memory)

        ea = equiarea_schedule(SCHEME_2X2, 2000, 24)
        la = latency_aware_schedule(SCHEME_2X2, 2000, 24, times_fn, iterations=4)
        assert times_fn(la).max() <= times_fn(ea).max() * (1 + 1e-9)

    def test_covers_all_work(self):
        def times_fn(s):
            return np.asarray(s.work_per_part(), dtype=float) + 1.0

        la = latency_aware_schedule(SCHEME_3X1, 30, 5, times_fn, iterations=3)
        la.validate()

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_aware_schedule(SCHEME_3X1, 20, 2, lambda s: [1.0, 1.0], iterations=0)


class TestInterleaved:
    def test_ranges_tile_grid(self):
        il = interleaved_schedule(SCHEME_3X1, 25, 4, block_size=64)
        seen = []
        for p in range(4):
            for lo, hi in il.ranges(p):
                seen.extend(range(lo, hi))
        assert sorted(seen) == list(range(total_threads(SCHEME_3X1, 25)))

    def test_work_conserved(self):
        il = interleaved_schedule(SCHEME_3X1, 25, 4, block_size=64)
        assert sum(il.work_per_part()) == total_work(SCHEME_3X1, 25)

    def test_balanced_thread_counts(self):
        il = interleaved_schedule(SCHEME_2X2, 60, 6, block_size=32)
        counts = il.thread_counts()
        assert max(counts) - min(counts) <= 32

    def test_every_part_gets_heavy_threads(self):
        il = interleaved_schedule(SCHEME_2X2, 200, 8, block_size=128)
        # All partitions own a block near lambda=0, so their heaviest
        # threads are comparable.
        heavy = [il.max_thread_work(p) for p in range(8)]
        assert min(heavy) > 0.5 * max(heavy)

    def test_fixes_occupancy_straggler(self):
        memory = MemoryConfig()
        n_gpus = 60
        ea = equiarea_schedule(SCHEME_2X2, ACC.g, n_gpus * 10)  # 600 parts
        ea_times = gpu_busy_times(ea, ACC.tumor_words, ACC.normal_words, memory)
        il = interleaved_schedule(SCHEME_2X2, ACC.g, n_gpus * 10)
        il_times = interleaved_gpu_busy_times(
            il, ACC.tumor_words, ACC.normal_words, memory
        )
        assert il_times.max() < ea_times.max() / 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            interleaved_schedule(SCHEME_3X1, 20, 0)
        with pytest.raises(ValueError):
            interleaved_schedule(SCHEME_3X1, 20, 2, block_size=0)
        il = interleaved_schedule(SCHEME_3X1, 20, 2)
        with pytest.raises(ValueError):
            il.ranges(5)
