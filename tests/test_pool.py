"""Tests for the multiprocess equi-area execution backend.

The contract under test: ``backend="pool"`` is bit-exact with
``backend="single"`` — same combinations, same F-scores, same
tie-breaks, same merged counters — for every worker count and partition
boundary, and a lost worker degrades to an inline retry without changing
any of that.
"""

import math
import os
import time
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.pool as pool_module
from repro.bitmatrix.matrix import BitMatrix
from repro.core.distributed import DistributedEngine
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.pool import PoolDegradedWarning, PoolEngine, PoolStats
from repro.core.sequential import sequential_solve
from repro.core.solver import MultiHitSolver
from repro.scheduling.equiarea import equiarea_range_boundaries, equiarea_schedule
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, Scheme, scheme_for
from repro.scheduling.workload import (
    cumulative_work_before,
    total_threads,
    total_work,
)


def signature(combos):
    return [(c.genes, round(c.f, 12), c.tp, c.tn) for c in combos]


def _counter_tuple(c):
    return (c.combos_scored, c.word_reads, c.word_ops)


# Module-level so fork workers can unpickle them by reference.
def _crash_chunk(task):
    os._exit(1)


def _slow_chunk(task):
    time.sleep(5)


@pytest.fixture
def instance(rng):
    t = rng.random((12, 28)) < 0.4
    n = rng.random((12, 20)) < 0.2
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=28, n_normal=20),
    )


# -- range partitioning --------------------------------------------------


class TestRangeBoundaries:
    @pytest.mark.parametrize("scheme", [Scheme(1, 1), SCHEME_2X2, SCHEME_3X1])
    @pytest.mark.parametrize("n_parts", [1, 2, 5, 13])
    def test_full_range_matches_schedule(self, scheme, n_parts):
        g = 20
        total = total_threads(scheme, g)
        bounds = equiarea_range_boundaries(scheme, g, 0, total, n_parts)
        assert bounds == equiarea_schedule(scheme, g, n_parts).boundaries

    def test_subrange_cuts_balance_work(self):
        scheme, g = SCHEME_3X1, 30
        lo, hi = 100, 3500
        bounds = equiarea_range_boundaries(scheme, g, lo, hi, 6)
        assert bounds[0] == lo and bounds[-1] == hi
        assert all(a <= b for a, b in zip(bounds, bounds[1:]))
        works = [
            cumulative_work_before(scheme, g, b)
            - cumulative_work_before(scheme, g, a)
            for a, b in zip(bounds, bounds[1:])
        ]
        assert sum(works) == cumulative_work_before(
            scheme, g, hi
        ) - cumulative_work_before(scheme, g, lo)
        mean = sum(works) / len(works)
        assert max(works) <= mean + (g - scheme.flattened)  # one thread's work

    def test_clamps_and_degenerate_ranges(self):
        scheme, g = SCHEME_3X1, 10
        total = total_threads(scheme, g)
        assert equiarea_range_boundaries(scheme, g, -5, total + 99, 2)[0] == 0
        assert equiarea_range_boundaries(scheme, g, -5, total + 99, 2)[-1] == total
        assert equiarea_range_boundaries(scheme, g, 7, 7, 3) == (7, 7, 7, 7)
        with pytest.raises(ValueError):
            equiarea_range_boundaries(scheme, g, 0, total, 0)


# -- bit-exactness -------------------------------------------------------


class TestPoolBitExactness:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_engine_matches_single(self, instance, n_workers):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref_counters = KernelCounters()
        ref = SingleGpuEngine(scheme=scheme).best_combo(
            tumor, normal, params, counters=ref_counters
        )
        pool_counters = KernelCounters()
        with PoolEngine(scheme=scheme, n_workers=n_workers) as eng:
            got = eng.best_combo(tumor, normal, params, counters=pool_counters)
        assert got == ref
        assert _counter_tuple(pool_counters) == _counter_tuple(ref_counters)

    def test_subrange_matches_engine(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        total = total_threads(scheme, tumor.n_genes)
        lo, hi = total // 7, 5 * total // 6
        from repro.core.engine import best_in_thread_range

        ref = best_in_thread_range(
            scheme, tumor.n_genes, tumor, normal, params, lo, hi
        )
        with PoolEngine(scheme=scheme, n_workers=3) as eng:
            got = eng.best_combo(tumor, normal, params, lam_start=lo, lam_end=hi)
        assert got == ref

    def test_tie_straddling_worker_boundary(self):
        # All-ones tumor: every combination ties at the maximal F, so
        # each worker chunk returns its own lex-smallest candidate and
        # the cross-chunk reduction must still pick the global
        # lex-smallest — exactly the single-engine tie rule.
        t = BitMatrix.from_dense(np.ones((10, 20), dtype=bool))
        n = BitMatrix.from_dense(np.zeros((10, 20), dtype=bool))
        params = FScoreParams(n_tumor=20, n_normal=20)
        for n_workers in (2, 3, 4):
            with PoolEngine(scheme=SCHEME_3X1, n_workers=n_workers) as eng:
                got = eng.best_combo(t, n, params)
            assert got.genes == (0, 1, 2, 3)

    def test_empty_range_and_validation(self, instance):
        tumor, normal, params = instance
        with PoolEngine(scheme=scheme_for(2, 1), n_workers=2) as eng:
            assert eng.best_combo(tumor, normal, params, 5, 5) is None
            bad = BitMatrix.from_dense(np.zeros((9, 4), dtype=bool))
            with pytest.raises(ValueError):
                eng.best_combo(tumor, bad, params)
        with pytest.raises(ValueError):
            PoolEngine(scheme=SCHEME_3X1, n_workers=0)
        with pytest.raises(ValueError):
            PoolEngine(scheme=SCHEME_3X1, chunks_per_worker=0)


class TestSolverBackendEquivalence:
    @settings(
        max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.integers(min_value=2, max_value=4),
    )
    def test_pool_single_sequential_agree(self, seed, hits):
        rng = np.random.default_rng(seed)
        g = int(rng.integers(hits + 2, 12))
        t = rng.random((g, int(rng.integers(3, 25)))) < rng.uniform(0.1, 0.7)
        n = rng.random((g, int(rng.integers(1, 25)))) < rng.uniform(0.0, 0.4)
        ref = MultiHitSolver(hits=hits, backend="single").solve(t, n)
        # Dense-model reference: its traffic counters are partition-
        # invariant, unlike the sparse default's (prefix runs split at
        # chunk boundaries), so the counter-tuple assertion pins it.
        dense_ref = MultiHitSolver(
            hits=hits, backend="single", sparse=False
        ).solve(t, n)
        seq = signature(sequential_solve(t, n, hits))
        assert signature(ref.combinations) == seq
        assert signature(dense_ref.combinations) == seq
        for n_workers in (1, 2, 4):
            got = MultiHitSolver(
                hits=hits, backend="pool", n_workers=n_workers
            ).solve(t, n)
            assert signature(got.combinations) == signature(ref.combinations)
            assert got.uncovered == ref.uncovered
            assert got.counters.combos_scored == ref.counters.combos_scored
            dense = MultiHitSolver(
                hits=hits, backend="pool", n_workers=n_workers, sparse=False
            ).solve(t, n)
            assert signature(dense.combinations) == signature(ref.combinations)
            assert _counter_tuple(dense.counters) == _counter_tuple(
                dense_ref.counters
            )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            MultiHitSolver(backend="pool", n_workers=0)

    def test_distributed_pool_workers_match_plain(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        plain = DistributedEngine(
            scheme=scheme, n_nodes=2, gpus_per_node=2
        ).best_combo(tumor, normal, params)
        counters = KernelCounters()
        pooled = DistributedEngine(
            scheme=scheme, n_nodes=2, gpus_per_node=2, pool_workers=2
        ).best_combo(tumor, normal, params, counters=counters)
        assert pooled == plain
        assert counters.combos_scored == math.comb(tumor.n_genes, 3)


# -- shared-memory lifecycle and stats -----------------------------------


class TestStatsAndSharedMemory:
    def test_matrices_shipped_once_while_unchanged(self, instance):
        tumor, normal, params = instance
        stats = PoolStats()
        with PoolEngine(scheme=scheme_for(3, 2), n_workers=4) as eng:
            first = eng.best_combo(tumor, normal, params, stats=stats)
            second = eng.best_combo(tumor, normal, params, stats=stats)
            assert first == second
            assert stats.n_publishes == 2  # tumor + normal, once each
            assert stats.shipped_bytes == tumor.words.nbytes + normal.words.nbytes
            # A new tumor matrix (a greedy splice) re-ships tumor only.
            spliced = BitMatrix(tumor.words.copy(), tumor.n_samples)
            eng.best_combo(spliced, normal, params, stats=stats)
            assert stats.n_publishes == 3

    def test_chunk_records_cover_range_exactly(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        stats = PoolStats()
        with PoolEngine(scheme=scheme, n_workers=4) as eng:
            eng.best_combo(tumor, normal, params, stats=stats)
        assert stats.n_workers == 4
        assert 1 <= len(stats.chunks) <= 4
        assert stats.chunks[0].lam_start == 0
        assert stats.chunks[-1].lam_end == total_threads(scheme, tumor.n_genes)
        assert sum(c.work for c in stats.chunks) == total_work(
            scheme, tumor.n_genes
        )
        assert sum(c.combos_scored for c in stats.chunks) == total_work(
            scheme, tumor.n_genes
        )
        assert stats.n_inline_retries == 0
        per_worker = stats.per_worker()
        assert sum(row["chunks"] for row in per_worker.values()) == len(stats.chunks)
        assert "PoolStats" in stats.describe()

    def test_close_is_idempotent(self, instance):
        tumor, normal, params = instance
        eng = PoolEngine(scheme=scheme_for(2, 1), n_workers=2)
        eng.best_combo(tumor, normal, params)
        eng.close()
        eng.close()


# -- graceful degradation ------------------------------------------------


class TestGracefulDegradation:
    def test_worker_crash_recovers_inline_with_one_warning(
        self, instance, monkeypatch
    ):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        # Fork workers inherit the patched module, so every chunk dies.
        monkeypatch.setattr(pool_module, "_search_chunk", _crash_chunk)
        with PoolEngine(scheme=scheme, n_workers=2) as eng:
            stats = PoolStats()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                got = eng.best_combo(tumor, normal, params, stats=stats)
            degraded = [
                w for w in caught if issubclass(w.category, PoolDegradedWarning)
            ]
            assert got == ref
            assert len(degraded) == 1  # warn once, not per chunk
            assert stats.n_inline_retries == len(stats.chunks)
            # The pool is rebuilt: with the real worker restored the next
            # call runs on fresh processes with no further warnings.
            monkeypatch.undo()
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                again = eng.best_combo(tumor, normal, params)
            assert again == ref
            assert not [
                w for w in caught if issubclass(w.category, PoolDegradedWarning)
            ]

    def test_worker_timeout_recovers_inline(self, instance, monkeypatch):
        tumor, normal, params = instance
        scheme = scheme_for(2, 1)
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        monkeypatch.setattr(pool_module, "_search_chunk", _slow_chunk)
        with PoolEngine(scheme=scheme, n_workers=2, timeout=0.2) as eng:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                got = eng.best_combo(tumor, normal, params)
        assert got == ref
        assert [w for w in caught if issubclass(w.category, PoolDegradedWarning)]

    def test_warn_once_survives_pool_rebuild(self, instance, monkeypatch):
        """A second degraded call after the rebuild must not warn again."""
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        monkeypatch.setattr(pool_module, "_search_chunk", _crash_chunk)
        with PoolEngine(scheme=scheme, n_workers=2) as eng:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                first = eng.best_combo(tumor, normal, params)
                second = eng.best_combo(tumor, normal, params)
            assert first == ref and second == ref
            degraded = [
                w for w in caught if issubclass(w.category, PoolDegradedWarning)
            ]
            assert len(degraded) == 1

    def test_inline_retry_stats_survive_pool_rebuild(self, instance, monkeypatch):
        """Chunk records from a degraded call stay intact after the rebuilt
        pool serves a later, healthy call into the same PoolStats."""
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        monkeypatch.setattr(pool_module, "_search_chunk", _crash_chunk)
        stats = PoolStats()
        with PoolEngine(scheme=scheme, n_workers=2) as eng:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PoolDegradedWarning)
                eng.best_combo(tumor, normal, params, stats=stats)
            degraded_chunks = len(stats.chunks)
            assert stats.n_inline_retries == degraded_chunks > 0
            monkeypatch.undo()
            eng.best_combo(tumor, normal, params, stats=stats)
        assert len(stats.chunks) == 2 * degraded_chunks
        # The degraded call's records are untouched; the healthy call's
        # chunks went to real workers.
        assert stats.n_inline_retries == degraded_chunks
        healthy = stats.chunks[degraded_chunks:]
        assert all(not c.inline_retry for c in healthy)
        assert all(c.worker_pid != os.getpid() for c in healthy)

    def test_timed_out_chunk_range_is_bit_exact(self, instance, monkeypatch):
        """The inline retry of a timed-out chunk searches exactly the chunk's
        [lam_start, lam_end) range — merged result identical to single-GPU."""
        tumor, normal, params = instance
        scheme = scheme_for(2, 1)
        ref_counters = KernelCounters()
        ref = SingleGpuEngine(scheme=scheme).best_combo(
            tumor, normal, params, counters=ref_counters
        )
        monkeypatch.setattr(pool_module, "_search_chunk", _slow_chunk)
        stats = PoolStats()
        counters = KernelCounters()
        with PoolEngine(scheme=scheme, n_workers=2, timeout=0.2) as eng:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PoolDegradedWarning)
                got = eng.best_combo(
                    tumor, normal, params, counters=counters, stats=stats
                )
        assert got == ref
        assert _counter_tuple(counters) == _counter_tuple(ref_counters)
        retried = [c for c in stats.chunks if c.inline_retry]
        assert retried
        for c in retried:
            assert c.lam_start < c.lam_end
            assert c.worker_pid == os.getpid()
