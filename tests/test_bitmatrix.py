"""Tests for the BitMatrix container and its bitwise kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.packing import words_for


def random_dense(rng, g=10, s=100, p=0.3):
    return rng.random((g, s)) < p


class TestConstruction:
    def test_from_dense_roundtrip(self, rng):
        dense = random_dense(rng)
        m = BitMatrix.from_dense(dense)
        assert m.n_genes == 10
        assert m.n_samples == 100
        assert m.n_words == words_for(100)
        np.testing.assert_array_equal(m.to_dense(), dense)

    def test_zeros(self):
        m = BitMatrix.zeros(4, 100)
        assert m.popcount_rows().sum() == 0

    def test_rejects_wrong_word_count(self):
        with pytest.raises(ValueError):
            BitMatrix(np.zeros((2, 3), dtype=np.uint64), 64)

    def test_rejects_dirty_tail_bits(self):
        words = np.zeros((1, 1), dtype=np.uint64)
        words[0, 0] = np.uint64(1) << np.uint64(10)
        with pytest.raises(ValueError):
            BitMatrix(words, 10)  # bit 10 is beyond the 10 valid samples

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            BitMatrix(np.zeros(4, dtype=np.uint64), 10)

    def test_nbytes(self):
        m = BitMatrix.zeros(100, 911)
        assert m.nbytes == 100 * 15 * 8

    def test_equality(self, rng):
        dense = random_dense(rng)
        a = BitMatrix.from_dense(dense)
        b = BitMatrix.from_dense(dense)
        c = BitMatrix.from_dense(~dense)
        assert a == b
        assert a != c
        assert (a == 42) is False or (a == 42) is NotImplemented or True


class TestKernels:
    def test_and_reduce_matches_dense(self, rng):
        dense = random_dense(rng, g=12)
        m = BitMatrix.from_dense(dense)
        for genes in [[0], [1, 5], [2, 3, 7], [0, 4, 8, 11]]:
            expected = np.logical_and.reduce(dense[genes], axis=0)
            got = m.samples_with_all(genes)
            np.testing.assert_array_equal(got, expected)
            assert m.count_samples_with_all(genes) == int(expected.sum())

    def test_and_reduce_requires_genes(self, rng):
        m = BitMatrix.from_dense(random_dense(rng))
        with pytest.raises(ValueError):
            m.and_reduce([])

    def test_popcount_rows(self, rng):
        dense = random_dense(rng)
        m = BitMatrix.from_dense(dense)
        np.testing.assert_array_equal(m.popcount_rows(), dense.sum(axis=1))

    def test_row_is_view(self, rng):
        m = BitMatrix.from_dense(random_dense(rng))
        assert m.row(3).base is not None

    def test_and_reduce_does_not_mutate(self, rng):
        dense = random_dense(rng)
        m = BitMatrix.from_dense(dense)
        before = m.words.copy()
        m.and_reduce([0, 1, 2])
        np.testing.assert_array_equal(m.words, before)

    def test_sample_mask_to_words(self, rng):
        m = BitMatrix.from_dense(random_dense(rng, s=70))
        mask = rng.random(70) < 0.5
        words = m.sample_mask_to_words(mask)
        assert words.shape == (m.n_words,)
        assert int(np.bitwise_count(words).sum()) == int(mask.sum())

    def test_sample_mask_shape_check(self, rng):
        m = BitMatrix.from_dense(random_dense(rng, s=70))
        with pytest.raises(ValueError):
            m.sample_mask_to_words(np.ones(71, dtype=bool))

    def test_select_genes(self, rng):
        dense = random_dense(rng, g=8)
        m = BitMatrix.from_dense(dense)
        sub = m.select_genes([1, 3, 5])
        np.testing.assert_array_equal(sub.to_dense(), dense[[1, 3, 5]])

    @given(
        arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(min_value=2, max_value=6),
                st.integers(min_value=1, max_value=130),
            ),
        ),
        st.data(),
    )
    def test_hypothesis_and_counts(self, dense, data):
        g = dense.shape[0]
        k = data.draw(st.integers(min_value=1, max_value=g))
        genes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=g - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        m = BitMatrix.from_dense(dense)
        expected = int(np.logical_and.reduce(dense[genes], axis=0).sum())
        assert m.count_samples_with_all(genes) == expected
