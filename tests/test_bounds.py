"""Tests for the lazy-greedy pruned iteration engine.

Covers the :class:`repro.core.bounds.BoundTable` itself, the soundness
contract (pruned results bit-identical to unpruned on every backend,
including under injected faults), the tie-break regression (out-of-order
block visitation still resolves ties to the lexicographically smallest
tuple), pruning effectiveness, and checkpoint interaction (resume with
and without the persisted table).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.bounds import BoundTable
from repro.core.checkpoint import load_state, save_state
from repro.core.engine import best_in_thread_range
from repro.core.kernels import KernelCounters
from repro.core.sequential import sequential_best_combo
from repro.core.solver import MultiHitSolver
from repro.data.synthesis import CohortConfig, generate_cohort
from repro.faults.plan import FaultPlan, FaultSpec
from repro.scheduling.schemes import scheme_for
from repro.scheduling.workload import (
    cumulative_work_before,
    total_threads,
)


def signature(result):
    return [(c.genes, c.f, c.tp, c.tn) for c in result.combinations]


@pytest.fixture(scope="module")
def cohort():
    return generate_cohort(
        CohortConfig(n_genes=28, n_tumor=70, n_normal=70, hits=3, seed=7)
    )


@pytest.fixture(scope="module")
def matrices(cohort):
    return cohort.tumor.values, cohort.normal.values


# -- BoundTable unit tests ------------------------------------------------


class TestBoundTable:
    def test_build_partitions_grid(self):
        scheme = scheme_for(3, 2)
        g = 20
        table = BoundTable.build(scheme, g, n_blocks=8)
        total = total_threads(scheme, g)
        assert table.boundaries[0] == 0
        assert table.boundaries[-1] == total
        assert (np.diff(table.boundaries) > 0).all()
        # Per-block works sum to the whole grid's work.
        assert table.works.sum() == cumulative_work_before(scheme, g, total)
        assert (table.stamps == -1).all()
        assert np.isinf(table.bounds).all()

    def test_backend_cuts_merged(self):
        scheme = scheme_for(3, 2)
        g = 20
        total = total_threads(scheme, g)
        cuts = (0, 17, 171, total)
        table = BoundTable.build(scheme, g, cuts=cuts, n_blocks=4)
        for c in cuts:
            assert c in table.boundaries
        # Every cut range is aligned, i.e. a whole number of blocks.
        assert table.aligned(17, 171)
        i0, i1 = table.block_slice(17, 171)
        assert table.boundaries[i0] == 17 and table.boundaries[i1] == 171

    def test_unaligned_range_rejected(self):
        table = BoundTable.build(scheme_for(3, 2), 20, n_blocks=4)
        assert not table.aligned(1, 5)
        with pytest.raises(ValueError, match="not aligned"):
            table.block_slice(1, 5)

    def test_visit_order_descending_with_id_ties(self):
        table = BoundTable.build(scheme_for(3, 2), 20, n_blocks=6)
        n = table.n_blocks
        table.bounds[:] = 0.5
        table.bounds[n - 1] = 0.9
        order = table.visit_order(0, n)
        assert order[0] == n - 1
        # Equal bounds resolve to ascending block id.
        assert list(order[1:]) == list(range(n - 1))

    def test_can_skip_requires_stamp_and_strict_bound(self):
        table = BoundTable.build(scheme_for(3, 2), 20, n_blocks=4)
        # Never-scored blocks are never skippable.
        assert not table.can_skip(0, 0.1)
        table.refresh(0, 0.5, iteration=0)
        assert table.can_skip(0, 0.6)
        # An equal bound may hide an equal-F lexicographic tie: no skip.
        assert not table.can_skip(0, 0.5)
        assert not table.can_skip(0, 0.4)

    def test_payload_round_trip(self):
        table = BoundTable.build(scheme_for(3, 2), 20, n_blocks=6)
        table.refresh(1, 0.25, iteration=3)
        lo, hi = table.block_range(0)[0], table.block_range(2)[1]
        payload = table.slice_payload(lo, hi)
        import json

        clone = BoundTable.from_payload(json.loads(json.dumps(payload)))
        assert clone.offset == 0
        assert clone.n_blocks == 3
        assert clone.stamps[1] == 3
        assert clone.bounds[1] == 0.25
        assert np.isinf(clone.bounds[0])  # None -> +inf survives JSON

    def test_deltas_address_parent_blocks(self):
        table = BoundTable.build(scheme_for(3, 2), 20, n_blocks=6)
        lo = table.block_range(2)[0]
        hi = table.block_range(4)[1]
        child = BoundTable.from_payload(table.slice_payload(lo, hi))
        assert child.offset == 2
        child.refresh(1, 0.7, iteration=5)  # local block 1 == global 3
        deltas = child.deltas(5)
        assert deltas == [(3, 0.7)]
        table.apply_deltas(deltas, iteration=5)
        assert table.bounds[3] == 0.7
        assert table.stamps[3] == 5
        # Stale (earlier-iteration) entries don't leak into deltas.
        assert child.deltas(4) == []

    def test_matches_and_reset(self):
        scheme = scheme_for(3, 2)
        a = BoundTable.build(scheme, 20, n_blocks=6)
        b = BoundTable.build(scheme, 20, n_blocks=6)
        assert a.matches(b)
        assert not a.matches(BoundTable.build(scheme, 21, n_blocks=6))
        assert not a.matches(BoundTable.build(scheme, 20, n_blocks=3))
        a.refresh(0, 0.3, iteration=1)
        a.reset()
        assert (a.stamps == -1).all() and np.isinf(a.bounds).all()


# -- hierarchical (super-block) layer --------------------------------------


class TestSuperBlocks:
    def _table(self, super_size=3):
        return BoundTable.build(
            scheme_for(3, 2), 20, n_blocks=8, super_size=super_size
        )

    def test_geometry_and_derived_aggregates(self):
        table = self._table(super_size=3)
        k = table.super_size
        assert table.n_supers == -(-table.n_blocks // k)
        covered = []
        for s in range(table.n_supers):
            a, b = table.super_block_range(s)
            covered.extend(range(a, b))
            assert table.super_work(s) == int(table.works[a:b].sum())
            assert table.super_of(a) == s
        assert covered == list(range(table.n_blocks))

    def test_skip_requires_all_members_stamped_and_strict_bound(self):
        table = self._table(super_size=3)
        a, b = table.super_block_range(0)
        # Fresh table: nothing skippable.
        assert not table.can_skip_super(0, 1.0)
        for blk in range(a, b - 1):
            table.refresh(blk, 0.2, iteration=0)
        # One member still unstamped: no super skip.
        assert not table.can_skip_super(0, 1.0)
        table.refresh(b - 1, 0.5, iteration=0)
        assert table.can_skip_super(0, 0.6)
        # Aggregate is the member max, and the inequality is strict.
        assert not table.can_skip_super(0, 0.5)
        assert not table.can_skip_super(0, 0.3)

    def test_visit_order_descending_with_id_ties(self):
        table = self._table(super_size=2)
        for blk in range(table.n_blocks):
            table.refresh(blk, 0.5, iteration=0)
        a, _ = table.super_block_range(table.n_supers - 1)
        table.refresh(a, 0.9, iteration=0)
        order = table.super_visit_order(0, table.n_blocks)
        assert order[0] == table.n_supers - 1
        assert list(order[1:]) == list(range(table.n_supers - 1))

    def test_refresh_reset_and_deltas_update_aggregates(self):
        table = self._table(super_size=3)
        table.refresh(0, 0.4, iteration=0)
        assert not table.can_skip_super(0, 1.0)  # siblings unstamped
        a, b = table.super_block_range(0)
        for blk in range(a, b):
            table.refresh(blk, 0.4, iteration=0)
        assert table.can_skip_super(0, 0.5)
        table.reset()
        assert not table.can_skip_super(0, 0.5)
        # Delta fold-back (the pool path) refreshes aggregates too.
        table.apply_deltas([(blk, 0.1) for blk in range(a, b)], iteration=1)
        assert table.can_skip_super(0, 0.2)

    def test_payload_round_trip_preserves_super_size(self):
        import json

        table = self._table(super_size=5)
        clone = BoundTable.from_payload(
            json.loads(json.dumps(table.to_payload()))
        )
        assert clone.super_size == 5
        # Older payloads without the field still load (default fan-out).
        legacy = table.to_payload()
        del legacy["super_size"]
        assert BoundTable.from_payload(legacy).super_size == 8

    def test_super_size_one_degenerates_to_blocks(self):
        table = self._table(super_size=1)
        assert table.n_supers == table.n_blocks
        table.refresh(2, 0.3, iteration=0)
        assert table.can_skip_super(2, 0.4) == table.can_skip(2, 0.4)


# -- tie-break regression -------------------------------------------------


class TestTieBreak:
    """Out-of-order block visitation must not change tie resolution."""

    @pytest.fixture
    def tied_instance(self, rng):
        # Duplicated gene rows manufacture many exactly-tied combinations.
        base_t = rng.random((6, 40)) < 0.45
        base_n = rng.random((6, 40)) < 0.15
        t = np.vstack([base_t, base_t[:4]])  # genes 6..9 clone genes 0..3
        n = np.vstack([base_n, base_n[:4]])
        return t, n

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_shuffled_priorities_match_sequential(self, tied_instance, seed):
        t, n = tied_instance
        from repro.bitmatrix.matrix import BitMatrix
        from repro.core.fscore import FScoreParams

        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        params = FScoreParams(n_tumor=t.shape[1], n_normal=n.shape[1])
        scheme = scheme_for(3, 2)
        g = t.shape[0]
        expected = sequential_best_combo(t, n, 3, params)

        table = BoundTable.build(scheme, g, n_blocks=7)
        # Arbitrary priorities scramble the visitation order; stamps stay
        # -1 so nothing is skippable — this isolates order-independence.
        table.bounds[:] = np.random.default_rng(seed).random(table.n_blocks)
        got = best_in_thread_range(
            scheme, g, tumor, normal, params, 0, total_threads(scheme, g),
            bounds=table, iteration=0,
        )
        assert got == expected

    def test_pruned_iterations_keep_tie_rule(self, tied_instance):
        t, n = tied_instance
        ref = MultiHitSolver(hits=3, backend="sequential").solve(t, n)
        pruned = MultiHitSolver(hits=3, prune=True, prune_blocks=9).solve(t, n)
        assert signature(pruned) == signature(ref)


# -- cross-backend equivalence -------------------------------------------


class TestEquivalence:
    def test_single_pruned_bit_identical(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        pruned = MultiHitSolver(hits=3, prune=True).solve(t, n)
        assert signature(pruned) == signature(base)
        assert pruned.uncovered == base.uncovered

    @pytest.mark.parametrize("blocks", [1, 5, 160])
    def test_block_granularity_irrelevant_to_results(self, matrices, blocks):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        pruned = MultiHitSolver(hits=3, prune=True, prune_blocks=blocks).solve(t, n)
        assert signature(pruned) == signature(base)

    def test_pool_pruned_bit_identical(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        pruned = MultiHitSolver(
            hits=3, backend="pool", n_workers=2, prune=True
        ).solve(t, n)
        assert signature(pruned) == signature(base)
        # Workers actually pruned (deltas round-tripped, counters merged).
        assert pruned.counters.blocks_skipped > 0
        assert pruned.counters.combos_pruned > 0

    def test_distributed_pruned_bit_identical(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        pruned = MultiHitSolver(
            hits=3, backend="distributed", n_nodes=2, prune=True
        ).solve(t, n)
        assert signature(pruned) == signature(base)
        assert pruned.counters.combos_pruned > 0

    def test_pool_pruned_under_injected_crash(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        plan = FaultPlan(
            (FaultSpec(kind="crash", site="pool", target=1, at_call=1),)
        )
        with pytest.warns(Warning):
            pruned = MultiHitSolver(
                hits=3, backend="pool", n_workers=2, prune=True, fault_plan=plan
            ).solve(t, n)
        assert signature(pruned) == signature(base)
        assert pruned.fault_report is not None
        assert pruned.fault_report.events

    def test_distributed_dead_rank_pruned(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        plan = FaultPlan(
            (FaultSpec(kind="crash", site="rank", target=1, count=-1),)
        )
        pruned = MultiHitSolver(
            hits=3, backend="distributed", n_nodes=2, prune=True, fault_plan=plan
        ).solve(t, n)
        assert signature(pruned) == signature(base)


# -- pruning effectiveness ------------------------------------------------


class TestEffectiveness:
    def test_prunes_at_least_2x_from_iteration_2(self, matrices):
        t, n = matrices
        base = MultiHitSolver(hits=3).solve(t, n)
        pruned = MultiHitSolver(hits=3, prune=True).solve(t, n)
        base_tail = sum(r.combos_scored for r in base.iterations[1:])
        pruned_tail = sum(r.combos_scored for r in pruned.iterations[1:])
        assert len(base.iterations) >= 3
        assert pruned_tail * 2 <= base_tail
        # Iteration 1 has no bounds yet: full scan, nothing pruned.
        assert pruned.iterations[0].combos_pruned == 0
        assert (
            pruned.iterations[0].combos_scored == base.iterations[0].combos_scored
        )
        # Accounting closes: every combination is scored or pruned.
        for rb, rp in zip(base.iterations, pruned.iterations):
            assert rp.combos_scored + rp.combos_pruned == rb.combos_scored

    def test_compaction_shrinks_scoring_matrix(self, matrices):
        t, n = matrices
        pruned = MultiHitSolver(hits=3, prune=True).solve(t, n)
        widths = [r.tumor_words for r in pruned.iterations]
        assert widths[-1] <= widths[0]

    def test_prune_counters_reach_telemetry(self, matrices):
        from repro.telemetry import telemetry_session

        t, n = matrices
        with telemetry_session() as tel:
            MultiHitSolver(hits=3, prune=True, max_iterations=3).solve(t, n)
            counters = tel.metrics.to_dict()["counters"]
            gauges = tel.metrics.to_dict()["gauges"]
        assert counters["prune.blocks_scanned"] > 0
        assert counters["prune.blocks_skipped"] > 0
        assert counters["prune.combos_pruned"] > 0
        assert 0.0 < gauges["prune.hit_rate"] < 1.0


# -- fused traffic accounting ----------------------------------------------


class TestFusedTrafficIdentity:
    """``word_reads`` on the pruned path follow the fused traffic model:
    every scanned thread's ``f`` base rows are gathered once, and each
    workload level's inner AND-table is built once per engine call.  The
    identity must close against an independent per-block summation
    regardless of run batching, super-block skipping, or column
    compaction (the fused-kernel analogue of keeping compacted-matrix
    reads and :func:`global_word_reads` apples-to-apples)."""

    def _expected_reads(self, scheme, g, w, table, iteration):
        from repro.combinatorics.decode import top_index_array
        from repro.scheduling.workload import level_range, level_work

        f, d = scheme.flattened, scheme.inner
        total = 0
        touched = set()
        for blk in np.flatnonzero(table.stamps == iteration):
            lo, hi = table.block_range(int(blk))
            lo_top = int(top_index_array(np.array([lo]), f)[0])
            hi_top = int(top_index_array(np.array([hi - 1]), f)[0])
            for m in range(lo_top, hi_top + 1):
                a, b = level_range(scheme, m)
                n_threads = min(b, hi) - max(a, lo)
                if n_threads <= 0:
                    continue
                if d > 0 and level_work(scheme, g, m) == 0:
                    continue
                total += n_threads * f
                if d > 0:
                    touched.add(m)
        total += sum(level_work(scheme, g, m) * d for m in touched)
        return total * w

    def _pruned_scan(self, tumor, normal, params, scheme, g, table, iteration):
        counters = KernelCounters()
        best_in_thread_range(
            scheme, g, tumor, normal, params,
            0, total_threads(scheme, g),
            counters=counters, bounds=table, iteration=iteration,
        )
        return counters

    @pytest.mark.parametrize("flattened", [2, 3])
    def test_identity_closes_across_iterations_and_compaction(
        self, matrices, flattened
    ):
        from repro.bitmatrix.matrix import BitMatrix
        from repro.bitmatrix.splicing import splice_columns
        from repro.core.fscore import FScoreParams

        t, n = matrices
        tumor, normal = BitMatrix.from_dense(t), BitMatrix.from_dense(n)
        params = FScoreParams(n_tumor=t.shape[1], n_normal=n.shape[1])
        scheme = scheme_for(3, flattened)
        g = t.shape[0]
        table = BoundTable.build(scheme, g, n_blocks=24, super_size=4)
        w = tumor.n_words + normal.n_words

        c0 = self._pruned_scan(tumor, normal, params, scheme, g, table, 0)
        assert c0.word_reads == self._expected_reads(scheme, g, w, table, 0)
        assert c0.decode_strides > 0

        # "Iteration 1": splice out half the tumor columns (TP only
        # shrinks, so reusing the table is sound) and verify the identity
        # still closes with the *compacted* word width while pruning and
        # run batching are actually engaged.
        keep = np.zeros(tumor.n_samples, dtype=bool)
        keep[: tumor.n_samples // 2] = True
        tumor2 = splice_columns(tumor, keep)
        assert tumor2.n_words < tumor.n_words
        w2 = tumor2.n_words + normal.n_words
        c1 = self._pruned_scan(tumor2, normal, params, scheme, g, table, 1)
        assert c1.blocks_skipped > 0
        assert c1.word_reads == self._expected_reads(scheme, g, w2, table, 1)
        # Accounting still closes combination-for-combination.
        assert c1.combos_scored + c1.combos_pruned == int(table.works.sum())

    def test_supers_skipped_surface_in_solver_counters(self, matrices):
        t, n = matrices
        pruned = MultiHitSolver(hits=3, prune=True).solve(t, n)
        assert pruned.counters.supers_skipped > 0
        assert pruned.counters.decode_strides > 0


# -- checkpoint interaction -----------------------------------------------


class TestCheckpointResume:
    def test_resume_with_and_without_table(self, matrices, tmp_path):
        t, n = matrices
        full = MultiHitSolver(hits=3, prune=True).solve(t, n)

        states = []
        MultiHitSolver(hits=3, prune=True, max_iterations=2).solve(
            t, n, on_iteration=states.append
        )
        state = states[-1]
        assert state.bound_table is not None

        # Resume adopting the persisted bound table.
        with_table = MultiHitSolver(hits=3, prune=True).solve(t, n, resume=state)
        # Resume after dropping it (older checkpoint / unknown provenance).
        stripped = dataclasses.replace(state, bound_table=None)
        without_table = MultiHitSolver(hits=3, prune=True).solve(
            t, n, resume=stripped
        )

        assert signature(with_table) == signature(full)
        assert signature(without_table) == signature(full)
        assert len(with_table.iterations) == len(full.iterations) - 2
        # The adopted table prunes the resumed run's first iteration too.
        assert with_table.iterations[0].combos_pruned > 0
        assert without_table.iterations[0].combos_pruned == 0

    def test_table_survives_json_round_trip(self, matrices, tmp_path):
        t, n = matrices
        states = []
        MultiHitSolver(hits=3, prune=True, max_iterations=2).solve(
            t, n, on_iteration=states.append
        )
        path = tmp_path / "ck.json"
        save_state(states[-1], path)
        loaded = load_state(path)
        assert loaded.bound_table == states[-1].bound_table
        full = MultiHitSolver(hits=3, prune=True).solve(t, n)
        resumed = MultiHitSolver(hits=3, prune=True).solve(t, n, resume=loaded)
        assert signature(resumed) == signature(full)

    def test_mismatched_table_geometry_dropped(self, matrices):
        t, n = matrices
        states = []
        MultiHitSolver(hits=3, prune=True, prune_blocks=64, max_iterations=2).solve(
            t, n, on_iteration=states.append
        )
        full = MultiHitSolver(hits=3, prune=True, prune_blocks=16).solve(t, n)
        # Different block geometry: the persisted table can't be adopted,
        # but the resumed run must still be bit-identical.
        resumed = MultiHitSolver(hits=3, prune=True, prune_blocks=16).solve(
            t, n, resume=states[-1]
        )
        assert signature(resumed) == signature(full)
        assert resumed.iterations[0].combos_pruned == 0

    def test_unpruned_runs_checkpoint_without_table(self, matrices):
        t, n = matrices
        states = []
        MultiHitSolver(hits=3, max_iterations=1).solve(
            t, n, on_iteration=states.append
        )
        assert states[-1].bound_table is None
