"""Elastic scale-out churn matrix: crash / hang / straggler x join / leave.

The contract: under **any** mid-solve membership churn — ranks joining,
draining, crashing, or going silent until their leases are stolen — the
elastic paths (threaded :class:`ElasticSPMDRunner`, in-process
``DistributedEngine(elastic=True)``, and the lease-grained pool) select
bit-identical winners to the static failure-free run, and the kernel
counters close (every combination is scored exactly once on the
unpruned path).
"""

import time

import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.autoscale import AutoscaleDecision, AutoscalePolicy
from repro.cluster.elastic import ElasticSPMDRunner, elastic_spmd_best_combo
from repro.cluster.leases import LeaseLedger
from repro.cluster.runtime import SPMDRunner
from repro.cluster.virtual import VirtualCluster
from repro.core.bounds import BoundTable
from repro.core.distributed import DistributedEngine
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.pool import PoolEngine
from repro.core.solver import MultiHitSolver
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.report import FaultReport
from repro.faults.reschedule import reschedule_ranges_aligned
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schemes import SCHEME_3X1, scheme_for
from repro.scheduling.workload import cumulative_work_before
from repro.telemetry.session import get_telemetry, telemetry_session


def signature(combos):
    return [(c.genes, round(c.f, 12), c.tp, c.tn) for c in combos]


@pytest.fixture
def instance(rng):
    t = rng.random((14, 30)) < 0.4
    n = rng.random((14, 24)) < 0.2
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=30, n_normal=24),
    )


@pytest.fixture
def cohort(rng):
    t = rng.random((12, 40)) < 0.4
    n = rng.random((12, 40)) < 0.15
    return t, n


# -- churn plan construction ---------------------------------------------


class TestChurnPlan:
    def test_membership_kind_site_coupling(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="join", site="rank")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash", site="membership")
        FaultSpec(kind="leave", site="membership", target=1)  # fine

    def test_take_churn_fires_on_progress_fraction(self):
        plan = FaultPlan(
            (
                FaultSpec(kind="leave", site="membership", target=2, delay_s=0.3),
                FaultSpec(kind="join", site="membership", target=1, delay_s=0.6),
            )
        )
        assert plan.take_churn(0, 0.1) == []
        fired = plan.take_churn(0, 0.4)
        assert [s.kind for s in fired] == ["leave"]
        assert plan.take_churn(0, 0.4) == []  # spent
        assert [s.kind for s in plan.take_churn(0, 1.0)] == ["join"]

    def test_churn_factory_shape(self):
        plan = FaultPlan.churn(10, fraction=0.2, leave_at=0.25, join_at=0.5)
        leaves = [s for s in plan.specs if s.kind == "leave"]
        joins = [s for s in plan.specs if s.kind == "join"]
        assert len(leaves) == 2  # round(10 * 0.2)
        assert sorted(s.target for s in leaves) == [8, 9]  # highest ranks
        assert len(joins) == 1 and joins[0].target == 2
        assert all(s.delay_s == 0.25 for s in leaves)
        assert joins[0].delay_s == 0.5

    def test_churn_never_drains_the_last_rank(self):
        plan = FaultPlan.churn(1, fraction=1.0)
        assert not [s for s in plan.specs if s.kind == "leave"]
        assert [s.kind for s in plan.specs] == ["join"]


# -- aligned rescheduling (satellite: pruned recovery) -------------------


class TestAlignedReschedule:
    def test_pieces_snap_to_block_boundaries(self):
        scheme, g = SCHEME_3X1, 24
        schedule = equiarea_schedule(scheme, g, 6)
        bounds = BoundTable.build(
            scheme, g, cuts=schedule.boundaries, n_blocks=24
        )
        shares = reschedule_ranges_aligned(
            schedule, [2, 3], 3, bounds.boundaries
        )
        pieces = [t for survivor in shares for t in survivor]
        assert pieces
        for _, lo, hi in pieces:
            assert bounds.aligned(lo, hi), (lo, hi)

    def test_aligned_recut_covers_dead_ranges_exactly(self):
        scheme, g = SCHEME_3X1, 24
        schedule = equiarea_schedule(scheme, g, 6)
        bounds = BoundTable.build(
            scheme, g, cuts=schedule.boundaries, n_blocks=24
        )
        dead = [1, 4]
        shares = reschedule_ranges_aligned(schedule, dead, 3, bounds.boundaries)
        got = sorted(
            (lo, hi) for survivor in shares for (_, lo, hi) in survivor
        )
        expect = sum(
            cumulative_work_before(scheme, g, schedule.thread_range(p)[1])
            - cumulative_work_before(scheme, g, schedule.thread_range(p)[0])
            for p in dead
        )
        work = sum(
            cumulative_work_before(scheme, g, hi)
            - cumulative_work_before(scheme, g, lo)
            for lo, hi in got
        )
        assert work == expect
        for (_, a), (b, _) in zip(got, got[1:]):
            assert b >= a

    def test_needs_survivors(self):
        schedule = equiarea_schedule(SCHEME_3X1, 12, 4)
        with pytest.raises(ValueError):
            reschedule_ranges_aligned(schedule, [0], 0, (0, 10))


# -- threaded elastic runner ---------------------------------------------


class TestElasticRunner:
    def _ref(self, instance, counters=None):
        tumor, normal, params = instance
        return SingleGpuEngine(scheme=SCHEME_3X1).best_combo(
            tumor, normal, params, counters=counters
        )

    def test_clean_run_bit_exact_with_closed_counters(self, instance):
        tumor, normal, params = instance
        ref_counters = KernelCounters()
        ref = self._ref(instance, ref_counters)
        counters = KernelCounters()
        got = elastic_spmd_best_combo(
            SCHEME_3X1, tumor.n_genes, tumor, normal, params,
            n_ranks=3, counters=counters,
        )
        assert got == ref
        assert counters.combos_scored == ref_counters.combos_scored

    def test_full_churn_matrix_bit_exact(self, instance):
        """crash + hang + leave + join in one solve: the worst case."""
        tumor, normal, params = instance
        ref = self._ref(instance)
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", site="rank", target=1),
                FaultSpec(kind="hang", site="rank", target=2, delay_s=0.8),
                FaultSpec(kind="leave", site="membership", target=0, delay_s=0.1),
                FaultSpec(kind="join", site="membership", target=2, delay_s=0.2),
            )
        )
        report = FaultReport()
        counters = KernelCounters()
        got = elastic_spmd_best_combo(
            SCHEME_3X1, tumor.n_genes, tumor, normal, params,
            n_ranks=3, fault_plan=plan, report=report,
            counters=counters, lease_ttl_s=0.3, max_wall_s=60.0,
        )
        assert got == ref
        kinds = {e.kind for e in report.events}
        assert "crash" in kinds  # the forfeiture edge
        assert any(e.kind == "join" and e.action == "joined" for e in report.events)
        assert any(e.kind == "leave" and e.action == "drained" for e in report.events)
        # Counter closure despite churn: the unpruned grid is scored once.
        ref_counters = KernelCounters()
        self._ref(instance, ref_counters)
        assert counters.combos_scored == ref_counters.combos_scored

    def test_straggler_finishes_inside_ttl(self, instance):
        tumor, normal, params = instance
        ref = self._ref(instance)
        plan = FaultPlan(
            (FaultSpec(kind="straggler", site="rank", target=0, delay_s=0.05),)
        )
        report = FaultReport()
        got = elastic_spmd_best_combo(
            SCHEME_3X1, tumor.n_genes, tumor, normal, params,
            n_ranks=2, fault_plan=plan, report=report, lease_ttl_s=5.0,
        )
        assert got == ref
        assert any(
            e.kind == "straggler" and e.action == "observed"
            for e in report.events
        )

    def test_whole_fleet_dead_drained_by_driver(self, instance):
        tumor, normal, params = instance
        ref = self._ref(instance)
        plan = FaultPlan(
            tuple(
                FaultSpec(kind="crash", site="rank", target=r, count=-1)
                for r in range(2)
            )
        )
        report = FaultReport()
        got = elastic_spmd_best_combo(
            SCHEME_3X1, tumor.n_genes, tumor, normal, params,
            n_ranks=2, fault_plan=plan, report=report, max_wall_s=60.0,
        )
        assert got == ref
        assert any(e.action == "inline-drain" for e in report.events)

    def test_pruned_elastic_matches_pruned_static(self, instance):
        tumor, normal, params = instance
        g = tumor.n_genes
        ref_bounds = BoundTable.build(SCHEME_3X1, g, n_blocks=16)
        ref_counters = KernelCounters()
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(
            tumor, normal, params, counters=ref_counters, bounds=ref_bounds
        )
        ledger_cuts = LeaseLedger.build(SCHEME_3X1, g, n_leases=8).boundaries
        bounds = BoundTable.build(SCHEME_3X1, g, cuts=ledger_cuts, n_blocks=16)
        counters = KernelCounters()
        got = elastic_spmd_best_combo(
            SCHEME_3X1, g, tumor, normal, params,
            n_ranks=2, n_leases=8, counters=counters, bounds=bounds,
        )
        assert got == ref
        # Pruning closure: scored + pruned covers the whole grid either way.
        assert (
            counters.combos_scored + counters.combos_pruned
            == ref_counters.combos_scored + ref_counters.combos_pruned
        )

    def test_runner_validation(self):
        with pytest.raises(ValueError):
            ElasticSPMDRunner(n_ranks=0)
        with pytest.raises(ValueError):
            ElasticSPMDRunner(n_ranks=4, max_ranks=2)

    def test_wall_deadline_raises(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan(
            tuple(
                FaultSpec(kind="hang", site="rank", target=r, delay_s=30.0,
                          count=-1)
                for r in range(2)
            )
        )
        with pytest.raises(RuntimeError, match="max_wall_s"):
            elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params,
                n_ranks=2, fault_plan=plan, lease_ttl_s=60.0, max_wall_s=0.5,
            )


# -- elastic distributed engine ------------------------------------------


class TestElasticDistributed:
    def _engines(self, fault_plan=None, **kw):
        kwargs = dict(scheme=scheme_for(3, 2), n_nodes=3, gpus_per_node=2)
        clean = DistributedEngine(**kwargs)
        faulty = DistributedEngine(
            **kwargs, elastic=True, fault_plan=fault_plan, **kw
        )
        return clean, faulty

    def test_clean_elastic_matches_static(self, instance):
        tumor, normal, params = instance
        clean, elastic = self._engines()
        ref_counters, counters = KernelCounters(), KernelCounters()
        ref = clean.best_combo(tumor, normal, params, counters=ref_counters)
        got = elastic.best_combo(tumor, normal, params, counters=counters)
        assert got == ref
        assert counters.combos_scored == ref_counters.combos_scored

    def test_persistent_crash_steals_bit_exact(self, instance):
        tumor, normal, params = instance
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=1, count=-1),))
        clean, elastic = self._engines(plan)
        ref_counters, counters = KernelCounters(), KernelCounters()
        ref = clean.best_combo(tumor, normal, params, counters=ref_counters)
        got = elastic.best_combo(tumor, normal, params, counters=counters)
        assert got == ref
        assert any(e.action == "lease-forfeit" for e in elastic.report.events)
        assert elastic.report.n_rescheduled >= 1
        assert 1 in elastic.report.dead_ranks
        # Stolen leases are searched exactly once.
        assert counters.combos_scored == ref_counters.combos_scored

    def test_mid_solve_churn_20pct_bit_exact(self, instance):
        """The acceptance scenario: ±20% of the fleet swaps mid-solve."""
        tumor, normal, params = instance
        plan = FaultPlan.churn(3, fraction=0.34, leave_at=0.2, join_at=0.4)
        clean, elastic = self._engines(plan)
        ref = clean.best_combo(tumor, normal, params)
        got = elastic.best_combo(tumor, normal, params)
        assert got == ref
        churn = [
            (e.kind, e.action)
            for e in elastic.report.events
            if e.site == "membership"
        ]
        assert ("leave", "drained") in churn
        assert ("join", "joined") in churn

    def test_pruned_elastic_crash_matches_pruned_static(self, instance):
        tumor, normal, params = instance
        g = tumor.n_genes
        scheme = scheme_for(3, 2)
        plan = FaultPlan((FaultSpec(kind="crash", site="rank", target=0, count=-1),))
        kwargs = dict(scheme=scheme, n_nodes=3, gpus_per_node=2)
        clean = DistributedEngine(**kwargs)
        faulty = DistributedEngine(**kwargs, elastic=True, fault_plan=plan)
        ref_bounds = BoundTable.build(
            scheme, g, cuts=clean.chunk_cuts(g), n_blocks=16
        )
        bounds = BoundTable.build(
            scheme, g, cuts=faulty.chunk_cuts(g), n_blocks=16
        )
        ref = clean.best_combo(tumor, normal, params, bounds=ref_bounds)
        got = faulty.best_combo(tumor, normal, params, bounds=bounds)
        assert got == ref

    def test_solver_elastic_distributed_under_churn(self, cohort):
        t, n = cohort
        clean = MultiHitSolver(hits=2, backend="distributed", n_nodes=3).solve(t, n)
        plan = FaultPlan.churn(3, fraction=0.34, leave_at=0.1, join_at=0.3)
        elastic = MultiHitSolver(
            hits=2, backend="distributed", n_nodes=3,
            elastic=True, fault_plan=plan,
        ).solve(t, n)
        assert signature(elastic.combinations) == signature(clean.combinations)
        assert elastic.uncovered == clean.uncovered

    def test_solver_validation(self):
        with pytest.raises(ValueError):
            MultiHitSolver(hits=2, elastic=True, backend="single")
        with pytest.raises(ValueError):
            MultiHitSolver(hits=2, lease_blocks=-1)


# -- lease-grained pool --------------------------------------------------


class TestPoolLeases:
    def test_lease_grained_pool_bit_exact(self, instance):
        tumor, normal, params = instance
        scheme = scheme_for(3, 2)
        ref_counters = KernelCounters()
        ref = SingleGpuEngine(scheme=scheme).best_combo(
            tumor, normal, params, counters=ref_counters
        )
        counters = KernelCounters()
        with PoolEngine(scheme=scheme, n_workers=2, lease_blocks=8) as eng:
            got = eng.best_combo(tumor, normal, params, counters=counters)
        assert got == ref
        assert counters.combos_scored == ref_counters.combos_scored

    def test_solver_elastic_pool_matches_static(self, cohort):
        t, n = cohort
        clean = MultiHitSolver(hits=2, backend="pool", n_workers=2).solve(t, n)
        elastic = MultiHitSolver(
            hits=2, backend="pool", n_workers=2, elastic=True, lease_blocks=8
        ).solve(t, n)
        assert signature(elastic.combinations) == signature(clean.combinations)

    def test_lease_blocks_validation(self):
        with pytest.raises(ValueError):
            PoolEngine(scheme=SCHEME_3X1, n_workers=2, lease_blocks=-1)


# -- membership + gauges + autoscaler ------------------------------------


class TestVirtualClusterMembership:
    def test_join_extends_the_fleet_at_current_time(self):
        cluster = VirtualCluster(n_ranks=3)
        cluster.compute_rank(0, 5.0)
        cluster.join(2)
        assert cluster.n_ranks == 5
        # A joiner's clock starts at the join time, not at zero.
        assert cluster.clock[4] == pytest.approx(cluster.elapsed_s)

    def test_leave_moves_timelines_to_departed(self):
        cluster = VirtualCluster(n_ranks=4)
        cluster.compute_rank(3, 2.0)
        cluster.leave([3, 1])
        assert cluster.n_ranks == 2
        assert len(cluster.departed) == 2
        assert any(t.compute_s >= 2.0 for t in cluster.departed)

    def test_leave_validation(self):
        cluster = VirtualCluster(n_ranks=2)
        with pytest.raises(ValueError):
            cluster.leave([5])
        with pytest.raises(ValueError):
            cluster.leave([0, 1])  # cannot drain the whole fleet


class TestHeartbeatGaugeHygiene:
    def test_world_restart_clears_stale_rank_gauges(self):
        """Satellite: gauges from a 6-rank world must not survive into a
        4-rank restart (the stale rank4/rank5 keys made /metrics lie)."""
        with telemetry_session() as tel:
            tel.set_gauge("spmd.heartbeat_stale_s.rank99", 123.0)
            SPMDRunner(2, recv_timeout_s=5.0).run(lambda comm: comm.Get_rank())
            assert "spmd.heartbeat_stale_s.rank99" not in tel.metrics.gauges

    def test_elastic_runner_clears_stale_rank_gauges(self, instance):
        tumor, normal, params = instance
        with telemetry_session() as tel:
            tel.set_gauge("spmd.heartbeat_stale_s.rank99", 123.0)
            elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params, n_ranks=2
            )
            assert "spmd.heartbeat_stale_s.rank99" not in tel.metrics.gauges

    def test_clear_gauges_returns_count(self):
        with telemetry_session() as tel:
            tel.set_gauge("x.a", 1.0)
            tel.set_gauge("x.b", 2.0)
            tel.set_gauge("y.a", 3.0)
            assert tel.clear_gauges("x.") == 2
            assert set(tel.metrics.gauges) >= {"y.a"}
            assert "x.a" not in tel.metrics.gauges

    def test_clear_gauges_disabled_is_noop(self):
        assert get_telemetry().clear_gauges("x.") in (0, 0)


class TestAutoscalePolicy:
    def test_silent_ranks_trigger_shrink_first(self):
        policy = AutoscalePolicy(target_eta_s=100.0, stale_after_s=1.0)
        d = policy.recommend(
            4, eta_s=500.0, heartbeat_stale_s={0: 0.1, 2: 5.0, 3: 9.0}
        )
        assert d.action == "shrink" and d.delta == 2
        assert d.stale_ranks == (2, 3)

    def test_late_eta_grows_proportionally(self):
        policy = AutoscalePolicy(target_eta_s=100.0)
        d = policy.recommend(4, eta_s=250.0, heartbeat_stale_s={})
        assert d.action == "grow" and d.delta == 6  # ceil(4*2.5) - 4

    def test_grow_capped_by_max_step_and_max_ranks(self):
        policy = AutoscalePolicy(target_eta_s=1.0, max_step=3, max_ranks=6)
        d = policy.recommend(4, eta_s=1000.0)
        assert d.action == "grow" and d.delta == 2  # max_ranks clamp

    def test_early_eta_shrinks(self):
        policy = AutoscalePolicy(target_eta_s=100.0, shrink_margin=0.5)
        d = policy.recommend(8, eta_s=20.0)
        assert d.action == "shrink" and d.delta == 6  # down to ceil(8*0.2)

    def test_hold_inside_band(self):
        policy = AutoscalePolicy(target_eta_s=100.0)
        d = policy.recommend(4, eta_s=80.0)
        assert d.is_hold and d.delta == 0

    def test_no_target_only_staleness_rule(self):
        policy = AutoscalePolicy(stale_after_s=1.0)
        assert policy.recommend(4, eta_s=1e9).is_hold
        assert policy.recommend(4, heartbeat_stale_s={1: 99.0}).action == "shrink"

    def test_decision_gauges_exported(self):
        with telemetry_session() as tel:
            AutoscalePolicy(target_eta_s=10.0).recommend(2, eta_s=100.0)
            assert tel.metrics.gauges["autoscale.n_ranks"] == 2
            assert tel.metrics.gauges["autoscale.delta"] > 0

    def test_attached_policy_samples_during_run(self, instance):
        tumor, normal, params = instance
        with telemetry_session() as tel:
            elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params,
                n_ranks=2, autoscale=AutoscalePolicy(stale_after_s=30.0),
            )
            assert "autoscale.n_ranks" in tel.metrics.gauges


# -- elastic scaling model (fig4 extras) ---------------------------------


class TestElasticScalingModel:
    def test_makespan_ideal_without_churn(self):
        from repro.perfmodel.scaling import simulate_elastic_makespan

        assert simulate_elastic_makespan([], 4) == 0.0
        # 8 unit leases on 4 executors: two perfect waves.
        assert simulate_elastic_makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_leave_slows_join_recovers(self):
        from repro.perfmodel.scaling import simulate_elastic_makespan

        base = simulate_elastic_makespan([1.0] * 12, 4)
        shrunk = simulate_elastic_makespan([1.0] * 12, 4, leaves=((0.25, 2),))
        swapped = simulate_elastic_makespan(
            [1.0] * 12, 4, leaves=((0.25, 2),), joins=((0.5, 2),)
        )
        assert shrunk > base
        assert base <= swapped <= shrunk

    def test_leaves_never_drain_the_fleet(self):
        from repro.perfmodel.scaling import simulate_elastic_makespan

        # Asking every executor to leave keeps one alive: finite makespan.
        m = simulate_elastic_makespan([1.0] * 6, 2, leaves=((0.0, 5),))
        assert m == pytest.approx(6.0)

    def test_validation(self):
        from repro.perfmodel.scaling import simulate_elastic_makespan

        with pytest.raises(ValueError):
            simulate_elastic_makespan([1.0], 0)

    def test_elastic_sweep_tracks_static(self):
        from repro.perfmodel.runtime import JobModel
        from repro.perfmodel.scaling import (
            elastic_strong_scaling_sweep,
            strong_scaling_sweep,
        )
        from repro.perfmodel.workloads import ACC

        model = JobModel(scheme=SCHEME_3X1)
        static = strong_scaling_sweep(
            model, ACC, node_counts=[4, 8], baseline_nodes=4
        )
        elastic = elastic_strong_scaling_sweep(
            model, ACC, node_counts=[4, 8], baseline_nodes=4,
            churn_fraction=0.25,
        )
        assert [p.n_nodes for p in elastic] == [4, 8]
        # Work stealing under churn stays within a band of the static
        # fleet: not catastrophically slower, never absurdly faster.
        for e, s in zip(elastic, static):
            assert 0.5 * s.runtime_s <= e.runtime_s <= 1.5 * s.runtime_s

    def test_fig4_run_with_elastic_extras(self):
        from repro.experiments import fig4_scaling
        from repro.perfmodel.workloads import ACC

        r = fig4_scaling.run(
            workload=ACC,
            strong_nodes=[4, 8],
            weak_nodes=[4, 8],
            elastic_nodes=[4, 8],
            churn_fraction=0.25,
        )
        assert r.elastic is not None and r.elastic_at_max_nodes is not None
        assert r.elastic_overhead_at_max is not None
        assert "elastic strong scaling" in fig4_scaling.report(r)

    def test_fig4_run_without_elastic_is_unchanged(self):
        from repro.experiments import fig4_scaling
        from repro.perfmodel.workloads import ACC

        r = fig4_scaling.run(workload=ACC, strong_nodes=[4, 8], weak_nodes=[4, 8])
        assert r.elastic is None
        assert r.elastic_at_max_nodes is None
        assert r.elastic_overhead_at_max is None
        assert "elastic" not in fig4_scaling.report(r)


# -- flight recorder lease events ----------------------------------------


class TestLeaseFlightEvents:
    def test_steal_leaves_a_note_and_assignment_trail(self, instance):
        from repro.telemetry.flight import FlightRecorder

        tumor, normal, params = instance
        with telemetry_session() as tel:
            tel.attach_flight(FlightRecorder())
            plan = FaultPlan(
                (FaultSpec(kind="crash", site="rank", target=1, count=-1),)
            )
            engine = DistributedEngine(
                scheme=scheme_for(3, 2), n_nodes=3, gpus_per_node=2,
                elastic=True, fault_plan=plan,
            )
            engine.best_combo(tumor, normal, params)
            notes = [
                e for e in tel.flight.timeline()
                if e.get("type") == "note" and e.get("kind") == "lease"
            ]
            assert any(e.get("event") == "steal" for e in notes)
            assert tel.flight.assignments().get("lease")


class TestCausalUnderChurn:
    """Cross-rank span absorption keeps the causal graph sound.

    Ranks churn (crash / hang / leave / join) while their spans are
    absorbed into one session tracer; the causal layer promises the
    merged graph stays well-formed: ``(pid, span_id)`` unique, every
    recorded link resolving to a recorded span, steal edges crossing
    rank timelines, and the reduce anchored to every lease completion.
    """

    def test_edges_survive_full_churn_matrix(self, instance):
        tumor, normal, params = instance
        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(
            tumor, normal, params
        )
        # Membership delay_s is a completed-lease fraction: the join
        # lands early (0.2) and the leave late (0.6), so live ranks are
        # around to steal the crashed rank's forfeited lease — the
        # lowest available id, regranted within one acquire round.
        plan = FaultPlan(
            (
                FaultSpec(kind="crash", site="rank", target=1),
                FaultSpec(kind="hang", site="rank", target=2, delay_s=0.8),
                FaultSpec(kind="join", site="membership", target=2,
                          delay_s=0.2),
                FaultSpec(kind="leave", site="membership", target=0,
                          delay_s=0.6),
            )
        )
        with telemetry_session() as tel:
            got = elastic_spmd_best_combo(
                SCHEME_3X1, tumor.n_genes, tumor, normal, params,
                n_ranks=3, fault_plan=plan, report=FaultReport(),
                lease_ttl_s=0.3, max_wall_s=60.0,
            )
        assert got == ref

        spans = tel.tracer.export()
        keys = [(s["pid"], s["id"]) for s in spans]
        assert len(keys) == len(set(keys))  # absorption never collides
        by_key = dict(zip(keys, spans))
        for span in spans:
            for link in span.get("links") or ():
                assert (link["pid"], link["id"]) in by_key, (
                    f"dangling {link['kind']} edge from {span['name']}"
                )

        # Forfeited leases (crash + expired hang) leave steal edges.  A
        # hung rank may resurface and reclaim its own expired lease (a
        # self-steal), but the crash forfeiture must have crossed rank
        # timelines, and every victim context predates its thief.
        steals = [
            (span, by_key[(link["pid"], link["id"])])
            for span in spans
            for link in span.get("links") or ()
            if link["kind"] == "steal"
        ]
        assert steals
        assert any(
            victim.get("rank") == 1 and thief.get("rank") != 1
            for thief, victim in steals
        ), "crashed rank's lease was not stolen cross-rank"
        for thief, victim in steals:
            assert victim["start_ns"] <= thief["end_ns"]

        # The reduce depends on every lease completion, and the
        # completions span more than one surviving rank.
        reduce_span = next(s for s in spans if s["name"] == "reduce")
        completes = [
            link for link in reduce_span["links"]
            if link["kind"] == "complete"
        ]
        assert completes
        complete_ranks = {
            by_key[(l["pid"], l["id"])].get("rank") for l in completes
        }
        assert len(complete_ranks) >= 2
