"""Tests for the multi-hit classifier and accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.classifier import MultiHitClassifier
from repro.analysis.metrics import sensitivity_specificity, wilson_interval
from repro.bitmatrix.matrix import BitMatrix
from repro.core.solver import MultiHitSolver
from repro.data.matrices import GeneSampleMatrix


class TestClassifier:
    def test_predict_any_combo_fully_present(self):
        dense = np.array(
            [
                [1, 1, 0, 0],
                [1, 0, 0, 1],
                [0, 1, 1, 0],
                [0, 1, 1, 0],
            ],
            dtype=bool,
        )
        clf = MultiHitClassifier(combinations=((0, 1), (2, 3)))
        # sample0: genes 0&1 -> tumor; sample1: genes 2&3 -> tumor;
        # sample2: only 2&3 -> tumor; sample3: only gene1 -> normal.
        np.testing.assert_array_equal(clf.predict(dense), [True, True, True, False])

    def test_empty_classifier_predicts_normal(self):
        clf = MultiHitClassifier(combinations=())
        assert not clf.predict(np.ones((3, 5), dtype=bool)).any()

    def test_accepts_all_matrix_types(self):
        dense = np.ones((2, 3), dtype=bool)
        clf = MultiHitClassifier(combinations=((0, 1),))
        for m in (
            dense,
            BitMatrix.from_dense(dense),
            GeneSampleMatrix(dense, ("a", "b"), ("x", "y", "z")),
        ):
            np.testing.assert_array_equal(clf.predict(m), [True, True, True])

    def test_from_result(self, tiny_cohort):
        res = MultiHitSolver(hits=3).solve(
            tiny_cohort.tumor.values, tiny_cohort.normal.values
        )
        clf = MultiHitClassifier.from_result(res)
        assert len(clf) == len(res.combinations)
        # Training-set sensitivity equals the covered fraction.
        pred = clf.predict(tiny_cohort.tumor)
        assert pred.mean() == pytest.approx(res.coverage)


class TestMetrics:
    def test_sensitivity_specificity_values(self):
        tumor_pred = np.array([True] * 8 + [False] * 2)
        normal_pred = np.array([True] * 1 + [False] * 9)
        p = sensitivity_specificity(tumor_pred, normal_pred, name="X")
        assert p.sensitivity == pytest.approx(0.8)
        assert p.specificity == pytest.approx(0.9)
        assert p.n_tumor == 10 and p.n_normal == 10
        assert "X" in p.describe()

    def test_ci_contains_point(self):
        p = sensitivity_specificity(
            np.array([True] * 20 + [False] * 5), np.array([False] * 25)
        )
        lo, hi = p.sensitivity_ci
        assert lo <= p.sensitivity <= hi
        s_lo, s_hi = p.specificity_ci
        assert s_lo == pytest.approx(0.8663, abs=1e-3)
        assert s_hi == pytest.approx(1.0, abs=1e-9)

    def test_requires_samples(self):
        with pytest.raises(ValueError):
            sensitivity_specificity(np.array([]), np.array([True]))


class TestWilson:
    def test_known_value(self):
        # 8/10 successes: Wilson 95% CI ~ (0.490, 0.943).
        lo, hi = wilson_interval(8, 10)
        assert lo == pytest.approx(0.4902, abs=1e-3)
        assert hi == pytest.approx(0.9433, abs=1e-3)

    def test_extremes_clamped(self):
        lo, hi = wilson_interval(0, 10)
        assert lo == pytest.approx(0.0, abs=1e-12)
        assert hi < 0.35
        lo, hi = wilson_interval(10, 10)
        assert hi == pytest.approx(1.0, abs=1e-12)
        assert lo > 0.65

    def test_narrower_with_more_trials(self):
        lo1, hi1 = wilson_interval(8, 10)
        lo2, hi2 = wilson_interval(80, 100)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
