"""Tests for the multi-stage parallel max-reduction."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.combination import COMBO_RECORD_BYTES, MultiHitCombination, better
from repro.core.reduction import (
    DEFAULT_BLOCK_SIZE,
    ReductionStats,
    block_reduce,
    multi_stage_reduce,
    reduction_plan,
)
from repro.scheduling.schemes import SCHEME_3X1


def combo(i, f):
    return MultiHitCombination(genes=(i, i + 1), f=f)


class TestBlockReduce:
    def test_block_winners(self):
        cands = [combo(0, 0.1), combo(2, 0.9), combo(4, 0.5), combo(6, 0.7)]
        out = block_reduce(cands, block_size=2)
        assert [c.f for c in out] == [0.9, 0.7]

    def test_handles_none(self):
        out = block_reduce([None, combo(0, 0.3), None], block_size=2)
        assert out[0].f == 0.3
        assert out[1] is None

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            block_reduce([], block_size=0)

    def test_shrink_factor(self):
        cands = [combo(i, i / 1000) for i in range(0, 2000, 2)]
        out = block_reduce(cands, DEFAULT_BLOCK_SIZE)
        assert len(out) == math.ceil(len(cands) / DEFAULT_BLOCK_SIZE)


class TestMultiStage:
    def test_equals_global_max(self):
        rng = random.Random(7)
        cands = [combo(2 * i, rng.random()) for i in range(1000)]
        expected = None
        for c in cands:
            expected = better(expected, c)
        got = multi_stage_reduce(cands, block_size=8)
        assert got.genes == expected.genes and got.f == expected.f

    def test_stats_record_stage_sizes(self):
        cands = [combo(2 * i, 0.5) for i in range(100)]
        stats = ReductionStats()
        multi_stage_reduce(cands, block_size=10, stats=stats)
        assert stats.stage_entries == [100, 10, 1]
        assert stats.stage_bytes == [2000, 200, 20]

    def test_empty(self):
        assert multi_stage_reduce([]) is None

    def test_all_none(self):
        assert multi_stage_reduce([None, None, None], block_size=2) is None

    def test_tie_break_global(self):
        # Two blocks tie on F; the lexicographically smaller tuple wins.
        cands = [combo(10, 0.5), combo(0, 0.5), combo(4, 0.5), combo(2, 0.5)]
        got = multi_stage_reduce(cands, block_size=2)
        assert got.genes == (0, 1)

    def test_block_size_one_rejected(self):
        # A 1-wide block cannot make progress; guarded explicitly (this
        # exact degenerate case once hung the reduction loop).
        with pytest.raises(ValueError):
            multi_stage_reduce([combo(0, 0.1), combo(2, 0.2)], block_size=1)

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=500),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=2, max_value=64),
    )
    def test_hypothesis_any_block_size_same_winner(self, raw, block):
        cands = [combo(2 * i, f) for i, f in raw]
        expected = None
        for c in cands:
            expected = better(expected, c)
        got = multi_stage_reduce(cands, block_size=block)
        assert got.genes == expected.genes and got.f == expected.f


class TestPlan:
    def test_paper_accounting(self):
        # Section III-E: ~1.22e12 entries (24.34 TB) -> /512 -> ~47.5 GB.
        plan = reduction_plan(SCHEME_3X1, 19411, block_size=512, n_gpus=6000)
        assert plan["threads"] == math.comb(19411, 3)
        assert 24.0e12 < plan["naive_list_bytes"] < 24.8e12
        assert 45e9 < plan["block_list_bytes"] < 50e9
        assert plan["per_rank_bytes_to_root"] == COMBO_RECORD_BYTES
        assert plan["root_reduce_entries"] == 6000

    def test_block_count_rounds_up(self):
        plan = reduction_plan(SCHEME_3X1, 10, block_size=7)
        assert plan["blocks"] == math.ceil(math.comb(10, 3) / 7)
