"""Subpackage export-surface checks."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.bitmatrix",
    "repro.combinatorics",
    "repro.scheduling",
    "repro.core",
    "repro.cluster",
    "repro.faults",
    "repro.gpusim",
    "repro.perfmodel",
    "repro.data",
    "repro.analysis",
    "repro.mutlevel",
    "repro.experiments",
    "repro.io",
    "repro.telemetry",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_all_resolves(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", None)
    if exported is None:
        return
    for attr in exported:
        assert hasattr(mod, attr), f"{name}.{attr} missing"


def test_scheduling_extension_exports():
    from repro.scheduling import (  # noqa: F401
        InterleavedSchedule,
        ThreadCostModel,
        costaware_schedule,
        interleaved_schedule,
        lambda_cut_for_work,
        latency_aware_schedule,
    )


def test_perfmodel_extension_exports():
    from repro.perfmodel import (  # noqa: F401
        GpuMemoryPlan,
        interleaved_gpu_busy_times,
        plan_memory,
    )


def test_every_module_has_docstring():
    import pathlib

    import repro

    root = pathlib.Path(repro.__file__).parent
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        if not source.strip():
            continue
        first = source.lstrip()
        assert first.startswith('"""') or first.startswith("'''"), (
            f"{path} lacks a module docstring"
        )
