"""Tests for the virtual-time cluster."""

import numpy as np
import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.virtual import VirtualCluster


def make(n=4):
    return VirtualCluster(
        n_ranks=n,
        network=NetworkModel(
            latency_s=1e-6, bandwidth_bps=1e9, per_rank_software_overhead_s=0.0
        ),
    )


class TestCompute:
    def test_clocks_advance_independently(self):
        vc = make(3)
        vc.compute(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(vc.clock, [1.0, 2.0, 3.0])
        assert vc.elapsed_s == 3.0

    def test_shape_checked(self):
        vc = make(3)
        with pytest.raises(ValueError):
            vc.compute(np.array([1.0, 2.0]))

    def test_negative_rejected(self):
        vc = make(2)
        with pytest.raises(ValueError):
            vc.compute(np.array([1.0, -1.0]))

    def test_compute_rank(self):
        vc = make(2)
        vc.compute_rank(1, 5.0)
        assert vc.clock[1] == 5.0 and vc.clock[0] == 0.0


class TestReduce:
    def test_synchronizes_to_straggler(self):
        vc = make(3)
        vc.compute(np.array([1.0, 5.0, 2.0]))
        finish = vc.reduce_to_root(20)
        wire = vc.network.tree_reduce_time(3, 20)
        assert finish == pytest.approx(5.0 + wire)
        np.testing.assert_allclose(vc.clock, finish)

    def test_wait_charged_as_comm(self):
        vc = make(2)
        vc.compute(np.array([1.0, 4.0]))
        vc.reduce_to_root(20)
        comm = vc.comm_times()
        assert comm[0] > comm[1]  # fast rank waits longer
        assert comm[0] == pytest.approx(3.0 + vc.network.tree_reduce_time(2, 20))

    def test_timeline_accounting_conserves_time(self):
        vc = make(4)
        rng = np.random.default_rng(0)
        for _ in range(5):
            vc.compute(rng.random(4))
            vc.reduce_to_root(20)
            vc.bcast_from_root(100)
        total = vc.compute_times() + vc.comm_times()
        np.testing.assert_allclose(total, vc.elapsed_s)

    def test_single_rank_no_comm_cost(self):
        vc = VirtualCluster(n_ranks=1)
        vc.compute(np.array([2.0]))
        vc.reduce_to_root(20)
        assert vc.comm_times()[0] == 0.0


class TestValidation:
    def test_needs_ranks(self):
        with pytest.raises(ValueError):
            VirtualCluster(n_ranks=0)
