"""Tests for the 20-byte combination record and tie-breaking."""

import math

import pytest

from repro.core.combination import (
    COMBO_DTYPE,
    COMBO_RECORD_BYTES,
    MultiHitCombination,
    better,
    colex_rank,
)


class TestRecordLayout:
    def test_twenty_bytes(self):
        # Section III-E: four ints + one float = 20 bytes per candidate.
        assert COMBO_RECORD_BYTES == 20
        assert COMBO_DTYPE.itemsize == 20

    def test_roundtrip_four_hit(self):
        c = MultiHitCombination(genes=(3, 7, 100, 19410), f=0.875, tp=5, tn=9)
        rec = c.to_record()
        back = MultiHitCombination.from_record(rec, tp=5, tn=9)
        assert back.genes == c.genes
        assert back.f == pytest.approx(c.f, rel=1e-6)

    def test_roundtrip_shorter_combos(self):
        for genes in [(0, 1), (2, 5, 9)]:
            c = MultiHitCombination(genes=genes, f=0.5)
            assert MultiHitCombination.from_record(c.to_record()).genes == genes

    def test_paper_memory_accounting(self):
        # 1.22e12 candidates x 20 B ~ 24.34 TB (decimal).
        entries = math.comb(19411, 3)
        assert 24.0e12 < entries * COMBO_RECORD_BYTES < 24.8e12


class TestValidation:
    def test_requires_strictly_increasing(self):
        with pytest.raises(ValueError):
            MultiHitCombination(genes=(3, 3, 5, 7), f=0.1)
        with pytest.raises(ValueError):
            MultiHitCombination(genes=(5, 3), f=0.1)

    def test_hits(self):
        assert MultiHitCombination(genes=(1, 2, 3, 4), f=0.0).hits == 4


class TestColexRank:
    def test_matches_enumeration(self):
        assert colex_rank((0, 1)) == 0
        assert colex_rank((0, 1, 2)) == 0
        assert colex_rank((1, 2, 3)) == 3
        assert colex_rank((0, 1, 2, 3)) == 0

    def test_rank_formula(self):
        genes = (4, 9, 17, 40)
        expected = sum(math.comb(g, r + 1) for r, g in enumerate(genes))
        assert colex_rank(genes) == expected


class TestBetter:
    def test_none_handling(self):
        c = MultiHitCombination(genes=(0, 1), f=0.5)
        assert better(None, None) is None
        assert better(c, None) is c
        assert better(None, c) is c

    def test_higher_f_wins(self):
        a = MultiHitCombination(genes=(5, 6), f=0.9)
        b = MultiHitCombination(genes=(0, 1), f=0.5)
        assert better(a, b) is a
        assert better(b, a) is a

    def test_tie_smallest_tuple_wins(self):
        a = MultiHitCombination(genes=(0, 9), f=0.5)
        b = MultiHitCombination(genes=(1, 2), f=0.5)
        assert better(a, b) is a
        assert better(b, a) is a

    def test_better_is_associative_on_samples(self):
        combos = [
            MultiHitCombination(genes=(i, i + 1 + j), f=f)
            for i, j, f in [(0, 1, 0.3), (1, 2, 0.3), (2, 0, 0.7), (3, 1, 0.7)]
        ]
        left = better(better(combos[0], combos[1]), better(combos[2], combos[3]))
        seq = combos[0]
        for c in combos[1:]:
            seq = better(seq, c)
        assert left.genes == seq.genes and left.f == seq.f
