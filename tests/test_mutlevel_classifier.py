"""Tests for the gene-vs-mutation resolution classifier comparison."""


from repro.mutlevel.classifier import evaluate_resolutions
from repro.mutlevel.synthesis import PositionalCohortConfig, generate_positional_cohort


def cohort(bg=0.3, hits=2, seed=4, n=240):
    return generate_positional_cohort(
        PositionalCohortConfig(
            n_genes=30,
            n_tumor=n,
            n_normal=n,
            hits=hits,
            n_driver_combos=2,
            background_rate=bg,
            seed=seed,
        )
    )


class TestResolutionComparison:
    def test_mutation_level_dominates_in_noisy_regime(self):
        # High passenger background: gene-level matches normals by any
        # position, mutation-level needs the exact hotspot.
        r = evaluate_resolutions(cohort(bg=0.3, hits=2))
        assert r.specificity_gain > 0.15
        assert r.mutation_level.specificity > 0.9
        assert r.mutation_level.sensitivity >= r.gene_level.sensitivity - 0.1

    def test_clean_regime_both_work(self):
        r = evaluate_resolutions(cohort(bg=0.05, hits=3))
        assert r.gene_level.specificity > 0.9
        assert r.mutation_level.specificity > 0.9

    def test_named_performances(self):
        r = evaluate_resolutions(cohort(bg=0.1, hits=2))
        assert r.gene_level.name == "gene-level"
        assert r.mutation_level.name == "mutation-level"
        for p in (r.gene_level, r.mutation_level):
            assert 0.0 <= p.sensitivity <= 1.0
            assert p.sensitivity_ci[0] <= p.sensitivity <= p.sensitivity_ci[1]


class TestGeneMatrices:
    def test_built_from_all_calls(self):
        c = cohort(bg=0.2, hits=2)
        t, n, genes = c.gene_matrices()
        assert t.shape == (len(genes), c.config.n_tumor)
        assert n.shape == (len(genes), c.config.n_normal)
        # Normal background must be visible at gene level (the honesty
        # property: the filtered feature view would drop most of it).
        assert n.mean() > 0.1

    def test_gene_frequencies_match_background(self):
        c = cohort(bg=0.25, hits=2, n=400)
        _, n, genes = c.gene_matrices()
        non_driver = [
            i for i, g in enumerate(genes)
            if int(g[1:]) not in c.hotspots
        ]
        freq = n[non_driver].mean()
        assert 0.18 < freq < 0.32  # ~ background_rate
