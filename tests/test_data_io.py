"""Tests for cohort persistence."""

import numpy as np
import pytest

from repro.data.io import load_cohort, save_cohort
from repro.data.synthesis import CohortConfig, generate_cohort


@pytest.fixture
def cohort():
    return generate_cohort(
        CohortConfig(n_genes=30, n_tumor=70, n_normal=65, hits=3, seed=9)
    )


class TestRoundTrip:
    def test_matrices_exact(self, cohort, tmp_path):
        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        back = load_cohort(path)
        np.testing.assert_array_equal(back.tumor.values, cohort.tumor.values)
        np.testing.assert_array_equal(back.normal.values, cohort.normal.values)

    def test_labels_and_truth(self, cohort, tmp_path):
        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        back = load_cohort(path)
        assert back.tumor.gene_names == cohort.tumor.gene_names
        assert back.tumor.sample_ids == cohort.tumor.sample_ids
        assert back.planted == cohort.planted
        np.testing.assert_array_equal(back.assignment, cohort.assignment)
        np.testing.assert_allclose(back.background_rates, cohort.background_rates)

    def test_config_preserved(self, cohort, tmp_path):
        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        assert load_cohort(path).config == cohort.config

    def test_solver_gives_same_result_after_reload(self, cohort, tmp_path):
        from repro.core.solver import MultiHitSolver

        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        back = load_cohort(path)
        a = MultiHitSolver(hits=3, max_iterations=3).solve(
            cohort.tumor.values, cohort.normal.values
        )
        b = MultiHitSolver(hits=3, max_iterations=3).solve(
            back.tumor.values, back.normal.values
        )
        assert [c.genes for c in a.combinations] == [c.genes for c in b.combinations]

    def test_version_check(self, cohort, tmp_path):
        import json

        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        with np.load(path) as z:
            payload = {k: z[k] for k in z.files}
        meta = json.loads(str(payload["meta"]))
        meta["format_version"] = 99
        payload["meta"] = np.array(json.dumps(meta))
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="unsupported"):
            load_cohort(path)

    def test_compression_is_effective(self, cohort, tmp_path):
        path = tmp_path / "cohort.npz"
        save_cohort(cohort, path)
        dense_bytes = cohort.tumor.values.nbytes + cohort.normal.values.nbytes
        assert path.stat().st_size < dense_bytes
