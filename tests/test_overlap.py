"""Tests for cross-combination gene analysis."""

import numpy as np
import pytest

from repro.analysis.overlap import (
    combination_jaccard,
    gene_recurrence,
    rank_genes,
)


class TestRecurrence:
    def test_counts_combinations_not_occurrences(self):
        counts = gene_recurrence([(1, 2, 3), (1, 4, 5), (1, 2, 6)])
        assert counts[1] == 3
        assert counts[2] == 2
        assert counts[6] == 1

    def test_empty(self):
        assert gene_recurrence([]) == {}


class TestJaccard:
    def test_identical(self):
        a = [(1, 2), (3, 4)]
        assert combination_jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert combination_jaccard([(1, 2)], [(3, 4)]) == 0.0

    def test_partial(self):
        assert combination_jaccard([(1, 2, 3)], [(3, 4)]) == pytest.approx(1 / 4)

    def test_both_empty(self):
        assert combination_jaccard([], []) == 1.0


class TestRankGenes:
    def test_driver_vs_passenger_signature(self):
        rng = np.random.default_rng(0)
        # Gene 0: driver (tumor-only). Gene 1: passenger (everywhere).
        tumor = rng.random((5, 100)) < 0.05
        normal = rng.random((5, 100)) < 0.05
        tumor[0] = True
        tumor[1] = normal[1] = True
        ranks = rank_genes([(0, 1, 2)], tumor, normal)
        by_gene = {r.gene: r for r in ranks}
        assert by_gene[0].enrichment > 5
        assert by_gene[1].enrichment == pytest.approx(1.0)

    def test_sorted_by_recurrence_then_enrichment(self):
        tumor = np.zeros((4, 10), dtype=bool)
        normal = np.zeros((4, 10), dtype=bool)
        tumor[0] = True  # enriched
        tumor[1, :5] = True
        normal[1, :5] = True  # passenger-like
        ranks = rank_genes([(0, 1), (0, 2), (1, 3)], tumor, normal)
        assert ranks[0].gene in (0, 1)  # recurrence 2 each
        assert ranks[0].gene == 0  # enrichment breaks the tie
        assert [r.recurrence for r in ranks] == sorted(
            [r.recurrence for r in ranks], reverse=True
        )

    def test_on_solver_output(self, tiny_cohort):
        from repro.core.solver import MultiHitSolver

        res = MultiHitSolver(hits=3).solve(
            tiny_cohort.tumor.values, tiny_cohort.normal.values
        )
        ranks = rank_genes(
            res.gene_sets(), tiny_cohort.tumor.values, tiny_cohort.normal.values
        )
        planted_genes = {g for combo in tiny_cohort.planted for g in combo}
        # The most recurrent, most enriched genes are the planted drivers.
        top = {r.gene for r in ranks[:4]}
        assert top & planted_genes
