"""Tests for 64-sample bit packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.bitmatrix.packing import pack_bool_matrix, unpack_bool_matrix, words_for


class TestWordsFor:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (911, 15)]
    )
    def test_values(self, n, expected):
        assert words_for(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            words_for(-1)


class TestPacking:
    def test_roundtrip_simple(self):
        dense = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        packed = pack_bool_matrix(dense)
        assert packed.shape == (2, 1)
        assert packed.dtype == np.uint64
        np.testing.assert_array_equal(
            unpack_bool_matrix(packed, 3), dense.astype(bool)
        )

    def test_bit_layout_lsb_first(self):
        dense = np.zeros((1, 70), dtype=bool)
        dense[0, 0] = True   # word 0, bit 0
        dense[0, 63] = True  # word 0, bit 63
        dense[0, 64] = True  # word 1, bit 0
        packed = pack_bool_matrix(dense)
        assert packed.shape == (1, 2)
        assert int(packed[0, 0]) == (1 | (1 << 63))
        assert int(packed[0, 1]) == 1

    def test_tail_bits_zero(self):
        dense = np.ones((3, 70), dtype=bool)
        packed = pack_bool_matrix(dense)
        # Bits 70..127 of the second word must be zero.
        assert int(packed[0, 1]) == (1 << 6) - 1

    def test_compression_ratio(self):
        # 64 samples/word: a byte-per-sample dense matrix shrinks ~8x in
        # bytes (the paper quotes 32x vs their 4-byte int representation).
        dense = np.ones((100, 640), dtype=np.uint8)
        packed = pack_bool_matrix(dense)
        assert dense.nbytes / packed.nbytes == 8.0
        assert (dense.astype(np.int32).nbytes / packed.nbytes) == 32.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_bool_matrix(np.zeros(10))
        with pytest.raises(ValueError):
            unpack_bool_matrix(np.zeros(4, dtype=np.uint64), 10)

    def test_unpack_capacity_check(self):
        with pytest.raises(ValueError):
            unpack_bool_matrix(np.zeros((2, 1), dtype=np.uint64), 65)

    def test_zero_samples(self):
        packed = pack_bool_matrix(np.zeros((5, 0), dtype=bool))
        assert packed.shape == (5, 0)
        assert unpack_bool_matrix(packed, 0).shape == (5, 0)

    @given(
        arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=1, max_value=200),
            ),
        )
    )
    def test_hypothesis_roundtrip(self, dense):
        packed = pack_bool_matrix(dense)
        assert packed.shape == (dense.shape[0], words_for(dense.shape[1]))
        np.testing.assert_array_equal(
            unpack_bool_matrix(packed, dense.shape[1]), dense
        )

    @given(
        arrays(
            dtype=bool,
            shape=st.tuples(
                st.integers(min_value=1, max_value=4),
                st.integers(min_value=1, max_value=150),
            ),
        )
    )
    def test_hypothesis_popcount_preserved(self, dense):
        packed = pack_bool_matrix(dense)
        np.testing.assert_array_equal(
            np.bitwise_count(packed).sum(axis=1), dense.sum(axis=1)
        )
