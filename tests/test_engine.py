"""Tests for the vectorized single-GPU engine."""

import numpy as np
import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.memopt import MemoryConfig
from repro.core.sequential import sequential_best_combo
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, SCHEME_4X1, Scheme
from repro.scheduling.workload import total_threads


@pytest.fixture
def instance(rng):
    t = rng.random((14, 45)) < 0.35
    n = rng.random((14, 38)) < 0.15
    return (
        t,
        n,
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=45, n_normal=38),
    )


ALL_SCHEMES = [Scheme(1, 1), Scheme(2, 1), Scheme(1, 2), SCHEME_2X2, SCHEME_3X1, SCHEME_4X1, Scheme(2, 0), Scheme(3, 0)]


class TestFullRangeEquivalence:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_matches_sequential_oracle(self, instance, scheme):
        t, n, tumor, normal, params = instance
        got = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        ref = sequential_best_combo(t, n, scheme.hits, params)
        assert got.genes == ref.genes
        assert got.f == pytest.approx(ref.f, abs=1e-15)
        assert (got.tp, got.tn) == (ref.tp, ref.tn)

    def test_all_4hit_schemes_agree(self, instance):
        _, _, tumor, normal, params = instance
        winners = [
            SingleGpuEngine(scheme=s).best_combo(tumor, normal, params)
            for s in (SCHEME_2X2, SCHEME_3X1, SCHEME_4X1, Scheme(1, 3))
        ]
        assert len({(w.genes, round(w.f, 14)) for w in winners}) == 1


class TestPartialRanges:
    def test_partition_and_reduce_equals_full(self, instance):
        _, _, tumor, normal, params = instance
        scheme = SCHEME_3X1
        g = tumor.n_genes
        total = total_threads(scheme, g)
        cuts = [0, total // 5, total // 2, 2 * total // 3, total]
        from repro.core.combination import better

        best = None
        for lo, hi in zip(cuts, cuts[1:]):
            best = better(
                best,
                best_in_thread_range(scheme, g, tumor, normal, params, lo, hi),
            )
        full = best_in_thread_range(scheme, g, tumor, normal, params, 0, total)
        assert best.genes == full.genes and best.f == full.f

    def test_empty_range(self, instance):
        _, _, tumor, normal, params = instance
        assert (
            best_in_thread_range(SCHEME_3X1, 14, tumor, normal, params, 10, 10) is None
        )

    def test_range_clamped_to_grid(self, instance):
        _, _, tumor, normal, params = instance
        total = total_threads(SCHEME_3X1, 14)
        got = best_in_thread_range(
            SCHEME_3X1, 14, tumor, normal, params, 0, total + 10_000
        )
        assert got is not None

    def test_gene_count_mismatch(self, instance):
        _, _, tumor, normal, params = instance
        with pytest.raises(ValueError):
            best_in_thread_range(SCHEME_3X1, 15, tumor, normal, params, 0, 10)


class TestCounters:
    def test_combos_scored_counts_range(self, instance):
        _, _, tumor, normal, params = instance
        counters = KernelCounters()
        best_in_thread_range(
            SCHEME_3X1,
            14,
            tumor,
            normal,
            params,
            0,
            total_threads(SCHEME_3X1, 14),
            counters=counters,
            memory=MemoryConfig(),
        )
        import math

        assert counters.combos_scored == math.comb(14, 4)
        assert counters.word_reads > 0

    @pytest.mark.parametrize(
        "scheme", [Scheme(4, 0), SCHEME_3X1, SCHEME_2X2, Scheme(1, 3)]
    )
    def test_traffic_metered_exactly_once(self, instance, scheme):
        # Regression: the fully-flattened (d == 0) path metered traffic
        # through score_combos while the d > 0 path only counted
        # word_reads when a memory config was passed — and never counted
        # word_ops at all — so equivalent grids disagreed.  Without a
        # memory model every combination touches all h rows once:
        # word_reads = combos * h * w and word_ops = combos * (h-1) * w,
        # identically for every scheme covering the same combinations.
        import math

        _, _, tumor, normal, params = instance
        counters = KernelCounters()
        best_in_thread_range(
            scheme,
            14,
            tumor,
            normal,
            params,
            0,
            total_threads(scheme, 14),
            counters=counters,
        )
        w = tumor.n_words + normal.n_words
        combos = math.comb(14, 4)
        assert counters.combos_scored == combos
        assert counters.word_reads == combos * 4 * w
        assert counters.word_ops == combos * 3 * w

    def test_word_reads_parity_between_paths(self, instance):
        # word_reads parity between the d == 0 and d > 0 code paths on
        # an equivalent grid, with and without a memory model.  Under
        # the no-prefetch memory model the traffic formula degenerates
        # to h rows per combination for both paths.
        _, _, tumor, normal, params = instance
        for memory in (None, MemoryConfig(False, False, False)):
            flat, nested = KernelCounters(), KernelCounters()
            for scheme, counters in ((Scheme(4, 0), flat), (SCHEME_3X1, nested)):
                best_in_thread_range(
                    scheme,
                    14,
                    tumor,
                    normal,
                    params,
                    0,
                    total_threads(scheme, 14),
                    counters=counters,
                    memory=memory,
                )
            assert flat.word_reads == nested.word_reads
            assert flat.word_ops == nested.word_ops
            assert flat.combos_scored == nested.combos_scored


class TestTieDeterminism:
    def test_constant_matrix_gives_lex_smallest(self):
        t = BitMatrix.from_dense(np.ones((10, 20), dtype=bool))
        n = BitMatrix.from_dense(np.zeros((10, 20), dtype=bool))
        params = FScoreParams(n_tumor=20, n_normal=20)
        for scheme in (SCHEME_3X1, SCHEME_2X2):
            got = SingleGpuEngine(scheme=scheme).best_combo(t, n, params)
            assert got.genes == (0, 1, 2, 3)
