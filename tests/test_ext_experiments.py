"""Tests for the Section V extension experiments."""

from repro.experiments import (
    EXPERIMENTS,
    ext_memory_distribution,
    ext_mutation_level,
    ext_scheduler_ablation,
)


class TestRegistry:
    def test_extensions_registered(self):
        for name in ("ext-mutation-level", "ext-scheduler-ablation", "ext-memory-distribution"):
            assert name in EXPERIMENTS


class TestMutationLevelExperiment:
    def test_bands(self):
        r = ext_mutation_level.run(n_genes=24, n_tumor=100, n_normal=100)
        assert 1e5 < r.mutation_factor < 2e5  # paper ~1e5
        assert 5e4 < r.extra_hit < 1e5
        assert r.discrimination.mutation_level_sharper
        assert r.full_summit_days > 10
        assert "Section V" in ext_mutation_level.report(r)


class TestSchedulerAblation:
    def test_interleaving_beats_resizing(self):
        r = ext_scheduler_ablation.run(n_nodes=50)  # 300 GPUs: straggler regime
        assert r.interleave_improvement > 1.5
        assert r.interleave_improvement > r.resizing_improvement
        # Resizing alone cannot beat EA meaningfully (occupancy-bound).
        assert r.resizing_improvement < 1.5
        # The paper's 3x1 remedy is at least as balanced as interleaving.
        assert r.scheme3x1_times.max() <= r.il_times.max() * 1.5
        assert "makespan" in ext_scheduler_ablation.report(r)


class TestMemoryDistribution:
    def test_sizing(self):
        r = ext_memory_distribution.run(n_nodes=10)
        assert r.gene_level.replication_fits
        assert 0 < r.mutation_level.mean_hot_fraction < 1.0
        assert r.mutation_level.full_replication_bytes > r.gene_level.full_replication_bytes
        assert "strategy 2" in ext_memory_distribution.report(r)


class TestFullSummit:
    def test_projection_shape(self):
        from repro.experiments import ext_full_summit

        r = ext_full_summit.run(node_counts=[100, 1000, 4608])
        assert r.points[0].efficiency == 1.0
        assert r.full_machine.n_nodes == 4608
        assert r.full_machine.efficiency < r.points[1].efficiency
        assert r.mutation_level_days_full_machine > 10
        assert "27648 GPUs" in ext_full_summit.report(r)
