"""Tests for the perf-regression gate.

The acceptance scenario: a synthetic 2x wall-time regression makes
``benchmarks/check_regression.py`` exit non-zero, while the committed
``BENCH_*.json`` files pass against the committed baselines (that exact
invocation is what CI runs).
"""

import importlib.util
import json
import shutil
from pathlib import Path

import pytest

from repro.telemetry.regress import (
    DEFAULT_CHECKS,
    RegressionCheck,
    check_files,
    compare_summaries,
    resolve_path,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestResolvePath:
    def test_dotted_descent(self):
        summary = {"extra": {"wall_seconds_pruned": 1.5}}
        assert resolve_path(summary, "extra.wall_seconds_pruned") == 1.5

    def test_negative_list_index(self):
        summary = {"extra": {"strong_runtime_s": [100.0, 50.0, 25.0]}}
        assert resolve_path(summary, "extra.strong_runtime_s.-1") == 25.0

    def test_missing_segment_raises(self):
        with pytest.raises(KeyError, match="missing segment"):
            resolve_path({"extra": {}}, "extra.nope")
        with pytest.raises(KeyError, match="cannot descend"):
            resolve_path({"extra": 3}, "extra.deeper")


class TestCompareSummaries:
    CHECKS = (
        RegressionCheck("extra.wall_s", tolerance=0.75, wall_clock=True),
        RegressionCheck("extra.efficiency", higher_is_worse=False, tolerance=0.03),
    )

    def test_within_band_passes(self):
        base = {"extra": {"wall_s": 10.0, "efficiency": 0.9}}
        cur = {"extra": {"wall_s": 12.0, "efficiency": 0.89}}
        assert compare_summaries("x", cur, base, checks=self.CHECKS) == []

    def test_double_wall_time_regresses(self):
        base = {"extra": {"wall_s": 10.0, "efficiency": 0.9}}
        cur = {"extra": {"wall_s": 20.0, "efficiency": 0.9}}
        regs = compare_summaries("x", cur, base, checks=self.CHECKS)
        assert [r.metric for r in regs] == ["extra.wall_s"]
        assert regs[0].allowed == pytest.approx(17.5)
        assert "x:extra.wall_s" in regs[0].describe()

    def test_efficiency_drop_regresses_and_skip_wall_filters(self):
        base = {"extra": {"wall_s": 10.0, "efficiency": 0.9}}
        cur = {"extra": {"wall_s": 20.0, "efficiency": 0.5}}
        regs = compare_summaries(
            "x", cur, base, checks=self.CHECKS, skip_wall=True
        )
        assert [r.metric for r in regs] == ["extra.efficiency"]

    def test_metric_missing_from_current_is_a_regression(self):
        base = {"extra": {"wall_s": 10.0, "efficiency": 0.9}}
        regs = compare_summaries("x", {"extra": {}}, base, checks=self.CHECKS)
        assert {r.metric for r in regs} == {"extra.wall_s", "extra.efficiency"}

    def test_metric_missing_from_baseline_is_skipped(self):
        cur = {"extra": {"wall_s": 10.0, "efficiency": 0.9}}
        assert compare_summaries("x", cur, {"extra": {}}, checks=self.CHECKS) == []


class TestCheckFiles:
    def test_missing_current_file_fails_missing_baseline_skips(self, tmp_path):
        baseline = tmp_path / "BENCH_greedy.json"
        baseline.write_text(json.dumps({"extra": {"combos_scored_pruned": 100}}))
        regs, notes = check_files(
            [
                ("greedy", tmp_path / "nope.json", baseline),
                ("fig4", tmp_path / "nope.json", tmp_path / "no-baseline.json"),
            ]
        )
        assert [r.metric for r in regs] == ["<file>"]
        assert any("MISSING current" in n for n in notes)
        assert any("skipped" in n for n in notes)


class TestCheckRegressionCli:
    def test_committed_summaries_pass_committed_baselines(self):
        """Exactly what CI runs: repo-root BENCH_*.json vs committed
        baselines must gate clean."""
        cli = _load_cli()
        assert cli.main([]) == 0

    def test_synthetic_2x_wall_regression_fails(self, tmp_path, capsys):
        cli = _load_cli()
        current_dir = tmp_path / "current"
        current_dir.mkdir()
        src = REPO_ROOT / "BENCH_greedy.json"
        doctored = json.loads(src.read_text())
        doctored["extra"]["wall_seconds_pruned"] *= 2.0
        (current_dir / "BENCH_greedy.json").write_text(json.dumps(doctored))
        rc = cli.main(["--current-dir", str(current_dir), "--names", "greedy"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "wall_seconds_pruned" in out

    def test_skip_wall_ignores_the_synthetic_regression(self, tmp_path):
        cli = _load_cli()
        current_dir = tmp_path / "current"
        current_dir.mkdir()
        doctored = json.loads((REPO_ROOT / "BENCH_greedy.json").read_text())
        doctored["extra"]["wall_seconds_pruned"] *= 2.0
        (current_dir / "BENCH_greedy.json").write_text(json.dumps(doctored))
        rc = cli.main(
            ["--current-dir", str(current_dir), "--names", "greedy", "--skip-wall"]
        )
        assert rc == 0

    def test_counter_regression_fails_even_cross_machine(self, tmp_path):
        """A benchmark that suddenly scores 2x the combinations (pruning
        broke) trips the deterministic gate regardless of --skip-wall."""
        cli = _load_cli()
        current_dir = tmp_path / "current"
        current_dir.mkdir()
        doctored = json.loads((REPO_ROOT / "BENCH_greedy.json").read_text())
        doctored["extra"]["combos_scored_pruned"] *= 2
        (current_dir / "BENCH_greedy.json").write_text(json.dumps(doctored))
        rc = cli.main(
            ["--current-dir", str(current_dir), "--names", "greedy", "--skip-wall"]
        )
        assert rc == 1

    def test_unknown_name_is_usage_error(self):
        cli = _load_cli()
        assert cli.main(["--names", "nonsense"]) == 2

    def test_baselines_cover_every_default_check_name(self):
        """Every gated name has a committed baseline — otherwise the CI
        gate silently checks nothing for it."""
        for name in DEFAULT_CHECKS:
            path = REPO_ROOT / "benchmarks" / "baselines" / f"BENCH_{name}.json"
            assert path.exists(), f"missing committed baseline for {name}"

    def test_gate_detects_regression_vs_regenerated_baseline(self, tmp_path):
        """End-to-end with real files: copy the committed baseline as
        current, double every wall metric, gate fails; restore, passes."""
        cli = _load_cli()
        current_dir = tmp_path / "cur"
        baseline_dir = tmp_path / "base"
        current_dir.mkdir()
        baseline_dir.mkdir()
        for name in DEFAULT_CHECKS:
            committed = REPO_ROOT / "benchmarks" / "baselines" / f"BENCH_{name}.json"
            shutil.copy(committed, baseline_dir / committed.name)
            shutil.copy(committed, current_dir / committed.name)
        args = [
            "--current-dir", str(current_dir), "--baseline-dir", str(baseline_dir)
        ]
        assert cli.main(args) == 0
        greedy = json.loads((current_dir / "BENCH_greedy.json").read_text())
        greedy["extra"]["wall_seconds_pruned"] *= 2.0
        (current_dir / "BENCH_greedy.json").write_text(json.dumps(greedy))
        assert cli.main(args) == 1
