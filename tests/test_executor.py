"""Tests for the block-level kernel executor (functional CUDA structure)."""

import math

import pytest

from repro.bitmatrix.matrix import BitMatrix
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.core.memopt import MemoryConfig
from repro.gpusim.executor import BlockKernelExecutor
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, Scheme


@pytest.fixture
def instance(rng):
    t = rng.random((12, 40)) < 0.35
    n = rng.random((12, 35)) < 0.15
    return (
        BitMatrix.from_dense(t),
        BitMatrix.from_dense(n),
        FScoreParams(n_tumor=40, n_normal=35),
    )


class TestBlockExecution:
    @pytest.mark.parametrize("scheme", [Scheme(1, 1), Scheme(2, 1), SCHEME_3X1, SCHEME_2X2])
    def test_matches_vectorized_engine(self, instance, scheme):
        tumor, normal, params = instance
        ref = SingleGpuEngine(scheme=scheme).best_combo(tumor, normal, params)
        got = BlockKernelExecutor(scheme=scheme, block_size=16).launch(
            tumor, normal, params
        )
        assert got.winner.genes == ref.genes
        assert got.winner.f == pytest.approx(ref.f, abs=1e-15)

    def test_block_structure(self, instance):
        tumor, normal, params = instance
        res = BlockKernelExecutor(scheme=SCHEME_3X1, block_size=50).launch(
            tumor, normal, params
        )
        total = math.comb(12, 3)
        assert res.n_blocks == math.ceil(total / 50)
        assert sum(b.n_threads for b in res.blocks) == total
        # Stage 1 produces at most one record per block.
        assert res.stage1_records <= res.n_blocks

    def test_block_size_changes_blocks_not_result(self, instance):
        tumor, normal, params = instance
        winners = set()
        for bs in (8, 64, 512):
            res = BlockKernelExecutor(scheme=SCHEME_3X1, block_size=bs).launch(
                tumor, normal, params
            )
            winners.add((res.winner.genes, round(res.winner.f, 14)))
        assert len(winners) == 1

    def test_partial_range(self, instance):
        tumor, normal, params = instance
        from repro.core.engine import best_in_thread_range

        ref = best_in_thread_range(SCHEME_3X1, 12, tumor, normal, params, 20, 90)
        got = BlockKernelExecutor(scheme=SCHEME_3X1, block_size=16).launch(
            tumor, normal, params, 20, 90
        )
        assert got.winner.genes == ref.genes

    def test_empty_range(self, instance):
        tumor, normal, params = instance
        res = BlockKernelExecutor(scheme=SCHEME_3X1).launch(
            tumor, normal, params, 5, 5
        )
        assert res.winner is None and res.n_blocks == 0

    def test_gene_axis_checked(self, instance, rng):
        tumor, _, params = instance
        bad_normal = BitMatrix.from_dense(rng.random((13, 35)) < 0.1)
        with pytest.raises(ValueError):
            BlockKernelExecutor(scheme=SCHEME_3X1).launch(tumor, bad_normal, params)


class TestCostAccounting:
    def test_word_reads_match_memopt_model(self, instance):
        tumor, normal, params = instance
        from repro.core.memopt import global_word_reads
        from repro.scheduling.workload import total_threads

        for mem in (MemoryConfig(False, False, False), MemoryConfig(True, True, False)):
            res = BlockKernelExecutor(
                scheme=SCHEME_3X1, block_size=32, memory=mem
            ).launch(tumor, normal, params)
            expected = global_word_reads(
                SCHEME_3X1,
                12,
                tumor.n_words + normal.n_words,
                0,
                total_threads(SCHEME_3X1, 12),
                mem,
            )
            assert res.total_word_reads == expected

    def test_prefetch_reduces_cycles(self, instance):
        tumor, normal, params = instance
        slow = BlockKernelExecutor(
            scheme=SCHEME_3X1, memory=MemoryConfig(False, False, False)
        ).launch(tumor, normal, params)
        fast = BlockKernelExecutor(
            scheme=SCHEME_3X1, memory=MemoryConfig(True, True, False)
        ).launch(tumor, normal, params)
        assert fast.total_cycles < slow.total_cycles

    def test_busy_profile_shape(self, instance):
        tumor, normal, params = instance
        res = BlockKernelExecutor(scheme=SCHEME_2X2, block_size=8).launch(
            tumor, normal, params
        )
        profile = res.busy_profile()
        assert profile.shape == (res.n_blocks,)
        # 2x2 blocks near lambda=0 hold the heavy threads.
        assert profile[0] == profile.max()
