"""Tests for :mod:`repro.telemetry`: spans, metrics, exporters, parity.

The invariants the subsystem promises:

* spans nest per thread and merge across processes/ranks without id
  collisions (``(pid, span_id)`` is the identity);
* the disabled path records nothing and allocates nothing (the shared
  no-op singleton), while ``timed_span`` still measures wall time;
* counter totals survive the pool result channel and the SPMD gather;
* solver results and kernel counters are bit-identical with telemetry
  on vs off on every backend (the acceptance criterion);
* exported Chrome traces pass the schema validator.
"""

import json
import threading

import pytest

from repro.core.solver import MultiHitSolver
from repro.telemetry import (
    NOOP_SPAN,
    NULL_TELEMETRY,
    MetricsRegistry,
    Stopwatch,
    Telemetry,
    chrome_trace,
    get_telemetry,
    set_telemetry,
    summarize,
    telemetry_session,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_summary,
)
from repro.telemetry.export import SUMMARY_SCHEMA


class TestSpanNesting:
    def test_parent_resolved_from_enclosing_span(self):
        tel = Telemetry()
        with tel.span("outer", cat="t") as outer:
            with tel.span("inner", cat="t") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner closed first: recorded order is innermost-out.
        assert [s.name for s in tel.tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent_not_each_other(self):
        tel = Telemetry()
        with tel.span("outer") as outer:
            with tel.span("a") as a:
                pass
            with tel.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id
        assert a.span_id != b.span_id

    def test_rank_inherited_from_enclosing_span(self):
        tel = Telemetry()
        with tel.span("rank-root", rank=3):
            with tel.span("child") as child:
                pass
            with tel.span("override", rank=7) as override:
                pass
        assert child.rank == 3
        assert override.rank == 7

    def test_threads_have_independent_stacks(self):
        tel = Telemetry()
        seen = {}

        def worker():
            with tel.span("thread-span") as s:
                seen["parent"] = s.parent_id
                seen["tid"] = s.tid

        with tel.span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        # The worker thread's span must not parent under main's open span.
        assert seen["parent"] is None
        assert seen["tid"] != threading.get_ident()

    def test_span_ids_unique_per_tracer(self):
        tel = Telemetry()
        for _ in range(5):
            with tel.span("s"):
                pass
        ids = [s.span_id for s in tel.tracer.spans]
        assert len(set(ids)) == len(ids)


class TestDisabledPath:
    def test_disabled_span_is_shared_singleton(self):
        tel = Telemetry(enabled=False)
        assert tel.span("anything") is NOOP_SPAN
        assert tel.span("other", cat="x", rank=1, attr=2) is NOOP_SPAN

    def test_disabled_records_nothing(self):
        tel = Telemetry(enabled=False)
        with tel.span("s"):
            pass
        tel.count("c")
        tel.observe("h", 1.0)
        tel.set_gauge("g", 1.0)
        assert tel.tracer.spans == []
        assert tel.metrics.to_dict() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disabled_timed_span_still_measures(self):
        tel = Telemetry(enabled=False)
        with tel.timed_span("iteration") as sw:
            pass
        assert isinstance(sw, Stopwatch)
        assert sw.duration_s >= 0.0
        assert tel.tracer.spans == []

    def test_enabled_timed_span_records_and_measures(self):
        tel = Telemetry()
        with tel.timed_span("iteration") as span:
            pass
        assert span.duration_s >= 0.0
        assert [s.name for s in tel.tracer.spans] == ["iteration"]


class TestSessionInstall:
    def test_default_session_is_null(self):
        assert get_telemetry() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled

    def test_context_manager_installs_and_restores(self):
        before = get_telemetry()
        with telemetry_session() as tel:
            assert get_telemetry() is tel
            assert tel.enabled
        assert get_telemetry() is before

    def test_set_telemetry_none_restores_null(self):
        prev = set_telemetry(Telemetry())
        try:
            set_telemetry(None)
            assert get_telemetry() is NULL_TELEMETRY
        finally:
            set_telemetry(prev)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 4)
        reg.set_gauge("g", 2.5)
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        d = reg.to_dict()
        assert d["counters"]["c"] == 5
        assert d["gauges"]["g"] == 2.5
        assert d["histograms"]["h"] == {
            "count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2)
        b.inc("c", 3)
        a.set_gauge("g", 1.0)
        b.set_gauge("g", 9.0)
        a.observe("h", 1.0)
        b.observe("h", 5.0)
        a.merge(b)
        d = a.to_dict()
        assert d["counters"]["c"] == 5  # counters add
        assert d["gauges"]["g"] == 9.0  # gauges last-write-wins
        assert d["histograms"]["h"]["count"] == 2  # histograms combine
        assert d["histograms"]["h"]["min"] == 1.0
        assert d["histograms"]["h"]["max"] == 5.0

    def test_merge_dict_roundtrips_empty_histogram(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("h", 2.0)
        state = json.loads(json.dumps(b.to_dict()))  # over-the-wire shape
        a.merge_dict(state)
        assert a.to_dict()["histograms"]["h"]["mean"] == 2.0

    def test_fault_event_routing(self):
        reg = MetricsRegistry()
        reg.record_fault_event("crash", "pool", "retried")
        reg.record_fault_event("straggler", "pool", "observed")
        c = reg.to_dict()["counters"]
        assert c["faults.events"] == 2
        assert c["faults.kind.crash"] == 1
        assert c["faults.site.pool"] == 2
        assert c["faults.action.retried"] == 1

    def test_live_fault_report_feeds_registry(self):
        from repro.faults.report import FaultReport

        with telemetry_session() as tel:
            report = FaultReport()
            report.record("crash", "worker", 0, 1, "retried")
            report.record_reschedule(2, 1, 0, 10)
        c = tel.metrics.to_dict()["counters"]
        assert c["faults.events"] == 1
        assert c["faults.kind.crash"] == 1
        assert c["faults.rescheduled_ranges"] == 1


class TestExporters:
    def _session_with_spans(self):
        tel = Telemetry()
        with tel.span("solve", cat="solver", backend="single"):
            with tel.span("iteration", cat="solver", iteration=1):
                pass
        tel.count("solver.solves")
        return tel

    def test_chrome_trace_validates(self):
        tel = self._session_with_spans()
        trace = chrome_trace(tel)
        n = validate_chrome_trace(trace)
        assert n == 3  # 2 spans + 1 process_name metadata
        assert trace["displayTimeUnit"] == "ms"
        names = {e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert names == {"repro"}

    def test_chrome_trace_roundtrips_through_json(self, tmp_path):
        tel = self._session_with_spans()
        path = write_chrome_trace(tmp_path / "trace.json", tel)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == 3

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "s", "ph": "Z", "pid": 1, "tid": 1}
                ]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "s", "ph": "X", "pid": 1, "tid": 1,
                     "ts": -1.0, "dur": 0.0}
                ]}
            )

    def _session_with_link(self):
        tel = Telemetry()
        with tel.span("send", cat="comm"):
            ctx = tel.context()
        with tel.span("recv", cat="comm") as recv:
            recv.link(ctx, kind="message")
        return tel

    def test_linked_spans_emit_flow_pair(self):
        trace = chrome_trace(self._session_with_link())
        validate_chrome_trace(trace)
        starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in trace["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == 1 and len(ends) == 1
        start, end = starts[0], ends[0]
        assert start["id"] == end["id"]
        assert start["cat"] == end["cat"] == "flow.message"
        assert end["bp"] == "e"
        assert end["ts"] >= start["ts"]  # arrow never points backwards

    def test_unresolvable_link_emits_no_flow(self):
        tel = Telemetry()
        with tel.span("recv", cat="comm") as recv:
            # A source that was never recorded (dropped worker trace).
            recv.link({"trace": tel.trace_id, "pid": 999999, "id": 12345},
                      kind="message")
        trace = chrome_trace(tel)
        validate_chrome_trace(trace)
        assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]

    def test_validator_rejects_broken_flows(self):
        start = {"name": "message", "ph": "s", "pid": 1, "tid": 1,
                 "ts": 1.0, "id": 7, "cat": "flow.message"}
        end = {"name": "message", "ph": "f", "bp": "e", "pid": 1, "tid": 1,
               "ts": 2.0, "id": 7, "cat": "flow.message"}
        assert validate_chrome_trace({"traceEvents": [start, end]}) == 2
        with pytest.raises(ValueError, match="no flow end"):
            validate_chrome_trace({"traceEvents": [start]})
        with pytest.raises(ValueError, match="no flow start"):
            validate_chrome_trace({"traceEvents": [end]})
        with pytest.raises(ValueError, match="binding point"):
            no_bp = {k: v for k, v in end.items() if k != "bp"}
            validate_chrome_trace({"traceEvents": [start, no_bp]})
        with pytest.raises(ValueError, match="category mismatch"):
            wrong_cat = dict(end, cat="flow.steal")
            validate_chrome_trace({"traceEvents": [start, wrong_cat]})
        with pytest.raises(ValueError, match="missing id"):
            no_id = {k: v for k, v in start.items() if k != "id"}
            validate_chrome_trace({"traceEvents": [no_id]})

    def test_jsonl_has_spans_then_metrics(self, tmp_path):
        tel = self._session_with_spans()
        path = write_jsonl(tmp_path / "events.jsonl", tel)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["type"] for x in lines] == ["span", "span", "metrics"]
        assert lines[-1]["counters"]["solver.solves"] == 1

    def test_summary_shape(self, tmp_path):
        tel = self._session_with_spans()
        path = write_summary(
            tmp_path / "summary.json", "unit", telemetry=tel, extra={"k": 1}
        )
        summary = json.loads(path.read_text())
        assert summary["schema"] == SUMMARY_SCHEMA
        assert summary["name"] == "unit"
        assert summary["counters"]["solver.solves"] == 1
        assert summary["extra"] == {"k": 1}
        assert summary["spans"]["iteration"]["count"] == 1
        assert summary["spans"]["solve"]["total_s"] >= 0.0

    def test_summary_without_telemetry_is_extras_only(self, tmp_path):
        path = write_summary(tmp_path / "s.json", "bare", extra={"x": [1, 2]})
        summary = json.loads(path.read_text())
        assert summary["extra"] == {"x": [1, 2]}
        assert summary["counters"] == {} and summary["spans"] == {}


def _solve(backend, dense, telemetry_on, **kw):
    t, n, _params = dense
    solver = MultiHitSolver(hits=2, backend=backend, **kw)
    if telemetry_on:
        with telemetry_session() as tel:
            return solver.solve(t, n), tel
    return solver.solve(t, n), None


def _fingerprint(res):
    return (
        [c.genes for c in res.combinations],
        [c.f for c in res.combinations],
        [c.tp for c in res.combinations],
        res.uncovered,
        (res.counters.combos_scored, res.counters.word_reads,
         res.counters.word_ops),
    )


class TestBackendParity:
    """Telemetry on vs off: bit-identical results and kernel counters."""

    @pytest.mark.parametrize("backend", ["single", "sequential"])
    def test_inprocess_backends(self, small_matrices, backend):
        off, _ = _solve(backend, small_matrices, telemetry_on=False)
        on, tel = _solve(backend, small_matrices, telemetry_on=True)
        assert _fingerprint(on) == _fingerprint(off)
        if backend == "single":
            c = tel.metrics.to_dict()["counters"]
            assert c["kernel.combos_scored"] == on.counters.combos_scored
            assert c["kernel.word_reads"] == on.counters.word_reads
            assert c["solver.iterations"] == len(on.iterations)

    def test_pool_backend(self, small_matrices):
        off, _ = _solve("pool", small_matrices, telemetry_on=False, n_workers=2)
        on, tel = _solve("pool", small_matrices, telemetry_on=True, n_workers=2)
        assert _fingerprint(on) == _fingerprint(off)
        # Worker spans merged over the result channel: chunk scans carry
        # worker pids distinct from the parent's.
        spans = tel.tracer.export()
        chunk_pids = {s["pid"] for s in spans if s["name"] == "scan_chunk"}
        assert chunk_pids  # at least one worker reported
        assert any(pid != tel.tracer.pid for pid in chunk_pids)
        # Merged spans keep unique (pid, id) identity.
        keys = [(s["pid"], s["id"]) for s in spans]
        assert len(set(keys)) == len(keys)
        # Every pid in the Chrome export gets a named process track.
        trace = chrome_trace(tel)
        validate_chrome_trace(trace)
        meta_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "M"}
        assert {s["pid"] for s in spans} <= meta_pids

    def test_distributed_backend(self, small_matrices):
        off, _ = _solve(
            "distributed", small_matrices, telemetry_on=False, n_nodes=2
        )
        on, tel = _solve(
            "distributed", small_matrices, telemetry_on=True, n_nodes=2
        )
        assert _fingerprint(on) == _fingerprint(off)
        names = {s["name"] for s in tel.tracer.export()}
        assert {"solve", "iteration", "schedule", "reduce"} <= names

    def test_wall_seconds_populated_without_telemetry(self, small_matrices):
        res, _ = _solve("single", small_matrices, telemetry_on=False)
        assert all(r.wall_seconds >= 0.0 for r in res.iterations)
        assert any(r.wall_seconds > 0.0 for r in res.iterations)


class TestSpmdMerge:
    def test_rank_metrics_gather_to_registry(self, rng):
        from repro.bitmatrix.matrix import BitMatrix
        from repro.cluster.mpi_program import spmd_best_combo
        from repro.core.engine import SingleGpuEngine
        from repro.core.fscore import FScoreParams
        from repro.core.kernels import KernelCounters
        from repro.scheduling.equiarea import equiarea_schedule
        from repro.scheduling.schemes import SCHEME_3X1

        t = BitMatrix.from_dense(rng.random((16, 40)) < 0.35)
        n = BitMatrix.from_dense(rng.random((16, 30)) < 0.15)
        params = FScoreParams(n_tumor=40, n_normal=30)
        schedule = equiarea_schedule(SCHEME_3X1, 16, 4)

        ref = SingleGpuEngine(scheme=SCHEME_3X1).best_combo(t, n, params)
        with telemetry_session() as tel:
            got = spmd_best_combo(2, schedule, t, n, params, gpus_per_rank=2)
        assert got.genes == ref.genes and got.f == ref.f

        c = tel.metrics.to_dict()["counters"]
        assert c["spmd.rank_searches"] == 2
        # Rank-local kernel counters merged at rank 0: scored work is
        # exactly conserved across the partition; word traffic is only
        # bounded below (each range re-loads its prefetch rows).
        full = KernelCounters()
        SingleGpuEngine(scheme=SCHEME_3X1).best_combo(t, n, params, counters=full)
        assert c["kernel.combos_scored"] == full.combos_scored
        assert c["kernel.word_reads"] >= full.word_reads
        assert c["kernel.word_ops"] >= full.word_ops

    def test_spmd_result_identical_with_telemetry_off(self, rng):
        from repro.bitmatrix.matrix import BitMatrix
        from repro.cluster.mpi_program import spmd_best_combo
        from repro.core.fscore import FScoreParams
        from repro.scheduling.equiarea import equiarea_schedule
        from repro.scheduling.schemes import SCHEME_3X1

        t = BitMatrix.from_dense(rng.random((14, 30)) < 0.4)
        n = BitMatrix.from_dense(rng.random((14, 30)) < 0.1)
        params = FScoreParams(n_tumor=30, n_normal=30)
        schedule = equiarea_schedule(SCHEME_3X1, 14, 4)
        off = spmd_best_combo(2, schedule, t, n, params, gpus_per_rank=2)
        with telemetry_session():
            on = spmd_best_combo(2, schedule, t, n, params, gpus_per_rank=2)
        assert on == off


class TestAtomicExporters:
    """Every exporter writes tmp + fsync + rename: parents are created,
    no ``*.tmp`` litter survives, and a crash mid-write can never leave
    a truncated artifact where a previous good one stood."""

    def _tel(self):
        tel = Telemetry()
        with tel.span("solve", cat="solver"):
            pass
        tel.count("solver.solves")
        return tel

    @pytest.mark.parametrize(
        "writer, fname",
        [
            (write_chrome_trace, "trace.json"),
            (write_jsonl, "events.jsonl"),
            (lambda p, t: write_summary(p, "unit", telemetry=t), "summary.json"),
        ],
    )
    def test_creates_parents_and_leaves_no_tmp(self, tmp_path, writer, fname):
        target = tmp_path / "deep" / "nested" / fname
        path = writer(target, self._tel())
        assert path.exists() and path.read_text()
        assert list(path.parent.glob("*.tmp")) == []

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        from repro.telemetry.export import atomic_write_text

        target = tmp_path / "out.json"
        atomic_write_text(target, "old content")
        atomic_write_text(target, "new content")
        assert target.read_text() == "new content"
        assert list(tmp_path.glob("*.tmp")) == []


class TestPruneSummaryAgreement:
    """The ``prune`` block of a summary must agree with the solver's own
    counters — one number, three views (run counters, per-iteration
    histogram totals, BENCH extras)."""

    def test_summary_prune_block_matches_result_counters(self, small_matrices):
        t, n, _ = small_matrices
        with telemetry_session() as tel:
            result = MultiHitSolver(hits=2, prune=True).solve(t, n)
            summary = summarize(tel, "prune-agreement")
        prune = summary["prune"]
        assert prune["combos_scored"] == result.counters.combos_scored
        assert prune["combos_pruned"] == result.counters.combos_pruned
        assert prune["blocks_scanned"] == result.counters.blocks_scanned
        assert prune["blocks_skipped"] == result.counters.blocks_skipped
        # Histogram totals close against the run counters even though
        # the final probe iteration never emits an IterationRecord.
        assert prune["iteration_combos_scored_total"] == (
            result.counters.combos_scored
        )
        assert prune["iteration_combos_pruned_total"] == (
            result.counters.combos_pruned
        )
        assert prune["iterations"] >= len(result.iterations)
        record_scored = sum(r.combos_scored for r in result.iterations)
        assert record_scored <= prune["combos_scored"]

    def test_unpruned_solve_has_no_prune_block(self, small_matrices):
        t, n, _ = small_matrices
        with telemetry_session() as tel:
            MultiHitSolver(hits=2).solve(t, n)
            summary = summarize(tel, "no-prune")
        assert "prune" not in summary

    def test_committed_bench_greedy_agrees_with_itself(self):
        """BENCH_greedy.json is the artifact CI gates; its extras and its
        prune rollup must be the same numbers."""
        from pathlib import Path

        bench_path = Path(__file__).resolve().parent.parent / "BENCH_greedy.json"
        bench = json.loads(bench_path.read_text())
        prune, extra = bench["prune"], bench["extra"]
        assert prune["combos_scored"] == extra["combos_scored_total_pruned"]
        assert prune["combos_pruned"] == extra["combos_pruned_total"]
        assert prune["iteration_combos_scored_total"] == prune["combos_scored"]
        assert prune["iteration_combos_pruned_total"] == prune["combos_pruned"]


class TestPoolFaultRetryMerge:
    """A retried chunk must merge its telemetry exactly once: span
    identity stays unique and the live progress feed equals the kernel
    total (a double-ingest would overshoot it)."""

    def test_no_double_merge_on_injected_crash(self, small_matrices):
        import warnings

        from repro.faults.plan import FaultPlan, FaultSpec

        t, n, _ = small_matrices
        clean, _ = _solve("pool", small_matrices, telemetry_on=False, n_workers=2)
        plan = FaultPlan(
            [FaultSpec(kind="crash", site="pool", target=0, at_call=1)]
        )
        with telemetry_session() as tel:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                faulted = MultiHitSolver(
                    hits=2, backend="pool", n_workers=2, fault_plan=plan
                ).solve(t, n)
        assert _fingerprint(faulted) == _fingerprint(clean)
        # (pid, span_id) identity survives the retry without collisions.
        spans = tel.tracer.export()
        keys = [(s["pid"], s["id"]) for s in spans]
        assert len(set(keys)) == len(keys)
        # Each chunk was ingested exactly once: the per-chunk progress
        # feed closes against the kernel counter totals.
        c = tel.metrics.to_dict()["counters"]
        assert c["progress.combos_scored"] == faulted.counters.combos_scored
        assert c["progress.combos_scored"] == c["kernel.combos_scored"]
        assert c["faults.events"] >= 1  # the injected crash was recorded


class TestLiveComponentsBitIdentity:
    """The full live stack (flight recorder + progress monitor + metrics
    endpoint) attached to a solve changes nothing about the answer."""

    @pytest.mark.parametrize(
        "backend, kw",
        [
            ("single", {}),
            ("pool", {"n_workers": 2}),
            ("distributed", {"n_nodes": 2}),
        ],
    )
    def test_bit_identical_with_live_stack(self, small_matrices, tmp_path,
                                           backend, kw):
        from repro.telemetry import FlightRecorder, MetricsServer, ProgressMonitor

        t, n, _ = small_matrices
        off, _ = _solve(backend, small_matrices, telemetry_on=False, **kw)
        with telemetry_session() as tel:
            tel.attach_flight(FlightRecorder(out_dir=tmp_path))
            with MetricsServer(telemetry=tel):
                with ProgressMonitor(telemetry=tel, interval_s=0.01):
                    on = MultiHitSolver(hits=2, backend=backend, **kw).solve(t, n)
        assert _fingerprint(on) == _fingerprint(off)
        # No fault, no black box — the recorder observed silently.
        assert list(tmp_path.glob("blackbox-*.json")) == []
