"""Tests for parallelization scheme descriptors."""

import math

import pytest

from repro.scheduling.schemes import (
    SCHEME_1X3,
    SCHEME_2X2,
    SCHEME_3X1,
    SCHEME_4X1,
    Scheme,
    scheme_for,
)


class TestScheme:
    def test_paper_schemes(self):
        assert SCHEME_1X3.hits == SCHEME_2X2.hits == SCHEME_3X1.hits == SCHEME_4X1.hits == 4
        assert SCHEME_1X3.name == "1x3"
        assert SCHEME_2X2.name == "2x2"
        assert SCHEME_3X1.name == "3x1"
        assert SCHEME_4X1.name == "4x1"

    def test_thread_counts_match_paper(self):
        g = 19411
        assert SCHEME_1X3.n_threads(g) == g
        assert SCHEME_2X2.n_threads(g) == math.comb(g, 2)
        assert SCHEME_3X1.n_threads(g) == math.comb(g, 3)
        assert SCHEME_4X1.n_threads(g) == math.comb(g, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Scheme(0, 3)
        with pytest.raises(ValueError):
            Scheme(2, -1)
        with pytest.raises(ValueError):
            Scheme(1, 0)  # 1-hit is not multi-hit

    def test_scheme_for(self):
        s = scheme_for(4, 3)
        assert s == SCHEME_3X1
        assert scheme_for(3, 2) == Scheme(2, 1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SCHEME_3X1.inner = 5
