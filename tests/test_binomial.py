"""Tests for exact and vectorized binomial coefficients."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.combinatorics.binomial import (
    binomial,
    binomial2_array,
    binomial3_array,
    binomial_float,
    cumulative_tetrahedral,
    cumulative_triangular,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(0, 30):
            for k in range(0, 6):
                assert binomial(n, k) == math.comb(n, k)

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(-1, 2) == 0
        assert binomial(5, -1) == 0

    def test_paper_scale_values(self):
        # C(19411, 3) ~ 1.22e12 entries (Section III-E).
        assert binomial(19411, 3) == math.comb(19411, 3)
        assert 1.21e12 < binomial(19411, 3) < 1.23e12

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=4))
    def test_hypothesis_matches_comb(self, n, k):
        assert binomial(n, k) == math.comb(n, k)


class TestBinomialFloat:
    def test_small_values_exact(self):
        n = np.arange(0, 200)
        for k in range(5):
            expected = np.array([math.comb(int(x), k) for x in n], dtype=float)
            np.testing.assert_array_equal(binomial_float(n, k), expected)

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            binomial_float(np.array([10.0]), 5)

    def test_scalar_input(self):
        assert binomial_float(10, 2) == 45.0


class TestExactArrays:
    def test_binomial2_array(self):
        n = np.arange(0, 1000, dtype=np.uint64)
        expected = np.array([math.comb(int(x), 2) for x in n], dtype=np.uint64)
        np.testing.assert_array_equal(binomial2_array(n), expected)

    def test_binomial3_array(self):
        n = np.arange(0, 1000, dtype=np.uint64)
        expected = np.array([math.comb(int(x), 3) for x in n], dtype=np.uint64)
        np.testing.assert_array_equal(binomial3_array(n), expected)

    def test_binomial3_paper_scale_exact(self):
        n = np.array([19411, 20000], dtype=np.uint64)
        got = binomial3_array(n)
        assert int(got[0]) == math.comb(19411, 3)
        assert int(got[1]) == math.comb(20000, 3)


class TestCumulativeTables:
    def test_triangular_table(self):
        t = cumulative_triangular(10)
        assert len(t) == 11
        assert int(t[0]) == 0
        assert int(t[10]) == 45

    def test_tetrahedral_table(self):
        t = cumulative_tetrahedral(10)
        assert len(t) == 11
        assert int(t[3]) == 1
        assert int(t[10]) == 120

    def test_tables_are_level_offsets(self):
        # T[j] is the linear id of the first pair with larger element j.
        t = cumulative_triangular(20)
        for j in range(2, 20):
            assert int(t[j + 1] - t[j]) == j  # level j holds j pairs

    def test_negative_g_rejected(self):
        with pytest.raises(ValueError):
            cumulative_triangular(-1)
        with pytest.raises(ValueError):
            cumulative_tetrahedral(-1)
