"""Tests for positional mutation synthesis (Fig. 10 substrate)."""

import numpy as np
import pytest

from repro.data.hotspots import LGG_PROFILES, GeneMutationProfile, positional_distribution


class TestProfileValidation:
    def test_hotspot_mass_bounded(self):
        with pytest.raises(ValueError):
            GeneMutationProfile("X", 100, 0.5, 0.1, hotspots=((5, 0.7), (9, 0.6)))

    def test_hotspot_position_in_protein(self):
        with pytest.raises(ValueError):
            GeneMutationProfile("X", 100, 0.5, 0.1, hotspots=((101, 0.5),))

    def test_positive_length(self):
        with pytest.raises(ValueError):
            GeneMutationProfile("X", 0, 0.5, 0.1)


class TestDistribution:
    def test_driver_concentrates_at_hotspot(self):
        p = LGG_PROFILES["IDH1"]
        counts = positional_distribution(p, 532, tumor=True, seed=0)
        assert counts.sum() > 300
        assert counts[131] / counts.sum() > 0.8  # R132 dominates

    def test_driver_absent_in_normals(self):
        p = LGG_PROFILES["IDH1"]
        counts = positional_distribution(p, 329, tumor=False, seed=0)
        assert counts.sum() < 10  # near-zero background

    def test_passenger_uniform(self):
        p = LGG_PROFILES["MUC6"]
        counts = positional_distribution(p, 5000, tumor=True, seed=1)
        # No position should dominate a uniform scatter.
        assert counts.max() / counts.sum() < 0.02

    def test_counts_length_matches_protein(self):
        p = LGG_PROFILES["MUC6"]
        counts = positional_distribution(p, 100, tumor=True, seed=0)
        assert counts.shape == (p.protein_length,)

    def test_deterministic(self):
        p = LGG_PROFILES["IDH1"]
        a = positional_distribution(p, 100, tumor=True, seed=5)
        b = positional_distribution(p, 100, tumor=True, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_normal_ignores_hotspots(self):
        p = GeneMutationProfile("X", 50, 0.9, 0.9, hotspots=((10, 0.95),))
        counts = positional_distribution(p, 3000, tumor=False, seed=2)
        assert counts[9] / counts.sum() < 0.1
