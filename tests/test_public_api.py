"""Tests for the top-level public API surface."""

import repro


class TestApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_docstring_flow(self):
        # The flow shown in the package docstring must actually work.
        cohort = repro.generate_cohort(
            repro.CohortConfig(n_genes=20, n_tumor=40, n_normal=40, hits=2, seed=0)
        )
        result = repro.MultiHitSolver(hits=2).solve(
            cohort.tumor.values, cohort.normal.values
        )
        assert result.combinations
        assert all(len(c.genes) == 2 for c in result.combinations)

    def test_scheme_constants_exported(self):
        assert repro.SCHEME_3X1.name == "3x1"
        assert repro.SCHEME_2X2.hits == 4
