"""Tests for the memory-optimization config and access-count model."""

import itertools
import math

import pytest

from repro.core.memopt import MemoryConfig, global_word_reads
from repro.scheduling.schemes import SCHEME_2X2, SCHEME_3X1, Scheme
from repro.scheduling.workload import total_threads


def brute_force_reads(scheme, g, words, lo, hi, config):
    """Count word reads by explicit thread enumeration."""
    pre = min(config.prefetched_rows, scheme.flattened)
    per_combo_rows = (scheme.flattened - pre) + scheme.inner
    combos = sorted(
        itertools.combinations(range(g), scheme.flattened),
        key=lambda t: tuple(reversed(t)),
    )
    total = 0
    for lam in range(lo, hi):
        top = combos[lam][-1]
        w = math.comb(g - 1 - top, scheme.inner)
        total += pre + w * per_combo_rows
    return total * words


class TestConfig:
    def test_labels(self):
        assert MemoryConfig(False, False, False).label == "baseline"
        assert MemoryConfig(True, False, False).label == "MemOpt1"
        assert MemoryConfig(True, True, True).label == "MemOpt1+MemOpt2+BitSplicing"

    def test_prefetched_rows(self):
        assert MemoryConfig(False, False, False).prefetched_rows == 0
        assert MemoryConfig(True, False, False).prefetched_rows == 1
        assert MemoryConfig(True, True, False).prefetched_rows == 2

    def test_default_all_on(self):
        m = MemoryConfig()
        assert m.prefetch_i and m.prefetch_j and m.bitsplice


class TestGlobalWordReads:
    @pytest.mark.parametrize("scheme", [Scheme(2, 1), SCHEME_3X1, SCHEME_2X2])
    @pytest.mark.parametrize(
        "config",
        [
            MemoryConfig(False, False, False),
            MemoryConfig(True, False, False),
            MemoryConfig(True, True, False),
        ],
    )
    def test_matches_brute_force(self, scheme, config):
        g, words = 12, 3
        total = total_threads(scheme, g)
        for lo, hi in [(0, total), (5, total // 2), (total - 4, total)]:
            assert global_word_reads(scheme, g, words, lo, hi, config) == (
                brute_force_reads(scheme, g, words, lo, hi, config)
            )

    def test_empty_range(self):
        assert global_word_reads(SCHEME_3X1, 10, 2, 5, 5, MemoryConfig()) == 0

    def test_prefetch_reduces_reads(self):
        g, words = 30, 4
        total = total_threads(SCHEME_3X1, g)
        reads = [
            global_word_reads(SCHEME_3X1, g, words, 0, total, MemoryConfig(i, j, False))
            for i, j in [(False, False), (True, False), (True, True)]
        ]
        assert reads[0] > reads[1] > reads[2]

    def test_four_to_two_rows_is_near_2x(self):
        # 3x1: baseline reads 4 rows/combo, full prefetch reads 2 — the
        # asymptotic reduction approaches 2x as inner loops dominate.
        g, words = 200, 4
        total = total_threads(SCHEME_3X1, g)
        base = global_word_reads(
            SCHEME_3X1, g, words, 0, total, MemoryConfig(False, False, False)
        )
        opt = global_word_reads(
            SCHEME_3X1, g, words, 0, total, MemoryConfig(True, True, False)
        )
        assert 1.8 < base / opt <= 2.0

    def test_scales_linearly_with_words(self):
        g = 15
        total = total_threads(SCHEME_3X1, g)
        r1 = global_word_reads(SCHEME_3X1, g, 1, 0, total, MemoryConfig())
        r7 = global_word_reads(SCHEME_3X1, g, 7, 0, total, MemoryConfig())
        assert r7 == 7 * r1
