"""Tests for block-wise combination enumeration."""

import itertools
import math

import pytest

from repro.combinatorics.enumeration import combinations_array, iter_combination_blocks


class TestCombinationsArray:
    def test_pairs_window(self):
        got = combinations_array(2, 0, 6)
        expected = [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]
        assert [tuple(r) for r in got] == expected

    def test_triples_window(self):
        got = combinations_array(3, 1, 4)
        expected = [(0, 1, 3), (0, 2, 3), (1, 2, 3)]
        assert [tuple(r) for r in got] == expected

    def test_empty_window(self):
        assert combinations_array(2, 5, 5).shape == (0, 2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            combinations_array(4, 0, 10)
        with pytest.raises(ValueError):
            combinations_array(2, 5, 3)


class TestBlocks:
    @pytest.mark.parametrize("order,g,block", [(2, 10, 7), (3, 10, 11), (2, 15, 200), (3, 12, 1)])
    def test_blocks_cover_exactly_once(self, order, g, block):
        seen = []
        for start, combos in iter_combination_blocks(order, g, block):
            assert len(combos) <= block
            seen.extend(tuple(r) for r in combos)
        assert len(seen) == math.comb(g, order)
        assert len(set(seen)) == len(seen)
        assert set(seen) == set(itertools.combinations(range(g), order))

    def test_blocks_start_offsets(self):
        starts = [s for s, _ in iter_combination_blocks(2, 10, 10)]
        assert starts == [0, 10, 20, 30, 40]

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            list(iter_combination_blocks(2, 10, 0))
