"""Report-formatting tests: every driver's report() is well-formed text.

The benchmark harness prints these reports as the regenerated paper
artifacts; they must be non-empty, multi-line, and mention their paper
anchor so EXPERIMENTS.md cross-references stay greppable.
"""

import pytest

from repro.experiments import EXPERIMENTS

# Cheap parameterizations per experiment so this file stays fast.
_FAST_PARAMS = {
    "fig1": dict(g=60, n_nodes=2),
    "fig2": dict(g=10),
    "fig3": dict(g=30, n_nodes=2),
    "fig10": dict(),
    "reduction-memory": dict(),
}

_ANCHORS = {
    "fig1": "Fig 1",
    "fig2": "Fig 2",
    "fig3": "Fig 3",
    "fig10": "Fig 10",
    "reduction-memory": "24.34",
}


@pytest.mark.parametrize("name", sorted(_FAST_PARAMS))
def test_report_is_well_formed(name):
    mod = EXPERIMENTS[name]
    result = mod.run(**_FAST_PARAMS[name])
    text = mod.report(result)
    assert isinstance(text, str)
    lines = text.splitlines()
    assert len(lines) >= 2
    assert all(isinstance(l, str) for l in lines)
    assert _ANCHORS[name] in text


def test_every_experiment_has_docstring_anchor():
    for name, mod in EXPERIMENTS.items():
        doc = mod.__doc__ or ""
        assert doc.strip(), f"{name} missing docstring"
        first = doc.strip().splitlines()[0]
        assert len(first) > 10, f"{name} docstring too thin"


def test_registry_keys_match_module_intent():
    # fig* keys map to fig*-named modules; ext-* to ext_* modules.
    for name, mod in EXPERIMENTS.items():
        modname = mod.__name__.rsplit(".", 1)[-1]
        key = name.replace("-", "_")
        assert modname.startswith(key.split("_")[0]) or modname.startswith(
            ("table_", "ext_", "fig")
        )
