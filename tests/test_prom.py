"""Tests for the Prometheus exposition renderer and /metrics endpoint.

* rendered text passes the strict exposition-format validator;
* name sanitization produces legal Prometheus identifiers;
* the endpoint serves /metrics and /healthz from a daemon thread;
* a scrape taken *mid-solve* (pool backend) observes the live
  ``progress.combos_scored`` counter moving monotonically — the
  liveness property the per-chunk feed exists for.
"""

import json
import threading
import urllib.request

import pytest

from repro.core.solver import MultiHitSolver
from repro.telemetry import (
    MetricsRegistry,
    MetricsServer,
    Telemetry,
    render_prometheus,
    telemetry_session,
    validate_prometheus,
)
from repro.telemetry.prom import PROM_CONTENT_TYPE, prometheus_name


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


class TestRender:
    def test_names_sanitized(self):
        assert prometheus_name("kernel.combos_scored") == (
            "repro_kernel_combos_scored"
        )
        assert prometheus_name("spmd.heartbeat_stale_s.rank0") == (
            "repro_spmd_heartbeat_stale_s_rank0"
        )
        assert prometheus_name("weird metric-name!") == "repro_weird_metric_name_"

    def test_all_metric_types_render_and_validate(self):
        reg = MetricsRegistry()
        reg.inc("kernel.combos_scored", 42)
        reg.set_gauge("solver.coverage", 0.875)
        reg.observe("pool.chunk_wall_s", 0.5)
        reg.observe("pool.chunk_wall_s", 1.5)
        text = render_prometheus(reg)
        n = validate_prometheus(text)
        assert n == 6  # counter + gauge + summary(count,sum) + min + max
        assert "# TYPE repro_kernel_combos_scored counter" in text
        assert "repro_kernel_combos_scored 42" in text
        assert "repro_pool_chunk_wall_s_count 2" in text
        assert "repro_pool_chunk_wall_s_sum 2" in text
        assert "repro_pool_chunk_wall_s_max 1.5" in text

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="missing TYPE"):
            validate_prometheus("undeclared_sample 1\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            validate_prometheus("# TYPE x bogus\nx 1\n")
        with pytest.raises(ValueError, match="duplicate"):
            validate_prometheus("# TYPE x counter\n# TYPE x counter\nx 1\n")
        with pytest.raises(ValueError, match="unparseable"):
            validate_prometheus("# TYPE x counter\nx one two\n")


class TestEndpoint:
    def test_metrics_and_healthz(self):
        tel = Telemetry()
        tel.count("kernel.combos_scored", 7)
        with MetricsServer(telemetry=tel) as server:
            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200 and ctype == PROM_CONTENT_TYPE
            assert validate_prometheus(body) > 0
            assert "repro_kernel_combos_scored 7" in body

            status, ctype, body = _get(server.url + "/healthz")
            assert status == 200 and ctype.startswith("application/json")
            health = json.loads(body)
            assert health["status"] == "ok" and health["uptime_s"] >= 0

            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404

    def test_default_session_resolved_at_scrape_time(self):
        with MetricsServer() as server:
            with telemetry_session() as tel:
                tel.count("late.counter", 3)
                _, _, body = _get(server.url + "/metrics")
            assert "repro_late_counter 3" in body

    def test_ephemeral_port_assigned(self):
        server = MetricsServer(port=0).start()
        try:
            assert server.port != 0
        finally:
            server.stop()


class TestMidSolveScrape:
    def test_pool_solve_scrape_is_monotonic(self, small_matrices):
        """Scrapes taken while the pool backend solves must observe
        ``repro_progress_combos_scored`` strictly increasing to its
        final value — workers feed the registry per chunk, not at
        end of run."""
        t, n, _ = small_matrices
        readings: list[int] = []
        errors: list[Exception] = []
        stop = threading.Event()

        def scrape_loop(url: str) -> None:
            import re

            pat = re.compile(r"^repro_progress_combos_scored (\d+)$", re.M)
            while not stop.is_set():
                try:
                    _, _, body = _get(url + "/metrics")
                    validate_prometheus(body)
                    m = pat.search(body)
                    if m:
                        readings.append(int(m.group(1)))
                except Exception as exc:  # pragma: no cover - fail the test
                    errors.append(exc)
                    return
                stop.wait(0.002)

        with telemetry_session() as tel:
            with MetricsServer(telemetry=tel) as server:
                scraper = threading.Thread(
                    target=scrape_loop, args=(server.url,), daemon=True
                )
                scraper.start()
                result = MultiHitSolver(
                    hits=2, backend="pool", n_workers=2
                ).solve(t, n)
                stop.set()
                scraper.join(timeout=10)
            final = tel.metrics.to_dict()["counters"]["progress.combos_scored"]

        assert not errors
        assert readings, "scraper never saw the progress counter"
        assert readings == sorted(readings), "scrape went backwards"
        assert readings[-1] <= final
        # The live feed means the counter was visible before the end:
        # at least one scrape caught an intermediate (non-final) value,
        # and the total matches the solver's own accounting.
        assert final == result.counters.combos_scored
        assert readings[0] < final


class TestServerLifecycle:
    def test_stop_is_idempotent(self):
        server = MetricsServer().start()
        server.stop()
        server.stop()  # second stop: no-op, no error

    def test_stop_before_start_is_a_noop(self):
        MetricsServer().stop()

    def test_rapid_start_stop_cycles(self):
        """SO_REUSEADDR keeps quick rebinds from tripping on TIME_WAIT."""
        server = MetricsServer()
        for _ in range(5):
            server.start()
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
            server.stop()

    def test_wrong_method_is_405(self):
        with MetricsServer() as server:
            req = urllib.request.Request(
                server.url + "/metrics", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=5)
            assert err.value.code == 405

    def test_route_bug_answers_500_and_survives(self):
        class BrokenServer(MetricsServer):
            def _make_server(self):
                server = super()._make_server()
                import re

                def boom(match, body, query):
                    raise RuntimeError("route bug")

                server.routes.append(
                    ("GET", re.compile(r"^/boom$"), boom)
                )
                return server

        with BrokenServer() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/boom")
            assert err.value.code == 500
            status, _, _ = _get(server.url + "/healthz")  # still serving
            assert status == 200
