"""Tests for the top-level greedy solver."""

import numpy as np
import pytest

from repro.core.memopt import MemoryConfig
from repro.core.sequential import sequential_solve
from repro.core.solver import MultiHitSolver
from repro.scheduling.schemes import SCHEME_2X2, Scheme


class TestConfiguration:
    def test_default_scheme_is_hminus1_x1(self):
        s = MultiHitSolver(hits=4)
        assert s.scheme == Scheme(3, 1)
        assert MultiHitSolver(hits=2).scheme == Scheme(1, 1)

    def test_scheme_hits_must_match(self):
        with pytest.raises(ValueError):
            MultiHitSolver(hits=3, scheme=SCHEME_2X2)

    def test_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            MultiHitSolver(backend="gpu")

    def test_rejects_single_hit(self):
        with pytest.raises(ValueError):
            MultiHitSolver(hits=1)


class TestGreedyLoop:
    def test_matches_sequential_reference(self, rng):
        t = rng.random((12, 35)) < 0.4
        n = rng.random((12, 30)) < 0.15
        ref = sequential_solve(t, n, 3)
        got = MultiHitSolver(hits=3).solve(t, n)
        assert [c.genes for c in got.combinations] == [c.genes for c in ref]
        assert [c.tp for c in got.combinations] == [c.tp for c in ref]

    def test_mask_and_splice_agree(self, rng):
        t = rng.random((12, 40)) < 0.35
        n = rng.random((12, 40)) < 0.1
        a = MultiHitSolver(hits=3, memory=MemoryConfig(bitsplice=True)).solve(t, n)
        b = MultiHitSolver(hits=3, memory=MemoryConfig(bitsplice=False)).solve(t, n)
        assert [c.genes for c in a.combinations] == [c.genes for c in b.combinations]
        assert a.uncovered == b.uncovered

    def test_iteration_records_consistent(self, rng):
        t = rng.random((10, 30)) < 0.4
        n = rng.random((10, 30)) < 0.1
        res = MultiHitSolver(hits=2).solve(t, n)
        total_covered = 0
        prev_remaining = 30
        for rec in res.iterations:
            assert rec.remaining_before == prev_remaining
            assert rec.newly_covered >= 1
            assert rec.remaining_after == rec.remaining_before - rec.newly_covered
            prev_remaining = rec.remaining_after
            total_covered += rec.newly_covered
        assert total_covered + res.uncovered == 30
        assert res.coverage == pytest.approx(total_covered / 30)

    def test_splice_shrinks_word_width(self, rng):
        t = rng.random((10, 200)) < 0.5
        n = rng.random((10, 200)) < 0.05
        res = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=True)).solve(t, n)
        widths = [rec.tumor_words for rec in res.iterations]
        assert widths[-1] < widths[0] or len(widths) == 1
        assert widths == sorted(widths, reverse=True)

    def test_mask_mode_keeps_width(self, rng):
        t = rng.random((10, 200)) < 0.5
        n = rng.random((10, 200)) < 0.05
        res = MultiHitSolver(hits=2, memory=MemoryConfig(bitsplice=False)).solve(t, n)
        assert all(rec.tumor_words == 4 for rec in res.iterations)

    def test_max_iterations(self, rng):
        t = rng.random((10, 50)) < 0.4
        n = rng.random((10, 50)) < 0.1
        res = MultiHitSolver(hits=2, max_iterations=3).solve(t, n)
        assert len(res.combinations) <= 3

    def test_accepts_bitmatrix_input(self, small_bitmatrices):
        tumor, normal, _ = small_bitmatrices
        res = MultiHitSolver(hits=2).solve(tumor, normal)
        assert res.params.n_tumor == tumor.n_samples

    def test_gene_axis_mismatch(self, rng):
        with pytest.raises(ValueError):
            MultiHitSolver(hits=2).solve(
                rng.random((5, 10)) < 0.5, rng.random((6, 10)) < 0.5
            )

    def test_too_few_genes(self, rng):
        with pytest.raises(ValueError):
            MultiHitSolver(hits=4).solve(
                rng.random((3, 10)) < 0.5, rng.random((3, 10)) < 0.5
            )

    def test_zero_tumor_samples(self):
        # Regression: an empty tumor cohort raised (first ValueError in
        # FScoreParams, then ZeroDivisionError in coverage) instead of
        # solving trivially.
        t = np.zeros((8, 0), dtype=bool)
        n = np.zeros((8, 12), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        assert res.combinations == []
        assert res.uncovered == 0
        assert res.coverage == 1.0

    def test_uncoverable_samples_reported(self):
        t = np.zeros((6, 10), dtype=bool)
        t[0, :5] = t[1, :5] = True  # only 5 of 10 samples coverable
        n = np.zeros((6, 8), dtype=bool)
        res = MultiHitSolver(hits=2).solve(t, n)
        assert res.uncovered == 5
        assert res.coverage == pytest.approx(0.5)


class TestBackends:
    @pytest.mark.parametrize("backend,kw", [
        ("sequential", {}),
        ("distributed", {"n_nodes": 2, "gpus_per_node": 3}),
    ])
    def test_backends_agree_with_single(self, rng, backend, kw):
        t = rng.random((10, 25)) < 0.4
        n = rng.random((10, 25)) < 0.15
        ref = MultiHitSolver(hits=3, backend="single").solve(t, n)
        got = MultiHitSolver(hits=3, backend=backend, **kw).solve(t, n)
        assert [c.genes for c in got.combinations] == [
            c.genes for c in ref.combinations
        ]

    def test_planted_combination_found_first(self, tiny_cohort):
        res = MultiHitSolver(hits=3).solve(
            tiny_cohort.tumor.values, tiny_cohort.normal.values
        )
        assert res.combinations[0].genes in tiny_cohort.planted
