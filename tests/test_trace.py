"""Tests for virtual-cluster event tracing."""

import numpy as np
import pytest

from repro.cluster.network import NetworkModel
from repro.cluster.trace import TracingCluster


def make(n=3):
    return TracingCluster(
        n, network=NetworkModel(latency_s=1e-6, bandwidth_bps=1e9,
                                per_rank_software_overhead_s=0.0)
    )


class TestTracing:
    def test_events_recorded_per_phase(self):
        vc = make(2)
        vc.compute(np.array([1.0, 2.0]))
        vc.reduce_to_root(20)
        vc.bcast_from_root(40)
        phases = [e.phase for e in vc.trace.events]
        assert phases.count("compute") == 2
        assert phases.count("reduce") == 2
        assert phases.count("bcast") == 2

    def test_event_intervals_consistent(self):
        vc = make(2)
        vc.compute(np.array([1.0, 3.0]))
        vc.reduce_to_root(20)
        for e in vc.trace.events:
            assert e.end_s >= e.start_s
            assert e.duration_s == pytest.approx(e.end_s - e.start_s)
        # Rank timelines are contiguous: compute end == reduce start.
        r0 = vc.trace.for_rank(0)
        assert r0[0].end_s == pytest.approx(r0[1].start_s)

    def test_critical_rank_is_straggler(self):
        vc = make(3)
        vc.compute(np.array([1.0, 5.0, 2.0]))
        vc.reduce_to_root(20)
        assert vc.trace.critical_rank(0) == 1

    def test_wait_time_sums_gaps(self):
        vc = make(3)
        vc.compute(np.array([1.0, 5.0, 2.0]))
        assert vc.trace.wait_time(0) == pytest.approx((5 - 1) + (5 - 2))

    def test_iteration_counter(self):
        vc = make(2)
        vc.compute(np.array([1.0, 1.0]))
        vc.next_iteration()
        vc.compute(np.array([1.0, 1.0]))
        assert vc.trace.n_iterations == 2
        assert vc.trace.critical_rank(1) in (0, 1)

    def test_empty_trace(self):
        vc = make(2)
        assert vc.trace.n_iterations == 0
        assert vc.trace.critical_rank(0) is None
        assert vc.trace.wait_time(0) == 0.0

    def test_virtual_cluster_semantics_preserved(self):
        from repro.cluster.virtual import VirtualCluster

        plain = VirtualCluster(n_ranks=3)
        traced = TracingCluster(3)
        for vc in (plain, traced):
            vc.compute(np.array([1.0, 2.0, 3.0]))
            vc.reduce_to_root(20)
        np.testing.assert_allclose(plain.clock, traced.clock)
