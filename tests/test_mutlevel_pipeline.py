"""Tests for positional synthesis, mutation-level solving, discrimination."""

import math

import pytest

from repro.mutlevel.discrimination import compare_resolutions
from repro.mutlevel.projection import (
    extra_hit_factor,
    mutation_level_factor,
    project_full_summit,
    required_speedup,
)
from repro.mutlevel.solver import solve_mutation_level
from repro.mutlevel.synthesis import PositionalCohortConfig, generate_positional_cohort


def make_cohort(**kw):
    base = dict(
        n_genes=20, n_tumor=90, n_normal=90, hits=3, n_driver_combos=2, seed=4
    )
    base.update(kw)
    return generate_positional_cohort(PositionalCohortConfig(**base))


class TestPositionalSynthesis:
    def test_deterministic(self):
        a, b = make_cohort(), make_cohort()
        assert a.planted == b.planted
        assert a.hotspots == b.hotspots
        assert len(a.tumor_calls) == len(b.tumor_calls)

    def test_hotspot_enrichment_in_tumors(self):
        c = make_cohort()
        g, pos = next(iter(c.hotspots.items()))
        gene = c.gene_name(g)
        tumor_hits = sum(
            1
            for r in c.tumor_calls
            if r.gene == gene and r.protein_position == pos
        )
        normal_hits = sum(
            1
            for r in c.normal_calls
            if r.gene == gene and r.protein_position == pos
        )
        assert tumor_hits > 5 * max(normal_hits, 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PositionalCohortConfig(n_genes=5, n_tumor=10, n_normal=10, hits=3, n_driver_combos=2)
        with pytest.raises(ValueError):
            PositionalCohortConfig(n_genes=20, n_tumor=10, n_normal=10, protein_length=1)

    def test_normal_matrix_aligned_to_tumor_features(self):
        c = make_cohort()
        tm = c.tumor_matrix(min_recurrence=2)
        nm = c.normal_matrix(features=tm)
        assert nm.features == tm.features
        assert nm.n_samples == 90


class TestMutationLevelSolve:
    def test_recovers_hotspot_combos(self):
        c = make_cohort(n_tumor=150, n_normal=150)
        tm = c.tumor_matrix(min_recurrence=2)
        nm = c.normal_matrix(features=tm)
        res = solve_mutation_level(tm, nm, hits=3, max_iterations=4)
        hotspot_labels = {
            f"{c.gene_name(g)}:{pos}" for g, pos in c.hotspots.items()
        }
        first = set(res.labels[0])
        assert first <= hotspot_labels  # first combo is pure hotspots

    def test_requires_shared_features(self):
        c = make_cohort()
        tm = c.tumor_matrix(min_recurrence=2)
        nm_raw = c.normal_matrix()  # unaligned universe
        if nm_raw.features != tm.features:
            with pytest.raises(ValueError):
                solve_mutation_level(tm, nm_raw, hits=3)

    def test_genes_of(self):
        c = make_cohort(n_tumor=150, n_normal=150)
        tm = c.tumor_matrix(min_recurrence=2)
        nm = c.normal_matrix(features=tm)
        res = solve_mutation_level(tm, nm, hits=3, max_iterations=2)
        genes = res.genes_of(0)
        assert len(genes) <= 3
        assert all(g.startswith("G") for g in genes)


class TestDiscrimination:
    def test_mutation_level_at_least_as_sharp(self):
        c = make_cohort(n_genes=30, n_tumor=150, n_normal=150, background_rate=0.10)
        rep = compare_resolutions(c)
        assert rep.mutation_level_sharper
        assert rep.mutation_hotspot_precision > 0.5
        assert rep.hotspot_features_found >= 4


class TestProjection:
    def test_paper_factors(self):
        # "~1e5" speedup for mutation level; "~4e5" per extra hit (we
        # compute the exact C-ratio, which is (M-h)/(h+1) ~ 8e4).
        assert 1e5 < mutation_level_factor() < 2e5
        assert 5e4 < extra_hit_factor(4) < 1e5

    def test_required_speedup_identity(self):
        assert required_speedup(4, mutation_level=False) == 1.0
        assert required_speedup(4, mutation_level=True) == pytest.approx(
            mutation_level_factor()
        )

    def test_five_hit_gene_level(self):
        f = required_speedup(5, mutation_level=False)
        assert f == pytest.approx(math.comb(20000, 5) / math.comb(20000, 4))

    def test_full_summit_projection(self):
        p = project_full_summit(5.4e6, hits=4)
        assert p.n_gpus == 27648
        assert p.projected_seconds == pytest.approx(
            5.4e6 * mutation_level_factor() / (27648 * 0.8)
        )
        assert p.projected_days > 100  # still enormous, as §V implies
