"""Per-thread and per-level workload models (Fig. 2).

Under a scheme with ``f`` flattened loops and ``d`` inner loops, the
thread whose decoded tuple has largest gene index ``m`` runs
``C(G - 1 - m, d)`` inner combinations.  All threads sharing that largest
index form *workload level* ``m``: the level holds ``C(m, f - 1)``
threads occupying the contiguous linear-id range ``[C(m, f), C(m+1, f))``.
These G discrete levels are what make the O(G) equi-area scheduler
possible (Section III-C).
"""

from __future__ import annotations

import math

import numpy as np

from repro.combinatorics.binomial import binomial, binomial_float
from repro.combinatorics.tetrahedral import triple_from_linear_array
from repro.combinatorics.triangular import pair_from_linear_array
from repro.scheduling.schemes import Scheme

__all__ = [
    "total_threads",
    "total_work",
    "cumulative_work_before",
    "level_work",
    "level_thread_counts",
    "level_range",
    "thread_top_index",
    "thread_work_array",
    "work_prefix_by_level",
]


def total_threads(scheme: Scheme, g: int) -> int:
    """Grid size ``C(g, f)``."""
    return scheme.n_threads(g)


def total_work(scheme: Scheme, g: int) -> int:
    """Total combinations examined: exactly ``C(g, hits)`` regardless of scheme.

    (Vandermonde: sum over levels of ``C(m, f-1) * C(g-1-m, d)``.)
    """
    return math.comb(g, scheme.hits)


def level_work(scheme: Scheme, g: int, m: int) -> int:
    """Inner-loop combinations per thread at level ``m`` (largest index)."""
    return binomial(g - 1 - m, scheme.inner)


def level_thread_counts(scheme: Scheme, g: int) -> np.ndarray:
    """Threads per level ``m`` for ``m in [0, g)`` — ``C(m, f-1)`` as float64.

    Levels below ``f - 1`` hold zero threads (no room for the smaller
    indices).  Float64 is exact here for all realistic ``g``.
    """
    m = np.arange(g, dtype=np.float64)
    return binomial_float(m, scheme.flattened - 1)


def level_range(scheme: Scheme, m: int) -> tuple[int, int]:
    """Linear-id range ``[C(m, f), C(m+1, f))`` occupied by level ``m``."""
    return binomial(m, scheme.flattened), binomial(m + 1, scheme.flattened)


def thread_top_index(scheme: Scheme, lam: np.ndarray) -> np.ndarray:
    """Largest decoded gene index for each linear thread id."""
    lam = np.asarray(lam, dtype=np.uint64)
    if scheme.flattened == 1:
        return lam.astype(np.int64)
    if scheme.flattened == 2:
        _, j = pair_from_linear_array(lam)
        return j
    if scheme.flattened == 3:
        _, _, k = triple_from_linear_array(lam)
        return k
    from repro.combinatorics.decode import top_index_array

    return top_index_array(lam, scheme.flattened)


def thread_work_array(scheme: Scheme, g: int, lam: np.ndarray) -> np.ndarray:
    """Inner combinations processed by each thread id in ``lam`` (float64).

    This is the per-thread workload curve of Fig. 2 / Fig. 3(a).
    """
    top = thread_top_index(scheme, lam)
    return binomial_float(g - 1 - top, scheme.inner)


def cumulative_work_before(
    scheme: Scheme, g: int, lam: int, prefix: "list[int] | None" = None
) -> int:
    """Exact total inner-loop work of threads with linear id < ``lam``.

    Splits ``lam`` at its level boundary: whole levels below (from the
    :func:`work_prefix_by_level` table, recomputed if not supplied) plus
    the partial level, every thread of which has identical work.  Python
    ints keep this exact at ``C(20000, 4)`` scale.
    """
    if lam <= 0:
        return 0
    lam = min(lam, total_threads(scheme, g))
    if prefix is None:
        prefix = work_prefix_by_level(scheme, g)
    top = int(thread_top_index(scheme, np.asarray([lam - 1], dtype=np.uint64))[0])
    lo, _ = level_range(scheme, top)
    return prefix[top] + (lam - lo) * level_work(scheme, g, top)


def work_prefix_by_level(scheme: Scheme, g: int) -> list[int]:
    """Exact cumulative work before each level: ``P[m] = sum_{m'<m} count*work``.

    Length ``g + 1``; ``P[g]`` equals :func:`total_work`.  Python ints keep
    this exact at ``C(20000, 4)`` scale where float64 would round.
    """
    prefix = [0] * (g + 1)
    acc = 0
    f = scheme.flattened
    d = scheme.inner
    for m in range(g):
        prefix[m] = acc
        acc += binomial(m, f - 1) * binomial(g - 1 - m, d)
    prefix[g] = acc
    return prefix
