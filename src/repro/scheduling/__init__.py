"""Workload partitioning across GPUs (Section III of the paper).

The flattened thread grid has an exponentially skewed per-thread workload
(Fig. 2): under the 2x2 scheme thread workloads range from ``C(G-2, 2)``
down to 0, and under the 3x1 scheme from ``G-3`` down to 0.  Equal-size
partitions of the thread range (*equi-distance*, ED) therefore give the
first GPUs far more work than the last (Fig. 3a).  The *equi-area* (EA)
scheduler instead cuts the thread range so the summed workload of every
partition is (nearly) equal, and does so in O(G) by walking the G discrete
workload levels rather than the ``C(G, 3)`` individual threads.
"""

from repro.scheduling.schemes import Scheme, SCHEME_1X3, SCHEME_2X2, SCHEME_3X1, SCHEME_4X1
from repro.scheduling.workload import (
    cumulative_work_before,
    level_thread_counts,
    level_work,
    thread_work_array,
    total_threads,
    total_work,
    work_prefix_by_level,
)
from repro.scheduling.schedule import Schedule
from repro.scheduling.equidistance import equidistance_schedule
from repro.scheduling.equiarea import (
    equiarea_range_boundaries,
    equiarea_schedule,
    equiarea_schedule_naive,
    lambda_cut_for_work,
)
from repro.scheduling.costaware import (
    ThreadCostModel,
    costaware_schedule,
    latency_aware_schedule,
)
from repro.scheduling.interleaved import InterleavedSchedule, interleaved_schedule

__all__ = [
    "lambda_cut_for_work",
    "ThreadCostModel",
    "costaware_schedule",
    "latency_aware_schedule",
    "InterleavedSchedule",
    "interleaved_schedule",
    "Scheme",
    "SCHEME_1X3",
    "SCHEME_2X2",
    "SCHEME_3X1",
    "SCHEME_4X1",
    "Schedule",
    "cumulative_work_before",
    "thread_work_array",
    "level_thread_counts",
    "level_work",
    "total_threads",
    "total_work",
    "work_prefix_by_level",
    "equidistance_schedule",
    "equiarea_schedule",
    "equiarea_schedule_naive",
    "equiarea_range_boundaries",
]
