"""Equi-area (EA) scheduling: equal *work* per GPU (Section III-C).

The objective is to cut the thread range so the cumulative workload of
every partition approximately equals ``total_work / n_parts``.  Walking
the ``C(G, 3)`` individual threads to find the cut points takes hours and
exhausts memory at paper scale; the paper's O(G) formulation exploits the
fact that threads come in ``G`` contiguous *levels* of identical work
(``C(m, f-1)`` threads of work ``C(G-1-m, d)`` at level ``m``), so the
number of threads to take from the current level is a single division.

Both the O(G) level walk (:func:`equiarea_schedule`) and the naive
per-thread prefix scan (:func:`equiarea_schedule_naive`, for the ablation
benchmark) are provided; they produce identical boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import (
    level_range,
    level_work,
    thread_work_array,
    total_threads,
    total_work,
    work_prefix_by_level,
)

__all__ = ["equiarea_schedule", "equiarea_schedule_naive", "lambda_cut_for_work"]


def lambda_cut_for_work(
    scheme: Scheme, g: int, target_work: int, prefix: "list[int] | None" = None
) -> int:
    """Smallest thread id whose preceding cumulative work reaches ``target_work``.

    One step of the level walk, exposed for schedulers that compute their
    own targets (e.g. the latency-aware rebalancer).  ``prefix`` is the
    :func:`work_prefix_by_level` table, recomputed if not supplied.
    """
    if prefix is None:
        prefix = work_prefix_by_level(scheme, g)
    t_total = total_threads(scheme, g)
    if target_work <= 0:
        return 0
    if target_work >= prefix[g]:
        return t_total
    # Smallest level m with prefix[m+1] >= target (prefix is sorted).
    lo_m, hi_m = 0, g
    while lo_m < hi_m:
        mid = (lo_m + hi_m) // 2
        if prefix[mid + 1] < target_work:
            lo_m = mid + 1
        else:
            hi_m = mid
    m = lo_m
    w = level_work(scheme, g, m)
    lo, hi = level_range(scheme, m)
    if w == 0:
        return lo
    need = target_work - prefix[m]
    return min(lo + (need + w - 1) // w, hi)


def equiarea_schedule(scheme: Scheme, g: int, n_parts: int) -> Schedule:
    """O(G) level-walk equi-area partitioner.

    Cut ``p`` is placed at the first thread at which the cumulative work
    reaches ``ceil(total * p / n_parts)``; within a level (where all
    threads have equal work ``w``) that thread index is found by one
    integer division.  All arithmetic is exact Python ints, which matters
    at ``C(20000, 4) ~ 6.6e15`` where float64 would misplace cuts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t_total = total_threads(scheme, g)
    w_total = total_work(scheme, g)
    prefix = work_prefix_by_level(scheme, g)  # cumulative work before level m

    boundaries = [0]
    m = 0  # current level
    for p in range(1, n_parts):
        target = (w_total * p + n_parts - 1) // n_parts  # ceil
        # Advance to the level containing the target (prefix is sorted).
        while m < g and prefix[m + 1] < target:
            m += 1
        if m >= g:
            boundaries.append(t_total)
            continue
        w = level_work(scheme, g, m)
        lo, hi = level_range(scheme, m)
        if w == 0:
            # Zero-work tail levels: every remaining thread is free; cut at
            # the level start so free threads spread over later partitions.
            cut = max(boundaries[-1], lo)
        else:
            need = target - prefix[m]
            n_threads = (need + w - 1) // w  # ceil: threads needed from level m
            cut = min(lo + n_threads, hi)
        cut = max(cut, boundaries[-1])
        boundaries.append(min(cut, t_total))
    boundaries.append(t_total)
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="equiarea")


def equiarea_schedule_naive(scheme: Scheme, g: int, n_parts: int) -> Schedule:
    """O(T) per-thread prefix-scan equi-area partitioner (ablation baseline).

    Materializes the full per-thread workload array — the approach the
    paper reports as taking tens of hours and running out of memory at
    ``C(G, 3)`` scale.  Only usable at small ``g``.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t_total = total_threads(scheme, g)
    w_total = total_work(scheme, g)
    lam = np.arange(t_total, dtype=np.uint64)
    work = thread_work_array(scheme, g, lam)
    cumulative = np.concatenate([[0.0], np.cumsum(work)])
    boundaries = [0]
    for p in range(1, n_parts):
        target = float((w_total * p + n_parts - 1) // n_parts)
        cut = int(np.searchsorted(cumulative, target, side="left"))
        cut = max(min(cut, t_total), boundaries[-1])
        boundaries.append(cut)
    boundaries.append(t_total)
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="equiarea-naive")
