"""Equi-area (EA) scheduling: equal *work* per GPU (Section III-C).

The objective is to cut the thread range so the cumulative workload of
every partition approximately equals ``total_work / n_parts``.  Walking
the ``C(G, 3)`` individual threads to find the cut points takes hours and
exhausts memory at paper scale; the paper's O(G) formulation exploits the
fact that threads come in ``G`` contiguous *levels* of identical work
(``C(m, f-1)`` threads of work ``C(G-1-m, d)`` at level ``m``), so the
number of threads to take from the current level is a single division.

Both the O(G) level walk (:func:`equiarea_schedule`) and the naive
per-thread prefix scan (:func:`equiarea_schedule_naive`, for the ablation
benchmark) are provided; they produce identical boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import (
    cumulative_work_before,
    level_range,
    level_work,
    total_threads,
    total_work,
    work_prefix_by_level,
)

__all__ = [
    "equiarea_schedule",
    "equiarea_schedule_naive",
    "equiarea_range_boundaries",
    "lambda_cut_for_work",
]


def lambda_cut_for_work(
    scheme: Scheme, g: int, target_work: int, prefix: "list[int] | None" = None
) -> int:
    """Smallest thread id whose preceding cumulative work reaches ``target_work``.

    One step of the level walk, exposed for schedulers that compute their
    own targets (e.g. the latency-aware rebalancer).  ``prefix`` is the
    :func:`work_prefix_by_level` table, recomputed if not supplied.
    """
    if prefix is None:
        prefix = work_prefix_by_level(scheme, g)
    t_total = total_threads(scheme, g)
    if target_work <= 0:
        return 0
    if target_work >= prefix[g]:
        return t_total
    # Smallest level m with prefix[m+1] >= target (prefix is sorted).
    lo_m, hi_m = 0, g
    while lo_m < hi_m:
        mid = (lo_m + hi_m) // 2
        if prefix[mid + 1] < target_work:
            lo_m = mid + 1
        else:
            hi_m = mid
    m = lo_m
    w = level_work(scheme, g, m)
    lo, hi = level_range(scheme, m)
    if w == 0:
        return lo
    need = target_work - prefix[m]
    return min(lo + (need + w - 1) // w, hi)


def equiarea_schedule(scheme: Scheme, g: int, n_parts: int) -> Schedule:
    """O(G) level-walk equi-area partitioner.

    Cut ``p`` is placed at the first thread at which the cumulative work
    reaches ``ceil(total * p / n_parts)``; within a level (where all
    threads have equal work ``w``) that thread index is found by one
    integer division.  All arithmetic is exact Python ints, which matters
    at ``C(20000, 4) ~ 6.6e15`` where float64 would misplace cuts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t_total = total_threads(scheme, g)
    w_total = total_work(scheme, g)
    prefix = work_prefix_by_level(scheme, g)  # cumulative work before level m

    boundaries = [0]
    m = 0  # current level
    for p in range(1, n_parts):
        target = (w_total * p + n_parts - 1) // n_parts  # ceil
        # Advance to the level containing the target (prefix is sorted).
        while m < g and prefix[m + 1] < target:
            m += 1
        if m >= g:
            boundaries.append(t_total)
            continue
        w = level_work(scheme, g, m)
        lo, hi = level_range(scheme, m)
        if w == 0:
            # Zero-work tail levels: every remaining thread is free; cut at
            # the level start so free threads spread over later partitions.
            cut = max(boundaries[-1], lo)
        else:
            need = target - prefix[m]
            n_threads = (need + w - 1) // w  # ceil: threads needed from level m
            cut = min(lo + n_threads, hi)
        cut = max(cut, boundaries[-1])
        boundaries.append(min(cut, t_total))
    boundaries.append(t_total)
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="equiarea")


def equiarea_range_boundaries(
    scheme: Scheme, g: int, lam_start: int, lam_end: int, n_parts: int
) -> tuple[int, ...]:
    """Equi-area cut points of the sub-range ``[lam_start, lam_end)``.

    The same level walk as :func:`equiarea_schedule`, restricted to an
    arbitrary thread sub-range so a single GPU partition (or the whole
    grid) can itself be fanned out — the pool backend cuts its range into
    equal-*work* worker chunks with this.  For the full grid the cuts are
    identical to ``equiarea_schedule(scheme, g, n_parts).boundaries``.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t_total = total_threads(scheme, g)
    lam_start = max(0, min(lam_start, t_total))
    lam_end = max(lam_start, min(lam_end, t_total))
    prefix = work_prefix_by_level(scheme, g)
    w_lo = cumulative_work_before(scheme, g, lam_start, prefix)
    span = cumulative_work_before(scheme, g, lam_end, prefix) - w_lo
    bounds = [lam_start]
    for p in range(1, n_parts):
        target = w_lo + (span * p + n_parts - 1) // n_parts  # ceil
        cut = lambda_cut_for_work(scheme, g, target, prefix)
        bounds.append(min(max(cut, bounds[-1]), lam_end))
    bounds.append(lam_end)
    return tuple(bounds)


def equiarea_schedule_naive(scheme: Scheme, g: int, n_parts: int) -> Schedule:
    """O(T) per-thread prefix-scan equi-area partitioner (ablation baseline).

    Materializes the full per-thread workload array — the approach the
    paper reports as taking tens of hours and running out of memory at
    ``C(G, 3)`` scale.  Only usable at small ``g``.

    The prefix scan accumulates exact Python integers (object dtype), not
    float64: cumulative work passes 2**53 well before paper scale (e.g.
    ``C(200, 10)`` for a depth-10 inner loop), at which point a float64
    ``cumsum`` can no longer represent the running total exactly and the
    ``searchsorted`` cut may land on the wrong thread — breaking the
    "identical boundaries" guarantee against the O(G) level walk.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t_total = total_threads(scheme, g)
    w_total = total_work(scheme, g)
    # Per-thread work, materialized level by level with exact integers.
    works = np.empty(t_total, dtype=object)
    for m in range(g):
        lo, hi = level_range(scheme, m)
        if hi > lo:
            works[lo:hi] = level_work(scheme, g, m)
    cumulative = np.empty(t_total + 1, dtype=object)
    cumulative[0] = 0
    np.cumsum(works, out=cumulative[1:])  # object dtype: exact int adds
    boundaries = [0]
    for p in range(1, n_parts):
        target = (w_total * p + n_parts - 1) // n_parts  # exact int, no float()
        cut = int(np.searchsorted(cumulative, target, side="left"))
        cut = max(min(cut, t_total), boundaries[-1])
        boundaries.append(cut)
    boundaries.append(t_total)
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="equiarea-naive")
