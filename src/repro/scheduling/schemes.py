"""Parallelization scheme descriptors (Section III-A).

For an ``h``-hit search the sequential algorithm is ``h`` nested loops.
A scheme flattens the outer ``f`` loops into the thread grid (one thread
per ``f``-combination, decoded from the linear id with the closed-form
maps) and leaves ``d = h - f`` loops inside each thread:

* ``1x3`` — G threads, depth-3 inner loops (too little parallelism)
* ``2x2`` — C(G,2) threads, depth-2 inner loops
* ``3x1`` — C(G,3) threads, depth-1 inner loops (the paper's final choice)
* ``4x1`` — C(G,4) threads, no inner loop (astronomically many threads)

The same machinery covers 3-hit searches (``2x1`` etc.), which is how the
single-GPU baseline (Algorithm 1) is expressed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Scheme",
    "SCHEME_1X3",
    "SCHEME_2X2",
    "SCHEME_3X1",
    "SCHEME_4X1",
    "SCHEME_1X2",
    "SCHEME_2X1",
    "SCHEME_1X1",
    "scheme_for",
]


@dataclass(frozen=True)
class Scheme:
    """A loop-flattening scheme: ``flattened`` outer + ``inner`` nested loops.

    ``hits = flattened + inner`` is the combination order searched.
    """

    flattened: int
    inner: int

    def __post_init__(self) -> None:
        if self.flattened < 1:
            raise ValueError("must flatten at least one loop")
        if self.inner < 0:
            raise ValueError("inner depth cannot be negative")
        if self.hits < 2:
            raise ValueError("multi-hit search needs at least 2 hits")

    @property
    def hits(self) -> int:
        return self.flattened + self.inner

    @property
    def name(self) -> str:
        return f"{self.flattened}x{max(self.inner, 1)}"

    def n_threads(self, g: int) -> int:
        """Grid size: one thread per ``flattened``-combination of genes."""
        return math.comb(g, self.flattened)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scheme({self.name}, {self.hits}-hit)"


SCHEME_1X3 = Scheme(1, 3)
SCHEME_2X2 = Scheme(2, 2)
SCHEME_3X1 = Scheme(3, 1)
SCHEME_4X1 = Scheme(4, 0)
SCHEME_1X2 = Scheme(1, 2)
SCHEME_2X1 = Scheme(2, 1)
SCHEME_1X1 = Scheme(1, 1)


def scheme_for(hits: int, flattened: int) -> Scheme:
    """Scheme searching ``hits``-combinations with ``flattened`` outer loops."""
    return Scheme(flattened, hits - flattened)
