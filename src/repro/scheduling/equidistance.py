"""Equi-distance (ED) scheduling: equal thread counts per GPU.

This is the naive baseline of Fig. 3(a): cutting the thread range into
equal-size pieces ignores the exponentially decaying per-thread workload,
so the first GPU can receive orders of magnitude more combinations than
the last.
"""

from __future__ import annotations

from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import total_threads

__all__ = ["equidistance_schedule"]


def equidistance_schedule(scheme: Scheme, g: int, n_parts: int) -> Schedule:
    """Cut ``[0, C(g, f))`` into ``n_parts`` equal-count ranges."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    t = total_threads(scheme, g)
    boundaries = [t * p // n_parts for p in range(n_parts + 1)]
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="equidistance")
