"""Cost-aware scheduling — §V strategy (4): latency-aware partitioning.

The equi-area scheduler balances *combination counts*, but a combination
is not a fixed amount of time: threads with short inner loops amortize
their per-thread setup (index decode + prefetch loads) over fewer
combinations, so high-λ partitions cost more time per combination.  The
paper's discussion proposes incorporating memory latency into the
scheduler; this module implements that extension.

The cost model mirrors :class:`repro.gpusim.TimingTuning`: a thread at
level ``m`` (inner extent ``w``) costs

    cost(m) = setup + w * per_combo

in abstract cycles, where ``setup`` covers decode + prefetch and
``per_combo`` covers the AND/popcount/load work per inner combination.
The level walk then balances *cost* instead of combinations — the same
O(G) structure, different per-level weight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_range, level_work, total_threads

__all__ = [
    "ThreadCostModel",
    "costaware_schedule",
    "schedule_cost_per_part",
    "latency_aware_schedule",
    "total_schedule_cost",
]


def total_schedule_cost(
    scheme: Scheme, g: int, cost: "ThreadCostModel | None" = None
) -> float:
    """Modeled cost (abstract cycles) of one full ``C(g, hits)`` scan.

    The same per-level sum :func:`costaware_schedule` balances across
    partitions, summed instead of cut — the gateway's ``cost_aware``
    dispatch policy sizes a job's worker budget from this number.
    """
    cost = cost or ThreadCostModel()
    total = 0.0
    for m in range(g):
        lo, hi = level_range(scheme, m)
        total += (hi - lo) * cost.level_cost(scheme, g, m)
    return total


@dataclass(frozen=True)
class ThreadCostModel:
    """Abstract per-thread cost: ``setup + inner_combos * per_combo``.

    Defaults reflect a 31-word BRCA-scale combination: ~308 cycles of
    setup (decode + two prefetched rows) and ~132 cycles per inner
    combination.  Only the *ratio* matters for scheduling.
    """

    setup: float = 308.0
    per_combo: float = 132.0

    def level_cost(self, scheme: Scheme, g: int, m: int) -> float:
        """Cost of one thread at level ``m``."""
        return self.setup + level_work(scheme, g, m) * self.per_combo


def costaware_schedule(
    scheme: Scheme,
    g: int,
    n_parts: int,
    cost: "ThreadCostModel | None" = None,
) -> Schedule:
    """O(G) level walk balancing modeled *time* instead of combinations.

    Identical to :func:`repro.scheduling.equiarea.equiarea_schedule`
    when ``cost.setup == 0``.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    cost = cost or ThreadCostModel()
    t_total = total_threads(scheme, g)

    # Cumulative cost before each level (float64 is fine: scheduling only
    # needs relative precision, and cut repair stays within one thread).
    prefix = [0.0] * (g + 1)
    acc = 0.0
    for m in range(g):
        lo, hi = level_range(scheme, m)
        acc += (hi - lo) * cost.level_cost(scheme, g, m)
        prefix[m + 1] = acc
    total_cost = acc

    boundaries = [0]
    m = 0
    for p in range(1, n_parts):
        target = total_cost * p / n_parts
        while m < g and prefix[m + 1] < target:
            m += 1
        if m >= g:
            boundaries.append(t_total)
            continue
        lo, hi = level_range(scheme, m)
        c = cost.level_cost(scheme, g, m)
        need = target - prefix[m]
        n_threads = int(need / c) + (1 if need % c else 0) if c > 0 else 0
        cut = min(lo + max(n_threads, 0), hi)
        cut = max(cut, boundaries[-1])
        boundaries.append(min(cut, t_total))
    boundaries.append(t_total)
    return Schedule(scheme=scheme, g=g, boundaries=tuple(boundaries), policy="costaware")


def schedule_cost_per_part(
    schedule: Schedule, cost: "ThreadCostModel | None" = None
) -> list[float]:
    """Modeled cost of each partition of any schedule (for comparisons)."""
    cost = cost or ThreadCostModel()
    scheme, g = schedule.scheme, schedule.g
    # Cost of threads below a boundary, assembled from whole levels plus
    # the partial level at the cut (same decomposition as work_per_part).
    from repro.scheduling.workload import thread_top_index

    import numpy as np

    prefix = [0.0] * (g + 1)
    acc = 0.0
    for m in range(g):
        lo, hi = level_range(scheme, m)
        acc += (hi - lo) * cost.level_cost(scheme, g, m)
        prefix[m + 1] = acc

    def cost_before(lam: int) -> float:
        if lam == 0:
            return 0.0
        top = int(thread_top_index(scheme, np.asarray([lam - 1], dtype=np.uint64))[0])
        lo, _ = level_range(scheme, top)
        return prefix[top] + (lam - lo) * cost.level_cost(scheme, g, top)

    cuts = [cost_before(b) for b in schedule.boundaries]
    return [cuts[p + 1] - cuts[p] for p in range(schedule.n_parts)]


def latency_aware_schedule(
    scheme: Scheme,
    g: int,
    n_parts: int,
    times_fn,
    iterations: int = 8,
) -> Schedule:
    """Iteratively rebalance boundaries against a *measured* time model.

    ``times_fn(schedule) -> array of per-partition seconds`` is any time
    oracle — typically :func:`repro.perfmodel.runtime.gpu_busy_times`
    with a device model, which captures the occupancy/latency effects a
    static per-thread cost cannot (the low-index straggler of Fig. 6).

    Each iteration re-cuts the thread axis so that, assuming each
    partition's current time-per-combination rate, the predicted times
    equalize; the best makespan seen is kept (the fixed point need not be
    monotone because partition rates change with their thread counts).
    """
    import numpy as np

    from repro.scheduling.equiarea import equiarea_schedule, lambda_cut_for_work
    from repro.scheduling.workload import total_threads, work_prefix_by_level

    if iterations < 1:
        raise ValueError("need at least one iteration")
    prefix = work_prefix_by_level(scheme, g)
    t_total = total_threads(scheme, g)

    sched = equiarea_schedule(scheme, g, n_parts)
    best = sched
    best_makespan = float(np.max(times_fn(sched)))

    for _ in range(iterations):
        times = np.asarray(times_fn(sched), dtype=np.float64)
        total_t = float(times.sum())
        if total_t <= 0:
            break
        work = np.asarray(sched.work_per_part(), dtype=np.float64)
        cum_t = np.concatenate([[0.0], np.cumsum(times)])
        cum_w = np.concatenate([[0.0], np.cumsum(work)])
        bounds = [0]
        for p in range(1, n_parts):
            target_t = total_t * p / n_parts
            q = int(np.searchsorted(cum_t, target_t, side="right")) - 1
            q = min(max(q, 0), n_parts - 1)
            frac = (target_t - cum_t[q]) / times[q] if times[q] > 0 else 0.0
            target_work = int(round(cum_w[q] + frac * work[q]))
            cut = lambda_cut_for_work(scheme, g, target_work, prefix)
            bounds.append(max(cut, bounds[-1]))
        bounds.append(t_total)
        candidate = Schedule(
            scheme=scheme, g=g, boundaries=tuple(bounds), policy="latency-aware"
        )
        if candidate.boundaries == sched.boundaries:
            break
        sched = candidate
        makespan = float(np.max(times_fn(sched)))
        if makespan < best_makespan:
            best, best_makespan = sched, makespan
    return best
