"""Interleaved (block-cyclic) scheduling — the occupancy fix.

Analysis of the 2x2 stragglers (Fig. 6) shows a scheduling limit that
*no* contiguous partition can fix: the low-lambda partitions hold few,
very heavy threads, and a GPU's latency hiding depends on its thread
count, so assigning that partition less work also removes the threads it
needs to stay occupied — its runtime barely moves.  The remedy is to
break contiguity: deal fixed-size blocks of the thread axis to GPUs
round-robin, so every GPU receives the same mixture of heavy and light
threads (same per-GPU work as equi-area *and* uniform occupancy).

The price is that each GPU touches the whole matrix (no row-subset
locality) and decodes scattered blocks; the benchmark quantifies the
trade against equi-area and against the paper's own remedy (the 3x1
scheme).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import (
    level_range,
    level_work,
    thread_top_index,
    total_threads,
    work_prefix_by_level,
)

__all__ = ["InterleavedSchedule", "interleaved_schedule"]


@dataclass(frozen=True)
class InterleavedSchedule:
    """Block-cyclic partition: GPU ``p`` owns blocks ``p, p+P, p+2P, ...``.

    Unlike :class:`repro.scheduling.schedule.Schedule`, partitions are
    unions of disjoint ``block_size`` ranges; the same work/thread
    accounting is provided so the performance model can consume either.
    """

    scheme: Scheme
    g: int
    n_parts: int
    block_size: int = 4096
    _cache: dict = field(default_factory=dict, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.n_parts < 1:
            raise ValueError("need at least one partition")
        if self.block_size < 1:
            raise ValueError("block_size must be positive")

    @property
    def total_threads(self) -> int:
        return total_threads(self.scheme, self.g)

    @property
    def n_blocks(self) -> int:
        return (self.total_threads + self.block_size - 1) // self.block_size

    def ranges(self, part: int) -> list[tuple[int, int]]:
        """The disjoint thread ranges owned by one partition."""
        if not 0 <= part < self.n_parts:
            raise ValueError(f"partition {part} out of range")
        t = self.total_threads
        out = []
        for b in range(part, self.n_blocks, self.n_parts):
            lo = b * self.block_size
            hi = min(lo + self.block_size, t)
            if hi > lo:
                out.append((lo, hi))
        return out

    # -- accounting ------------------------------------------------------

    def _prefix(self) -> list[int]:
        if "prefix" not in self._cache:
            self._cache["prefix"] = work_prefix_by_level(self.scheme, self.g)
        return self._cache["prefix"]

    def _work_before(self, lam: int) -> int:
        if lam == 0:
            return 0
        top = int(
            thread_top_index(self.scheme, np.asarray([lam - 1], dtype=np.uint64))[0]
        )
        lo, _ = level_range(self.scheme, top)
        return self._prefix()[top] + (lam - lo) * level_work(self.scheme, self.g, top)

    def work_per_part(self) -> list[int]:
        """Exact combinations per partition (sums its blocks)."""
        out = []
        for p in range(self.n_parts):
            total = 0
            for lo, hi in self.ranges(p):
                total += self._work_before(hi) - self._work_before(lo)
            out.append(total)
        return out

    def thread_counts(self) -> list[int]:
        return [sum(hi - lo for lo, hi in self.ranges(p)) for p in range(self.n_parts)]

    def max_thread_work(self, part: int) -> int:
        """Heaviest thread in the partition (first thread of its first block)."""
        ranges = self.ranges(part)
        if not ranges:
            return 0
        lo = ranges[0][0]
        top = int(thread_top_index(self.scheme, np.asarray([lo], dtype=np.uint64))[0])
        return level_work(self.scheme, self.g, top)

    def imbalance(self) -> float:
        work = self.work_per_part()
        mean = sum(work) / len(work)
        return max(work) / mean if mean else 1.0


def interleaved_schedule(
    scheme: Scheme, g: int, n_parts: int, block_size: int = 4096
) -> InterleavedSchedule:
    """Build a block-cyclic schedule."""
    return InterleavedSchedule(scheme=scheme, g=g, n_parts=n_parts, block_size=block_size)
