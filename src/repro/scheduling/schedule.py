"""Schedule container: contiguous thread-range assignments per GPU."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import total_threads, total_work

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """Partition of the flat thread grid ``[0, C(g, f))`` into GPU ranges.

    ``boundaries`` has ``n_parts + 1`` entries; partition ``p`` owns linear
    thread ids ``[boundaries[p], boundaries[p+1])``.  Partitions map to
    GPUs in rank-major order: partition ``p`` runs on node ``p // gpn``,
    local GPU ``p % gpn`` (``gpn`` = GPUs per node, 6 on Summit).
    """

    scheme: Scheme
    g: int
    boundaries: tuple[int, ...]
    policy: str = "unspecified"
    _work_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        b = tuple(int(x) for x in self.boundaries)
        object.__setattr__(self, "boundaries", b)
        if len(b) < 2:
            raise ValueError("need at least one partition")
        if b[0] != 0 or b[-1] != total_threads(self.scheme, self.g):
            raise ValueError(
                f"boundaries must span [0, {total_threads(self.scheme, self.g)}], "
                f"got [{b[0]}, {b[-1]}]"
            )
        if any(b[p] > b[p + 1] for p in range(len(b) - 1)):
            raise ValueError("boundaries must be non-decreasing")

    @property
    def n_parts(self) -> int:
        return len(self.boundaries) - 1

    def thread_range(self, part: int) -> tuple[int, int]:
        return self.boundaries[part], self.boundaries[part + 1]

    def thread_counts(self) -> np.ndarray:
        b = np.asarray(self.boundaries, dtype=np.float64)
        return np.diff(b)

    # -- exact per-partition work -------------------------------------

    def _work_before(self, lam: int) -> int:
        """Exact total work of threads with linear id < ``lam`` (O(f) per call)."""
        from repro.scheduling.workload import cumulative_work_before, work_prefix_by_level

        key = "prefix"
        if key not in self._work_cache:
            self._work_cache[key] = work_prefix_by_level(self.scheme, self.g)
        return cumulative_work_before(self.scheme, self.g, lam, self._work_cache[key])

    def work_per_part(self) -> list[int]:
        """Exact combinations assigned to each partition."""
        cuts = [self._work_before(b) for b in self.boundaries]
        return [cuts[p + 1] - cuts[p] for p in range(self.n_parts)]

    # -- balance diagnostics -------------------------------------------

    def imbalance(self) -> float:
        """Max/mean work ratio (1.0 is perfect balance)."""
        work = self.work_per_part()
        mean = sum(work) / len(work)
        if mean == 0:
            return 1.0
        return max(work) / mean

    def validate(self) -> None:
        """Assert the partition covers all work exactly once."""
        assert sum(self.work_per_part()) == total_work(self.scheme, self.g)

    def describe(self) -> str:
        work = self.work_per_part()
        return (
            f"Schedule[{self.policy}] scheme={self.scheme.name} G={self.g} "
            f"parts={self.n_parts} total_work={sum(work)} "
            f"imbalance={self.imbalance():.4f}"
        )
