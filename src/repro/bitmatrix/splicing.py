"""BitSplicing: physically remove covered sample columns.

After each greedy iteration the samples covered by the chosen combination
never need to be examined again.  Rather than masking them (which leaves
the word width unchanged), the paper *splices* them out of the tumor
matrix, shrinking the packed width: with every 64 samples removed, the
inner scoring loop loses one word's worth of AND + popcount operations
for every combination examined.
"""

from __future__ import annotations

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.packing import pack_bool_matrix

__all__ = ["splice_columns"]


def splice_columns(matrix: BitMatrix, keep: np.ndarray) -> BitMatrix:
    """Return a new BitMatrix containing only the columns where ``keep``.

    ``keep`` is a boolean per-sample mask.  The surviving columns are
    re-packed contiguously, so the word width drops by
    ``floor(removed / 64)`` (or more, depending on alignment).
    """
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != (matrix.n_samples,):
        raise ValueError(
            f"keep mask shape {keep.shape} != ({matrix.n_samples},)"
        )
    if keep.all():
        return matrix
    dense = matrix.to_dense()[:, keep]
    return BitMatrix(pack_bool_matrix(dense), int(keep.sum()))
