"""The BitMatrix container used by every engine in the library."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitmatrix.packing import (
    WORD_BITS,
    pack_bool_matrix,
    unpack_bool_matrix,
    words_for,
)

__all__ = ["BitMatrix"]


@dataclass(frozen=True)
class BitMatrix:
    """A bit-packed binary gene-sample matrix.

    Attributes
    ----------
    words:
        ``(n_genes, n_words)`` uint64 array; bit ``s % 64`` of word
        ``s // 64`` in row ``g`` is 1 iff sample ``s`` has a mutation in
        gene ``g``.  Tail bits beyond ``n_samples`` are zero.
    n_samples:
        Number of valid sample columns.
    """

    words: np.ndarray
    n_samples: int
    _col_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        w = np.ascontiguousarray(np.asarray(self.words, dtype=np.uint64))
        object.__setattr__(self, "words", w)
        if w.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {w.shape}")
        if not 0 <= self.n_samples <= w.shape[1] * WORD_BITS:
            raise ValueError(
                f"n_samples={self.n_samples} out of range for {w.shape[1]} words"
            )
        if w.shape[1] != words_for(self.n_samples):
            raise ValueError(
                f"expected {words_for(self.n_samples)} words for "
                f"{self.n_samples} samples, got {w.shape[1]}"
            )
        # Enforce the zero-tail invariant so popcounts never over-count.
        tail = self.n_samples % WORD_BITS
        if tail and w.shape[1]:
            mask = np.uint64((1 << tail) - 1)
            if np.any(w[:, -1] & ~mask):
                raise ValueError("tail bits beyond n_samples must be zero")

    # -- construction -------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Pack a boolean/integer ``(genes, samples)`` matrix."""
        dense = np.asarray(dense)
        return cls(pack_bool_matrix(dense), dense.shape[1])

    @classmethod
    def zeros(cls, n_genes: int, n_samples: int) -> "BitMatrix":
        return cls(np.zeros((n_genes, words_for(n_samples)), dtype=np.uint64), n_samples)

    # -- basic properties ---------------------------------------------

    @property
    def n_genes(self) -> int:
        return self.words.shape[0]

    @property
    def n_words(self) -> int:
        return self.words.shape[1]

    @property
    def nbytes(self) -> int:
        """Device-memory footprint of the packed representation."""
        return self.words.nbytes

    def to_dense(self) -> np.ndarray:
        return unpack_bool_matrix(self.words, self.n_samples)

    # -- core bitwise kernels -----------------------------------------

    def row(self, gene: int) -> np.ndarray:
        """Packed word row for one gene (a view, not a copy)."""
        return self.words[gene]

    def and_reduce(self, genes: "np.ndarray | list[int]") -> np.ndarray:
        """Bitwise AND of the rows for ``genes`` — samples mutated in *all*."""
        genes = np.asarray(genes, dtype=np.int64)
        if genes.size == 0:
            raise ValueError("need at least one gene")
        out = self.words[genes[0]].copy()
        for g in genes[1:]:
            np.bitwise_and(out, self.words[g], out=out)
        return out

    def count_samples_with_all(self, genes: "np.ndarray | list[int]") -> int:
        """Number of samples carrying mutations in every gene of ``genes``."""
        return int(np.bitwise_count(self.and_reduce(genes)).sum())

    def popcount_rows(self) -> np.ndarray:
        """Per-gene mutated-sample counts."""
        return np.bitwise_count(self.words).sum(axis=1).astype(np.int64)

    def sparsity(self, word_stride: int = 64) -> "SparsityIndex":
        """The row-sparsity index at ``word_stride`` (built once, cached).

        The matrix is frozen and BitSplicing always produces a *new*
        matrix, so a cached index can never describe stale words — a
        spliced matrix simply builds its own on first use.
        """
        from repro.bitmatrix.sparsity import SparsityIndex

        key = ("sparsity", int(word_stride))
        index = self._col_cache.get(key)
        if index is None:
            index = self._col_cache[key] = SparsityIndex.build(
                self.words, int(word_stride)
            )
        return index

    def sample_mask_to_words(self, mask: np.ndarray) -> np.ndarray:
        """Pack a boolean per-sample mask into a word vector."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n_samples,):
            raise ValueError(
                f"mask shape {mask.shape} != ({self.n_samples},)"
            )
        return pack_bool_matrix(mask[None, :])[0]

    def samples_with_all(self, genes: "np.ndarray | list[int]") -> np.ndarray:
        """Boolean per-sample mask of samples mutated in every gene."""
        words = self.and_reduce(genes)
        return unpack_bool_matrix(words[None, :], self.n_samples)[0]

    # -- convenience --------------------------------------------------

    def select_genes(self, genes: np.ndarray) -> "BitMatrix":
        """Row-subset view as a new BitMatrix (same sample columns)."""
        return BitMatrix(self.words[np.asarray(genes, dtype=np.int64)], self.n_samples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return (
            self.n_samples == other.n_samples
            and self.words.shape == other.words.shape
            and bool(np.array_equal(self.words, other.words))
        )
