"""Bit-packing of boolean sample columns into uint64 words.

Sample ``s`` lives in word ``s // 64`` at bit ``s % 64`` (LSB-first), the
same layout the CUDA implementation uses for its
``unsigned long long int`` representation.  Tail bits past the last
sample are always zero — an invariant the popcount kernels rely on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["words_for", "pack_bool_matrix", "unpack_bool_matrix"]

WORD_BITS = 64


def words_for(n_samples: int) -> int:
    """Number of uint64 words needed for ``n_samples`` columns."""
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    return (n_samples + WORD_BITS - 1) // WORD_BITS


def pack_bool_matrix(dense: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(genes, samples)`` matrix into ``(genes, words)`` uint64.

    Accepts any integer/bool dtype; nonzero means mutated.
    """
    dense = np.asarray(dense)
    if dense.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {dense.shape}")
    g, s = dense.shape
    w = words_for(s)
    padded = np.zeros((g, w * WORD_BITS), dtype=np.uint8)
    padded[:, :s] = dense.astype(bool)
    # LSB-first within each byte, little-endian bytes within each word ==
    # bit s of word s//64 holds sample s.
    packed_bytes = np.packbits(padded, axis=1, bitorder="little")
    return packed_bytes.view("<u8").reshape(g, w)


def unpack_bool_matrix(words: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`; returns a bool matrix."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected 2-D word matrix, got shape {words.shape}")
    g, w = words.shape
    if n_samples > w * WORD_BITS:
        raise ValueError(
            f"n_samples={n_samples} exceeds capacity {w * WORD_BITS} of {w} words"
        )
    as_bytes = words.astype("<u8", copy=False).view(np.uint8).reshape(g, w * 8)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return bits[:, :n_samples].astype(bool)
