"""Compressed binary gene-sample matrices.

The input to the multi-hit algorithm is a pair of binary matrices
(tumor and normal) with one row per gene and one column per sample;
entry ``(g, s)`` is 1 iff sample ``s`` carries a mutation in gene ``g``.
Following the single-GPU paper (Al Hajri et al. 2020), 64 sample columns
are packed into one ``uint64`` word, so scoring a gene combination is a
row-wise bitwise AND followed by a popcount — a 32x memory reduction and
a  ~64x reduction in arithmetic operations versus byte-per-sample.
"""

from repro.bitmatrix.packing import pack_bool_matrix, unpack_bool_matrix, words_for
from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.sparsity import SparsityIndex, stride_any_mask
from repro.bitmatrix.splicing import splice_columns

__all__ = [
    "BitMatrix",
    "SparsityIndex",
    "pack_bool_matrix",
    "stride_any_mask",
    "unpack_bool_matrix",
    "words_for",
    "splice_columns",
]
