"""Row-sparsity metadata for the packed bit matrices.

Real mutation matrices are extremely sparse (a few percent of samples
mutated per gene), and BitSplicing makes the late-iteration tumor matrix
sparser still.  A :class:`SparsityIndex` summarizes a
:class:`~repro.bitmatrix.matrix.BitMatrix` for the sparsity-driven
scoring path: per-row popcounts plus a per-row boolean mask of which
``word_stride``-word slices contain any set bit.

The stride mask enables an *exact* skip: the AND of several rows is zero
on every stride where any participating row's mask bit is clear, and an
all-zero stride contributes 0 to every popcount.  Skipping it changes
traffic, never results.

The index is derived data.  Because :class:`BitMatrix` is frozen and
BitSplicing column compaction always produces a *new* matrix, a cached
index can never go stale — the spliced matrix simply builds its own on
first use (see :meth:`BitMatrix.sparsity`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SparsityIndex", "stride_any_mask"]


def stride_any_mask(words: np.ndarray, word_stride: int) -> np.ndarray:
    """Boolean ``(..., n_strides)`` mask: does each ``word_stride``-word
    slice of the trailing axis contain any nonzero word?

    Works on a single packed row ``(W,)`` or a stack ``(G, W)``; the
    trailing axis is reduced in groups of ``word_stride`` (the last group
    may be ragged).  An empty word axis yields an empty mask.
    """
    if word_stride < 1:
        raise ValueError(f"word_stride must be >= 1, got {word_stride}")
    words = np.asarray(words)
    n_words = words.shape[-1]
    if n_words == 0:
        return np.zeros(words.shape[:-1] + (0,), dtype=bool)
    offsets = np.arange(0, n_words, word_stride)
    return np.logical_or.reduceat(words != 0, offsets, axis=-1)


@dataclass(frozen=True)
class SparsityIndex:
    """Per-row sparsity summary of one packed matrix.

    Attributes
    ----------
    word_stride:
        Slice width (in packed words) the mask was built at — the same
        stride the fused kernels scan with.
    row_popcounts:
        ``(n_genes,)`` int64 set-bit counts per row.
    stride_any:
        ``(n_genes, n_strides)`` bool; ``stride_any[g, s]`` is True iff
        row ``g`` has any set bit in words ``[s * stride, (s+1) * stride)``.
    """

    word_stride: int
    row_popcounts: np.ndarray
    stride_any: np.ndarray

    @property
    def n_strides(self) -> int:
        return self.stride_any.shape[1]

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of (row, stride) slices containing any set bit."""
        if self.stride_any.size == 0:
            return 0.0
        return float(self.stride_any.mean())

    @classmethod
    def build(cls, words: np.ndarray, word_stride: int) -> "SparsityIndex":
        words = np.asarray(words)
        if words.ndim != 2:
            raise ValueError(f"words must be 2-D, got shape {words.shape}")
        return cls(
            word_stride=int(word_stride),
            row_popcounts=np.bitwise_count(words).sum(axis=1).astype(np.int64),
            stride_any=stride_any_mask(words, int(word_stride)),
        )
