"""repro — multi-hit carcinogenic gene-combination discovery at scale.

A from-scratch Python reproduction of *"Scaling Out a Combinatorial
Algorithm for Discovering Carcinogenic Gene Combinations to Thousands of
GPUs"* (Dash et al., IPDPS 2021): the greedy weighted-set-cover multi-hit
algorithm, its compressed bit-matrix kernels, closed-form thread-index
maps, equi-area scheduler, multi-stage reduction, and simulated
V100/Summit substrates that reproduce the paper's performance figures.

Quickstart::

    import numpy as np
    from repro import MultiHitSolver, generate_cohort, CohortConfig

    cohort = generate_cohort(CohortConfig(n_genes=40, n_tumor=100,
                                          n_normal=100, hits=3))
    result = MultiHitSolver(hits=3).solve(cohort.tumor.values,
                                          cohort.normal.values)
    for combo in result.combinations:
        print(combo.genes, combo.f)
"""

from repro.bitmatrix import BitMatrix
from repro.core import (
    FScoreParams,
    MultiHitCombination,
    MultiHitResult,
    MultiHitSolver,
    SingleGpuEngine,
    DistributedEngine,
)
from repro.core.memopt import MemoryConfig
from repro.scheduling import (
    Scheme,
    SCHEME_1X3,
    SCHEME_2X2,
    SCHEME_3X1,
    SCHEME_4X1,
    Schedule,
    equiarea_schedule,
    equidistance_schedule,
)
from repro.data import (
    CohortConfig,
    GeneSampleMatrix,
    SyntheticCohort,
    generate_cohort,
    train_test_split,
    cancer,
    four_hit_cancers,
)
from repro.analysis import MultiHitClassifier, sensitivity_specificity
from repro.cluster import SimComm, SimCommWorld, SPMDRunner, VirtualCluster
from repro.faults import FaultPlan, FaultReport, FaultSpec, RetryPolicy
from repro.perfmodel import JobModel, WorkloadSpec
from repro.telemetry import (
    Telemetry,
    get_telemetry,
    telemetry_session,
    write_chrome_trace,
    write_summary,
)

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "FScoreParams",
    "MultiHitCombination",
    "MultiHitResult",
    "MultiHitSolver",
    "SingleGpuEngine",
    "DistributedEngine",
    "MemoryConfig",
    "Scheme",
    "SCHEME_1X3",
    "SCHEME_2X2",
    "SCHEME_3X1",
    "SCHEME_4X1",
    "Schedule",
    "equiarea_schedule",
    "equidistance_schedule",
    "CohortConfig",
    "GeneSampleMatrix",
    "SyntheticCohort",
    "generate_cohort",
    "train_test_split",
    "cancer",
    "four_hit_cancers",
    "MultiHitClassifier",
    "sensitivity_specificity",
    "SimComm",
    "SimCommWorld",
    "SPMDRunner",
    "VirtualCluster",
    "FaultPlan",
    "FaultSpec",
    "FaultReport",
    "RetryPolicy",
    "JobModel",
    "WorkloadSpec",
    "Telemetry",
    "get_telemetry",
    "telemetry_session",
    "write_chrome_trace",
    "write_summary",
    "__version__",
]
