"""Solve-as-a-service: the multi-tenant async job gateway.

The subsystem layers admission control, dispatch, and supervised
execution over the existing engine fleet:

* :mod:`repro.service.jobs` — job lifecycle + atomic JSON job store;
* :mod:`repro.service.queue` — bounded admission queue, tenant quotas;
* :mod:`repro.service.dispatch` — pluggable backend/budget policies;
* :mod:`repro.service.runner` — supervisor threads driving the solvers;
* :mod:`repro.service.http` — the stdlib HTTP API (``repro serve``).
"""

from repro.service.dispatch import (
    DispatchDecision,
    DispatchPolicy,
    FleetState,
    POLICIES,
    dispatch_policy,
)
from repro.service.http import Gateway, GatewayServer, validate_spec
from repro.service.jobs import Job, JobState, JobStore
from repro.service.queue import (
    AdmissionError,
    AdmissionQueue,
    QueueFullError,
    QuotaExceededError,
)
from repro.service.runner import JobRunner

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "DispatchDecision",
    "DispatchPolicy",
    "FleetState",
    "Gateway",
    "GatewayServer",
    "Job",
    "JobRunner",
    "JobState",
    "JobStore",
    "POLICIES",
    "QueueFullError",
    "QuotaExceededError",
    "dispatch_policy",
    "validate_spec",
]
