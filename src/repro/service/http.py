"""The gateway: HTTP front door + orchestration of store/queue/runner.

Grown from the PR-5 ``MetricsServer`` skeleton — :class:`GatewayServer`
subclasses it and mounts the job API beside the scrape endpoints, all
on one stdlib ``ThreadingHTTPServer``:

====== ============================ ==========================================
method path                         behavior
====== ============================ ==========================================
POST   ``/v1/jobs``                 submit a cohort -> ``202`` + job id
                                    (``400`` malformed, ``429`` + Retry-After
                                    when the queue/tenant quota rejects)
GET    ``/v1/jobs``                 list jobs (``?tenant=`` / ``?state=``)
GET    ``/v1/jobs/<id>``            lifecycle + progress/ETA
GET    ``/v1/jobs/<id>/result``     the solve result (``409`` until terminal)
DELETE ``/v1/jobs/<id>``            cancel (queued: instant; running: within
                                    one solver iteration)
GET    ``/metrics``                 gateway-wide Prometheus exposition
                                    (``job.*`` lifecycle + merged counters)
GET    ``/healthz``                 liveness + queue/runner snapshot
====== ============================ ==========================================

Submission body (JSON)::

    {
      "tenant": "team-a",
      "cohort": {"n_genes": 32, "n_tumor": 90, "n_normal": 90,
                 "hits": 3, "seed": 7},          # or {"dataset": "name"}
      "solver": {"hits": 3, "prune": true}        # optional knobs/pins
    }

:class:`Gateway` is the composition root: it builds the job store, the
admission queue, the dispatch policy, and the runner, recovers
interrupted jobs from a previous process (non-terminal jobs are
re-queued; their per-job checkpoints turn the re-run into a resume),
and serves until stopped.  The Python API (:meth:`Gateway.submit` /
:meth:`Gateway.cancel`) is the same code path the HTTP routes call —
the tests drive both.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from urllib.parse import parse_qs

from repro.service.dispatch import dispatch_policy
from repro.service.jobs import Job, JobState, JobStore
from repro.service.queue import AdmissionError, AdmissionQueue
from repro.service.runner import JobRunner
from repro.telemetry.prom import (
    MetricsServer,
    Response,
    _Server,
    json_reply,
)
from repro.telemetry.session import Telemetry

__all__ = ["Gateway", "GatewayServer", "validate_spec"]

_ALLOWED_COHORT_KEYS = {
    "dataset", "n_genes", "n_tumor", "n_normal", "hits", "seed",
    "n_driver_combos", "driver_penetrance", "sporadic_fraction",
}
_ALLOWED_SOLVER_KEYS = {
    "hits", "alpha", "backend", "n_workers", "n_nodes", "prune",
    "prune_blocks", "elastic", "lease_blocks", "max_iterations",
}
_ALLOWED_BACKENDS = {"single", "pool", "distributed", "sequential"}


def validate_spec(payload: dict) -> tuple[str, dict]:
    """Validate a submission body; returns ``(tenant, spec)``.

    Raises :class:`ValueError` with a client-readable message (-> 400).
    Validation is allow-listed: unknown keys are rejected rather than
    silently dropped, so a typo'd knob fails loudly at submit time
    instead of quietly solving the wrong problem.
    """
    if not isinstance(payload, dict):
        raise ValueError("body must be a JSON object")
    tenant = payload.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 128:
        raise ValueError("tenant must be a non-empty string (<= 128 chars)")
    cohort = payload.get("cohort")
    if not isinstance(cohort, dict) or not cohort:
        raise ValueError("cohort must be a non-empty object")
    unknown = set(cohort) - _ALLOWED_COHORT_KEYS
    if unknown:
        raise ValueError(f"unknown cohort keys: {sorted(unknown)}")
    if "dataset" not in cohort:
        for key in ("n_genes", "n_tumor", "n_normal"):
            if not isinstance(cohort.get(key), int) or cohort[key] < 1:
                raise ValueError(f"cohort.{key} must be a positive integer")
        if cohort.get("n_genes", 0) > 4096:
            raise ValueError("cohort.n_genes over the service limit (4096)")
    solver = payload.get("solver", {})
    if not isinstance(solver, dict):
        raise ValueError("solver must be an object")
    unknown = set(solver) - _ALLOWED_SOLVER_KEYS
    if unknown:
        raise ValueError(f"unknown solver keys: {sorted(unknown)}")
    backend = solver.get("backend")
    if backend is not None and backend not in _ALLOWED_BACKENDS:
        raise ValueError(f"unknown solver backend {backend!r}")
    return tenant, {"cohort": cohort, "solver": solver}


class Gateway:
    """Composition root: store + queue + dispatch + runner + HTTP server."""

    def __init__(
        self,
        state_dir: "str | Path",
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrent: int = 2,
        max_workers: int = 8,
        queue_depth: int = 32,
        tenant_quota: int = 8,
        policy: str = "round_robin",
        checkpoint_every: int = 1,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.telemetry = telemetry or Telemetry(enabled=True)
        self.store = JobStore(self.state_dir)
        self.queue = AdmissionQueue(depth=queue_depth, tenant_quota=tenant_quota)
        self.policy = dispatch_policy(policy)
        self.runner = JobRunner(
            store=self.store,
            queue=self.queue,
            policy=self.policy,
            state_dir=self.state_dir,
            telemetry=self.telemetry,
            max_concurrent=max_concurrent,
            max_workers=max_workers,
            checkpoint_every=checkpoint_every,
        )
        self.server = GatewayServer(
            gateway=self, telemetry=self.telemetry, host=host, port=port
        )
        self._recovered = self._recover()

    # -- lifecycle -----------------------------------------------------

    def _recover(self) -> int:
        """Re-queue jobs interrupted by a previous gateway's death.

        Non-terminal jobs (``queued`` / ``admitted`` / ``running``) go
        back to the queue in their original submission order; their
        per-job checkpoint files make the re-run resume mid-cover.
        Tenant in-flight accounting is rebuilt through the normal
        admission path (quotas hold across restarts).
        """
        recovered = 0
        for job in self.store.jobs():
            if job.terminal:
                continue
            if job.cancel_requested:
                self.store.transition(job.job_id, JobState.CANCELLED)
                self.telemetry.count("job.cancelled")
                continue
            self.store.requeue(job.job_id)
            self.queue.submit(job.job_id, job.tenant)
            self.telemetry.count("job.recovered")
            recovered += 1
        return recovered

    def start(self) -> "Gateway":
        self.runner.start()
        self.server.start()
        return self

    def stop(self) -> None:
        self.server.stop()
        self.runner.stop()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    # -- the Python API (HTTP routes call these) -----------------------

    def submit(self, payload: dict) -> Job:
        """Validate + admit + enqueue; raises ValueError/AdmissionError."""
        tenant, spec = validate_spec(payload)
        job = self.store.new_job(tenant, spec)
        try:
            self.queue.submit(job.job_id, tenant)
        except AdmissionError:
            # Rejected at admission: the record survives as failed so
            # the tenant can audit the rejection, but it never runs.
            self.store.transition(
                job.job_id, JobState.FAILED, error="rejected: queue full or quota"
            )
            self.telemetry.count("job.rejected")
            raise
        self.telemetry.count("job.submitted")
        return job

    def cancel(self, job_id: str) -> bool:
        return self.runner.cancel(job_id)

    def job(self, job_id: str) -> "Job | None":
        return self.store.get(job_id)

    def jobs(self, tenant=None, state=None) -> list[Job]:
        return self.store.jobs(tenant=tenant, state=state)

    def wait(
        self, job_ids, timeout: float = 60.0, poll_s: float = 0.05
    ) -> list[Job]:
        """Block until the given jobs are terminal (testing/CLI helper)."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            jobs = [self.store.get(j) for j in job_ids]
            if all(j is not None and j.terminal for j in jobs):
                return jobs
            time.sleep(poll_s)
        raise TimeoutError(
            f"jobs not terminal after {timeout}s: "
            f"{[(j.job_id, j.state) for j in jobs if j is not None and not j.terminal]}"
        )


class _GatewayHTTP(_Server):
    """The route table: ``/v1/*`` mounted beside ``/metrics``/``/healthz``."""

    def __init__(self, addr, telemetry, prefix, gateway: Gateway):
        self.gateway = gateway  # before super(): build_routes runs in init
        super().__init__(addr, telemetry, prefix)

    def build_routes(self):
        return super().build_routes() + [
            ("POST", re.compile(r"^/v1/jobs$"), self._route_submit),
            ("GET", re.compile(r"^/v1/jobs$"), self._route_list),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job_id>[\w-]+)/result$"),
                self._route_result,
            ),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job_id>[\w-]+)/trace$"),
                self._route_trace,
            ),
            (
                "GET",
                re.compile(r"^/v1/jobs/(?P<job_id>[\w-]+)$"),
                self._route_status,
            ),
            (
                "DELETE",
                re.compile(r"^/v1/jobs/(?P<job_id>[\w-]+)$"),
                self._route_cancel,
            ),
        ]

    def _route_healthz(self, match, body, query) -> Response:
        resp = super()._route_healthz(match, body, query)
        payload = json.loads(resp.body)
        payload.update(
            {
                "jobs": len(self.gateway.store),
                "backlog": self.gateway.queue.backlog,
                "in_flight": self.gateway.queue.in_flight,
                "running": self.gateway.runner.n_running,
            }
        )
        return json_reply(200, payload)

    # -- /v1 routes ----------------------------------------------------

    def _route_submit(self, match, body, query) -> Response:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            return json_reply(400, {"error": f"invalid JSON: {exc}"})
        try:
            job = self.gateway.submit(payload)
        except AdmissionError as exc:
            return json_reply(
                429,
                {"error": str(exc)},
                headers={"Retry-After": str(int(exc.retry_after_s) or 1)},
            )
        except ValueError as exc:
            return json_reply(400, {"error": str(exc)})
        return json_reply(
            202,
            {
                "job_id": job.job_id,
                "state": job.state,
                "url": f"/v1/jobs/{job.job_id}",
            },
        )

    def _route_list(self, match, body, query) -> Response:
        params = parse_qs(query)
        jobs = self.gateway.jobs(
            tenant=params.get("tenant", [None])[0],
            state=params.get("state", [None])[0],
        )
        return json_reply(200, {"jobs": [j.summary() for j in jobs]})

    def _route_status(self, match, body, query) -> Response:
        job = self.gateway.job(match.group("job_id"))
        if job is None:
            return json_reply(404, {"error": "unknown job"})
        return json_reply(200, job.summary())

    def _route_result(self, match, body, query) -> Response:
        job = self.gateway.job(match.group("job_id"))
        if job is None:
            return json_reply(404, {"error": "unknown job"})
        if not job.terminal:
            return json_reply(
                409, {"error": f"job is {job.state}, result not ready"}
            )
        if job.result is None:
            return json_reply(
                409, {"error": f"job {job.state} without result", "detail": job.error}
            )
        return json_reply(
            200, {"job_id": job.job_id, "state": job.state, "result": job.result}
        )

    def _route_trace(self, match, body, query) -> Response:
        """Causal analysis of a finished job's trace.

        Serves the critical path + per-bucket time attribution computed
        from ``traces/<job id>.jsonl`` (written by the runner on every
        job exit path).  ``?spans=1`` includes the raw span dicts.
        """
        job = self.gateway.job(match.group("job_id"))
        if job is None:
            return json_reply(404, {"error": "unknown job"})
        trace_path = (
            self.gateway.state_dir / "traces" / f"{job.job_id}.jsonl"
        )
        if not trace_path.exists():
            return json_reply(
                409,
                {
                    "error": f"job is {job.state}, trace not written yet",
                    "trace_id": job.trace_id,
                },
            )
        from repro.telemetry.critpath import analyze_trace, load_trace

        spans = load_trace(trace_path)
        report = analyze_trace(spans)
        payload = {
            "job_id": job.job_id,
            "state": job.state,
            "trace_id": job.trace_id,
            "report": report,
        }
        params = parse_qs(query)
        if params.get("spans", ["0"])[0] in ("1", "true"):
            payload["spans"] = spans
        else:
            # The full segment list can be large; the default response
            # keeps the headline numbers and top segments only.
            payload["report"] = dict(report)
            payload["report"]["critical_path"] = {
                k: v
                for k, v in report["critical_path"].items()
                if k != "segments"
            }
        return json_reply(200, payload)

    def _route_cancel(self, match, body, query) -> Response:
        job_id = match.group("job_id")
        job = self.gateway.job(job_id)
        if job is None:
            return json_reply(404, {"error": "unknown job"})
        if job.terminal:
            return json_reply(
                409, {"error": f"job already terminal ({job.state})"}
            )
        self.gateway.cancel(job_id)
        return json_reply(
            202, {"job_id": job_id, "state": self.gateway.job(job_id).state}
        )


class GatewayServer(MetricsServer):
    """The gateway's HTTP endpoint: MetricsServer + the ``/v1`` API."""

    def __init__(self, gateway: Gateway, telemetry=None, **kwargs) -> None:
        super().__init__(telemetry=telemetry, **kwargs)
        self.gateway = gateway

    def _make_server(self) -> _GatewayHTTP:
        return _GatewayHTTP(
            (self.host, self.port), self.telemetry, self.prefix, self.gateway
        )
