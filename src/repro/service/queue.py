"""Bounded admission-controlled job queue with per-tenant quotas.

The fleet is finite; millions of users are not.  Admission control is
the seam between them: a submission is either *admitted* (a job id the
tenant can poll) or *rejected right now* (HTTP 429 + ``Retry-After``),
never silently parked in an unbounded backlog.  Two independent limits
apply at submit time:

* **depth** — total jobs admitted but not yet finished, fleet-wide.
  Protects the gateway's memory and keeps queue latency honest.
* **tenant quota** — in-flight jobs (queued + admitted + running) per
  tenant.  One noisy tenant cannot starve the fleet; this is the
  max-instances-per-tier knob of melange-style load balancers reduced
  to its fair-sharing core.

The queue hands out job *ids* in FIFO order (:meth:`claim` blocks with
a timeout — the supervisor threads' idle loop), and in-flight
accounting is released when the runner reports the job terminal.  A
queued job can still be yanked (:meth:`abandon`) for instant
cancellation before any solver starts.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "AdmissionError",
    "AdmissionQueue",
    "QueueFullError",
    "QuotaExceededError",
]


class AdmissionError(Exception):
    """Base of submit-time rejections; maps to HTTP 429."""

    #: advisory seconds before the client should retry
    retry_after_s = 1.0


class QueueFullError(AdmissionError):
    """The fleet-wide backlog bound is hit."""


class QuotaExceededError(AdmissionError):
    """The submitting tenant is at its in-flight quota."""


class AdmissionQueue:
    """FIFO of job ids behind depth + per-tenant admission checks.

    Parameters
    ----------
    depth:
        Max jobs in flight fleet-wide (queued + claimed-but-unfinished).
    tenant_quota:
        Max jobs in flight per tenant (``0`` disables the quota).
    """

    def __init__(self, depth: int = 32, tenant_quota: int = 8) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if tenant_quota < 0:
            raise ValueError("tenant_quota must be >= 0")
        self.depth = depth
        self.tenant_quota = tenant_quota
        self._pending: deque = deque()  # (job_id, tenant), FIFO
        self._in_flight: dict[str, str] = {}  # job_id -> tenant
        self._tenant_load: dict[str, int] = {}
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)

    # -- admission -----------------------------------------------------

    def submit(self, job_id: str, tenant: str) -> None:
        """Admit a job or raise an :class:`AdmissionError` (-> 429).

        The depth check counts everything admitted and not yet
        :meth:`release`-d — a full fleet of running jobs keeps the
        queue closed even when the pending deque is empty.
        """
        with self._lock:
            if len(self._in_flight) >= self.depth:
                raise QueueFullError(
                    f"queue full: {len(self._in_flight)}/{self.depth} "
                    "jobs in flight"
                )
            load = self._tenant_load.get(tenant, 0)
            if self.tenant_quota and load >= self.tenant_quota:
                raise QuotaExceededError(
                    f"tenant {tenant!r} at quota: {load}/{self.tenant_quota} "
                    "jobs in flight"
                )
            self._in_flight[job_id] = tenant
            self._tenant_load[tenant] = load + 1
            self._pending.append((job_id, tenant))
            self._available.notify()

    # -- the supervisor side -------------------------------------------

    def claim(self, timeout: "float | None" = None) -> "str | None":
        """Pop the oldest pending job id; ``None`` on timeout."""
        with self._available:
            if not self._pending:
                self._available.wait(timeout)
            if not self._pending:
                return None
            job_id, _tenant = self._pending.popleft()
            return job_id

    def abandon(self, job_id: str) -> bool:
        """Remove a still-pending job (pre-run cancellation).

        Returns whether it was pending; in-flight accounting is dropped
        immediately (an abandoned job never runs, so nothing else will
        release it).
        """
        with self._lock:
            for i, (pending_id, _tenant) in enumerate(self._pending):
                if pending_id == job_id:
                    del self._pending[i]
                    self._release_locked(job_id)
                    return True
            return False

    def release(self, job_id: str) -> None:
        """Drop a finished job from the in-flight accounting."""
        with self._lock:
            self._release_locked(job_id)

    def _release_locked(self, job_id: str) -> None:
        tenant = self._in_flight.pop(job_id, None)
        if tenant is None:
            return
        load = self._tenant_load.get(tenant, 0) - 1
        if load > 0:
            self._tenant_load[tenant] = load
        else:
            self._tenant_load.pop(tenant, None)

    # -- inspection ----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Jobs admitted and not yet claimed by a supervisor."""
        with self._lock:
            return len(self._pending)

    @property
    def in_flight(self) -> int:
        """Jobs admitted and not yet released (queued or running)."""
        with self._lock:
            return len(self._in_flight)

    def tenant_load(self, tenant: str) -> int:
        with self._lock:
            return self._tenant_load.get(tenant, 0)
