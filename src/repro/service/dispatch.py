"""Pluggable dispatch policies: backend + worker budget per job.

Admission decides *whether* a job enters the fleet; dispatch decides
*where* and *how big*.  A policy maps (job spec, current fleet state)
to a :class:`DispatchDecision` — which engine backend runs the solve
and how many workers/nodes it may use — in the shape of melange-style
GPU load balancers (a policy object per strategy, chosen by name at
gateway boot):

* ``round_robin`` — rotate jobs across the allowed backends, equal
  budgets.  The baseline every other policy is compared against.
* ``weighted_by_load`` — send the job to the backend with the least
  outstanding modeled work, budget scaled to the fleet's idle share.
* ``cost_aware`` — model the job's full scan cost with
  :func:`repro.scheduling.costaware.total_schedule_cost` (the same
  per-thread cost model the latency-aware scheduler uses) and size the
  worker budget to the job: small cohorts stay on the in-process
  ``single`` engine, large ones fan out over the pool with a budget
  proportional to their share of the outstanding work.

A tenant may pin ``solver.backend`` / ``solver.n_workers`` in the
submission; the policy honors pins and budgets around them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.scheduling.costaware import ThreadCostModel, total_schedule_cost
from repro.scheduling.schemes import scheme_for

__all__ = [
    "CostAwarePolicy",
    "DispatchDecision",
    "DispatchPolicy",
    "FleetState",
    "POLICIES",
    "RoundRobinPolicy",
    "WeightedByLoadPolicy",
    "dispatch_policy",
]


@dataclass(frozen=True)
class DispatchDecision:
    """Where one job runs and with what budget."""

    backend: str
    n_workers: int = 1
    n_nodes: int = 1
    policy: str = ""
    est_cost: float = 0.0

    def to_payload(self) -> dict:
        return {
            "backend": self.backend,
            "n_workers": self.n_workers,
            "n_nodes": self.n_nodes,
            "policy": self.policy,
            "est_cost": self.est_cost,
        }


@dataclass
class FleetState:
    """What dispatch can see of the fleet: capacity and outstanding work.

    ``running`` maps job id -> its decision; the runner registers a job
    at admission and unregisters at completion, under ``lock`` (the
    policies read it while the supervisors mutate it).
    """

    max_workers: int = 8
    backends: tuple = ("single", "pool")
    running: dict = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def register(self, job_id: str, decision: DispatchDecision) -> None:
        with self.lock:
            self.running[job_id] = decision

    def unregister(self, job_id: str) -> None:
        with self.lock:
            self.running.pop(job_id, None)

    def load(self) -> dict:
        """Outstanding modeled cost and busy workers per backend."""
        per_backend = {b: {"est_cost": 0.0, "n_workers": 0, "jobs": 0}
                      for b in self.backends}
        with self.lock:
            for decision in self.running.values():
                row = per_backend.setdefault(
                    decision.backend,
                    {"est_cost": 0.0, "n_workers": 0, "jobs": 0},
                )
                row["est_cost"] += decision.est_cost
                row["n_workers"] += decision.n_workers
                row["jobs"] += 1
        return per_backend


def _job_cost(spec: dict, cost_model: "ThreadCostModel | None" = None) -> float:
    """Modeled scan cost of the job's cohort (abstract cycles)."""
    cohort = spec.get("cohort", {})
    solver = spec.get("solver", {})
    g = int(cohort.get("n_genes", 0))
    hits = int(solver.get("hits", cohort.get("hits", 4)))
    if g < hits or hits < 2:
        return 0.0
    scheme = scheme_for(hits, hits - 1)
    return total_schedule_cost(scheme, g, cost_model)


class DispatchPolicy:
    """Base policy: subclasses implement :meth:`choose`."""

    name = "base"

    def choose(self, job, fleet: FleetState) -> DispatchDecision:
        raise NotImplementedError

    def _pins(self, job) -> dict:
        """Tenant-pinned solver knobs the policy must honor."""
        return job.spec.get("solver", {})

    def _decide(
        self, job, fleet: FleetState, backend: str, n_workers: int,
        est_cost: float = 0.0,
    ) -> DispatchDecision:
        pins = self._pins(job)
        backend = pins.get("backend", backend)
        if backend == "single":
            n_workers = 1
        n_workers = int(pins.get("n_workers", n_workers))
        n_workers = max(1, min(n_workers, fleet.max_workers))
        return DispatchDecision(
            backend=backend,
            n_workers=n_workers,
            n_nodes=int(pins.get("n_nodes", max(1, n_workers))),
            policy=self.name,
            est_cost=est_cost,
        )


class RoundRobinPolicy(DispatchPolicy):
    """Rotate across the allowed backends, equal worker budgets."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0
        self._lock = threading.Lock()

    def choose(self, job, fleet: FleetState) -> DispatchDecision:
        with self._lock:
            backend = fleet.backends[self._next % len(fleet.backends)]
            self._next += 1
        share = max(1, fleet.max_workers // max(len(fleet.backends), 1))
        return self._decide(
            job, fleet, backend, share, est_cost=_job_cost(job.spec)
        )


class WeightedByLoadPolicy(DispatchPolicy):
    """Least-loaded backend wins; budget scales with idle capacity."""

    name = "weighted_by_load"

    def choose(self, job, fleet: FleetState) -> DispatchDecision:
        load = fleet.load()
        backend = min(
            fleet.backends,
            key=lambda b: (load[b]["est_cost"], load[b]["jobs"]),
        )
        busy = sum(row["n_workers"] for row in load.values())
        idle = max(1, fleet.max_workers - busy)
        return self._decide(
            job, fleet, backend, idle, est_cost=_job_cost(job.spec)
        )


class CostAwarePolicy(DispatchPolicy):
    """Size the budget to the job's modeled cost.

    Jobs below ``single_threshold`` (abstract cycles) are cheaper to run
    in-process than to fan out (worker startup dominates); everything
    else goes to the pool with workers proportional to this job's share
    of the outstanding modeled work.
    """

    name = "cost_aware"

    def __init__(
        self,
        cost_model: "ThreadCostModel | None" = None,
        single_threshold: float = 5e6,
    ) -> None:
        self.cost_model = cost_model or ThreadCostModel()
        self.single_threshold = single_threshold

    def choose(self, job, fleet: FleetState) -> DispatchDecision:
        est = _job_cost(job.spec, self.cost_model)
        if est <= self.single_threshold or "pool" not in fleet.backends:
            return self._decide(job, fleet, "single", 1, est_cost=est)
        outstanding = sum(
            row["est_cost"] for row in fleet.load().values()
        )
        share = est / (outstanding + est)
        budget = max(2, int(round(share * fleet.max_workers)))
        return self._decide(job, fleet, "pool", budget, est_cost=est)


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    WeightedByLoadPolicy.name: WeightedByLoadPolicy,
    CostAwarePolicy.name: CostAwarePolicy,
}


def dispatch_policy(name: str) -> DispatchPolicy:
    """Instantiate a policy by registry name (gateway ``--policy``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {name!r}; "
            f"known: {sorted(POLICIES)}"
        ) from None
