"""The job runner: supervisor threads executing jobs on the engines.

``max_concurrent`` supervisor threads block on the admission queue,
claim jobs FIFO, ask the dispatch policy for a backend + budget, and
drive the existing solver stack end to end.  Per job, the runner
isolates everything the engines share process-wide:

* **telemetry** — each job solves inside its own thread-scoped
  :class:`~repro.telemetry.session.Telemetry` session (rank threads
  inherit it), so concurrent jobs never interleave spans or counters.
  On completion the job's registry is folded into the gateway-wide
  session re-namespaced under ``job.*`` (``job.kernel.combos_scored``
  aggregates the fleet's scoring traffic across tenants), and the
  lifecycle counters (``job.completed`` / ``job.failed`` / ...) move.
* **checkpoints** — each job writes ``checkpoints/<job id>.json`` under
  the gateway state dir; a restarted gateway re-queues interrupted jobs
  and their solves resume from the checkpoint, bit-identical.
* **flight recorder** — each job gets its own recorder tagged with the
  job id, dumping ``blackbox-<job id>-*.json`` into a shared directory,
  so a crashing job leaves its own post-mortem and nothing else's.

Cancellation is cooperative: ``cancel()`` sets the job's event, the
solver's ``should_stop`` observes it between iterations, and the job
lands in ``cancelled`` with the combinations found so far (still
checkpointed — a cancelled job's partial work is inspectable and
resumable).  A job that raises is ``failed`` with the error recorded
and its flight dump written; the supervisor thread survives to run the
next job.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.service.dispatch import DispatchPolicy, FleetState
from repro.service.jobs import JobState, JobStore
from repro.service.queue import AdmissionQueue
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.session import Telemetry, thread_telemetry_session

__all__ = ["JobRunner"]


class JobRunner:
    """Claim → dispatch → solve → persist, ``max_concurrent`` at a time.

    ``telemetry`` is the gateway-wide session (``/metrics`` scrapes it);
    job-side sessions are private and merged in under ``job.*`` as jobs
    finish.
    """

    def __init__(
        self,
        store: JobStore,
        queue: AdmissionQueue,
        policy: DispatchPolicy,
        state_dir: "str | Path",
        telemetry: "Telemetry | None" = None,
        max_concurrent: int = 2,
        max_workers: int = 8,
        checkpoint_every: int = 1,
        claim_timeout_s: float = 0.2,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.store = store
        self.queue = queue
        self.policy = policy
        self.state_dir = Path(state_dir)
        self.telemetry = telemetry or Telemetry(enabled=True)
        self.max_concurrent = max_concurrent
        self.checkpoint_every = checkpoint_every
        self.claim_timeout_s = claim_timeout_s
        self.fleet = FleetState(max_workers=max_workers)
        self.checkpoint_dir = self.state_dir / "checkpoints"
        self.flight_dir = self.state_dir / "flight"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.flight_dir.mkdir(parents=True, exist_ok=True)
        self._cancel_events: dict[str, threading.Event] = {}
        self._cancel_lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._running = 0
        self._running_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "JobRunner":
        if self._threads:
            return self
        self._stop.clear()
        for i in range(self.max_concurrent):
            t = threading.Thread(
                target=self._supervise, name=f"repro-job-runner-{i}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop claiming; cancel running jobs; join the supervisors."""
        self._stop.set()
        with self._cancel_lock:
            for event in self._cancel_events.values():
                event.set()
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        self._threads = []

    @property
    def n_running(self) -> int:
        with self._running_lock:
            return self._running

    # -- cancellation --------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; returns whether the request landed.

        A still-queued job is cancelled immediately (never runs); a
        running one stops within one solver iteration.  Terminal jobs
        are not cancellable.
        """
        job = self.store.get(job_id)
        if job is None or job.terminal:
            return False
        self.store.update(job_id, cancel_requested=True)
        with self._cancel_lock:
            event = self._cancel_events.setdefault(job_id, threading.Event())
        event.set()
        if self.queue.abandon(job_id):
            # Never claimed: finalize here, no solver will see it.
            self.store.transition(job_id, JobState.CANCELLED)
            self.telemetry.count("job.cancelled")
            return True
        self.telemetry.count("job.cancel_requested")
        return True

    def _cancel_event(self, job_id: str) -> threading.Event:
        with self._cancel_lock:
            return self._cancel_events.setdefault(job_id, threading.Event())

    # -- the supervisor loop -------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.claim(timeout=self.claim_timeout_s)
            if job_id is None:
                continue
            try:
                self._run_job(job_id)
            finally:
                self.queue.release(job_id)
                self.fleet.unregister(job_id)
                with self._cancel_lock:
                    self._cancel_events.pop(job_id, None)

    def _run_job(self, job_id: str) -> None:
        tel = self.telemetry
        job = self.store.get(job_id)
        if job is None:
            return
        event = self._cancel_event(job_id)
        if job.cancel_requested or self._stop.is_set():
            if job.can_enter(JobState.CANCELLED):
                self.store.transition(job_id, JobState.CANCELLED)
                tel.count("job.cancelled")
            return
        decision = self.policy.choose(job, self.fleet)
        self.fleet.register(job_id, decision)
        self.store.transition(
            job_id, JobState.ADMITTED, dispatch=decision.to_payload()
        )
        tel.count("job.admitted")
        tel.count(f"job.backend.{decision.backend}")

        # The per-job session adopts the trace id minted at submission,
        # so every span of the solve (including pool-worker and rank
        # spans) joins the gateway request's trace end to end.
        job_tel = Telemetry(enabled=True, trace_id=job.trace_id)
        recorder = FlightRecorder(out_dir=self.flight_dir, tag=job_id)
        job_tel.attach_flight(recorder)
        self.store.transition(job_id, JobState.RUNNING)
        with self._running_lock:
            self._running += 1
            tel.set_gauge("job.running", self._running)
        t_start = time.monotonic()
        finalized = False
        try:
            with thread_telemetry_session(job_tel):
                result = self._solve(job, decision, event)
            cancelled = event.is_set()
            current = self.store.get(job_id)
            user_cancel = current is not None and current.cancel_requested
            if cancelled and not user_cancel:
                # Gateway shutdown, not a tenant cancel: leave the job in
                # ``running`` so restart recovery re-queues it and the
                # solve resumes from its checkpoint.
                tel.count("job.interrupted")
                return
            from repro.io.results import result_to_dict

            payload = result_to_dict(result)
            payload["cancelled"] = cancelled
            # Persist metrics and the causal trace *before* the terminal
            # transition: a tenant that polls for ``done`` and then asks
            # for the trace must never race a still-pending write.
            self._merge_job_metrics(job_tel)
            self._persist_trace(job_id, job_tel)
            finalized = True
            self.store.transition(
                job_id,
                JobState.CANCELLED if cancelled else JobState.DONE,
                result=payload,
                progress=self._final_progress(result, t_start),
            )
            tel.count("job.cancelled" if cancelled else "job.completed")
        except Exception as exc:
            # Isolate the blast radius: this job fails with its black
            # box written; the supervisor (and every other job) lives.
            recorder.dump("job-failed", exc=exc, telemetry=job_tel)
            if not finalized:
                self._merge_job_metrics(job_tel)
                self._persist_trace(job_id, job_tel)
                finalized = True
            self.store.transition(
                job_id, JobState.FAILED,
                error=f"{type(exc).__name__}: {exc}",
            )
            tel.count("job.failed")
        finally:
            with self._running_lock:
                self._running -= 1
                tel.set_gauge("job.running", self._running)
            tel.observe("job.wall_s", time.monotonic() - t_start)
            if not finalized:
                self._merge_job_metrics(job_tel)
                self._persist_trace(job_id, job_tel)

    # -- execution -----------------------------------------------------

    def _solve(self, job, decision, event: threading.Event):
        from repro.core.checkpoint import solve_with_checkpoints
        from repro.core.solver import MultiHitSolver

        tumor, normal, hits = self._cohort_arrays(job.spec)
        solver_spec = dict(job.spec.get("solver", {}))
        kwargs = {
            "hits": hits,
            "backend": decision.backend,
            "n_workers": decision.n_workers,
            "n_nodes": decision.n_nodes,
        }
        for knob in (
            "alpha", "prune", "prune_blocks", "elastic", "lease_blocks",
            "max_iterations",
        ):
            if knob in solver_spec:
                kwargs[knob] = solver_spec[knob]
        solver = MultiHitSolver(**kwargs)

        total = int(tumor.shape[1]) if hasattr(tumor, "shape") else 0
        t0 = time.monotonic()

        def on_iteration(state) -> None:
            elapsed = time.monotonic() - t0
            covered = total - state.n_uncovered
            rate = covered / elapsed if elapsed > 0 and covered > 0 else 0.0
            self.store.update(
                job.job_id,
                progress={
                    "iterations": state.n_found,
                    "uncovered": state.n_uncovered,
                    "covered": covered,
                    "total": total,
                    "eta_s": (
                        round(state.n_uncovered / rate, 3) if rate > 0 else None
                    ),
                    "elapsed_s": round(elapsed, 3),
                },
            )

        return solve_with_checkpoints(
            solver,
            tumor,
            normal,
            self.checkpoint_dir / f"{job.job_id}.json",
            every=self.checkpoint_every,
            on_iteration=on_iteration,
            should_stop=event.is_set,
        )

    def _cohort_arrays(self, spec: dict):
        """Materialize the job's cohort: (tumor, normal, hits)."""
        cohort_spec = dict(spec.get("cohort", {}))
        if "dataset" in cohort_spec:
            from repro.data.registry import dataset

            cohort = dataset(cohort_spec["dataset"])
        else:
            from repro.data.synthesis import CohortConfig, generate_cohort

            cohort = generate_cohort(CohortConfig(**cohort_spec))
        hits = int(spec.get("solver", {}).get("hits", cohort.config.hits))
        return cohort.tumor.values, cohort.normal.values, hits

    def _persist_trace(self, job_id: str, job_tel: Telemetry) -> None:
        """Write the job's span timeline to ``traces/<job id>.jsonl``.

        Written on every exit path (done, failed, cancelled, even
        interrupted) so ``GET /v1/jobs/<id>/trace`` can always serve the
        causal analysis of whatever actually ran.  Best-effort: a trace
        that cannot be written never fails the job.
        """
        try:
            from repro.telemetry.export import write_jsonl

            trace_dir = self.state_dir / "traces"
            trace_dir.mkdir(parents=True, exist_ok=True)
            write_jsonl(trace_dir / f"{job_id}.jsonl", job_tel)
        except OSError:  # pragma: no cover - disk-full / permission edge
            self.telemetry.count("job.trace_write_failed")

    # -- accounting ----------------------------------------------------

    def _final_progress(self, result, t_start: float) -> dict:
        total = result.params.n_tumor
        return {
            "iterations": len(result.combinations),
            "uncovered": result.uncovered,
            "covered": total - result.uncovered,
            "total": total,
            "coverage": result.coverage,
            "eta_s": 0.0,
            "elapsed_s": round(time.monotonic() - t_start, 3),
        }

    def _merge_job_metrics(self, job_tel: Telemetry) -> None:
        """Fold the job session into the gateway registry under ``job.*``.

        Counters and histograms aggregate across jobs (typed merge);
        per-job gauges are point-in-time and tenant-private, so they
        stay behind.
        """
        snapshot = job_tel.metrics.to_dict()
        self.telemetry.metrics.merge_dict(
            {
                "counters": {
                    f"job.{k}": v for k, v in snapshot["counters"].items()
                },
                "histograms": {
                    f"job.{k}": v for k, v in snapshot["histograms"].items()
                },
            }
        )
