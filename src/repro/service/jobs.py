"""Job lifecycle + the atomic JSON-on-disk job store.

A *job* is one tenant's request to solve one cohort: the cohort spec
(either generative parameters for :func:`repro.data.synthesis.generate_cohort`
or a registry dataset name), the solver knobs the tenant is allowed to
set, and the lifecycle bookkeeping the gateway stamps on as the job
moves through

    queued -> admitted -> running -> done | failed | cancelled

``queued`` means accepted past admission control but not yet claimed;
``admitted`` means a supervisor thread claimed it and the dispatch
policy chose its backend + worker budget; ``cancelled`` can be entered
from any non-terminal state (a queued job cancels instantly, a running
one within one solver iteration via the cooperative ``should_stop``).

Every mutation is persisted through the same atomic discipline as
checkpoints (sibling tmp file + fsync + ``os.replace``), one file per
job, so a crashed or restarted gateway recovers the exact set of jobs
and their states from the directory — and a job interrupted mid-solve
resumes from its per-job checkpoint file rather than restarting.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ACTIVE_STATES",
    "JOB_SCHEMA",
    "Job",
    "JobState",
    "JobStore",
    "TERMINAL_STATES",
]

JOB_SCHEMA = "repro.service.jobs/v1"


class JobState:
    """The lifecycle vocabulary (plain strings: JSON- and API-friendly)."""

    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)
ACTIVE_STATES = frozenset(
    {JobState.QUEUED, JobState.ADMITTED, JobState.RUNNING}
)

_TRANSITIONS: dict[str, frozenset] = {
    JobState.QUEUED: frozenset({JobState.ADMITTED, JobState.CANCELLED, JobState.FAILED}),
    JobState.ADMITTED: frozenset({JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass
class Job:
    """One tenant's solve request plus its lifecycle bookkeeping.

    ``spec`` is the validated submission payload (see
    :meth:`JobStore.new_job`); ``dispatch`` is the policy's decision
    (backend, worker budget, policy name, modeled cost); ``progress`` is
    the runner's live feed (iterations, coverage, ETA); ``result`` is
    the :func:`repro.io.results.result_to_dict` payload once terminal.
    """

    job_id: str
    tenant: str
    spec: dict
    state: str = JobState.QUEUED
    created_at: float = 0.0
    updated_at: float = 0.0
    dispatch: "dict | None" = None
    progress: dict = field(default_factory=dict)
    result: "dict | None" = None
    error: "str | None" = None
    cancel_requested: bool = False
    # Causal-trace identity, minted at submission: the runner's per-job
    # telemetry session adopts it, flight dumps stamp it, and
    # GET /v1/jobs/<id>/trace joins on it.
    trace_id: "str | None" = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def can_enter(self, state: str) -> bool:
        return state in _TRANSITIONS[self.state]

    def to_payload(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": self.spec,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dispatch": self.dispatch,
            "progress": self.progress,
            "result": self.result,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Job":
        if payload.get("schema") != JOB_SCHEMA:
            raise ValueError(
                f"unsupported job schema {payload.get('schema')!r}"
            )
        return cls(
            job_id=payload["job_id"],
            tenant=payload["tenant"],
            spec=payload["spec"],
            state=payload["state"],
            created_at=payload["created_at"],
            updated_at=payload["updated_at"],
            dispatch=payload.get("dispatch"),
            progress=payload.get("progress") or {},
            result=payload.get("result"),
            error=payload.get("error"),
            cancel_requested=bool(payload.get("cancel_requested")),
            trace_id=payload.get("trace_id"),
        )

    def summary(self) -> dict:
        """The list-endpoint row: lifecycle without the result payload."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "dispatch": self.dispatch,
            "progress": self.progress,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "trace_id": self.trace_id,
        }


class JobStore:
    """One JSON file per job under ``root/jobs/``, written atomically.

    The store is the gateway's durable source of truth: submission,
    every state transition, progress updates, and the final result all
    go through :meth:`save`, which uses tmp + fsync + ``os.replace`` so
    a crash mid-write can never leave a torn job file.  A fresh store
    pointed at an existing directory reloads every job (what gateway
    restart recovery is built on).

    All mutations funnel through :meth:`transition` / :meth:`update`,
    serialized by one lock — the HTTP threads, the supervisor threads,
    and the progress feeds all touch jobs concurrently.
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        for path in sorted(self.jobs_dir.glob("job-*.json")):
            try:
                job = Job.from_payload(json.loads(path.read_text()))
            except (ValueError, KeyError, json.JSONDecodeError):
                continue  # unreadable entry: skip, don't brick the store
            self._jobs[job.job_id] = job

    # -- creation ------------------------------------------------------

    def new_job(self, tenant: str, spec: dict) -> Job:
        """Mint a queued job (persisted immediately)."""
        from repro.telemetry.causal import new_trace_id

        now = time.time()
        job = Job(
            job_id=f"job-{uuid.uuid4().hex[:12]}",
            tenant=tenant,
            spec=spec,
            created_at=now,
            updated_at=now,
            trace_id=new_trace_id(),
        )
        with self._lock:
            self._jobs[job.job_id] = job
            self._save_locked(job)
        return job

    # -- access --------------------------------------------------------

    def get(self, job_id: str) -> "Job | None":
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(
        self, tenant: "str | None" = None, state: "str | None" = None
    ) -> list[Job]:
        """Jobs in submission order, optionally filtered."""
        with self._lock:
            rows = sorted(self._jobs.values(), key=lambda j: j.created_at)
        if tenant is not None:
            rows = [j for j in rows if j.tenant == tenant]
        if state is not None:
            rows = [j for j in rows if j.state == state]
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- mutation ------------------------------------------------------

    def transition(self, job_id: str, state: str, **updates) -> Job:
        """Move a job to ``state``, stamping + persisting atomically.

        Raises :class:`ValueError` on an illegal lifecycle edge (e.g.
        ``done -> running``) — transitions are where the state machine
        is enforced, so no caller can corrupt a record.
        """
        with self._lock:
            job = self._require(job_id)
            if not job.can_enter(state):
                raise ValueError(
                    f"illegal transition {job.state!r} -> {state!r} "
                    f"for {job_id}"
                )
            job.state = state
            self._apply_locked(job, updates)
            return job

    def requeue(self, job_id: str) -> Job:
        """Reset an interrupted (non-terminal) job back to ``queued``.

        The one sanctioned backward edge in the lifecycle, reserved for
        gateway restart recovery: a job found ``admitted`` or
        ``running`` at boot was interrupted by the previous process's
        death, and goes back to the queue (its checkpoint makes the
        re-run a resume, not a restart).  Terminal jobs are refused.
        """
        with self._lock:
            job = self._require(job_id)
            if job.terminal:
                raise ValueError(f"cannot requeue terminal job {job_id}")
            job.state = JobState.QUEUED
            self._apply_locked(job, {})
            return job

    def update(self, job_id: str, **updates) -> Job:
        """Persist non-lifecycle fields (progress, cancel_requested...)."""
        with self._lock:
            job = self._require(job_id)
            self._apply_locked(job, updates)
            return job

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _apply_locked(self, job: Job, updates: dict) -> None:
        for key, value in updates.items():
            if not hasattr(job, key):
                raise AttributeError(f"job has no field {key!r}")
            setattr(job, key, value)
        job.updated_at = time.time()
        self._save_locked(job)

    def _save_locked(self, job: Job) -> None:
        path = self.jobs_dir / f"{job.job_id}.json"
        tmp = path.with_name(path.name + ".tmp")
        try:
            with open(tmp, "w") as fh:
                fh.write(json.dumps(job.to_payload()) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def save(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
            self._save_locked(job)
