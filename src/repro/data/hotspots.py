"""Positional mutation distributions (Fig. 10).

The paper's driver-vs-passenger discussion hinges on within-gene mutation
position: IDH1 mutations in LGG tumors concentrate at amino acid 132
(R132, a known glioma marker — 400 of 532 tumor samples) and are absent
in normals, while MUC6 mutations scatter uniformly in both.  This module
synthesizes per-position mutation counts from a hotspot model and
computes the percentage histograms the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GeneMutationProfile", "positional_distribution", "LGG_PROFILES"]


@dataclass(frozen=True)
class GeneMutationProfile:
    """Hotspot model for one gene in one cohort.

    ``hotspots`` maps amino-acid position -> fraction of *tumor* mutations
    at that position; the remaining mass scatters uniformly.  Normal-
    sample mutations are always uniform (passenger-like).
    """

    gene: str
    protein_length: int
    tumor_mutation_rate: float  # fraction of tumor samples mutated
    normal_mutation_rate: float
    hotspots: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0 < self.protein_length:
            raise ValueError("protein_length must be positive")
        total = sum(frac for _, frac in self.hotspots)
        if total > 1.0 + 1e-9:
            raise ValueError("hotspot fractions exceed 1")
        for pos, _ in self.hotspots:
            if not 1 <= pos <= self.protein_length:
                raise ValueError(f"hotspot position {pos} outside protein")


def positional_distribution(
    profile: GeneMutationProfile,
    n_samples: int,
    tumor: bool,
    seed: int = 0,
) -> np.ndarray:
    """Per-position mutation counts for ``n_samples`` (tumor or normal).

    Returns an array of length ``protein_length`` (1-based positions at
    index ``pos - 1``).
    """
    rng = np.random.default_rng(seed)
    rate = profile.tumor_mutation_rate if tumor else profile.normal_mutation_rate
    n_mutated = rng.binomial(n_samples, rate)
    counts = np.zeros(profile.protein_length, dtype=np.int64)
    hotspot_mass = sum(f for _, f in profile.hotspots) if tumor else 0.0
    for _ in range(n_mutated):
        r = rng.random()
        if tumor and r < hotspot_mass:
            acc = 0.0
            for pos, frac in profile.hotspots:
                acc += frac
                if r < acc:
                    counts[pos - 1] += 1
                    break
        else:
            counts[rng.integers(0, profile.protein_length)] += 1
    return counts


# The two genes of the paper's worked example (top LGG 4-hit combination).
LGG_PROFILES = {
    "IDH1": GeneMutationProfile(
        gene="IDH1",
        protein_length=414,
        tumor_mutation_rate=400.0 / 532.0,  # 400 of 532 LGG tumors (R132)
        normal_mutation_rate=0.004,
        hotspots=((132, 0.95),),
    ),
    "MUC6": GeneMutationProfile(
        gene="MUC6",
        protein_length=2439,
        tumor_mutation_rate=0.17,
        normal_mutation_rate=0.15,
        hotspots=(),
    ),
}
