"""Named standard datasets.

Deterministic, laptop-sized instances used by examples, docs, and quick
CLI runs — the reproduction's stand-in for "download the summarized TCGA
inputs".  Every entry regenerates bit-identically from its config.
"""

from __future__ import annotations

from repro.data.cancers import cancer
from repro.data.synthesis import CohortConfig, SyntheticCohort, generate_cohort

__all__ = ["DATASETS", "dataset", "dataset_names"]

# name -> builder config; kept as data so the registry is introspectable.
_SPECS: dict[str, dict] = {
    # Minimal demo: seconds to solve exhaustively at 3 hits.
    "demo": dict(n_genes=30, n_tumor=90, n_normal=90, hits=3, n_driver_combos=3, seed=11),
    # BRCA-shaped: paper-exact sample counts, reduced gene universe.
    "brca-mini": dict(cancer="BRCA", n_genes=60, hits=4, seed=1),
    # ACC-shaped: the smallest cohort (Fig. 6's dataset).
    "acc-mini": dict(cancer="ACC", n_genes=48, hits=4, seed=2),
    # LGG-shaped: the Fig. 10 cancer type.
    "lgg-mini": dict(cancer="LGG", n_genes=48, hits=3, seed=3),
    # A 2-hit instance solvable by the sequential oracle in milliseconds.
    "tiny-2hit": dict(n_genes=16, n_tumor=40, n_normal=40, hits=2, n_driver_combos=2, seed=5),
}


def dataset_names() -> list[str]:
    return sorted(_SPECS)


def dataset(name: str) -> SyntheticCohort:
    """Build a named dataset (deterministic for a given library version)."""
    try:
        spec = dict(_SPECS[name])
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    if "cancer" in spec:
        abbrev = spec.pop("cancer")
        return generate_cohort(cancer=cancer(abbrev), **spec)
    return generate_cohort(CohortConfig(**spec))


DATASETS = dataset_names()
