"""Synthetic TCGA-like data substrate.

The paper consumes TCGA mutation-annotation-format (MAF) calls for 31
cancer types, summarized into binary gene-sample matrices.  That data
cannot ship here, so this package synthesizes cohorts with the same
statistical skeleton: per-cancer sample/gene counts (values stated in the
paper are kept exact), *planted* multi-hit driver combinations with
realistic penetrance, a long-tailed passenger mutation background, and
per-position mutation hotspots (IDH1 R132 vs the uniform MUC6 profile of
Fig. 10).  Planting gives ground truth, which is what makes the
classification experiment (Fig. 9) meaningful.
"""

from repro.data.cancers import CancerType, CANCER_CATALOG, cancer, four_hit_cancers
from repro.data.matrices import GeneSampleMatrix
from repro.data.synthesis import CohortConfig, SyntheticCohort, generate_cohort
from repro.data.split import train_test_split
from repro.data.io import load_cohort, save_cohort
from repro.data.registry import DATASETS, dataset, dataset_names
from repro.data.stats import (
    CohortSummary,
    cooccurrence_matrix,
    pairwise_log_odds,
    summarize_matrix,
)
from repro.data.maf import MafRecord, read_maf, summarize_maf, write_maf
from repro.data.hotspots import GeneMutationProfile, positional_distribution

__all__ = [
    "CancerType",
    "CANCER_CATALOG",
    "cancer",
    "four_hit_cancers",
    "GeneSampleMatrix",
    "CohortConfig",
    "SyntheticCohort",
    "generate_cohort",
    "train_test_split",
    "save_cohort",
    "load_cohort",
    "DATASETS",
    "dataset",
    "dataset_names",
    "CohortSummary",
    "summarize_matrix",
    "cooccurrence_matrix",
    "pairwise_log_odds",
    "MafRecord",
    "read_maf",
    "write_maf",
    "summarize_maf",
    "GeneMutationProfile",
    "positional_distribution",
]
