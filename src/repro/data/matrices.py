"""Labeled gene-sample matrices (the solver input format)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix

__all__ = ["GeneSampleMatrix"]


@dataclass(frozen=True)
class GeneSampleMatrix:
    """Dense boolean gene-sample matrix with gene / sample labels.

    The labeled dense form is the interchange format (what MAF
    summarization produces); engines consume the packed
    :class:`BitMatrix` from :meth:`to_bitmatrix`.
    """

    values: np.ndarray  # (genes, samples) bool
    gene_names: tuple[str, ...]
    sample_ids: tuple[str, ...]

    def __post_init__(self) -> None:
        v = np.asarray(self.values, dtype=bool)
        object.__setattr__(self, "values", v)
        object.__setattr__(self, "gene_names", tuple(self.gene_names))
        object.__setattr__(self, "sample_ids", tuple(self.sample_ids))
        if v.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {v.shape}")
        if v.shape[0] != len(self.gene_names):
            raise ValueError(
                f"{v.shape[0]} rows but {len(self.gene_names)} gene names"
            )
        if v.shape[1] != len(self.sample_ids):
            raise ValueError(
                f"{v.shape[1]} columns but {len(self.sample_ids)} sample ids"
            )

    @property
    def n_genes(self) -> int:
        return self.values.shape[0]

    @property
    def n_samples(self) -> int:
        return self.values.shape[1]

    def to_bitmatrix(self) -> BitMatrix:
        return BitMatrix.from_dense(self.values)

    def select_samples(self, idx: np.ndarray) -> "GeneSampleMatrix":
        idx = np.asarray(idx)
        return GeneSampleMatrix(
            values=self.values[:, idx],
            gene_names=self.gene_names,
            sample_ids=tuple(self.sample_ids[i] for i in idx),
        )

    def gene_index(self, name: str) -> int:
        try:
            return self.gene_names.index(name)
        except ValueError:
            raise KeyError(f"unknown gene {name!r}") from None

    def mutation_frequency(self) -> np.ndarray:
        """Per-gene fraction of mutated samples."""
        if self.n_samples == 0:
            return np.zeros(self.n_genes)
        return self.values.mean(axis=1)
