"""Cohort persistence: save/load synthetic cohorts as ``.npz`` archives.

Archiving a generated cohort (matrices + ground truth + the generating
config) makes runs reproducible across sessions without re-seeding the
generator, and gives examples a dataset-file workflow like the original
pipeline's summarized TCGA inputs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.matrices import GeneSampleMatrix
from repro.data.synthesis import CohortConfig, SyntheticCohort

__all__ = ["save_cohort", "load_cohort"]

_FORMAT_VERSION = 1


def save_cohort(cohort: SyntheticCohort, path: "str | Path") -> None:
    """Write a cohort (matrices, labels, ground truth, config) to ``.npz``."""
    cfg = cohort.config
    meta = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "n_genes": cfg.n_genes,
            "n_tumor": cfg.n_tumor,
            "n_normal": cfg.n_normal,
            "hits": cfg.hits,
            "n_driver_combos": cfg.n_driver_combos,
            "driver_penetrance": cfg.driver_penetrance,
            "sporadic_fraction": cfg.sporadic_fraction,
            "background_shape": list(cfg.background_shape),
            "background_scale": cfg.background_scale,
            "seed": cfg.seed,
        },
        "planted": [list(c) for c in cohort.planted],
    }
    np.savez_compressed(
        Path(path),
        tumor=np.packbits(cohort.tumor.values, axis=1),
        normal=np.packbits(cohort.normal.values, axis=1),
        tumor_shape=np.array(cohort.tumor.values.shape),
        normal_shape=np.array(cohort.normal.values.shape),
        gene_names=np.array(cohort.tumor.gene_names),
        tumor_samples=np.array(cohort.tumor.sample_ids),
        normal_samples=np.array(cohort.normal.sample_ids),
        assignment=cohort.assignment,
        background_rates=cohort.background_rates,
        meta=np.array(json.dumps(meta)),
    )


def _unpack(bits: np.ndarray, shape: np.ndarray) -> np.ndarray:
    g, s = int(shape[0]), int(shape[1])
    return np.unpackbits(bits, axis=1)[:, :s].astype(bool).reshape(g, s)


def load_cohort(path: "str | Path") -> SyntheticCohort:
    """Inverse of :func:`save_cohort`."""
    with np.load(Path(path), allow_pickle=False) as z:
        meta = json.loads(str(z["meta"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported cohort format {meta.get('format_version')!r}"
            )
        cfg_raw = dict(meta["config"])
        cfg_raw["background_shape"] = tuple(cfg_raw["background_shape"])
        config = CohortConfig(**cfg_raw)
        gene_names = tuple(str(x) for x in z["gene_names"])
        tumor = GeneSampleMatrix(
            _unpack(z["tumor"], z["tumor_shape"]),
            gene_names,
            tuple(str(x) for x in z["tumor_samples"]),
        )
        normal = GeneSampleMatrix(
            _unpack(z["normal"], z["normal_shape"]),
            gene_names,
            tuple(str(x) for x in z["normal_samples"]),
        )
        return SyntheticCohort(
            config=config,
            tumor=tumor,
            normal=normal,
            planted=tuple(tuple(c) for c in meta["planted"]),
            assignment=z["assignment"],
            background_rates=z["background_rates"],
        )
