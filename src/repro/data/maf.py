"""Minimal mutation-annotation-format (MAF) handling.

The paper downloads TCGA MAF files (Mutect2 calls) and summarizes them to
binary gene-sample matrices.  This module implements that summarization
for a minimal record shape (gene, sample, protein position, variant
class), plus a TSV reader/writer so the pipeline can round-trip files.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.matrices import GeneSampleMatrix

__all__ = ["MafRecord", "read_maf", "write_maf", "summarize_maf"]

_HEADER = ["Hugo_Symbol", "Tumor_Sample_Barcode", "Protein_Position", "Variant_Classification"]

# Variant classes that do not alter the protein are excluded from the
# gene-sample summary, mirroring the use of protein-altering calls.
SILENT_CLASSES = frozenset({"Silent", "Intron", "3'UTR", "5'UTR", "IGR", "RNA"})


@dataclass(frozen=True)
class MafRecord:
    """One mutation call."""

    gene: str
    sample: str
    protein_position: int
    variant_class: str = "Missense_Mutation"

    @property
    def protein_altering(self) -> bool:
        return self.variant_class not in SILENT_CLASSES


def write_maf(records: list[MafRecord], path: "str | Path") -> None:
    """Write records as a tab-separated MAF-like file."""
    path = Path(path)
    lines = ["\t".join(_HEADER)]
    for r in records:
        lines.append(
            f"{r.gene}\t{r.sample}\t{r.protein_position}\t{r.variant_class}"
        )
    path.write_text("\n".join(lines) + "\n")


def read_maf(path: "str | Path") -> list[MafRecord]:
    """Read a file written by :func:`write_maf` (or any 4-column TSV)."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        return []
    out = []
    for line in lines[1:]:
        if not line.strip():
            continue
        gene, sample, pos, vclass = line.split("\t")
        out.append(MafRecord(gene, sample, int(pos), vclass))
    return out


def summarize_maf(
    records: list[MafRecord],
    genes: "list[str] | None" = None,
    samples: "list[str] | None" = None,
    protein_altering_only: bool = True,
) -> GeneSampleMatrix:
    """Summarize calls into a binary gene-sample matrix.

    Gene/sample universes default to those present in the records (sorted
    for determinism); pass them explicitly to align multiple cohorts.
    """
    used = [r for r in records if r.protein_altering or not protein_altering_only]
    if genes is None:
        genes = sorted({r.gene for r in used})
    if samples is None:
        samples = sorted({r.sample for r in used})
    gene_idx = {g: i for i, g in enumerate(genes)}
    sample_idx = {s: i for i, s in enumerate(samples)}
    values = np.zeros((len(genes), len(samples)), dtype=bool)
    for r in used:
        gi = gene_idx.get(r.gene)
        si = sample_idx.get(r.sample)
        if gi is not None and si is not None:
            values[gi, si] = True
    return GeneSampleMatrix(values, tuple(genes), tuple(samples))
