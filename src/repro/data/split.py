"""Deterministic 75/25 train/test splitting (Section III-G)."""

from __future__ import annotations

import numpy as np

from repro.data.matrices import GeneSampleMatrix

__all__ = ["train_test_split"]


def train_test_split(
    matrix: GeneSampleMatrix, train_fraction: float = 0.75, seed: int = 0
) -> tuple[GeneSampleMatrix, GeneSampleMatrix]:
    """Randomly split samples into (train, test) with a fixed seed.

    At least one sample lands on each side whenever there are two or
    more samples.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    n = matrix.n_samples
    if n < 2:
        raise ValueError("need at least two samples to split")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    n_train = min(max(int(round(n * train_fraction)), 1), n - 1)
    train_idx = np.sort(perm[:n_train])
    test_idx = np.sort(perm[n_train:])
    return matrix.select_samples(train_idx), matrix.select_samples(test_idx)
