"""Catalog of the 31 TCGA cancer types used by the paper.

Values the paper states are kept exact: BRCA has 911 tumor samples and
G = 19411 genes; LGG has 532 tumor and 329 normal samples; ACC is the
smallest dataset; ESCA is called out in the 2x2 scaling analysis.  All
other sample/gene counts are synthetic but sized like the public TCGA
cohorts.  Eleven types are flagged as requiring four or more hits
(following the estimate of Anandakrishnan et al. 2019 that 11 of 17
studied cancers need >= 4 hits); the flag assignment here is synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CancerType", "CANCER_CATALOG", "cancer", "four_hit_cancers"]


@dataclass(frozen=True)
class CancerType:
    """One TCGA cohort's shape."""

    abbrev: str
    name: str
    n_tumor: int
    n_normal: int
    n_genes: int
    estimated_hits: int

    @property
    def four_hit(self) -> bool:
        return self.estimated_hits >= 4


_CATALOG = [
    # abbrev, full name, tumor, normal, genes, estimated hits
    CancerType("ACC", "Adrenocortical carcinoma", 77, 85, 8400, 4),
    CancerType("BLCA", "Bladder urothelial carcinoma", 407, 388, 16800, 4),
    CancerType("BRCA", "Breast invasive carcinoma", 911, 1019, 19411, 3),
    CancerType("CESC", "Cervical squamous cell carcinoma", 289, 312, 15900, 3),
    CancerType("CHOL", "Cholangiocarcinoma", 51, 64, 7900, 3),
    CancerType("COAD", "Colon adenocarcinoma", 399, 421, 17900, 4),
    CancerType("DLBC", "Diffuse large B-cell lymphoma", 37, 52, 6900, 2),
    CancerType("ESCA", "Esophageal carcinoma", 184, 201, 14300, 4),
    CancerType("GBM", "Glioblastoma multiforme", 390, 414, 16200, 3),
    CancerType("HNSC", "Head and neck squamous cell carcinoma", 508, 489, 17400, 4),
    CancerType("KICH", "Kidney chromophobe", 66, 71, 7600, 2),
    CancerType("KIRC", "Kidney renal clear cell carcinoma", 368, 392, 15700, 3),
    CancerType("KIRP", "Kidney renal papillary cell carcinoma", 282, 271, 14600, 3),
    CancerType("LAML", "Acute myeloid leukemia", 140, 162, 9800, 2),
    CancerType("LGG", "Brain lower grade glioma", 532, 329, 17900, 3),
    CancerType("LIHC", "Liver hepatocellular carcinoma", 364, 377, 15800, 4),
    CancerType("LUAD", "Lung adenocarcinoma", 566, 548, 18200, 4),
    CancerType("LUSC", "Lung squamous cell carcinoma", 484, 471, 18000, 4),
    CancerType("MESO", "Mesothelioma", 82, 90, 8200, 3),
    CancerType("OV", "Ovarian serous cystadenocarcinoma", 436, 452, 16100, 3),
    CancerType("PAAD", "Pancreatic adenocarcinoma", 177, 189, 13200, 4),
    CancerType("PCPG", "Pheochromocytoma and paraganglioma", 179, 183, 10900, 2),
    CancerType("PRAD", "Prostate adenocarcinoma", 495, 511, 16400, 3),
    CancerType("READ", "Rectum adenocarcinoma", 137, 149, 12500, 3),
    CancerType("SARC", "Sarcoma", 237, 255, 14100, 3),
    CancerType("SKCM", "Skin cutaneous melanoma", 467, 446, 18100, 4),
    CancerType("STAD", "Stomach adenocarcinoma", 437, 429, 17200, 4),
    CancerType("TGCT", "Testicular germ cell tumors", 144, 151, 10400, 2),
    CancerType("THCA", "Thyroid carcinoma", 492, 507, 15500, 2),
    CancerType("UCEC", "Uterine corpus endometrial carcinoma", 530, 506, 18300, 3),
    CancerType("UVM", "Uveal melanoma", 80, 88, 7700, 2),
]

CANCER_CATALOG: dict[str, CancerType] = {c.abbrev: c for c in _CATALOG}
assert len(CANCER_CATALOG) == 31


def cancer(abbrev: str) -> CancerType:
    """Look up a cancer type by TCGA abbreviation."""
    try:
        return CANCER_CATALOG[abbrev.upper()]
    except KeyError:
        raise KeyError(
            f"unknown cancer type {abbrev!r}; known: {sorted(CANCER_CATALOG)}"
        ) from None


def four_hit_cancers() -> list[CancerType]:
    """The 11 types estimated to require four or more hits."""
    out = [c for c in _CATALOG if c.four_hit]
    assert len(out) == 11
    return out
