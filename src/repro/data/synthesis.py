"""Planted-combination cohort synthesis.

The generative model mirrors the paper's biological framing: every tumor
is caused by one of a small number of *driver combinations* (h genes that
are jointly mutated), except for a sporadic fraction with no planted
cause; all samples additionally carry *passenger* mutations at per-gene
background rates drawn from a long-tailed distribution (most genes are
rarely mutated; a few — the MUC6-like genes — are mutated in a large
fraction of both tumor and normal samples).

Because the drivers are planted, downstream experiments have ground
truth: the solver should recover the planted combinations, and the Fig. 9
classifier's sensitivity is bounded by penetrance and the sporadic
fraction while its specificity is eroded by the passenger-heavy
combinations the greedy cover is forced to add for straggler samples —
the same driver-vs-passenger tension the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.cancers import CancerType
from repro.data.matrices import GeneSampleMatrix

__all__ = ["CohortConfig", "SyntheticCohort", "generate_cohort"]


@dataclass(frozen=True)
class CohortConfig:
    """Generative parameters for one synthetic cohort."""

    n_genes: int
    n_tumor: int
    n_normal: int
    hits: int = 4
    n_driver_combos: int = 4
    driver_penetrance: float = 0.97
    sporadic_fraction: float = 0.12
    background_shape: tuple[float, float] = (1.0, 4.0)
    background_scale: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_genes < self.hits * self.n_driver_combos:
            raise ValueError(
                "not enough genes for disjoint driver combinations: "
                f"{self.n_genes} < {self.hits * self.n_driver_combos}"
            )
        if not 0.0 <= self.driver_penetrance <= 1.0:
            raise ValueError("penetrance must be in [0, 1]")
        if not 0.0 <= self.sporadic_fraction < 1.0:
            raise ValueError("sporadic fraction must be in [0, 1)")


@dataclass(frozen=True)
class SyntheticCohort:
    """A generated cohort with its ground truth."""

    config: CohortConfig
    tumor: GeneSampleMatrix
    normal: GeneSampleMatrix
    planted: tuple[tuple[int, ...], ...]
    assignment: np.ndarray  # per tumor sample: planted-combo index, -1 sporadic
    background_rates: np.ndarray

    @property
    def planted_names(self) -> list[tuple[str, ...]]:
        return [
            tuple(self.tumor.gene_names[g] for g in combo) for combo in self.planted
        ]


def _gene_names(n: int) -> tuple[str, ...]:
    return tuple(f"G{idx:05d}" for idx in range(n))


def generate_cohort(
    config: "CohortConfig | None" = None,
    cancer: "CancerType | None" = None,
    **overrides,
) -> SyntheticCohort:
    """Generate a cohort from a config, or from a catalog entry + overrides.

    When built from a :class:`CancerType`, overrides (most usefully
    ``n_genes``, to scale the instance down to laptop size) are applied
    on top of the catalog's sample counts and estimated hit number.
    """
    if config is None:
        if cancer is None:
            raise ValueError("pass a CohortConfig or a CancerType")
        base = dict(
            n_genes=cancer.n_genes,
            n_tumor=cancer.n_tumor,
            n_normal=cancer.n_normal,
            hits=max(cancer.estimated_hits, 2),
        )
        base.update(overrides)
        config = CohortConfig(**base)
    elif overrides:
        raise ValueError("overrides only apply when building from a CancerType")

    rng = np.random.default_rng(config.seed)
    g, nt, nn = config.n_genes, config.n_tumor, config.n_normal

    a, b = config.background_shape
    bg = rng.beta(a, b, size=g) * config.background_scale

    tumor = rng.random((g, nt)) < bg[:, None]
    normal = rng.random((g, nn)) < bg[:, None]

    # Disjoint driver combinations drawn from the lower-background half of
    # the genome (drivers are rarely passenger-mutated).
    quiet = np.argsort(bg)[: max(g // 2, config.hits * config.n_driver_combos)]
    driver_genes = rng.choice(
        quiet, size=config.hits * config.n_driver_combos, replace=False
    )
    planted = tuple(
        tuple(sorted(int(x) for x in driver_genes[c * config.hits : (c + 1) * config.hits]))
        for c in range(config.n_driver_combos)
    )

    assignment = rng.integers(0, config.n_driver_combos, size=nt)
    assignment[rng.random(nt) < config.sporadic_fraction] = -1
    for s in range(nt):
        c = assignment[s]
        if c < 0:
            continue
        for gene in planted[c]:
            if rng.random() < config.driver_penetrance:
                tumor[gene, s] = True

    names = _gene_names(g)
    return SyntheticCohort(
        config=config,
        tumor=GeneSampleMatrix(
            tumor, names, tuple(f"T{idx:04d}" for idx in range(nt))
        ),
        normal=GeneSampleMatrix(
            normal, names, tuple(f"N{idx:04d}" for idx in range(nn))
        ),
        planted=planted,
        assignment=assignment,
        background_rates=bg,
    )
