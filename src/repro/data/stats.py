"""Cohort statistics: mutation frequencies, co-occurrence, exclusivity.

Multi-hit theory expects the genes of a causal combination to be
*co-mutated* in tumors (they jointly drive the same samples) while genes
from different combinations look mutually exclusive across the cohort.
These helpers quantify that structure — a quick sanity pass on any input
matrix before an expensive multi-hit run, and a check that synthetic
cohorts have realistic texture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.matrices import GeneSampleMatrix

__all__ = [
    "CohortSummary",
    "summarize_matrix",
    "cooccurrence_matrix",
    "pairwise_log_odds",
]


@dataclass(frozen=True)
class CohortSummary:
    """Headline statistics of one gene-sample matrix."""

    n_genes: int
    n_samples: int
    mutation_rate: float  # overall fraction of 1s
    mutations_per_sample_mean: float
    mutations_per_sample_max: int
    silent_genes: int  # genes with no mutations at all

    def describe(self) -> str:
        return (
            f"{self.n_genes} genes x {self.n_samples} samples; "
            f"density {self.mutation_rate:.3f}; "
            f"{self.mutations_per_sample_mean:.1f} mutations/sample (max "
            f"{self.mutations_per_sample_max}); {self.silent_genes} silent genes"
        )


def summarize_matrix(matrix: "GeneSampleMatrix | np.ndarray") -> CohortSummary:
    """Compute the headline statistics."""
    dense = matrix.values if isinstance(matrix, GeneSampleMatrix) else np.asarray(matrix, dtype=bool)
    per_sample = dense.sum(axis=0)
    return CohortSummary(
        n_genes=dense.shape[0],
        n_samples=dense.shape[1],
        mutation_rate=float(dense.mean()) if dense.size else 0.0,
        mutations_per_sample_mean=float(per_sample.mean()) if dense.size else 0.0,
        mutations_per_sample_max=int(per_sample.max()) if dense.size else 0,
        silent_genes=int((dense.sum(axis=1) == 0).sum()),
    )


def cooccurrence_matrix(matrix: "GeneSampleMatrix | np.ndarray") -> np.ndarray:
    """Gene x gene co-mutation counts (samples mutated in both)."""
    dense = matrix.values if isinstance(matrix, GeneSampleMatrix) else np.asarray(matrix, dtype=bool)
    d = dense.astype(np.int64)
    return d @ d.T


def pairwise_log_odds(
    matrix: "GeneSampleMatrix | np.ndarray", pseudocount: float = 0.5
) -> np.ndarray:
    """Log odds-ratio of co-mutation for every gene pair.

    Positive = the pair co-occurs more than independence predicts (the
    same-combination signature); negative = mutual exclusivity (the
    different-pathway signature).  A symmetric matrix with zero diagonal;
    ``pseudocount`` (Haldane-Anscombe) keeps empty cells finite.
    """
    dense = matrix.values if isinstance(matrix, GeneSampleMatrix) else np.asarray(matrix, dtype=bool)
    g, s = dense.shape
    d = dense.astype(np.float64)
    both = d @ d.T  # a: mutated in both
    row = d.sum(axis=1)
    only_i = row[:, None] - both  # b: i only
    only_j = row[None, :] - both  # c: j only
    neither = s - both - only_i - only_j  # d
    a, b, c, dd = (x + pseudocount for x in (both, only_i, only_j, neither))
    out = np.log(a * dd) - np.log(b * c)
    np.fill_diagonal(out, 0.0)
    return out
