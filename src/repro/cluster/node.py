"""Summit node description (Fig. 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SummitNodeSpec", "SUMMIT_NODE"]


@dataclass(frozen=True)
class SummitNodeSpec:
    """Hardware shape of one Summit node, as abstracted by the paper.

    The paper treats each node as "one CPU core that uses six V100 GPU
    devices" — one MPI process per node driving all six GPUs.
    """

    n_cpus: int = 2
    n_gpus: int = 6
    cpu_memory_bytes: int = 512 * 1024**3
    gpu_memory_bytes: int = 16 * 1024**3
    mpi_processes: int = 1

    @property
    def total_gpu_memory_bytes(self) -> int:
        return self.n_gpus * self.gpu_memory_bytes


SUMMIT_NODE = SummitNodeSpec()
