"""The MPI rank program: the paper's per-node code path under SimComm.

Each rank searches its six GPU partitions (kernel + on-rank reduction),
then participates in a deterministic reduce of the single 20-byte
candidate to rank 0, which broadcasts the winner back — exactly the
communication structure of Section III-E.  Runs under the thread-backed
:class:`SimComm`; swapping in mpi4py's communicator would port it to a
real cluster unchanged.

Fault tolerance (:func:`spmd_best_combo`): a failed run surfaces as
:class:`RankFailedError` naming the dead ranks; the driver re-cuts each
dead rank's λ-range equi-area across the survivors and relaunches the
SPMD world on the survivors only, each now searching its original
partitions **plus** its share of the dead ranks' ranges.  Because every
candidate flows through the same total-order reduction, the recovered
winner is bit-identical to the failure-free one.  A
:class:`repro.faults.FaultPlan` injects rank crashes / hangs /
stragglers and recv drops/delays deterministically.
"""

from __future__ import annotations

import time

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.comm import SimComm
from repro.cluster.runtime import RankFailedError, SPMDRunner
from repro.core.combination import MultiHitCombination, better
from repro.core.distributed import rank_best_combo
from repro.core.engine import best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.faults.plan import FaultInjected, FaultPlan
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultReport
from repro.faults.reschedule import rank_partitions, reschedule_ranges
from repro.scheduling.schedule import Schedule
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import get_telemetry

__all__ = ["rank_program", "spmd_best_combo"]

# Tag reserved for the telemetry gather so it can never collide with the
# reduce/bcast tags of the winner protocol (0 and 1).
_TELEMETRY_TAG = 7771


def _merge_rank_telemetry(comm: SimComm, registry: MetricsRegistry) -> None:
    """Gather every rank's metrics registry to rank 0 and merge there.

    Runs only when telemetry is enabled; all ranks reach it (the enabled
    flag is process-global, so the collective cannot half-fire).  Rank 0
    folds the per-rank registries into the session registry in rank
    order — deterministic, like every other collective here.
    """
    telemetry = get_telemetry()
    states = comm.gather(registry.to_dict(), root=0, tag=_TELEMETRY_TAG)
    if states is not None:
        for state in states:
            telemetry.metrics.merge_dict(state)


def rank_program(
    comm: SimComm,
    schedule: Schedule,
    gpus_per_rank: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
) -> "MultiHitCombination | None":
    """One MPI rank's greedy-iteration body; every rank returns the winner."""
    telemetry = get_telemetry()
    rank = comm.Get_rank()
    rank_counters = KernelCounters() if telemetry.enabled else None
    with telemetry.span("rank.search", cat="spmd", rank=rank):
        local = rank_best_combo(
            schedule, rank, gpus_per_rank, tumor, normal, params,
            counters=rank_counters,
        )
    winner = comm.reduce(local, op=better, root=0)
    winner = comm.bcast(winner, root=0)
    if telemetry.enabled:
        registry = MetricsRegistry()
        registry.inc("spmd.rank_searches")
        registry.absorb_kernel_counters(rank_counters, prefix="kernel")
        _merge_rank_telemetry(comm, registry)
    return winner


def _ft_rank_program(
    comm: SimComm,
    schedule: Schedule,
    gpus_per_rank: int,
    live_ranks: "list[int]",
    extra: "dict[int, list[tuple[int, int]]]",
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    fault_plan: "FaultPlan | None",
    call: int,
) -> "MultiHitCombination | None":
    """Recovery-aware rank body: original partitions + rescheduled shares.

    ``live_ranks[comm.Get_rank()]`` is the rank's identity in the
    *original* schedule; ``extra[orig]`` holds λ-ranges inherited from
    dead ranks.  Identical to :func:`rank_program` when nothing has
    failed (all ranks live, no extra ranges).
    """
    telemetry = get_telemetry()
    orig = live_ranks[comm.Get_rank()]
    if fault_plan is not None:
        spec = fault_plan.take("rank", orig, call)
        if spec is not None:
            if spec.kind == "crash":
                raise FaultInjected(f"injected crash on rank {orig}")
            if spec.kind in ("hang", "straggler"):
                # A hang trips the heartbeat/recv deadline; a straggler
                # merely finishes late.
                time.sleep(spec.delay_s)
    rank_counters = KernelCounters() if telemetry.enabled else None
    extra_ranges = extra.get(orig, ())
    with telemetry.span("rank.search", cat="spmd", rank=orig, call=call):
        local = rank_best_combo(
            schedule, orig, gpus_per_rank, tumor, normal, params,
            counters=rank_counters,
        )
        for lo, hi in extra_ranges:
            local = better(
                local,
                best_in_thread_range(
                    schedule.scheme, schedule.g, tumor, normal, params, lo, hi,
                    counters=rank_counters,
                ),
            )
    winner = comm.reduce(local, op=better, root=0)
    winner = comm.bcast(winner, root=0)
    if telemetry.enabled:
        registry = MetricsRegistry()
        registry.inc("spmd.rank_searches")
        registry.inc("spmd.extra_ranges", len(extra_ranges))
        registry.absorb_kernel_counters(rank_counters, prefix="kernel")
        _merge_rank_telemetry(comm, registry)
    return winner


def _check_agreement(results: "list") -> "MultiHitCombination | None":
    first = results[0]
    for r in results[1:]:
        if (r is None) != (first is None) or (
            r is not None and (r.genes != first.genes or r.f != first.f)
        ):
            raise AssertionError(f"ranks disagree on the winner: {first} vs {r}")
    return first


def spmd_best_combo(
    n_ranks: int,
    schedule: Schedule,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    gpus_per_rank: int = 6,
    fault_plan: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    report: "FaultReport | None" = None,
    recv_timeout_s: float = 60.0,
    heartbeat_timeout_s: "float | None" = None,
    call: int = 0,
) -> "MultiHitCombination | None":
    """Run one distributed arg-max as a real SPMD program on ``n_ranks``.

    All ranks must agree on the winner (asserted); returns it.

    If ranks fail, the run is restarted on the survivors with the dead
    ranks' λ-ranges re-cut equi-area among them; up to
    ``1 + retry_policy.resubmits`` recovery restarts are attempted
    (with the policy's backoff) before the last failure propagates.
    ``heartbeat_timeout_s`` should be set below ``recv_timeout_s`` so a
    hung rank is named by the detector before its peers time out.
    """
    policy = retry_policy or RetryPolicy()
    live = list(range(n_ranks))
    extra: "dict[int, list[tuple[int, int]]]" = {r: [] for r in live}
    restarts = 0
    while True:
        runner = SPMDRunner(
            len(live),
            recv_timeout_s=recv_timeout_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            fault_plan=fault_plan,
        )
        try:
            results = runner.run(
                _ft_rank_program,
                schedule,
                gpus_per_rank,
                live,
                extra,
                tumor,
                normal,
                params,
                fault_plan,
                call,
            )
            return _check_agreement(results)
        except RankFailedError as err:
            dead_local = set(err.failed_ranks)
            dead = sorted(live[i] for i in dead_local)
            survivors = [r for i, r in enumerate(live) if i not in dead_local]
            if report is not None:
                for i, exc in err.failures:
                    report.record(
                        "hang" if isinstance(exc, TimeoutError) else "crash",
                        "rank",
                        live[i],
                        call,
                        "detected",
                        attempt=restarts + 1,
                        detail=f"{type(exc).__name__}: {exc}",
                    )
            if not survivors or restarts >= 1 + policy.resubmits:
                raise
            restarts += 1
            policy.sleep_before(restarts)
            # Dead ranks' partitions, re-cut equi-area across survivors.
            dead_parts = [
                p for r in dead for p in rank_partitions(schedule, r, gpus_per_rank)
            ]
            shares = reschedule_ranges(schedule, dead_parts, len(survivors))
            new_extra = {r: list(extra[r]) for r in survivors}
            for j, survivor in enumerate(survivors):
                for part, lo, hi in shares[j]:
                    new_extra[survivor].append((lo, hi))
                    if report is not None:
                        report.record_reschedule(
                            dead_rank=part // gpus_per_rank,
                            survivor=survivor,
                            lam_start=lo,
                            lam_end=hi,
                            call=call,
                        )
            # Extra ranges a dead rank had already inherited move too.
            orphaned = [rng for r in dead for rng in extra.get(r, ())]
            for k, (lo, hi) in enumerate(orphaned):
                survivor = survivors[k % len(survivors)]
                new_extra[survivor].append((lo, hi))
                if report is not None:
                    report.record_reschedule(
                        dead_rank=dead[0], survivor=survivor,
                        lam_start=lo, lam_end=hi, call=call,
                    )
            if report is not None:
                report.record(
                    "crash", "rank", dead[0], call, "restarted",
                    attempt=restarts,
                    detail=f"world restarted on {len(survivors)} survivors",
                )
            telemetry = get_telemetry()
            if telemetry.flight is not None:
                # Post-reschedule black box: the assignments section now
                # names each survivor's inherited λ-ranges, so the dump
                # answers "who picked up the dead ranks' work".
                telemetry.flight.set_assignments(
                    "spmd",
                    [
                        {
                            "survivor": r,
                            "extra_ranges": [
                                {"lam_start": lo, "lam_end": hi}
                                for lo, hi in new_extra[r]
                            ],
                            "call": call,
                        }
                        for r in survivors
                    ],
                )
                telemetry.flight.dump(
                    "rank-restart", exc=err, telemetry=telemetry,
                    fault_report=report,
                )
            live = survivors
            extra = new_extra
