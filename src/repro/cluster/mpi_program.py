"""The MPI rank program: the paper's per-node code path under SimComm.

Each rank searches its six GPU partitions (kernel + on-rank reduction),
then participates in a deterministic reduce of the single 20-byte
candidate to rank 0, which broadcasts the winner back — exactly the
communication structure of Section III-E.  Runs under the thread-backed
:class:`SimComm`; swapping in mpi4py's communicator would port it to a
real cluster unchanged.
"""

from __future__ import annotations

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.comm import SimComm
from repro.cluster.runtime import SPMDRunner
from repro.core.combination import MultiHitCombination, better
from repro.core.distributed import rank_best_combo
from repro.core.fscore import FScoreParams
from repro.scheduling.schedule import Schedule

__all__ = ["rank_program", "spmd_best_combo"]


def rank_program(
    comm: SimComm,
    schedule: Schedule,
    gpus_per_rank: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
) -> "MultiHitCombination | None":
    """One MPI rank's greedy-iteration body; every rank returns the winner."""
    local = rank_best_combo(
        schedule, comm.Get_rank(), gpus_per_rank, tumor, normal, params
    )
    winner = comm.reduce(local, op=better, root=0)
    return comm.bcast(winner, root=0)


def spmd_best_combo(
    n_ranks: int,
    schedule: Schedule,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    gpus_per_rank: int = 6,
) -> "MultiHitCombination | None":
    """Run one distributed arg-max as a real SPMD program on ``n_ranks``.

    All ranks must agree on the winner (asserted); returns it.
    """
    results = SPMDRunner(n_ranks).run(
        rank_program, schedule, gpus_per_rank, tumor, normal, params
    )
    first = results[0]
    for r in results[1:]:
        if (r is None) != (first is None) or (
            r is not None and (r.genes != first.genes or r.f != first.f)
        ):
            raise AssertionError(f"ranks disagree on the winner: {first} vs {r}")
    return first
