"""Inter-node network cost model.

Summit's fat-tree EDR InfiniBand gives ~1 microsecond MPI latency and
~12.5 GB/s per-direction node bandwidth (dual-rail aggregate 25 GB/s).
The solver's communication is tiny — one 20-byte candidate per rank per
greedy iteration plus a broadcast of the covered-sample mask — so
latency, not bandwidth, dominates; the tree-reduce term is what shows up
as "communication time" in Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel", "SUMMIT_NETWORK"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta (latency/bandwidth) communication cost model."""

    latency_s: float = 1.5e-6
    bandwidth_bps: float = 12.5e9  # bytes/second per direction
    per_rank_software_overhead_s: float = 2.0e-6

    def p2p_time(self, n_bytes: int) -> float:
        """One point-to-point message."""
        return self.latency_s + n_bytes / self.bandwidth_bps

    def tree_reduce_time(self, n_ranks: int, n_bytes: int) -> float:
        """Binomial-tree reduce of ``n_bytes`` payloads to the root."""
        if n_ranks <= 1:
            return 0.0
        depth = math.ceil(math.log2(n_ranks))
        return depth * (self.p2p_time(n_bytes) + self.per_rank_software_overhead_s)

    def bcast_time(self, n_ranks: int, n_bytes: int) -> float:
        """Binomial-tree broadcast (same shape as the reduce)."""
        return self.tree_reduce_time(n_ranks, n_bytes)

    def allreduce_time(self, n_ranks: int, n_bytes: int) -> float:
        return self.tree_reduce_time(n_ranks, n_bytes) + self.bcast_time(
            n_ranks, n_bytes
        )


SUMMIT_NETWORK = NetworkModel()
