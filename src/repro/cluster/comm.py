"""Thread-backed MPI-like communicator.

Implements the subset of MPI semantics the distributed solver uses —
point-to-point send/recv with tags plus the deterministic collectives
(bcast, gather, scatter, reduce, allreduce, barrier).  Collectives are
built on point-to-point in strict rank order, so reduction results are
bitwise deterministic regardless of thread scheduling.

This is the functional stand-in for mpi4py on a machine with no MPI; the
API mirrors mpi4py's lowercase (pickle-object) methods so the rank
functions would port to real MPI by swapping the communicator object.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable

from repro.telemetry.session import get_telemetry
from repro.telemetry.spans import NOOP_SPAN

__all__ = ["CommAbortedError", "SimCommWorld", "SimComm"]

_DEFAULT_TAG = 0


class CommAbortedError(RuntimeError):
    """A peer rank failed and the world was aborted; recv fails fast."""


class SimCommWorld:
    """Shared mailbox fabric for ``n_ranks`` simulated processes.

    ``recv_timeout_s`` bounds every blocking receive so a rank orphaned
    by a peer's failure surfaces an error instead of deadlocking — and
    every receive polls the world's **abort event** (``abort_poll_s``
    granularity), so when a peer dies the survivors raise
    :class:`CommAbortedError` within milliseconds instead of burning
    the full timeout.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) injects
    ``recv_drop`` / ``recv_delay`` faults at the ``"comm"`` site,
    matched against the receiving rank.  Heartbeats (updated by every
    send/recv) let a runner detect a rank that has gone silent.
    """

    def __init__(
        self,
        n_ranks: int,
        recv_timeout_s: float = 60.0,
        fault_plan: "object | None" = None,
        abort_poll_s: float = 0.02,
    ):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.recv_timeout_s = recv_timeout_s
        self.fault_plan = fault_plan
        self.abort_poll_s = abort_poll_s
        self._boxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._lock = threading.Lock()
        self._barrier = threading.Barrier(n_ranks)
        self._abort = threading.Event()
        self._abort_reason: "str | None" = None
        self.heartbeats: list[float] = [time.monotonic()] * n_ranks
        self.bytes_sent = 0

    def _box(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        with self._lock:
            box = self._boxes.get(key)
            if box is None:
                box = self._boxes[key] = queue.Queue()
            return box

    def comm(self, rank: int) -> "SimComm":
        return SimComm(self, rank)

    # -- failure propagation -------------------------------------------

    def abort(self, reason: str) -> None:
        """Fail every blocked rank fast: set the event, break the barrier."""
        self._abort_reason = reason
        self._abort.set()
        self._barrier.abort()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    @property
    def abort_reason(self) -> "str | None":
        return self._abort_reason


class SimComm:
    """Per-rank communicator handle."""

    def __init__(self, world: SimCommWorld, rank: int):
        if not 0 <= rank < world.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        self.world = world
        self.rank = rank

    # -- mpi4py-style introspection ------------------------------------

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world.n_ranks

    @property
    def size(self) -> int:
        return self.world.n_ranks

    # -- point to point --------------------------------------------------

    def heartbeat(self) -> None:
        """Record liveness (every send/recv beats; runners may poll it)."""
        self.world.heartbeats[self.rank] = time.monotonic()

    def send(self, obj: Any, dest: int, tag: int = _DEFAULT_TAG) -> None:
        if not 0 <= dest < self.world.n_ranks:
            raise ValueError(f"dest {dest} out of range")
        self.heartbeat()
        telemetry = get_telemetry()
        with telemetry.span(
            "comm.send", cat="comm", rank=self.rank, dest=dest, tag=tag
        ) as span:
            # Envelope the payload with the sender's span context so the
            # matching recv can record a causal "message" edge.  The
            # context is None when telemetry is off; the envelope shape
            # is identical either way so delivery stays deterministic.
            ctx = telemetry.context() if span is not NOOP_SPAN else None
            self.world._box(self.rank, dest, tag).put((obj, ctx))
        telemetry.count("comm.sends")

    def recv(self, source: int, tag: int = _DEFAULT_TAG, timeout: "float | None" = None) -> Any:
        """Blocking receive; abort-aware and deadline-bounded.

        Polls in ``abort_poll_s`` slices so a world abort (a dead peer)
        raises :class:`CommAbortedError` immediately rather than after
        ``recv_timeout_s``; an undelivered message past the timeout
        raises :class:`TimeoutError`.  Injected ``recv_drop`` faults
        discard one delivered message (a lost wire transfer);
        ``recv_delay`` sleeps before delivering.
        """
        world = self.world
        if timeout is None:
            timeout = world.recv_timeout_s
        self.heartbeat()
        telemetry = get_telemetry()
        box = world._box(source, self.rank, tag)
        deadline = time.monotonic() + timeout
        # The span covers the whole blocking wait (including abort/
        # timeout exits), so recv spans show where ranks sat idle.
        with telemetry.span(
            "comm.recv", cat="comm", rank=self.rank, source=source, tag=tag
        ) as span:
            while True:
                if world.aborted:
                    raise CommAbortedError(world.abort_reason or "world aborted")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"rank {self.rank}: recv from rank {source} "
                        f"(tag {tag}) timed out after {timeout}s"
                    )
                try:
                    obj, ctx = box.get(timeout=min(world.abort_poll_s, remaining))
                except queue.Empty:
                    continue
                self.heartbeat()
                if world.fault_plan is not None:
                    spec = world.fault_plan.take("comm", self.rank)
                    if spec is not None and spec.kind == "recv_drop":
                        telemetry.count("comm.recv_drops")
                        continue  # the transfer was lost on the wire
                    if spec is not None and spec.kind == "recv_delay":
                        time.sleep(spec.delay_s)
                # Causal edge: this receive was unblocked by that send.
                span.link(ctx, kind="message")
                telemetry.count("comm.recvs")
                return obj

    # -- collectives ------------------------------------------------------

    def barrier(self) -> None:
        self.world._barrier.wait()

    def bcast(self, obj: Any, root: int = 0, tag: int = _DEFAULT_TAG) -> Any:
        if self.rank == root:
            for dst in range(self.world.n_ranks):
                if dst != root:
                    self.send(obj, dst, tag)
            return obj
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0, tag: int = _DEFAULT_TAG) -> "list[Any] | None":
        if self.rank == root:
            out = []
            for src in range(self.world.n_ranks):
                out.append(obj if src == root else self.recv(src, tag))
            return out
        self.send(obj, root, tag)
        return None

    def scatter(self, objs: "list[Any] | None", root: int = 0, tag: int = _DEFAULT_TAG) -> Any:
        if self.rank == root:
            if objs is None or len(objs) != self.world.n_ranks:
                raise ValueError("root must pass one object per rank")
            for dst in range(self.world.n_ranks):
                if dst != root:
                    self.send(objs[dst], dst, tag)
            return objs[root]
        return self.recv(root, tag)

    def reduce(
        self,
        obj: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        tag: int = _DEFAULT_TAG,
    ) -> Any:
        """Deterministic reduce: root folds contributions in rank order."""
        values = self.gather(obj, root, tag)
        if self.rank != root:
            return None
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    def allreduce(
        self, obj: Any, op: Callable[[Any, Any], Any], tag: int = _DEFAULT_TAG
    ) -> Any:
        result = self.reduce(obj, op, root=0, tag=tag)
        return self.bcast(result, root=0, tag=tag + 1)
