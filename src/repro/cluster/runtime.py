"""SPMD runner: execute a rank function on N simulated ranks.

Each rank runs on its own thread with its own :class:`SimComm` handle, so
blocking MPI semantics (recv before matching send, barriers) behave as on
a real cluster.

Failure semantics mirror a job launcher with a failure detector:

* the first rank that raises **aborts the world** — the barrier is
  broken and every rank blocked in ``recv`` fails fast with
  :class:`CommAbortedError` (no 60 s timeout drain);
* an optional **heartbeat deadline** (``heartbeat_timeout_s``) declares
  a silent rank hung — every communicator operation beats, so a rank
  stuck in a non-returning call is detected without its cooperation;
* the caller receives :class:`RankFailedError` carrying *which* ranks
  failed (primary failures, not the cascade of aborted peers), which is
  what survivor rescheduling needs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.comm import CommAbortedError, SimComm, SimCommWorld
from repro.telemetry.session import get_telemetry, set_thread_telemetry

__all__ = ["RankFailedError", "SPMDRunner"]


class RankFailedError(RuntimeError):
    """One or more ranks failed; carries the primary failures.

    ``failures`` holds ``(rank, exception)`` for ranks that *originated*
    a failure (crashed or were declared hung), excluding ranks that
    merely observed the abort.  The message preserves the historical
    ``"rank N failed: ..."`` form.
    """

    def __init__(self, failures: "list[tuple[int, BaseException]]"):
        self.failures = list(failures)
        self.failed_ranks = sorted({r for r, _ in self.failures})
        rank, exc = self.failures[0]
        super().__init__(f"rank {rank} failed: {exc!r}")


@dataclass
class SPMDRunner:
    """Runs ``fn(comm, *args, **kwargs)`` on every rank; returns all results.

    ``heartbeat_timeout_s`` (off by default) enables the deadline
    failure detector: a rank whose last communicator heartbeat is older
    than the deadline while its thread is still running is declared
    hung and the world is aborted.  ``abort_grace_s`` bounds how long
    the runner waits for surviving threads to unwind after an abort
    before abandoning them (rank threads are daemonic).
    """

    n_ranks: int
    recv_timeout_s: float = 60.0
    heartbeat_timeout_s: "float | None" = None
    fault_plan: "object | None" = None
    poll_s: float = 0.02
    abort_grace_s: float = 5.0

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        world = SimCommWorld(
            self.n_ranks,
            recv_timeout_s=self.recv_timeout_s,
            fault_plan=self.fault_plan,
        )
        results: list[Any] = [None] * self.n_ranks
        failures: list[tuple[int, BaseException]] = []
        aborted_peers: list[tuple[int, BaseException]] = []
        lock = threading.Lock()

        telemetry = get_telemetry()
        # Re-key the liveness gauges for this world's membership: a
        # restart on survivors shrinks (and renumbers) the world, and a
        # departed rank's stale gauge must not outlive it on /metrics.
        telemetry.clear_gauges("spmd.heartbeat_stale_s.")

        def worker(rank: int) -> None:
            # Rank threads inherit the spawner's session (which may be a
            # thread-scoped per-job session under the gateway): rank-side
            # get_telemetry() calls must land on the same timeline.
            set_thread_telemetry(telemetry)
            comm = SimComm(world, rank)
            comm.heartbeat()
            try:
                # Top-level per-rank span: every comm/search span the
                # rank opens nests under it (and inherits its rank tag).
                # A rank abandoned mid-abort never closes its span, so
                # only completed rank lifetimes are recorded.
                with telemetry.span("spmd.rank", cat="spmd", rank=rank):
                    results[rank] = fn(comm, *args, **kwargs)
            except CommAbortedError as exc:
                # Collateral of someone else's failure, not a root cause.
                with lock:
                    aborted_peers.append((rank, exc))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    failures.append((rank, exc))
                world.abort(f"rank {rank} died: {exc!r}")

        threads = [
            threading.Thread(
                target=worker, args=(r,), name=f"simrank-{r}", daemon=True
            )
            for r in range(self.n_ranks)
        ]
        with telemetry.span("spmd.world", cat="spmd", n_ranks=self.n_ranks):
            for t in threads:
                t.start()
            self._supervise(world, threads, failures, lock)

        primary = failures or aborted_peers
        if primary:
            err = RankFailedError(primary)
            # Dump the black box before the exception leaves the runner:
            # the failed ranks' final spans are already on the ring (a
            # span is recorded on __exit__ even when its body raised).
            if telemetry.flight is not None:
                telemetry.flight.dump(
                    "rank-failed", exc=err, telemetry=telemetry
                )
            raise err from primary[0][1]
        return results

    def _supervise(self, world, threads, failures, lock) -> None:
        """Poll threads until completion, abort, or heartbeat deadline."""
        telemetry = get_telemetry()
        while any(t.is_alive() for t in threads):
            if world.aborted:
                # Give survivors a bounded window to observe the abort
                # and unwind, then abandon any thread still stuck (it is
                # daemonic and its world is being discarded).
                t_end = time.monotonic() + self.abort_grace_s
                while time.monotonic() < t_end and any(
                    t.is_alive() for t in threads
                ):
                    time.sleep(self.poll_s)
                break
            if self.heartbeat_timeout_s is not None:
                now = time.monotonic()
                if telemetry.enabled:
                    # Liveness gauges at the detector's own poll cadence:
                    # the progress monitor reads the max to flag a world
                    # whose ranks have gone quiet before the deadline
                    # actually trips.
                    stalest = 0.0
                    for r, t in enumerate(threads):
                        if not t.is_alive():
                            continue
                        stale = now - world.heartbeats[r]
                        stalest = max(stalest, stale)
                        telemetry.set_gauge(
                            f"spmd.heartbeat_stale_s.rank{r}", stale
                        )
                    telemetry.set_gauge("spmd.heartbeat_stale_s.max", stalest)
                for r, t in enumerate(threads):
                    if (
                        t.is_alive()
                        and now - world.heartbeats[r] > self.heartbeat_timeout_s
                    ):
                        exc = TimeoutError(
                            f"rank {r} heartbeat stale for more than "
                            f"{self.heartbeat_timeout_s}s (hung)"
                        )
                        with lock:
                            failures.append((r, exc))
                        world.abort(f"rank {r} hung: {exc}")
                        break
            time.sleep(self.poll_s)
