"""SPMD runner: execute a rank function on N simulated ranks.

Each rank runs on its own thread with its own :class:`SimComm` handle, so
blocking MPI semantics (recv before matching send, barriers) behave as on
a real cluster.  Exceptions on any rank abort the run and re-raise in the
caller with the failing rank attached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.cluster.comm import SimComm, SimCommWorld

__all__ = ["SPMDRunner"]


@dataclass
class SPMDRunner:
    """Runs ``fn(comm, *args, **kwargs)`` on every rank; returns all results."""

    n_ranks: int
    recv_timeout_s: float = 60.0

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> list[Any]:
        world = SimCommWorld(self.n_ranks, recv_timeout_s=self.recv_timeout_s)
        results: list[Any] = [None] * self.n_ranks
        errors: list[tuple[int, BaseException]] = []
        lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = SimComm(world, rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with lock:
                    errors.append((rank, exc))
                # Release any ranks stuck in the barrier.
                world._barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simrank-{r}")
            for r in range(self.n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            rank, exc = errors[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results
