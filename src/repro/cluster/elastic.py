"""Elastic SPMD: dynamic rank churn over a lease-based work-stealing pool.

The static :class:`repro.cluster.runtime.SPMDRunner` launches a fixed
world and, on failure, aborts and restarts it on the survivors.  The
elastic runner never aborts: ranks are threads that *pull* λ-range
leases from a shared :class:`repro.cluster.leases.LeaseLedger`, renew
them implicitly through the :class:`SimComm` heartbeat channel, and can
join or leave mid-solve:

* a **joining** rank (``FaultSpec(kind="join", site="membership")`` or a
  direct :meth:`ElasticSPMDRunner.spawn` call) registers against the
  pre-sized world and immediately starts pulling leases;
* a **leaving** rank (``kind="leave"``) drains: it finishes the lease it
  holds, then retires from the ledger;
* a **crashed** rank's leases are forfeited back to the pool and a
  **hung** rank's leases expire off its stale heartbeat — either way a
  survivor steals the range and the winner is unchanged (see the
  determinism argument in :mod:`repro.cluster.leases`).

The supervisor also exports the same ``spmd.heartbeat_stale_s.*``
gauges as the static runner (cleared at world start, and re-keyed as
membership changes) and, when an :class:`AutoscalePolicy` is attached,
publishes its grow/shrink recommendation every poll.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.bitmatrix.matrix import BitMatrix
from repro.cluster.autoscale import AutoscalePolicy
from repro.cluster.comm import SimComm, SimCommWorld
from repro.cluster.leases import LeaseLedger
from repro.core.bounds import BoundTable
from repro.core.combination import MultiHitCombination
from repro.core.engine import best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.faults.plan import FaultInjected, FaultPlan
from repro.faults.report import FaultReport
from repro.telemetry.session import get_telemetry, set_thread_telemetry

__all__ = ["ElasticSPMDRunner", "elastic_spmd_best_combo"]


@dataclass
class ElasticSPMDRunner:
    """Drive a lease ledger to completion on an elastic thread fleet.

    ``n_ranks`` threads start immediately; up to ``max_ranks`` total can
    exist over the run (the SimComm world's mailbox/heartbeat fabric is
    pre-sized, like an MPI session opened with room to grow).  Faults
    and membership churn come from ``fault_plan``: ``rank``-site specs
    fire in the rank bodies (crash/hang/straggler), ``membership``-site
    specs fire in the supervisor once the solve reaches their
    progress-fraction trigger.

    The runner is deadlock-free by construction: every lease either
    completes, expires (TTL off a stale heartbeat), or is forfeited —
    and if the whole fleet dies, the supervisor itself drains the
    remaining leases inline (holder ``-1``), so :meth:`run` always
    returns a fully-completed ledger within ``max_wall_s``.
    """

    n_ranks: int
    max_ranks: "int | None" = None
    lease_ttl_s: float = 0.5
    recv_timeout_s: float = 60.0
    poll_s: float = 0.01
    drain_grace_s: float = 2.0
    max_wall_s: float = 120.0
    fault_plan: "FaultPlan | None" = None
    report: FaultReport = field(default_factory=FaultReport, repr=False)
    autoscale: "AutoscalePolicy | None" = None
    # Optional cooperative stop: polled by the supervisor loop alongside
    # the max_wall_s deadline (same mechanism as MultiHitSolver.solve's
    # should_stop).  When it fires, the run aborts with the leases still
    # outstanding reported — the gateway uses this to bound runaway jobs.
    should_stop: "object | None" = None

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        if self.max_ranks is None:
            self.max_ranks = 2 * self.n_ranks + 2
        if self.max_ranks < self.n_ranks:
            raise ValueError("max_ranks must be >= n_ranks")

    def run(self, ledger: LeaseLedger, search, call: int = 0) -> None:
        """Pull every lease through ``search(lease, rank)`` to completion.

        ``search`` returns ``(winner, counters)`` for the lease's λ-range
        and must be thread-safe across distinct leases.  On return the
        ledger is fully completed; merge/counters are the caller's.
        """
        tel = get_telemetry()
        tel.clear_gauges("spmd.heartbeat_stale_s.")
        world = SimCommWorld(
            self.max_ranks,
            recv_timeout_s=self.recv_timeout_s,
            fault_plan=self.fault_plan,
        )
        stop = threading.Event()
        threads: "dict[int, threading.Thread]" = {}
        leave_events: "dict[int, threading.Event]" = {}
        crashed: "set[int]" = set()
        lock = threading.Lock()

        def worker(rank: int) -> None:
            # Inherit the spawner's (possibly thread-scoped, per-job)
            # telemetry session so rank-side spans/counters stay on it.
            set_thread_telemetry(tel)
            comm = SimComm(world, rank)
            comm.heartbeat()
            try:
                with tel.span("spmd.rank", cat="spmd", rank=rank, elastic=True):
                    self._rank_body(
                        comm, rank, ledger, search, stop,
                        leave_events[rank], call,
                    )
            except BaseException as exc:  # noqa: BLE001 - survivable by design
                with lock:
                    crashed.add(rank)
                ledger.retire(rank)
                self.report.record(
                    "crash", "rank", rank, call, "lease-forfeit",
                    detail=f"{type(exc).__name__}: {exc}",
                )
                if tel.flight is not None:
                    tel.flight.note(
                        "lease", event="rank-crashed", rank=rank, call=call
                    )

        def spawn(rank: int) -> None:
            leave_events[rank] = threading.Event()
            t = threading.Thread(
                target=worker, args=(rank,), name=f"elastic-rank-{rank}",
                daemon=True,
            )
            threads[rank] = t
            world.heartbeats[rank] = time.monotonic()
            t.start()

        if tel.flight is not None:
            tel.flight.set_assignments("lease", ledger.assignment_rows(call))
        with tel.span(
            "spmd.world", cat="spmd", n_ranks=self.n_ranks, elastic=True
        ):
            for r in range(self.n_ranks):
                spawn(r)
            next_rank = self.n_ranks
            deadline = time.monotonic() + self.max_wall_s
            try:
                while not ledger.done:
                    now = time.monotonic()
                    stopped = (
                        self.should_stop is not None and self.should_stop()
                    )
                    if now > deadline or stopped:
                        reason = (
                            "should_stop fired" if stopped else
                            f"exceeded max_wall_s={self.max_wall_s}s"
                        )
                        raise RuntimeError(
                            f"elastic world {reason} with "
                            f"{ledger.n_available + ledger.n_granted} "
                            "leases outstanding"
                        )
                    # Heartbeat traffic is the renewal protocol: re-arm
                    # lease deadlines off the beats, then reclaim the
                    # stale ones for survivors to steal.
                    ledger.sync_heartbeats(world.heartbeats, now)
                    for lease in ledger.expire(now):
                        holder = lease.previous_holders[-1]
                        self.report.record(
                            "hang", "rank", holder, call, "lease-expired",
                            detail=(
                                f"lease {lease.lease_id} "
                                f"[{lease.lam_start}, {lease.lam_end})"
                            ),
                        )
                    self._export_liveness(tel, world, threads, now)
                    next_rank = self._apply_churn(
                        ledger, threads, leave_events, spawn, next_rank, call,
                        tel,
                    )
                    if self.autoscale is not None:
                        self._sample_autoscale(tel, world, threads, now)
                    if not any(t.is_alive() for t in threads.values()):
                        # Whole fleet gone: the driver drains the pool
                        # itself (holder -1), the guaranteed fallback.
                        self._drain_inline(ledger, search, call)
                        break
                    time.sleep(self.poll_s)
            finally:
                stop.set()
                for ev in leave_events.values():
                    ev.set()
                t_end = time.monotonic() + self.drain_grace_s
                for t in threads.values():
                    t.join(timeout=max(0.0, t_end - time.monotonic()))
        # Stragglers resurfacing after a steal leave duplicates behind;
        # the run-level dump shows the full churn trail when anything
        # was stolen or forfeited.
        if tel.flight is not None:
            tel.flight.set_assignments("lease", ledger.assignment_rows(call))
            if ledger.n_steals or ledger.n_forfeited or crashed:
                tel.flight.dump(
                    "lease-churn", telemetry=tel, fault_report=self.report
                )

    # -- rank body -----------------------------------------------------

    def _rank_body(
        self, comm, rank, ledger, search, stop, leave, call
    ) -> None:
        tel = get_telemetry()
        while not stop.is_set():
            comm.heartbeat()
            if leave.is_set():
                # Graceful departure: nothing held here (between leases),
                # so retiring forfeits nothing — the drain semantics.
                ledger.retire(rank)
                return
            lease = ledger.acquire(rank)
            if lease is None:
                if ledger.done or rank not in self._live_holders(ledger, rank):
                    return
                # Idle until work reappears (an expiry puts a stolen
                # lease back in the pool): one lease.wait span per
                # waiting stretch, not per poll tick.
                with tel.span("lease.wait", cat="spmd", rank=rank):
                    while True:
                        time.sleep(self.poll_s)
                        if ledger.done or stop.is_set() or leave.is_set():
                            break
                        comm.heartbeat()
                        if (
                            ledger.n_available
                            or rank not in self._live_holders(ledger, rank)
                        ):
                            break
                continue
            spec = (
                self.fault_plan.take("rank", rank, call)
                if self.fault_plan is not None
                else None
            )
            if spec is not None and spec.kind == "crash":
                raise FaultInjected(f"injected crash on elastic rank {rank}")
            if spec is not None and spec.kind in ("hang", "straggler"):
                # A hang outlives the lease TTL (no heartbeats while
                # sleeping), so the lease expires and is stolen; the
                # rank eventually resurfaces and its completion is
                # dropped as a duplicate.  A straggler finishes late
                # but inside the TTL.  The stall is spanned as comm
                # time: a real straggler manifests as a rank gone
                # silent on the wire, and attribution needs the wait
                # on *somebody's* timeline to explain the lost time.
                with tel.span(
                    "comm.stall", cat="comm", rank=rank,
                    kind=spec.kind, delay_s=spec.delay_s,
                ):
                    time.sleep(spec.delay_s)
                if spec.kind == "straggler":
                    self.report.record(
                        "straggler", "rank", rank, call, "observed",
                        detail=f"{spec.delay_s:.3f}s",
                    )
            comm.heartbeat()
            winner, counters = search(lease, rank)
            comm.heartbeat()
            ledger.complete(lease.lease_id, rank, winner, counters=counters)

    @staticmethod
    def _live_holders(ledger, rank) -> "set[int]":
        # A rank with nothing to acquire only lingers while grants are
        # still outstanding (one may expire back to the pool); once the
        # pool is drained and no lease is granted, it can exit.
        holders = ledger.holders()
        if ledger.n_available:
            holders.add(rank)
        return holders

    # -- supervisor pieces ---------------------------------------------

    def _apply_churn(
        self, ledger, threads, leave_events, spawn, next_rank, call, tel
    ) -> int:
        if self.fault_plan is None:
            return next_rank
        frac = ledger.completed_fraction()
        for spec in self.fault_plan.take_churn(call, frac):
            if spec.kind == "join":
                n = max(1, spec.target)
                for _ in range(n):
                    if next_rank >= self.max_ranks:
                        break
                    spawn(next_rank)
                    self.report.record(
                        "join", "membership", next_rank, call, "joined",
                        detail=f"at {frac:.2f} done",
                    )
                    if tel.flight is not None:
                        tel.flight.note(
                            "lease", event="rank-joined", rank=next_rank,
                            fraction=round(frac, 3), call=call,
                        )
                    next_rank += 1
            else:  # leave
                ev = leave_events.get(spec.target)
                if ev is not None and not ev.is_set():
                    ev.set()
                    self.report.record(
                        "leave", "membership", spec.target, call, "drained",
                        detail=f"at {frac:.2f} done",
                    )
                    if tel.flight is not None:
                        tel.flight.note(
                            "lease", event="rank-left", rank=spec.target,
                            fraction=round(frac, 3), call=call,
                        )
        return next_rank

    def _export_liveness(self, tel, world, threads, now) -> None:
        if not tel.enabled:
            return
        tel.clear_gauges("spmd.heartbeat_stale_s.")
        stalest = 0.0
        for r, t in threads.items():
            if not t.is_alive():
                continue
            stale = now - world.heartbeats[r]
            stalest = max(stalest, stale)
            tel.set_gauge(f"spmd.heartbeat_stale_s.rank{r}", stale)
        tel.set_gauge("spmd.heartbeat_stale_s.max", stalest)

    def _sample_autoscale(self, tel, world, threads, now) -> None:
        live = [r for r, t in threads.items() if t.is_alive()]
        stale = {r: now - world.heartbeats[r] for r in live}
        eta = tel.metrics.gauges.get("progress.eta_s") if tel.enabled else None
        self.autoscale.recommend(
            len(live), eta_s=eta, heartbeat_stale_s=stale
        )

    def _drain_inline(self, ledger, search, call) -> None:
        while True:
            ledger.expire(time.monotonic() + 2 * (self.lease_ttl_s or 0.0) + 1.0)
            lease = ledger.acquire(-1)
            if lease is None:
                if ledger.done:
                    return
                continue
            winner, counters = search(lease, -1)
            ledger.complete(lease.lease_id, -1, winner, counters=counters)
            self.report.record(
                "crash", "rank", -1, call, "inline-drain",
                detail=f"lease {lease.lease_id} recovered by driver",
            )


def elastic_spmd_best_combo(
    scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    n_ranks: int,
    n_leases: "int | None" = None,
    fault_plan: "FaultPlan | None" = None,
    report: "FaultReport | None" = None,
    counters: "KernelCounters | None" = None,
    bounds: "BoundTable | None" = None,
    iteration: int = 0,
    memory=None,
    lease_ttl_s: float = 0.5,
    max_wall_s: float = 120.0,
    autoscale: "AutoscalePolicy | None" = None,
    call: int = 0,
) -> "MultiHitCombination | None":
    """One arg-max on an elastic thread fleet with work stealing.

    Builds a ledger of ``n_leases`` equi-area λ-range leases (default
    ``4 * n_ranks`` — finer than one-per-rank so stealing has grain),
    runs it to completion under churn, and merges in lease order: the
    winner is bit-identical to any fixed-world run over the same grid.

    ``bounds`` keeps CELF pruning on: each lease rebuilds its slice of
    the table (leases are block-aligned when the table merged
    ``lease_cuts``) and folds its refreshed bounds back under a lock.
    """
    if n_leases is None:
        n_leases = 4 * n_ranks
    ledger = LeaseLedger.build(scheme, g, n_leases, ttl_s=lease_ttl_s)
    fold_lock = threading.Lock()

    def search(lease, rank):
        lease_counters = KernelCounters()
        lease_bounds = None
        if bounds is not None and bounds.aligned(lease.lam_start, lease.lam_end):
            with fold_lock:
                payload = bounds.slice_payload(lease.lam_start, lease.lam_end)
            lease_bounds = BoundTable.from_payload(payload)
        stolen = lease.grants > 1
        with get_telemetry().span(
            "lease.search", cat="spmd", rank=rank, lease=lease.lease_id,
            lam_start=lease.lam_start, lam_end=lease.lam_end,
            **({"stolen": True} if stolen else {}),
        ) as sp:
            # Cross-rank causal edge: redoing work the previous holder
            # lost chains the thief's timeline to the victim's.
            sp.link(lease.victim_ctx, kind="steal")
            winner = best_in_thread_range(
                scheme, g, tumor, normal, params,
                lease.lam_start, lease.lam_end,
                counters=lease_counters, memory=memory,
                bounds=lease_bounds, iteration=iteration,
            )
        if lease_bounds is not None:
            deltas = lease_bounds.deltas(iteration)
            if deltas:
                with fold_lock:
                    bounds.apply_deltas(deltas, iteration)
        return winner, lease_counters

    runner = ElasticSPMDRunner(
        n_ranks=n_ranks,
        lease_ttl_s=lease_ttl_s,
        max_wall_s=max_wall_s,
        fault_plan=fault_plan,
        autoscale=autoscale,
    )
    if report is not None:
        runner.report = report
    runner.run(ledger, search, call=call)
    if counters is not None:
        ledger.merge_counters(counters)
    with get_telemetry().span(
        "reduce", cat="spmd", leases=ledger.n_leases, call=call
    ) as sp:
        # The merge causally depends on every lease completion; these
        # edges are what let the critical path thread through the
        # slowest lease chain instead of dead-ending at the reduce.
        for ctx in ledger.completion_contexts():
            sp.link(ctx, kind="complete")
        return ledger.merge()
