"""Deterministic virtual-time cluster for paper-scale timing experiments.

Rather than running 6000 GPU kernels, each rank carries a virtual clock;
compute work advances a rank's clock by a model-provided duration, and a
collective synchronizes clocks under the network cost model.  The
per-rank split into *computation* and *communication* (= time spent
waiting inside collectives, which is dominated by straggler skew) is the
data behind Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.network import SUMMIT_NETWORK, NetworkModel

__all__ = ["RankTimeline", "VirtualCluster"]


@dataclass
class RankTimeline:
    """Accumulated virtual time of one rank, split by activity."""

    compute_s: float = 0.0
    comm_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s


@dataclass
class VirtualCluster:
    """Virtual clocks for ``n_ranks`` MPI processes."""

    n_ranks: int
    network: NetworkModel = field(default_factory=lambda: SUMMIT_NETWORK)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise ValueError("need at least one rank")
        self.clock = np.zeros(self.n_ranks, dtype=np.float64)
        self.timelines = [RankTimeline() for _ in range(self.n_ranks)]
        self.departed: list[RankTimeline] = []

    # -- elastic membership ----------------------------------------------

    def join(self, n: int = 1) -> None:
        """Register ``n`` new ranks mid-run.

        A joiner's clock starts at the current global elapsed time (it
        cannot have done work before it existed), so the next collective
        treats it like any other rank.
        """
        if n < 1:
            raise ValueError("must join at least one rank")
        now = self.elapsed_s
        self.clock = np.concatenate(
            [self.clock, np.full(n, now, dtype=np.float64)]
        )
        self.timelines.extend(RankTimeline() for _ in range(n))
        self.n_ranks += n

    def leave(self, ranks: "list[int]") -> None:
        """Remove ``ranks`` from the fleet mid-run.

        Departed timelines move to :attr:`departed` so their accumulated
        compute/comm time stays in the accounting; subsequent collectives
        span only the survivors.  Removing every rank is an error.
        """
        gone = sorted(set(ranks))
        if any(r < 0 or r >= self.n_ranks for r in gone):
            raise ValueError(f"rank out of range in {ranks}")
        if len(gone) >= self.n_ranks:
            raise ValueError("cannot remove every rank")
        keep = [r for r in range(self.n_ranks) if r not in gone]
        self.departed.extend(self.timelines[r] for r in gone)
        self.clock = self.clock[keep]
        self.timelines = [self.timelines[r] for r in keep]
        self.n_ranks = len(keep)

    # -- compute ---------------------------------------------------------

    def compute(self, durations: np.ndarray) -> None:
        """Advance every rank's clock by its own compute duration."""
        durations = np.asarray(durations, dtype=np.float64)
        if durations.shape != (self.n_ranks,):
            raise ValueError(
                f"expected {self.n_ranks} durations, got shape {durations.shape}"
            )
        if np.any(durations < 0):
            raise ValueError("durations cannot be negative")
        self.clock += durations
        for r in range(self.n_ranks):
            self.timelines[r].compute_s += float(durations[r])

    def compute_rank(self, rank: int, duration: float) -> None:
        self.clock[rank] += duration
        self.timelines[rank].compute_s += duration

    # -- communication -----------------------------------------------------

    def reduce_to_root(self, n_bytes: int) -> float:
        """Tree-reduce: all clocks sync to the straggler plus wire time.

        Each rank's *communication* time is its wait for the straggler
        plus the reduce itself — exactly the "message passing overhead is
        hidden by the largest computation time" effect of Fig. 8.
        Returns the post-reduce global clock.
        """
        wire = self.network.tree_reduce_time(self.n_ranks, n_bytes)
        finish = float(self.clock.max()) + wire
        for r in range(self.n_ranks):
            self.timelines[r].comm_s += finish - float(self.clock[r])
        self.clock[:] = finish
        return finish

    def bcast_from_root(self, n_bytes: int) -> float:
        wire = self.network.bcast_time(self.n_ranks, n_bytes)
        finish = float(self.clock.max()) + wire
        for r in range(self.n_ranks):
            self.timelines[r].comm_s += finish - float(self.clock[r])
        self.clock[:] = finish
        return finish

    # -- results ------------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        """Virtual wall-clock of the whole job so far."""
        return float(self.clock.max())

    def compute_times(self) -> np.ndarray:
        return np.array([t.compute_s for t in self.timelines])

    def comm_times(self) -> np.ndarray:
        return np.array([t.comm_s for t in self.timelines])
