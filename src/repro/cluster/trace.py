"""Event tracing for virtual-cluster runs.

Records (rank, phase, start, end) events as a job advances through
compute / reduce / broadcast phases, producing the timeline that Fig. 8
visualizes — and enabling critical-path analysis: which rank's compute
bound each iteration, and how much time every other rank spent waiting
on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.virtual import VirtualCluster

__all__ = ["TraceEvent", "ClusterTrace", "TracingCluster"]


@dataclass(frozen=True)
class TraceEvent:
    """One phase of one rank."""

    rank: int
    phase: str  # "compute" | "reduce" | "bcast"
    iteration: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ClusterTrace:
    """Accumulated events plus per-iteration critical-path summaries."""

    events: list[TraceEvent] = field(default_factory=list)

    def for_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def for_phase(self, phase: str) -> list[TraceEvent]:
        return [e for e in self.events if e.phase == phase]

    def critical_rank(self, iteration: int) -> "int | None":
        """The straggler: the rank whose compute ended last."""
        computes = [
            e
            for e in self.events
            if e.phase == "compute" and e.iteration == iteration
        ]
        if not computes:
            return None
        return max(computes, key=lambda e: e.end_s).rank

    def wait_time(self, iteration: int) -> float:
        """Total rank-seconds spent waiting on the iteration's straggler."""
        computes = [
            e
            for e in self.events
            if e.phase == "compute" and e.iteration == iteration
        ]
        if not computes:
            return 0.0
        latest = max(e.end_s for e in computes)
        return sum(latest - e.end_s for e in computes)

    @property
    def n_iterations(self) -> int:
        its = {e.iteration for e in self.events}
        return max(its) + 1 if its else 0


class TracingCluster(VirtualCluster):
    """A VirtualCluster that records a :class:`ClusterTrace`.

    Drop-in replacement: same compute/reduce/bcast API, with an
    ``iteration`` counter advanced by :meth:`next_iteration`.
    """

    def __init__(self, n_ranks: int, network=None):
        if network is None:
            super().__init__(n_ranks=n_ranks)
        else:
            super().__init__(n_ranks=n_ranks, network=network)
        self.trace = ClusterTrace()
        self._iteration = 0

    def next_iteration(self) -> int:
        self._iteration += 1
        return self._iteration

    @property
    def iteration(self) -> int:
        return self._iteration

    def compute(self, durations: np.ndarray) -> None:
        starts = self.clock.copy()
        super().compute(durations)
        for r in range(self.n_ranks):
            self.trace.events.append(
                TraceEvent(
                    rank=r,
                    phase="compute",
                    iteration=self._iteration,
                    start_s=float(starts[r]),
                    end_s=float(self.clock[r]),
                )
            )

    def reduce_to_root(self, n_bytes: int) -> float:
        starts = self.clock.copy()
        finish = super().reduce_to_root(n_bytes)
        for r in range(self.n_ranks):
            self.trace.events.append(
                TraceEvent(
                    rank=r,
                    phase="reduce",
                    iteration=self._iteration,
                    start_s=float(starts[r]),
                    end_s=finish,
                )
            )
        return finish

    def bcast_from_root(self, n_bytes: int) -> float:
        starts = self.clock.copy()
        finish = super().bcast_from_root(n_bytes)
        for r in range(self.n_ranks):
            self.trace.events.append(
                TraceEvent(
                    rank=r,
                    phase="bcast",
                    iteration=self._iteration,
                    start_s=float(starts[r]),
                    end_s=finish,
                )
            )
        return finish
