"""λ-range leases: the work-stealing currency of the elastic scale-out.

The paper's static scale-out cuts the λ thread-grid once, equi-area,
into exactly one partition per device — correct for a fixed fleet, but
structurally straggler-prone once pruning makes per-range work
non-uniform, and helpless when ranks join or leave mid-solve.  The
elastic path instead cuts each iteration's λ-space into a pool of
**leases**, finer than one-per-rank, owned by a :class:`LeaseLedger`
on the driver (rank 0): ranks *pull* leases, renew them through the
heartbeat channel, and a lease whose holder goes silent (or departs)
returns to the pool for a survivor to steal.

Determinism argument: a lease's result is a pure function of its
``[lam_start, lam_end)`` range — never of who computed it or when — and
:meth:`LeaseLedger.merge` folds the per-lease winners through
:func:`repro.core.reduction.multi_stage_reduce` in **lease-id order**.
Steals, duplicate completions (a stolen lease finished by both the
thief and a resurfacing straggler) and join/leave churn therefore
cannot change the winner: the merge input is the same ordered list of
range-winners on every run.  Kernel counters are kept per lease and
folded in the same order, with duplicates dropped at completion time,
so work accounting closes exactly like the static path's.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.reduction import multi_stage_reduce
from repro.scheduling.equiarea import equiarea_range_boundaries
from repro.scheduling.workload import total_threads
from repro.telemetry.session import get_telemetry

__all__ = ["Lease", "LeaseLedger", "LEASE_STATES"]

#: Lease lifecycle: ``available`` (in the pool) -> ``granted`` (held by a
#: rank, deadline-armed) -> ``completed`` (result recorded, terminal).
#: ``granted`` falls back to ``available`` on expiry or forfeiture.
LEASE_STATES = ("available", "granted", "completed")


@dataclass
class Lease:
    """One λ-range unit of stealable work.

    ``grants`` counts how many times the lease was handed out; any grant
    after the first is a steal (the range moved to a new holder after an
    expiry or forfeiture).  ``previous_holders`` keeps the churn trail
    for fault attribution.

    The ``*_ctx`` fields carry causal span contexts (see
    :mod:`repro.telemetry.causal`): ``grant_ctx`` is the holder's span
    at acquire time, ``stolen_from_ctx`` is the *previous* holder's
    grant context saved when the grant was revoked, and
    ``complete_ctx`` is the completing span (the merge links
    ``complete`` edges to these).  ``victim_ctx`` is the pending
    ``stolen_from_ctx`` *bound at grant time*: the thief's search links
    its ``steal`` edge to the victim it is redoing work for, and a
    later revocation of the thief's own grant (a hang outliving its
    TTL mid-search) cannot clobber it.  All ``None`` when telemetry is
    disabled — contexts never affect scheduling.
    """

    lease_id: int
    lam_start: int
    lam_end: int
    state: str = "available"
    holder: "int | None" = None
    deadline: float = float("inf")
    grants: int = 0
    previous_holders: list = field(default_factory=list)
    result: "object | None" = None
    counters: "object | None" = None
    completed_by: "int | None" = None
    grant_ctx: "dict | None" = None
    stolen_from_ctx: "dict | None" = None
    victim_ctx: "dict | None" = None
    complete_ctx: "dict | None" = None

    @property
    def span(self) -> int:
        return self.lam_end - self.lam_start


class LeaseLedger:
    """Thread-safe lease pool with heartbeat-driven expiry.

    One ledger per arg-max call.  ``ttl_s`` arms a renewal deadline on
    every grant: a holder that neither completes nor renews within the
    TTL loses the lease back to the pool (``ttl_s=None`` disables the
    clock — correct for the in-process engine, where a grant is followed
    synchronously by completion or explicit forfeiture).
    """

    def __init__(
        self,
        boundaries: "tuple[int, ...]",
        ttl_s: "float | None" = None,
    ) -> None:
        if len(boundaries) < 2:
            raise ValueError("need at least one lease range")
        self.boundaries = tuple(boundaries)
        self.ttl_s = ttl_s
        spans = [
            (lo, hi)
            for lo, hi in zip(self.boundaries[:-1], self.boundaries[1:])
            if hi > lo  # duplicate cuts (tiny grids) make empty ranges
        ]
        if not spans:
            raise ValueError("every lease range is empty")
        self.leases = [
            Lease(lease_id=i, lam_start=lo, lam_end=hi)
            for i, (lo, hi) in enumerate(spans)
        ]
        self._lock = threading.Lock()
        self._retired: set = set()
        self.n_steals = 0
        self.n_expired = 0
        self.n_forfeited = 0
        self.n_duplicates = 0
        self.n_grants = 0

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        scheme,
        g: int,
        n_leases: int,
        lam_start: int = 0,
        lam_end: "int | None" = None,
        ttl_s: "float | None" = None,
    ) -> "LeaseLedger":
        """Equi-area lease cuts over ``[lam_start, lam_end)``.

        The same O(G) level walk as every other cut in the repo, so
        merging :attr:`boundaries` into a :class:`BoundTable` makes
        every lease a whole number of λ-blocks (pruning stays on).
        """
        if lam_end is None:
            lam_end = total_threads(scheme, g)
        cuts = equiarea_range_boundaries(
            scheme, g, lam_start, lam_end, max(1, n_leases)
        )
        return cls(cuts, ttl_s=ttl_s)

    # -- lifecycle -----------------------------------------------------

    def acquire(self, holder: int, now: "float | None" = None) -> "Lease | None":
        """Grant the lowest-id available lease to ``holder``.

        Returns ``None`` when nothing is available (all granted or
        completed) or the holder has been retired.  A grant after a
        previous holder lost the lease counts as a steal.
        """
        tel = get_telemetry()
        with self._lock:
            if holder in self._retired:
                return None
            for lease in self.leases:
                if lease.state != "available":
                    continue
                stolen = lease.grants > 0
                lease.state = "granted"
                lease.holder = holder
                lease.grants += 1
                # The acquiring thread's span context; the pending
                # victim context (saved when the last grant was
                # revoked) binds to this grant so the thief's search
                # links the right ``steal`` edge even if this grant is
                # itself revoked before the search closes.
                lease.grant_ctx = tel.context()
                lease.victim_ctx = lease.stolen_from_ctx
                lease.stolen_from_ctx = None
                if now is None:
                    now = time.monotonic()
                lease.deadline = (
                    now + self.ttl_s if self.ttl_s is not None else float("inf")
                )
                self.n_grants += 1
                if stolen:
                    self.n_steals += 1
                self._export(tel)
                if tel.enabled:
                    tel.count("lease.grants")
                    if stolen:
                        tel.count("lease.steals")
                        if tel.flight is not None:
                            tel.flight.note(
                                "lease",
                                event="steal",
                                lease=lease.lease_id,
                                lam_start=lease.lam_start,
                                lam_end=lease.lam_end,
                                thief=holder,
                                previous_holders=list(lease.previous_holders),
                            )
                return lease
        return None

    def renew(self, holder: int, now: "float | None" = None) -> int:
        """Extend the deadlines of every lease ``holder`` currently holds."""
        if self.ttl_s is None:
            return 0
        if now is None:
            now = time.monotonic()
        n = 0
        with self._lock:
            for lease in self.leases:
                if lease.state == "granted" and lease.holder == holder:
                    lease.deadline = now + self.ttl_s
                    n += 1
        return n

    def sync_heartbeats(
        self, heartbeats: "list[float]", now: "float | None" = None
    ) -> None:
        """Re-arm deadlines from the SimComm heartbeat channel.

        ``heartbeats[r]`` is rank ``r``'s last-beat monotonic time (the
        list every :class:`repro.cluster.comm.SimComm` op updates); a
        granted lease's deadline becomes ``beat + ttl_s``, so leases are
        renewed by ordinary communicator traffic, with no extra protocol.
        """
        if self.ttl_s is None:
            return
        with self._lock:
            for lease in self.leases:
                if lease.state != "granted":
                    continue
                h = lease.holder
                if h is not None and 0 <= h < len(heartbeats):
                    lease.deadline = max(
                        lease.deadline, heartbeats[h] + self.ttl_s
                    )

    def expire(self, now: "float | None" = None) -> "list[Lease]":
        """Reclaim granted leases whose deadline has passed.

        The reclaimed leases return to the pool; the next ``acquire``
        by any live rank is the steal.
        """
        if now is None:
            now = time.monotonic()
        tel = get_telemetry()
        reclaimed: "list[Lease]" = []
        with self._lock:
            for lease in self.leases:
                if lease.state == "granted" and lease.deadline < now:
                    lease.previous_holders.append(lease.holder)
                    lease.state = "available"
                    lease.holder = None
                    lease.deadline = float("inf")
                    lease.stolen_from_ctx = lease.grant_ctx
                    lease.grant_ctx = None
                    self.n_expired += 1
                    reclaimed.append(lease)
            if reclaimed:
                self._export(tel)
        if reclaimed and tel.enabled:
            tel.count("lease.expired", len(reclaimed))
            if tel.flight is not None:
                for lease in reclaimed:
                    tel.flight.note(
                        "lease",
                        event="expired",
                        lease=lease.lease_id,
                        lam_start=lease.lam_start,
                        lam_end=lease.lam_end,
                        holder=lease.previous_holders[-1],
                    )
        return reclaimed

    def forfeit(self, holder: int) -> "list[Lease]":
        """Return every lease ``holder`` holds to the pool (crash/leave)."""
        tel = get_telemetry()
        dropped: "list[Lease]" = []
        with self._lock:
            for lease in self.leases:
                if lease.state == "granted" and lease.holder == holder:
                    lease.previous_holders.append(holder)
                    lease.state = "available"
                    lease.holder = None
                    lease.deadline = float("inf")
                    lease.stolen_from_ctx = lease.grant_ctx
                    lease.grant_ctx = None
                    self.n_forfeited += 1
                    dropped.append(lease)
            if dropped:
                self._export(tel)
        if dropped and tel.enabled:
            tel.count("lease.forfeited", len(dropped))
            if tel.flight is not None:
                for lease in dropped:
                    tel.flight.note(
                        "lease",
                        event="forfeited",
                        lease=lease.lease_id,
                        lam_start=lease.lam_start,
                        lam_end=lease.lam_end,
                        holder=holder,
                    )
        return dropped

    def retire(self, holder: int) -> "list[Lease]":
        """Permanently bar ``holder`` from new grants and forfeit its leases."""
        with self._lock:
            self._retired.add(holder)
        return self.forfeit(holder)

    def complete(
        self,
        lease_id: int,
        holder: int,
        result: "object | None",
        counters: "object | None" = None,
    ) -> bool:
        """Record a lease's range-winner; duplicates are dropped.

        A completion is accepted from *any* holder — including one whose
        grant has since expired and been stolen — because the result is
        a pure function of the λ-range: whoever finishes first supplies
        the identical answer.  The second finisher is recorded as a
        duplicate and contributes nothing (neither result nor counters),
        so accounting closes exactly once per lease.
        """
        tel = get_telemetry()
        with self._lock:
            lease = self.leases[lease_id]
            if lease.state == "completed":
                self.n_duplicates += 1
                if tel.enabled:
                    tel.count("lease.duplicate_results")
                return False
            if lease.holder is not None and lease.holder != holder:
                # Completed by a resurfaced straggler while the steal is
                # still in flight: same range, same result — accept it.
                lease.previous_holders.append(lease.holder)
            lease.state = "completed"
            lease.holder = None
            lease.deadline = float("inf")
            lease.result = result
            lease.counters = counters
            lease.completed_by = holder
            lease.complete_ctx = tel.context()
            self._export(tel)
        if tel.enabled:
            tel.count("lease.completed")
        return True

    # -- queries -------------------------------------------------------

    @property
    def n_leases(self) -> int:
        return len(self.leases)

    def _count(self, state: str) -> int:
        return sum(1 for lease in self.leases if lease.state == state)

    @property
    def n_available(self) -> int:
        with self._lock:
            return self._count("available")

    @property
    def n_granted(self) -> int:
        with self._lock:
            return self._count("granted")

    @property
    def n_completed(self) -> int:
        with self._lock:
            return self._count("completed")

    @property
    def done(self) -> bool:
        with self._lock:
            return all(lease.state == "completed" for lease in self.leases)

    def completed_fraction(self) -> float:
        with self._lock:
            return self._count("completed") / len(self.leases)

    def holders(self) -> "set[int]":
        with self._lock:
            return {
                lease.holder
                for lease in self.leases
                if lease.state == "granted" and lease.holder is not None
            }

    def completion_contexts(self) -> "list[dict]":
        """Completion span contexts in lease-id order (for merge links)."""
        with self._lock:
            return [
                lease.complete_ctx
                for lease in self.leases
                if lease.complete_ctx is not None
            ]

    def _export(self, tel) -> None:
        """Gauge snapshot under the ledger lock (cheap; dict stores)."""
        if not tel.enabled:
            return
        tel.set_gauge("lease.available", self._count("available"))
        tel.set_gauge("lease.granted", self._count("granted"))
        tel.set_gauge("lease.completed", self._count("completed"))

    # -- deterministic merge -------------------------------------------

    def merge(self, stats=None):
        """Fold the per-lease winners in lease-id order — the whole
        determinism story in one line: the reduction input is identical
        regardless of which rank completed which lease, or in what
        order, so churn cannot change the winner."""
        incomplete = [
            lease.lease_id for lease in self.leases if lease.state != "completed"
        ]
        if incomplete:
            raise RuntimeError(f"leases not completed: {incomplete}")
        return multi_stage_reduce(
            [lease.result for lease in self.leases], stats=stats
        )

    def merge_counters(self, into) -> None:
        """Fold per-lease kernel counters in lease-id order into ``into``."""
        for lease in self.leases:
            if lease.counters is not None:
                into.merge(lease.counters)

    def assignment_rows(self, call: "int | None" = None) -> "list[dict]":
        """Flight-recorder assignment table: one row per lease."""
        with self._lock:
            return [
                {
                    "lease": lease.lease_id,
                    "lam_start": lease.lam_start,
                    "lam_end": lease.lam_end,
                    "state": lease.state,
                    "holder": lease.holder,
                    "grants": lease.grants,
                    "previous_holders": list(lease.previous_holders),
                    **({"call": call} if call is not None else {}),
                }
                for lease in self.leases
            ]

    def describe(self) -> str:
        with self._lock:
            lines = [
                f"LeaseLedger: {len(self.leases)} leases "
                f"({self._count('completed')} done, "
                f"{self._count('granted')} granted, "
                f"{self._count('available')} available) "
                f"steals={self.n_steals} expired={self.n_expired} "
                f"forfeited={self.n_forfeited} duplicates={self.n_duplicates}"
            ]
            for lease in self.leases:
                holder = "-" if lease.holder is None else str(lease.holder)
                lines.append(
                    f"  lease {lease.lease_id:3d} [{lease.lam_start}, "
                    f"{lease.lam_end}) {lease.state:9s} holder={holder} "
                    f"grants={lease.grants}"
                )
        return "\n".join(lines)
