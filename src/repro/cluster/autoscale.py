"""Reactive autoscaling policy for the elastic scale-out.

Consumes the live signals PR 5 already exports — the progress monitor's
ETA (``progress.eta_s``) and the SPMD failure detector's per-rank
heartbeat-staleness gauges (``spmd.heartbeat_stale_s.*``) — and
recommends a fleet-size change.  The policy only *recommends*:
callers (the elastic runner's supervisor, or an external operator
watching ``/metrics``) decide whether to act, so the decision logic
stays deterministic and unit-testable without threads.

Rules, in priority order:

1. **Shrink on silence** — ranks whose heartbeat staleness exceeds
   ``stale_after_s`` are effectively gone already; recommending their
   removal converts a detector signal into a membership decision
   (their leases are reclaimed by expiry either way).
2. **Grow on a late ETA** — when the projected finish exceeds
   ``target_eta_s``, recommend enough ranks to close the gap assuming
   near-linear scaling (ranks ~ eta / target), capped by
   ``max_step`` and ``max_ranks``.
3. **Shrink on an early ETA** — when the solve will finish well inside
   the target (``eta < shrink_margin * target``), surplus ranks can be
   released to the facility scheduler.
4. **Hold** otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.telemetry.session import get_telemetry

__all__ = ["AutoscaleDecision", "AutoscalePolicy"]


@dataclass(frozen=True)
class AutoscaleDecision:
    """What the policy recommends for the current sample."""

    action: str  # "grow" | "shrink" | "hold"
    delta: int  # ranks to add (grow) or remove (shrink); 0 on hold
    reason: str
    stale_ranks: "tuple[int, ...]" = ()

    @property
    def is_hold(self) -> bool:
        return self.action == "hold"


@dataclass(frozen=True)
class AutoscalePolicy:
    """Deterministic grow/shrink recommendation from live gauges.

    Parameters
    ----------
    target_eta_s:
        The walltime budget the solve should finish within (a Summit
        allocation's remaining queue time).  ``None`` disables the
        ETA-driven rules; only the staleness rule fires.
    stale_after_s:
        Heartbeat staleness beyond which a rank is presumed lost.
    shrink_margin:
        Shrink when ``eta < shrink_margin * target_eta_s`` (the fleet
        is oversized for the remaining work).
    min_ranks / max_ranks:
        Fleet-size clamps for any recommendation.
    max_step:
        Largest single grow/shrink step (reactive, not bang-bang).
    """

    target_eta_s: "float | None" = None
    stale_after_s: float = 30.0
    shrink_margin: float = 0.5
    min_ranks: int = 1
    max_ranks: int = 1 << 20
    max_step: int = 64

    def recommend(
        self,
        n_ranks: int,
        eta_s: "float | None" = None,
        heartbeat_stale_s: "dict[int, float] | None" = None,
    ) -> AutoscaleDecision:
        """One recommendation from one sample of the live signals.

        ``heartbeat_stale_s`` maps rank -> staleness seconds (the
        ``spmd.heartbeat_stale_s.rankN`` gauges); ``eta_s`` is the
        progress monitor's projected remaining time.
        """
        decision = self._decide(n_ranks, eta_s, heartbeat_stale_s or {})
        tel = get_telemetry()
        if tel.enabled:
            tel.set_gauge("autoscale.n_ranks", n_ranks)
            tel.set_gauge(
                "autoscale.delta",
                decision.delta if decision.action == "grow" else -decision.delta,
            )
            tel.count(f"autoscale.{decision.action}")
        return decision

    def _decide(
        self,
        n_ranks: int,
        eta_s: "float | None",
        stale: "dict[int, float]",
    ) -> AutoscaleDecision:
        silent = tuple(
            sorted(r for r, s in stale.items() if s > self.stale_after_s)
        )
        if silent:
            drop = min(len(silent), self.max_step, n_ranks - self.min_ranks)
            if drop > 0:
                return AutoscaleDecision(
                    action="shrink",
                    delta=drop,
                    reason=(
                        f"{len(silent)} rank(s) silent beyond "
                        f"{self.stale_after_s:g}s"
                    ),
                    stale_ranks=silent[:drop],
                )
        if self.target_eta_s is not None and eta_s is not None:
            if eta_s > self.target_eta_s:
                # Near-linear scaling: finishing eta/target times sooner
                # needs roughly that multiple of the current fleet.
                want = math.ceil(n_ranks * eta_s / self.target_eta_s)
                grow = min(want - n_ranks, self.max_step, self.max_ranks - n_ranks)
                if grow > 0:
                    return AutoscaleDecision(
                        action="grow",
                        delta=grow,
                        reason=(
                            f"eta {eta_s:.1f}s exceeds target "
                            f"{self.target_eta_s:.1f}s"
                        ),
                    )
            elif eta_s < self.shrink_margin * self.target_eta_s and n_ranks > self.min_ranks:
                want = max(
                    self.min_ranks,
                    math.ceil(n_ranks * eta_s / self.target_eta_s),
                )
                drop = min(n_ranks - want, self.max_step, n_ranks - self.min_ranks)
                if drop > 0:
                    return AutoscaleDecision(
                        action="shrink",
                        delta=drop,
                        reason=(
                            f"eta {eta_s:.1f}s well inside target "
                            f"{self.target_eta_s:.1f}s"
                        ),
                    )
        return AutoscaleDecision(action="hold", delta=0, reason="within band")
