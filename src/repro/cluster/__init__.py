"""Simulated Summit substrate: nodes, MPI-like communication, virtual time.

The paper runs one MPI process per Summit node (2 Power9 CPUs + 6 V100
GPUs).  This package substitutes:

* :class:`SimCommWorld` / :class:`SimComm` — a thread-backed, in-process
  MPI-like communicator (send/recv/bcast/gather/reduce/allreduce/barrier)
  with deterministic collective semantics, used to run the *functional*
  distributed solver as a real SPMD program;
* :class:`VirtualCluster` — a deterministic virtual-time engine with a
  latency/bandwidth network model, used to reproduce the paper's timing
  figures at full 1000-node scale without hardware;
* :class:`LeaseLedger` / :class:`ElasticSPMDRunner` — λ-range leases and
  the elastic membership layer: ranks pull leases, renew them off the
  heartbeat channel, and join/leave mid-solve while survivors steal
  expired or forfeited ranges (winners stay bit-identical);
* :class:`AutoscalePolicy` — reactive grow/shrink recommendations from
  the live ETA and heartbeat-staleness gauges.
"""

from repro.cluster.node import SummitNodeSpec, SUMMIT_NODE
from repro.cluster.comm import CommAbortedError, SimComm, SimCommWorld
from repro.cluster.runtime import RankFailedError, SPMDRunner
from repro.cluster.network import NetworkModel, SUMMIT_NETWORK
from repro.cluster.virtual import RankTimeline, VirtualCluster
from repro.cluster.mpi_program import rank_program, spmd_best_combo
from repro.cluster.trace import ClusterTrace, TraceEvent, TracingCluster
from repro.cluster.leases import Lease, LeaseLedger
from repro.cluster.elastic import ElasticSPMDRunner, elastic_spmd_best_combo
from repro.cluster.autoscale import AutoscaleDecision, AutoscalePolicy

__all__ = [
    "ClusterTrace",
    "TraceEvent",
    "TracingCluster",
    "rank_program",
    "spmd_best_combo",
    "Lease",
    "LeaseLedger",
    "ElasticSPMDRunner",
    "elastic_spmd_best_combo",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "SummitNodeSpec",
    "SUMMIT_NODE",
    "CommAbortedError",
    "SimComm",
    "SimCommWorld",
    "RankFailedError",
    "SPMDRunner",
    "NetworkModel",
    "SUMMIT_NETWORK",
    "VirtualCluster",
    "RankTimeline",
]
