"""Greedy set-cover quality analysis.

The multi-hit algorithm is a greedy approximation to weighted set cover,
which carries the classical H(n) = ln(n) + 1 approximation guarantee on
cover size.  These helpers extract the per-iteration coverage curve from
a solver run, compare the greedy cover size against the theoretical
bound and a counting lower bound, and summarize how front-loaded the
cover is (the paper's BitSplicing benefit depends on early iterations
covering most samples).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.solver import MultiHitResult

__all__ = ["CoverageCurve", "coverage_curve", "greedy_bound", "cover_quality"]


@dataclass(frozen=True)
class CoverageCurve:
    """Cumulative tumor-sample coverage after each greedy iteration."""

    covered_after: tuple[int, ...]
    n_tumor: int

    @property
    def n_iterations(self) -> int:
        return len(self.covered_after)

    @property
    def fractions(self) -> np.ndarray:
        return np.asarray(self.covered_after, dtype=np.float64) / self.n_tumor

    def iterations_to_cover(self, fraction: float) -> "int | None":
        """First iteration reaching ``fraction`` coverage (1-based)."""
        if not 0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        target = fraction * self.n_tumor
        for i, c in enumerate(self.covered_after, start=1):
            if c >= target:
                return i
        return None

    @property
    def front_loading(self) -> float:
        """Fraction of final coverage achieved in the first half of iterations.

        Near 1.0 means early combinations do most of the covering — the
        regime where BitSplicing pays off fastest.
        """
        if not self.covered_after:
            return 0.0
        half = max(1, self.n_iterations // 2)
        final = self.covered_after[-1]
        return self.covered_after[half - 1] / final if final else 0.0


def coverage_curve(result: MultiHitResult) -> CoverageCurve:
    """Extract the cumulative coverage curve from a solver run."""
    covered = 0
    out = []
    for rec in result.iterations:
        covered += rec.newly_covered
        out.append(covered)
    return CoverageCurve(covered_after=tuple(out), n_tumor=result.params.n_tumor)


def greedy_bound(n_covered: int) -> float:
    """Classical greedy set-cover factor ``H(n) <= ln(n) + 1``."""
    if n_covered < 1:
        return 1.0
    return math.log(n_covered) + 1.0


@dataclass(frozen=True)
class CoverQuality:
    """Greedy cover size against its theoretical bracket."""

    cover_size: int
    lower_bound: int
    upper_bound: float

    @property
    def within_guarantee(self) -> bool:
        return self.lower_bound <= self.cover_size <= self.upper_bound


def cover_quality(result: MultiHitResult) -> CoverQuality:
    """Bracket the greedy cover size.

    * lower bound — a counting argument: no combination covered more
      samples than the first one (greedy picks max TP first), so at least
      ``ceil(covered / max_tp)`` combinations are needed;
    * upper bound — optimal size x ``H(n)``; with the lower bound as the
      optimal-size proxy this gives ``lower * (ln(n) + 1)``.
    """
    covered = result.params.n_tumor - result.uncovered
    if not result.combinations or covered == 0:
        return CoverQuality(cover_size=len(result.combinations), lower_bound=0, upper_bound=0.0)
    max_tp = max(c.tp for c in result.combinations)
    lower = math.ceil(covered / max(max_tp, 1))
    upper = lower * greedy_bound(covered)
    return CoverQuality(
        cover_size=len(result.combinations),
        lower_bound=lower,
        upper_bound=upper,
    )
