"""The per-cancer multi-hit classifier (Section IV-F).

A sample is classified *tumor* iff it carries mutations in **all** genes
of **any** of the combinations found on the training set; otherwise it is
classified *normal*.  Evaluated on the held-out 25% test split, this is
what produces the sensitivity/specificity bars of Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.data.matrices import GeneSampleMatrix

__all__ = ["MultiHitClassifier"]


@dataclass(frozen=True)
class MultiHitClassifier:
    """Disjunction-of-conjunctions classifier over gene combinations."""

    combinations: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "combinations",
            tuple(tuple(int(g) for g in c) for c in self.combinations),
        )

    @classmethod
    def from_result(cls, result) -> "MultiHitClassifier":
        """Build from a :class:`repro.core.MultiHitResult`."""
        return cls(combinations=tuple(result.gene_sets()))

    def predict(self, matrix: "GeneSampleMatrix | BitMatrix | np.ndarray") -> np.ndarray:
        """Boolean per-sample predictions (True = classified tumor)."""
        if isinstance(matrix, GeneSampleMatrix):
            dense = matrix.values
        elif isinstance(matrix, BitMatrix):
            dense = matrix.to_dense()
        else:
            dense = np.asarray(matrix, dtype=bool)
        n_samples = dense.shape[1]
        out = np.zeros(n_samples, dtype=bool)
        for combo in self.combinations:
            out |= np.logical_and.reduce(dense[list(combo)], axis=0)
        return out

    def __len__(self) -> int:
        return len(self.combinations)
