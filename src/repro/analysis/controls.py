"""Statistical controls: permutation significance of found combinations.

A greedy search over ``C(G, h)`` combinations *will* find something even
in pure noise (multiple-testing at astronomical scale — the passenger
problem of Fig. 10 in statistical form).  The standard control is a
label-permutation test: shuffle tumor/normal labels, rerun the search,
and compare the real best F against the null distribution of best-F
values.  A planted driver survives the control; a passenger combination
does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import FScoreParams
from repro.scheduling.schemes import scheme_for

__all__ = ["PermutationTest", "permutation_test_best_f"]


@dataclass(frozen=True)
class PermutationTest:
    """Null distribution of best-F under label shuffling."""

    observed_f: float
    null_f: np.ndarray
    n_permutations: int

    @property
    def p_value(self) -> float:
        """Upper-tail p with the +1 correction (never exactly zero)."""
        exceed = int((self.null_f >= self.observed_f).sum())
        return (exceed + 1) / (self.n_permutations + 1)

    @property
    def z_score(self) -> float:
        sd = float(self.null_f.std())
        if sd == 0:
            return 0.0
        return (self.observed_f - float(self.null_f.mean())) / sd

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def _best_f(
    tumor_dense: np.ndarray, normal_dense: np.ndarray, hits: int
) -> float:
    tumor = BitMatrix.from_dense(tumor_dense)
    normal = BitMatrix.from_dense(normal_dense)
    params = FScoreParams(
        n_tumor=tumor.n_samples, n_normal=max(normal.n_samples, 1)
    )
    engine = SingleGpuEngine(scheme=scheme_for(hits, hits - 1))
    best = engine.best_combo(tumor, normal, params)
    return best.f if best is not None else 0.0


def permutation_test_best_f(
    tumor_dense: np.ndarray,
    normal_dense: np.ndarray,
    hits: int = 2,
    n_permutations: int = 50,
    seed: int = 0,
) -> PermutationTest:
    """Label-permutation significance of the best combination's F.

    Pools all samples, redraws tumor/normal labels uniformly at random
    ``n_permutations`` times, re-running the (first-iteration) search on
    each shuffle.  Exhaustive searches make this expensive; keep instance
    sizes laptop-small.
    """
    tumor_dense = np.asarray(tumor_dense, dtype=bool)
    normal_dense = np.asarray(normal_dense, dtype=bool)
    if tumor_dense.shape[0] != normal_dense.shape[0]:
        raise ValueError("matrices must share the gene axis")
    nt = tumor_dense.shape[1]
    pooled = np.concatenate([tumor_dense, normal_dense], axis=1)
    n_total = pooled.shape[1]

    observed = _best_f(tumor_dense, normal_dense, hits)
    rng = np.random.default_rng(seed)
    null = np.empty(n_permutations)
    for i in range(n_permutations):
        perm = rng.permutation(n_total)
        t_idx, n_idx = perm[:nt], perm[nt:]
        null[i] = _best_f(pooled[:, t_idx], pooled[:, n_idx], hits)
    return PermutationTest(
        observed_f=observed, null_f=null, n_permutations=n_permutations
    )
