"""Classifier accuracy metrics with 95% confidence intervals.

Sensitivity = TP / (TP + FN) on tumor samples; specificity = TN /
(TN + FP) on normal samples.  Intervals use the Wilson score method,
the standard choice for binomial proportions at the small sample sizes
of the per-cancer test splits (Fig. 9 error bars).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["wilson_interval", "sensitivity_specificity", "ClassifierPerformance"]

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return max(0.0, center - half), min(1.0, center + half)


@dataclass(frozen=True)
class ClassifierPerformance:
    """One cancer type's row in Fig. 9."""

    name: str
    sensitivity: float
    sensitivity_ci: tuple[float, float]
    specificity: float
    specificity_ci: tuple[float, float]
    n_tumor: int
    n_normal: int

    def describe(self) -> str:
        s_lo, s_hi = self.sensitivity_ci
        p_lo, p_hi = self.specificity_ci
        return (
            f"{self.name}: sens={self.sensitivity:.2f} [{s_lo:.2f},{s_hi:.2f}] "
            f"spec={self.specificity:.2f} [{p_lo:.2f},{p_hi:.2f}] "
            f"(n={self.n_tumor}/{self.n_normal})"
        )


def sensitivity_specificity(
    tumor_pred: np.ndarray,
    normal_pred: np.ndarray,
    name: str = "",
) -> ClassifierPerformance:
    """Score predictions (True = tumor) on labeled tumor / normal sets."""
    tumor_pred = np.asarray(tumor_pred, dtype=bool)
    normal_pred = np.asarray(normal_pred, dtype=bool)
    tp = int(tumor_pred.sum())
    tn = int((~normal_pred).sum())
    nt, nn = tumor_pred.size, normal_pred.size
    if nt == 0 or nn == 0:
        raise ValueError("need at least one tumor and one normal sample")
    return ClassifierPerformance(
        name=name,
        sensitivity=tp / nt,
        sensitivity_ci=wilson_interval(tp, nt),
        specificity=tn / nn,
        specificity_ci=wilson_interval(tn, nn),
        n_tumor=nt,
        n_normal=nn,
    )
