"""Evaluation: the multi-hit classifier, accuracy metrics, gene analysis."""

from repro.analysis.classifier import MultiHitClassifier
from repro.analysis.metrics import (
    ClassifierPerformance,
    sensitivity_specificity,
    wilson_interval,
)
from repro.analysis.coverage import (
    CoverageCurve,
    cover_quality,
    coverage_curve,
    greedy_bound,
)
from repro.analysis.controls import PermutationTest, permutation_test_best_f
from repro.analysis.overlap import (
    GeneRanking,
    combination_jaccard,
    gene_recurrence,
    rank_genes,
)

__all__ = [
    "MultiHitClassifier",
    "ClassifierPerformance",
    "sensitivity_specificity",
    "wilson_interval",
    "PermutationTest",
    "permutation_test_best_f",
    "CoverageCurve",
    "coverage_curve",
    "cover_quality",
    "greedy_bound",
    "GeneRanking",
    "combination_jaccard",
    "gene_recurrence",
    "rank_genes",
]
