"""Cross-combination and cross-cancer gene analysis.

The paper's Discussion inspects which genes recur in the identified
combinations (IDH1 appearing as a known driver, MUC6 as a recurring
passenger).  These helpers quantify that structure: per-gene recurrence
across a result's combinations, overlap between results from different
cancer types, and a driver-likelihood ranking that contrasts a gene's
tumor-combination recurrence against its background mutation frequency.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["gene_recurrence", "combination_jaccard", "GeneRanking", "rank_genes"]


def gene_recurrence(gene_sets: Sequence[Sequence[int]]) -> Counter:
    """How many combinations each gene appears in."""
    counter: Counter = Counter()
    for combo in gene_sets:
        counter.update(set(combo))
    return counter


def combination_jaccard(
    a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
) -> float:
    """Jaccard similarity of the gene universes of two result sets."""
    ga = {g for combo in a for g in combo}
    gb = {g for combo in b for g in combo}
    if not ga and not gb:
        return 1.0
    return len(ga & gb) / len(ga | gb)


@dataclass(frozen=True)
class GeneRanking:
    """One gene's driver-likelihood evidence."""

    gene: int
    recurrence: int  # combinations containing it
    tumor_frequency: float
    normal_frequency: float

    @property
    def enrichment(self) -> float:
        """Tumor/normal mutation-frequency ratio (passengers sit near 1)."""
        return self.tumor_frequency / max(self.normal_frequency, 1e-9)


def rank_genes(
    gene_sets: Sequence[Sequence[int]],
    tumor_dense: np.ndarray,
    normal_dense: np.ndarray,
) -> list[GeneRanking]:
    """Rank a result's genes by (recurrence, enrichment), best first.

    High recurrence + high tumor/normal enrichment is the IDH1 signature;
    high recurrence with enrichment near 1 is the MUC6 (passenger)
    signature the paper warns about.
    """
    tumor_dense = np.asarray(tumor_dense, dtype=bool)
    normal_dense = np.asarray(normal_dense, dtype=bool)
    recurrence = gene_recurrence(gene_sets)
    t_freq = tumor_dense.mean(axis=1)
    n_freq = normal_dense.mean(axis=1)
    rankings = [
        GeneRanking(
            gene=g,
            recurrence=count,
            tumor_frequency=float(t_freq[g]),
            normal_frequency=float(n_freq[g]),
        )
        for g, count in recurrence.items()
    ]
    rankings.sort(key=lambda r: (-r.recurrence, -r.enrichment, r.gene))
    return rankings
