"""Vectorized single-GPU search engine.

Mirrors the CUDA kernel structure: a contiguous range of linear thread
ids is processed level by level (all threads at tetrahedral level ``m``
share the same inner-loop extent), with each thread's fixed-gene rows
AND-reduced once (the MemOpt prefetch) and broadcast against a table of
inner-combination AND rows.  Scores are bit-exact with the sequential
reference; ties resolve to the lexicographically smallest gene tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.combinatorics.decode import combos_from_linear, top_index_array
from repro.core.combination import MultiHitCombination, better
from repro.core.fscore import FScoreParams, fscore
from repro.core.kernels import KernelCounters, best_of, score_combos
from repro.core.memopt import MemoryConfig, global_word_reads
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_range, total_threads

__all__ = ["SingleGpuEngine", "best_in_thread_range"]

# Soft cap on elements per broadcast chunk (threads x inner x words).
_CHUNK_ELEMENTS = 1 << 22


def _and_reduce_rows(matrix: BitMatrix, combos: np.ndarray) -> np.ndarray:
    """AND-reduce matrix rows for each combination row; shape (B, W)."""
    out = matrix.words[combos[:, 0]].copy()
    for c in range(1, combos.shape[1]):
        np.bitwise_and(out, matrix.words[combos[:, c]], out=out)
    return out


def _lexmin_rows(rows: np.ndarray) -> np.ndarray:
    """Lexicographically smallest row of an int matrix."""
    order = np.lexsort(tuple(rows[:, c] for c in range(rows.shape[1] - 1, -1, -1)))
    return rows[order[0]]


def best_in_thread_range(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None" = None,
    memory: "MemoryConfig | None" = None,
) -> "MultiHitCombination | None":
    """Best combination among those owned by threads ``[lam_start, lam_end)``.

    A thread owns every ``hits``-combination formed by its decoded
    ``flattened``-tuple plus ``inner`` further genes above its top index.
    """
    if tumor.n_genes != g or normal.n_genes != g:
        raise ValueError("matrix gene count must match g")
    lam_end = min(lam_end, total_threads(scheme, g))
    if lam_end <= lam_start:
        return None
    f_ord = scheme.flattened
    d = scheme.inner

    best: "MultiHitCombination | None" = None
    scored = 0  # combinations scored by this call (traffic epilogue input)

    if d == 0:
        # Threads == combinations: decode and score directly.  Traffic is
        # metered once in the shared epilogue below, so the kernel's own
        # word_reads metering is disabled here (passing ``counters`` would
        # count the same reads a second time).
        for start in range(lam_start, lam_end, _CHUNK_ELEMENTS):
            end = min(start + _CHUNK_ELEMENTS, lam_end)
            combos = combos_from_linear(np.arange(start, end), f_ord)
            fvals, tp, tn = score_combos(tumor, normal, combos, params, None)
            scored += int(fvals.size)
            best = better(best, best_of(combos, fvals, tp, tn))
        return _metered(
            best, scored, scheme, g, tumor, normal, lam_start, lam_end, counters, memory
        )

    lo_top = int(top_index_array(np.asarray([lam_start]), f_ord)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f_ord)[0])

    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        t_lo, t_hi = max(a, lam_start), min(b, lam_end)
        if t_hi <= t_lo:
            continue
        n_inner_genes = g - 1 - m
        if n_inner_genes < d:
            continue  # threads at this level have empty inner loops
        # Inner-combination AND tables over genes (m+1 .. g-1).
        inner = combos_from_linear(
            np.arange(_n_combos(n_inner_genes, d)), d
        ) + (m + 1)
        inner_t = _and_reduce_rows(tumor, inner)
        inner_n = _and_reduce_rows(normal, inner)
        n_l = inner.shape[0]
        w = tumor.n_words + normal.n_words
        chunk = max(1, _CHUNK_ELEMENTS // max(1, n_l * max(w, 1)))
        for start in range(t_lo, t_hi, chunk):
            end = min(start + chunk, t_hi)
            tuples = combos_from_linear(np.arange(start, end), f_ord)
            base_t = _and_reduce_rows(tumor, tuples)
            base_n = _and_reduce_rows(normal, tuples)
            # (B, L) popcounts via broadcast AND.
            tp = (
                np.bitwise_count(base_t[:, None, :] & inner_t[None, :, :])
                .sum(axis=2)
                .astype(np.int64)
            )
            cn = (
                np.bitwise_count(base_n[:, None, :] & inner_n[None, :, :])
                .sum(axis=2)
                .astype(np.int64)
            )
            tn = params.n_normal - cn
            fvals = fscore(tp, tn, params)
            fmax = fvals.max()
            scored += int(fvals.size)
            cand: "MultiHitCombination | None" = None
            if best is None or fmax >= best.f:
                ties = np.argwhere(fvals == fmax)
                rows = np.concatenate(
                    [tuples[ties[:, 0]], inner[ties[:, 1]]], axis=1
                )
                genes = _lexmin_rows(rows)
                # Recover tp/tn of the winner from its tie position.
                first = ties[
                    np.flatnonzero(
                        (rows == genes).all(axis=1)
                    )[0]
                ]
                cand = MultiHitCombination(
                    genes=tuple(int(x) for x in genes),
                    f=float(fmax),
                    tp=int(tp[first[0], first[1]]),
                    tn=int(tn[first[0], first[1]]),
                )
            best = better(best, cand)

    return _metered(
        best, scored, scheme, g, tumor, normal, lam_start, lam_end, counters, memory
    )


def _metered(
    best: "MultiHitCombination | None",
    scored: int,
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None",
    memory: "MemoryConfig | None",
) -> "MultiHitCombination | None":
    """Meter the call's work and traffic exactly once, identically for the
    ``d == 0`` and ``d > 0`` paths.

    ``word_reads`` follows the memory-optimization model when ``memory``
    is given; otherwise it is the unoptimized kernel traffic (every
    combination reads all ``hits`` rows).  The two agree whenever no
    prefetch applies, so the MemOpt experiments see path-independent
    counts on equivalent grids.
    """
    if counters is None:
        return best
    w = tumor.n_words + normal.n_words
    counters.combos_scored += scored
    counters.word_ops += scored * (scheme.hits - 1) * w
    if memory is not None:
        counters.word_reads += global_word_reads(
            scheme, g, w, lam_start, lam_end, memory
        )
    else:
        counters.word_reads += scored * scheme.hits * w
    return best


def _n_combos(n: int, k: int) -> int:
    import math

    return math.comb(n, k) if n >= k else 0


@dataclass
class SingleGpuEngine:
    """Convenience wrapper: one simulated GPU searching a thread range.

    The distributed engine instantiates one of these per GPU partition;
    used standalone it searches the whole grid (the "single V100" baseline
    configuration of the prior paper).
    """

    scheme: Scheme
    memory: MemoryConfig = MemoryConfig()

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        lam_start: int = 0,
        lam_end: "int | None" = None,
        counters: "KernelCounters | None" = None,
    ) -> "MultiHitCombination | None":
        g = tumor.n_genes
        if lam_end is None:
            lam_end = total_threads(self.scheme, g)
        return best_in_thread_range(
            self.scheme,
            g,
            tumor,
            normal,
            params,
            lam_start,
            lam_end,
            counters=counters,
            memory=self.memory,
        )
