"""Vectorized single-GPU search engine.

Mirrors the CUDA kernel structure: a contiguous range of linear thread
ids is processed level by level (all threads at tetrahedral level ``m``
share the same inner-loop extent), with each thread's fixed-gene rows
AND-reduced once (the MemOpt prefetch) and broadcast against a table of
inner-combination AND rows.  Scores are bit-exact with the sequential
reference; ties resolve to the lexicographically smallest gene tuple.

The scan is *fused and batched*: :func:`_scan_blocks` scores an entire
run of λ-adjacent blocks in one pass, decoding each stride of thread ids
exactly once (``combos_from_linear`` per stride, not per block) and
folding per-λ maxima into per-block maxima with a segmented reduction.
The AND → popcount inner product goes through the word-stride fused
kernels of :mod:`repro.core.kernels`, so no ``(B, L, n_words)``
intermediate is ever materialized.

``sparse=True`` layers the sparsity-driven mechanisms on top (still
bit-identical winners): each matrix's
:class:`~repro.bitmatrix.sparsity.SparsityIndex` lets the fused passes
skip stride slices whose nonzero-mask intersection is empty, the
λ-lexicographic decode order shares one prefix AND across each run of
consecutive tuples (columns ``1:`` are constant within a run), and a run
whose *tumor* prefix AND is already all-zero is resolved wholesale —
``TP = 0`` exactly — whenever the incumbent's F strictly exceeds the
``TP = 0`` ceiling ``fscore(0, Nn)``.  Skipped content is reported at
the ceiling, a sound upper bound, so folded block maxima remain valid
bounds for the lazy-greedy table (see DESIGN §15 for the soundness
argument).  Traffic on the sparse path is metered as actually gathered,
with ``word_reads_skipped`` carrying the complement of the dense charge.

When a :class:`repro.core.bounds.BoundTable` is supplied the engine takes
the lazy-greedy fast path instead: super-blocks are visited in descending
aggregate-bound order, and a super-block whose every member is stamped
below the incumbent is skipped in one step without touching per-block
metadata.  Surviving supers fall back to per-block checks, and their
non-skipped members — λ-adjacent by construction — are scanned as single
fused multi-block runs.  Because skipping requires the bound to be
*strictly* below the incumbent F, and the incumbent is maintained with
the tuple-comparing :func:`repro.core.combination.better`, the winner —
F, TP, TN, and the lexicographic tie rule — is bit-identical to the
unpruned scan regardless of visitation order or run batching.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.sparsity import stride_any_mask
from repro.combinatorics.decode import combos_from_linear, top_index_array
from repro.core.combination import MultiHitCombination, better
from repro.core.fscore import FScoreParams, fscore
from repro.core.kernels import (
    KernelCounters,
    _lexmin_rows,
    best_of,
    fused_pair_popcount,
    resolve_word_stride,
    score_combos,
    tp_zero_ceiling,
)
from repro.core.memopt import MemoryConfig, fused_word_reads, global_word_reads
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_range, total_threads

__all__ = ["SingleGpuEngine", "best_in_thread_range"]

# Soft cap on elements per broadcast chunk (threads x inner x words).
_CHUNK_ELEMENTS = 1 << 22


def _and_reduce_rows(matrix: BitMatrix, combos: np.ndarray) -> np.ndarray:
    """AND-reduce matrix rows for each combination row; shape (B, W).

    The fancy-indexed gather already materializes a fresh array, so the
    in-place ANDs below never touch the matrix rows themselves.
    """
    out = matrix.words[combos[:, 0]]
    for c in range(1, combos.shape[1]):
        np.bitwise_and(out, matrix.words[combos[:, c]], out=out)
    return out


def _and_reduce_rows_prefix(
    matrix: BitMatrix, combos: np.ndarray, traffic: "KernelCounters | None"
) -> np.ndarray:
    """:func:`_and_reduce_rows` with shared-prefix AND caching.

    λ-decode order makes consecutive rows share columns ``1:``; the
    prefix AND is computed once per run and each member costs one more
    row AND, amortizing gather traffic ~``h×``.  ``traffic`` meters the
    words actually gathered and the cache hits.
    """
    b, h = combos.shape
    w = matrix.n_words
    if h == 1:
        out = matrix.words[combos[:, 0]]  # gather copies
        if traffic is not None:
            traffic.word_reads += b * w
        return out
    out = np.empty((b, w), dtype=np.uint64)
    change = np.any(combos[1:, 1:] != combos[:-1, 1:], axis=1)
    starts = np.concatenate(([0], np.flatnonzero(change) + 1, [b]))
    for i in range(len(starts) - 1):
        lo, hi = int(starts[i]), int(starts[i + 1])
        pre = matrix.words[int(combos[lo, 1])].copy()
        for c in combos[lo, 2:]:
            np.bitwise_and(pre, matrix.words[int(c)], out=pre)
        np.bitwise_and(
            matrix.words[combos[lo:hi, 0]], pre[None, :], out=out[lo:hi]
        )
        if traffic is not None:
            traffic.word_reads += (h - 1 + (hi - lo)) * w
            traffic.word_ops += (h - 2 + (hi - lo)) * w
            traffic.prefix_and_hits += (hi - lo) - 1
    return out


def _run_count(mask: np.ndarray) -> int:
    """Number of maximal runs of True in a boolean vector."""
    if mask.size == 0:
        return 0
    return int(mask[0]) + int(np.count_nonzero(mask[1:] & ~mask[:-1]))


def _fold_block_max(
    block_max: np.ndarray, cut: np.ndarray, start: int, lam_max: np.ndarray
) -> None:
    """Fold per-λ maxima for λ in ``[start, start + len)`` into per-block
    maxima, segmented at the ``cut`` boundaries.

    ``np.maximum.reduceat`` over the in-chunk offsets of the overlapped
    cut points gives each block's exact maximum even when one decode
    stride spans several blocks — the reduction that lets the fused scan
    decode once per stride instead of once per block.  (With zero-prefix
    run skipping the folded value for skipped λ is the ``TP = 0``
    ceiling — an upper bound rather than the exact maximum, which is all
    a bound table needs.)
    """
    end = start + len(lam_max)
    k0 = int(np.searchsorted(cut, start, side="right")) - 1
    k1 = int(np.searchsorted(cut, end - 1, side="right")) - 1
    offsets = np.maximum(cut[k0 : k1 + 1], start) - start
    seg_max = np.maximum.reduceat(lam_max, offsets)
    np.maximum(block_max[k0 : k1 + 1], seg_max, out=block_max[k0 : k1 + 1])


def _scan_blocks(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    cut_points,
    best: "MultiHitCombination | None" = None,
    inner_cache: "dict | None" = None,
    counters: "KernelCounters | None" = None,
    sparse: bool = False,
    word_stride: "int | None" = None,
    traffic: "KernelCounters | None" = None,
) -> tuple["MultiHitCombination | None", int, np.ndarray]:
    """Exhaustively score threads ``[cut_points[0], cut_points[-1])``.

    One fused pass over a run of λ-adjacent blocks.  Returns
    ``(best, scored, block_max)`` where ``best`` folds the supplied
    incumbent in via the tuple-comparing tie rule (so callers may chain
    scans over runs in any order) and ``block_max[k]`` is a valid upper
    bound on — and without zero-prefix skipping the exact maximum of — F
    over ``[cut_points[k], cut_points[k+1])`` alone, the quantity a
    bound table stores.  ``inner_cache`` memoizes per-level inner AND
    tables across the runs of one call (the matrices are fixed within a
    call).  ``counters`` here meters only the fusion-diagnostic fields
    (``decode_strides``, ``inner_tables_built``); work and traffic
    accounting stays with the caller — except on the sparse path, where
    the words actually gathered (and the sparse-skip diagnostics) land
    in ``traffic`` for the caller to fold.
    """
    cut = np.asarray(cut_points, dtype=np.int64)
    lam_start, lam_end = int(cut[0]), int(cut[-1])
    block_max = np.full(len(cut) - 1, float("-inf"))
    f_ord = scheme.flattened
    d = scheme.inner
    scored = 0
    ws = resolve_word_stride(word_stride)
    ceiling = tp_zero_ceiling(params)

    if d == 0:
        # Threads == combinations: decode and score directly.  Dense
        # traffic is metered by the caller (passing counters would
        # double-count); sparse traffic is actual and lands in
        # ``traffic``.
        for start in range(lam_start, lam_end, _CHUNK_ELEMENTS):
            end = min(start + _CHUNK_ELEMENTS, lam_end)
            combos = combos_from_linear(np.arange(start, end), f_ord)
            if counters is not None:
                counters.decode_strides += 1
            fvals, tp, tn = score_combos(
                tumor, normal, combos, params,
                traffic if sparse else None,
                word_stride=ws,
                sparse=sparse,
                skip_below=(
                    best.f if sparse and best is not None else None
                ),
            )
            scored += int(fvals.size)
            if fvals.size:
                _fold_block_max(block_max, cut, start, fvals)
            best = better(best, best_of(combos, fvals, tp, tn))
        return best, scored, block_max

    lo_top = int(top_index_array(np.asarray([lam_start]), f_ord)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f_ord)[0])

    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        t_lo, t_hi = max(a, lam_start), min(b, lam_end)
        if t_hi <= t_lo:
            continue
        n_inner_genes = g - 1 - m
        if n_inner_genes < d:
            continue  # threads at this level have empty inner loops
        # Inner-combination AND tables over genes (m+1 .. g-1).
        cached = inner_cache.get(m) if inner_cache is not None else None
        if cached is None:
            inner = combos_from_linear(
                np.arange(_n_combos(n_inner_genes, d)), d
            ) + (m + 1)
            if sparse:
                inner_t = _and_reduce_rows_prefix(tumor, inner, traffic)
                inner_n = _and_reduce_rows_prefix(normal, inner, traffic)
                inner_masks = (
                    stride_any_mask(inner_t, ws),
                    stride_any_mask(inner_n, ws),
                )
            else:
                inner_t = _and_reduce_rows(tumor, inner)
                inner_n = _and_reduce_rows(normal, inner)
                inner_masks = None
            if counters is not None:
                counters.inner_tables_built += 1
            if inner_cache is not None:
                inner_cache[m] = (inner, inner_t, inner_n, inner_masks)
        else:
            inner, inner_t, inner_n, inner_masks = cached
        n_l = inner.shape[0]
        w = tumor.n_words + normal.n_words
        chunk = max(1, _CHUNK_ELEMENTS // max(1, n_l * max(w, 1)))
        for start in range(t_lo, t_hi, chunk):
            end = min(start + chunk, t_hi)
            tuples = combos_from_linear(np.arange(start, end), f_ord)
            if counters is not None:
                counters.decode_strides += 1
            if sparse:
                tp, tn = _pair_scores_sparse(
                    tumor, normal, tuples, inner_t, inner_n, inner_masks,
                    params, best, ceiling, ws, traffic,
                )
            else:
                base_t = _and_reduce_rows(tumor, tuples)
                base_n = _and_reduce_rows(normal, tuples)
                # (B, L) popcounts, word-stride fused (no (B, L, W) cube).
                tp = fused_pair_popcount(base_t, inner_t, ws)
                tn = params.n_normal - fused_pair_popcount(base_n, inner_n, ws)
            fvals = fscore(tp, tn, params)
            fmax = fvals.max()
            scored += int(fvals.size)
            _fold_block_max(block_max, cut, start, fvals.max(axis=1))
            cand: "MultiHitCombination | None" = None
            if best is None or fmax >= best.f:
                ties = np.argwhere(fvals == fmax)
                rows = np.concatenate(
                    [tuples[ties[:, 0]], inner[ties[:, 1]]], axis=1
                )
                genes = _lexmin_rows(rows)
                # Recover tp/tn of the winner from its tie position.
                first = ties[
                    np.flatnonzero(
                        (rows == genes).all(axis=1)
                    )[0]
                ]
                cand = MultiHitCombination(
                    genes=tuple(int(x) for x in genes),
                    f=float(fmax),
                    tp=int(tp[first[0], first[1]]),
                    tn=int(tn[first[0], first[1]]),
                )
            best = better(best, cand)

    return best, scored, block_max


def _pair_scores_sparse(
    tumor: BitMatrix,
    normal: BitMatrix,
    tuples: np.ndarray,
    inner_t: np.ndarray,
    inner_n: np.ndarray,
    inner_masks: tuple,
    params: FScoreParams,
    best: "MultiHitCombination | None",
    ceiling: float,
    ws: int,
    traffic: "KernelCounters | None",
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse ``(B, L)`` TP / TN for one decode chunk of the nested scan.

    Base rows are built with shared-prefix caching; threads whose tumor
    base AND is all-zero have ``TP = 0`` for every inner combination, so
    when the incumbent strictly beats the ``TP = 0`` ceiling those rows
    skip the normal-side gather and both broadcasts entirely —
    ``TN = Nn`` is reported for them, folding to exactly the ceiling
    (a sound upper bound that can never displace or tie the incumbent).
    """
    mask_t, mask_n = inner_masks
    base_t = _and_reduce_rows_prefix(tumor, tuples, traffic)
    drop = None
    if best is not None and best.f > ceiling:
        nz = base_t.any(axis=1)
        if not nz.all():
            drop = ~nz
    if drop is None:
        base_n = _and_reduce_rows_prefix(normal, tuples, traffic)
        tp = fused_pair_popcount(
            base_t, inner_t, ws, stride_any_mask(base_t, ws), mask_t, traffic
        )
        n_hits = fused_pair_popcount(
            base_n, inner_n, ws, stride_any_mask(base_n, ws), mask_n, traffic
        )
        return tp, params.n_normal - n_hits
    kept = np.flatnonzero(~drop)
    tp = np.zeros((tuples.shape[0], inner_t.shape[0]), dtype=np.int64)
    n_hits = np.zeros_like(tp)
    if kept.size:
        bt = base_t[kept]
        bn = _and_reduce_rows_prefix(normal, tuples[kept], traffic)
        tp[kept] = fused_pair_popcount(
            bt, inner_t, ws, stride_any_mask(bt, ws), mask_t, traffic
        )
        n_hits[kept] = fused_pair_popcount(
            bn, inner_n, ws, stride_any_mask(bn, ws), mask_n, traffic
        )
    if traffic is not None:
        traffic.zero_prefix_runs_skipped += _run_count(drop)
    return tp, params.n_normal - n_hits


def _scan_range(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    best: "MultiHitCombination | None" = None,
    inner_cache: "dict | None" = None,
    counters: "KernelCounters | None" = None,
    sparse: bool = False,
    word_stride: "int | None" = None,
    traffic: "KernelCounters | None" = None,
) -> tuple["MultiHitCombination | None", int, float]:
    """Single-range convenience wrapper around :func:`_scan_blocks`."""
    best, scored, block_max = _scan_blocks(
        scheme, g, tumor, normal, params, (lam_start, lam_end),
        best, inner_cache, counters,
        sparse=sparse, word_stride=word_stride, traffic=traffic,
    )
    return best, scored, float(block_max[0])


def best_in_thread_range(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None" = None,
    memory: "MemoryConfig | None" = None,
    bounds: "object | None" = None,
    iteration: int = 0,
    sparse: bool = False,
    word_stride: "int | None" = None,
) -> "MultiHitCombination | None":
    """Best combination among those owned by threads ``[lam_start, lam_end)``.

    A thread owns every ``hits``-combination formed by its decoded
    ``flattened``-tuple plus ``inner`` further genes above its top index.

    ``bounds`` (a :class:`repro.core.bounds.BoundTable` whose block
    boundaries align with this range) switches on the lazy-greedy pruned
    path; the table is mutated in place — scored blocks are refreshed and
    stamped with ``iteration``.  ``sparse`` switches on the
    sparsity-driven scoring path; ``word_stride`` overrides the fused
    slice width (any positive int here; the solver enforces its
    multiple-of-8 policy).  The winner is bit-identical across all four
    combinations of those switches; only the work counters differ.
    """
    if tumor.n_genes != g or normal.n_genes != g:
        raise ValueError("matrix gene count must match g")
    lam_end = min(lam_end, total_threads(scheme, g))
    if lam_end <= lam_start:
        return None

    if bounds is not None:
        return _best_pruned(
            scheme, g, tumor, normal, params, lam_start, lam_end,
            bounds, iteration, counters, memory, sparse, word_stride,
        )

    traffic = KernelCounters() if sparse else None
    best, scored, _ = _scan_range(
        scheme, g, tumor, normal, params, lam_start, lam_end,
        counters=counters, sparse=sparse, word_stride=word_stride,
        traffic=traffic,
    )
    return _metered(
        best, scored, scheme, g, tumor, normal, lam_start, lam_end, counters,
        memory, traffic,
    )


def _best_pruned(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    bounds,
    iteration: int,
    counters: "KernelCounters | None",
    memory: "MemoryConfig | None",
    sparse: bool = False,
    word_stride: "int | None" = None,
) -> "MultiHitCombination | None":
    """Hierarchical CELF visitation over the fused multi-block scan.

    Super-blocks are visited in descending aggregate-bound order; one
    whose every member is stamped below the incumbent is skipped in a
    single check.  Within a surviving super, members are walked in λ
    order so the non-skipped ones accumulate into contiguous *runs*, each
    scanned by one :func:`_scan_blocks` call (one decode per stride
    across the whole run).  While no incumbent exists, runs flush after a
    single block so the skip checks get a real F to compare against as
    early as possible.

    Soundness: a skipped block's stored bound is a valid upper bound on
    the F it could achieve at some earlier iteration (the exact maximum
    when it was fully scored; the ``TP = 0`` ceiling where zero-prefix
    runs were resolved wholesale), F is non-increasing across iterations
    (TP shrinks, TN is fixed, float rounding is monotone), and skipping
    demands ``bound < incumbent.f`` *strictly* — so a skipped block (or
    super-block, via the max aggregate) holds neither the winner nor an
    equal-F tie.

    Traffic on this path is metered with :func:`fused_word_reads` — the
    fused kernel gathers each thread's fixed rows once and each level's
    inner AND-table once per call, which subsumes the MemOpt prefetch
    flags; ``memory.bitsplice`` still matters physically through the
    matrix word width.  With ``sparse`` the meter switches to the words
    actually gathered, and the fused model's charge minus the actual
    traffic lands in ``word_reads_skipped``.
    """
    i0, i1 = bounds.block_slice(lam_start, lam_end)
    w = tumor.n_words + normal.n_words
    best: "MultiHitCombination | None" = None
    inner_cache: dict = {}
    charged_levels: set = set()

    def flush(run: list) -> None:
        nonlocal best
        cuts = [bounds.block_range(b)[0] for b in run]
        cuts.append(bounds.block_range(run[-1])[1])
        traffic = KernelCounters() if sparse else None
        best, scored, block_max = _scan_blocks(
            scheme, g, tumor, normal, params, cuts,
            best, inner_cache, counters,
            sparse=sparse, word_stride=word_stride, traffic=traffic,
        )
        for k, b in enumerate(run):
            bounds.refresh(b, float(block_max[k]), iteration)
        if counters is not None:
            counters.blocks_scanned += len(run)
            counters.combos_scored += scored
            model = fused_word_reads(
                scheme, g, w, cuts[0], cuts[-1], charged_levels
            )
            if traffic is not None:
                _fold_sparse_traffic(counters, traffic, model)
            else:
                counters.word_ops += scored * (scheme.hits - 1) * w
                counters.word_reads += model

    for s in map(int, bounds.super_visit_order(i0, i1)):
        a, b_hi = bounds.super_block_range(s)
        lo_b, hi_b = max(a, i0), min(b_hi, i1)
        if lo_b >= hi_b:
            continue
        whole = lo_b == a and hi_b == b_hi
        if whole and best is not None and bounds.can_skip_super(s, best.f):
            if counters is not None:
                counters.supers_skipped += 1
                counters.blocks_skipped += hi_b - lo_b
                counters.combos_pruned += bounds.super_work(s)
            continue
        run: list = []
        for b in range(lo_b, hi_b):
            if best is not None and bounds.can_skip(b, best.f):
                if run:
                    flush(run)
                    run = []
                if counters is not None:
                    counters.blocks_skipped += 1
                    counters.combos_pruned += bounds.block_work(b)
                continue
            run.append(b)
            if best is None:
                flush(run)
                run = []
        if run:
            flush(run)
    return best


def _fold_sparse_traffic(
    counters: "KernelCounters",
    traffic: "KernelCounters",
    model_reads: int,
) -> None:
    """Fold one sparse scan's actual traffic into the run counters.

    ``word_reads`` gets the words actually gathered; the configured dense
    accounting's charge minus that lands in ``word_reads_skipped``, so
    ``word_reads + word_reads_skipped`` reproduces the dense-path charge
    for the identical scan exactly (the closure identity the tests pin).
    ``combos_scored`` is intentionally not folded — the caller charges
    the returned ``scored`` exactly as on the dense path.
    """
    counters.word_reads += traffic.word_reads
    counters.word_ops += traffic.word_ops
    counters.word_reads_skipped += max(0, model_reads - traffic.word_reads)
    counters.strides_skipped_sparse += traffic.strides_skipped_sparse
    counters.prefix_and_hits += traffic.prefix_and_hits
    counters.zero_prefix_runs_skipped += traffic.zero_prefix_runs_skipped


def _metered(
    best: "MultiHitCombination | None",
    scored: int,
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None",
    memory: "MemoryConfig | None",
    traffic: "KernelCounters | None" = None,
) -> "MultiHitCombination | None":
    """Meter the call's work and traffic exactly once, identically for the
    ``d == 0`` and ``d > 0`` paths.

    ``word_reads`` follows the memory-optimization model when ``memory``
    is given; otherwise it is the unoptimized kernel traffic (every
    combination reads all ``hits`` rows).  The two agree whenever no
    prefetch applies, so the MemOpt experiments see path-independent
    counts on equivalent grids.  A sparse scan's ``traffic`` switches
    the charge to the actual gathered words, with the model charge minus
    actual landing in ``word_reads_skipped``.
    """
    if counters is None:
        return best
    w = tumor.n_words + normal.n_words
    counters.combos_scored += scored
    if memory is not None:
        model = global_word_reads(scheme, g, w, lam_start, lam_end, memory)
    else:
        model = scored * scheme.hits * w
    if traffic is not None:
        _fold_sparse_traffic(counters, traffic, model)
    else:
        counters.word_ops += scored * (scheme.hits - 1) * w
        counters.word_reads += model
    return best


def _n_combos(n: int, k: int) -> int:
    import math

    return math.comb(n, k) if n >= k else 0


@dataclass
class SingleGpuEngine:
    """Convenience wrapper: one simulated GPU searching a thread range.

    The distributed engine instantiates one of these per GPU partition;
    used standalone it searches the whole grid (the "single V100" baseline
    configuration of the prior paper).  ``sparse`` / ``word_stride``
    select the sparsity-driven scoring path and the fused slice width
    (``None`` = the kernel default); winners are bit-identical either
    way.
    """

    scheme: Scheme
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    sparse: bool = False
    word_stride: "int | None" = None

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        lam_start: int = 0,
        lam_end: "int | None" = None,
        counters: "KernelCounters | None" = None,
        bounds: "object | None" = None,
        iteration: int = 0,
    ) -> "MultiHitCombination | None":
        g = tumor.n_genes
        if lam_end is None:
            lam_end = total_threads(self.scheme, g)
        return best_in_thread_range(
            self.scheme,
            g,
            tumor,
            normal,
            params,
            lam_start,
            lam_end,
            counters=counters,
            memory=self.memory,
            bounds=bounds,
            iteration=iteration,
            sparse=self.sparse,
            word_stride=self.word_stride,
        )
