"""Vectorized single-GPU search engine.

Mirrors the CUDA kernel structure: a contiguous range of linear thread
ids is processed level by level (all threads at tetrahedral level ``m``
share the same inner-loop extent), with each thread's fixed-gene rows
AND-reduced once (the MemOpt prefetch) and broadcast against a table of
inner-combination AND rows.  Scores are bit-exact with the sequential
reference; ties resolve to the lexicographically smallest gene tuple.

When a :class:`repro.core.bounds.BoundTable` is supplied the engine takes
the lazy-greedy fast path instead: blocks are visited in descending
stale-bound order, blocks whose stored bound cannot beat (or tie) the
incumbent are skipped outright, and every block actually scored has its
bound refreshed.  Because skipping requires the bound to be *strictly*
below the incumbent F, and the incumbent is maintained with the
tuple-comparing :func:`repro.core.combination.better`, the winner — F,
TP, TN, and the lexicographic tie rule — is bit-identical to the
unpruned scan regardless of visitation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.combinatorics.decode import combos_from_linear, top_index_array
from repro.core.combination import MultiHitCombination, better
from repro.core.fscore import FScoreParams, fscore
from repro.core.kernels import KernelCounters, best_of, score_combos
from repro.core.memopt import MemoryConfig, global_word_reads
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_range, total_threads

__all__ = ["SingleGpuEngine", "best_in_thread_range"]

# Soft cap on elements per broadcast chunk (threads x inner x words).
_CHUNK_ELEMENTS = 1 << 22


def _and_reduce_rows(matrix: BitMatrix, combos: np.ndarray) -> np.ndarray:
    """AND-reduce matrix rows for each combination row; shape (B, W).

    The fancy-indexed gather already materializes a fresh array, so the
    in-place ANDs below never touch the matrix rows themselves.
    """
    out = matrix.words[combos[:, 0]]
    for c in range(1, combos.shape[1]):
        np.bitwise_and(out, matrix.words[combos[:, c]], out=out)
    return out


def _lexmin_rows(rows: np.ndarray) -> np.ndarray:
    """Lexicographically smallest row of an int matrix."""
    order = np.lexsort(tuple(rows[:, c] for c in range(rows.shape[1] - 1, -1, -1)))
    return rows[order[0]]


def _scan_range(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    best: "MultiHitCombination | None" = None,
    inner_cache: "dict | None" = None,
) -> tuple["MultiHitCombination | None", int, float]:
    """Exhaustively score threads ``[lam_start, lam_end)``.

    Returns ``(best, scored, max_f)`` where ``best`` folds the supplied
    incumbent in via the tuple-comparing tie rule (so callers may chain
    scans over blocks in any order) and ``max_f`` is the exact maximum F
    over the scanned range alone — the quantity a bound table stores.
    ``inner_cache`` memoizes per-level inner AND tables across the blocks
    of one call (the matrices are fixed within a call).
    """
    f_ord = scheme.flattened
    d = scheme.inner
    scored = 0
    max_f = float("-inf")

    if d == 0:
        # Threads == combinations: decode and score directly.  Traffic is
        # metered by the caller, so the kernel's own word_reads metering
        # is disabled here (passing counters would double-count).
        for start in range(lam_start, lam_end, _CHUNK_ELEMENTS):
            end = min(start + _CHUNK_ELEMENTS, lam_end)
            combos = combos_from_linear(np.arange(start, end), f_ord)
            fvals, tp, tn = score_combos(tumor, normal, combos, params, None)
            scored += int(fvals.size)
            if fvals.size:
                max_f = max(max_f, float(fvals.max()))
            best = better(best, best_of(combos, fvals, tp, tn))
        return best, scored, max_f

    lo_top = int(top_index_array(np.asarray([lam_start]), f_ord)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f_ord)[0])

    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        t_lo, t_hi = max(a, lam_start), min(b, lam_end)
        if t_hi <= t_lo:
            continue
        n_inner_genes = g - 1 - m
        if n_inner_genes < d:
            continue  # threads at this level have empty inner loops
        # Inner-combination AND tables over genes (m+1 .. g-1).
        cached = inner_cache.get(m) if inner_cache is not None else None
        if cached is None:
            inner = combos_from_linear(
                np.arange(_n_combos(n_inner_genes, d)), d
            ) + (m + 1)
            inner_t = _and_reduce_rows(tumor, inner)
            inner_n = _and_reduce_rows(normal, inner)
            if inner_cache is not None:
                inner_cache[m] = (inner, inner_t, inner_n)
        else:
            inner, inner_t, inner_n = cached
        n_l = inner.shape[0]
        w = tumor.n_words + normal.n_words
        chunk = max(1, _CHUNK_ELEMENTS // max(1, n_l * max(w, 1)))
        for start in range(t_lo, t_hi, chunk):
            end = min(start + chunk, t_hi)
            tuples = combos_from_linear(np.arange(start, end), f_ord)
            base_t = _and_reduce_rows(tumor, tuples)
            base_n = _and_reduce_rows(normal, tuples)
            # (B, L) popcounts via broadcast AND.
            tp = (
                np.bitwise_count(base_t[:, None, :] & inner_t[None, :, :])
                .sum(axis=2)
                .astype(np.int64)
            )
            cn = (
                np.bitwise_count(base_n[:, None, :] & inner_n[None, :, :])
                .sum(axis=2)
                .astype(np.int64)
            )
            tn = params.n_normal - cn
            fvals = fscore(tp, tn, params)
            fmax = fvals.max()
            scored += int(fvals.size)
            max_f = max(max_f, float(fmax))
            cand: "MultiHitCombination | None" = None
            if best is None or fmax >= best.f:
                ties = np.argwhere(fvals == fmax)
                rows = np.concatenate(
                    [tuples[ties[:, 0]], inner[ties[:, 1]]], axis=1
                )
                genes = _lexmin_rows(rows)
                # Recover tp/tn of the winner from its tie position.
                first = ties[
                    np.flatnonzero(
                        (rows == genes).all(axis=1)
                    )[0]
                ]
                cand = MultiHitCombination(
                    genes=tuple(int(x) for x in genes),
                    f=float(fmax),
                    tp=int(tp[first[0], first[1]]),
                    tn=int(tn[first[0], first[1]]),
                )
            best = better(best, cand)

    return best, scored, max_f


def best_in_thread_range(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None" = None,
    memory: "MemoryConfig | None" = None,
    bounds: "object | None" = None,
    iteration: int = 0,
) -> "MultiHitCombination | None":
    """Best combination among those owned by threads ``[lam_start, lam_end)``.

    A thread owns every ``hits``-combination formed by its decoded
    ``flattened``-tuple plus ``inner`` further genes above its top index.

    ``bounds`` (a :class:`repro.core.bounds.BoundTable` whose block
    boundaries align with this range) switches on the lazy-greedy pruned
    path; the table is mutated in place — scored blocks are refreshed and
    stamped with ``iteration``.  The winner is bit-identical either way;
    only the work counters differ.
    """
    if tumor.n_genes != g or normal.n_genes != g:
        raise ValueError("matrix gene count must match g")
    lam_end = min(lam_end, total_threads(scheme, g))
    if lam_end <= lam_start:
        return None

    if bounds is not None:
        return _best_pruned(
            scheme, g, tumor, normal, params, lam_start, lam_end,
            bounds, iteration, counters, memory,
        )

    best, scored, _ = _scan_range(
        scheme, g, tumor, normal, params, lam_start, lam_end
    )
    return _metered(
        best, scored, scheme, g, tumor, normal, lam_start, lam_end, counters, memory
    )


def _best_pruned(
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    lam_start: int,
    lam_end: int,
    bounds,
    iteration: int,
    counters: "KernelCounters | None",
    memory: "MemoryConfig | None",
) -> "MultiHitCombination | None":
    """CELF-style block visitation: score high-bound blocks first, skip
    the rest once the incumbent provably dominates them.

    Soundness: a skipped block's stored bound is the exact maximum F it
    achieved at some earlier iteration, F is non-increasing across
    iterations (TP shrinks, TN is fixed, float rounding is monotone), and
    skipping demands ``bound < incumbent.f`` *strictly* — so a skipped
    block holds neither the winner nor an equal-F tie.
    """
    i0, i1 = bounds.block_slice(lam_start, lam_end)
    w = tumor.n_words + normal.n_words
    best: "MultiHitCombination | None" = None
    inner_cache: dict = {}
    for b in bounds.visit_order(i0, i1):
        if best is not None and bounds.can_skip(b, best.f):
            if counters is not None:
                counters.blocks_skipped += 1
                counters.combos_pruned += bounds.block_work(b)
            continue
        lo, hi = bounds.block_range(b)
        best, scored, max_f = _scan_range(
            scheme, g, tumor, normal, params, lo, hi, best, inner_cache
        )
        bounds.refresh(b, max_f, iteration)
        if counters is not None:
            counters.blocks_scanned += 1
            counters.combos_scored += scored
            counters.word_ops += scored * (scheme.hits - 1) * w
            if memory is not None:
                counters.word_reads += global_word_reads(
                    scheme, g, w, lo, hi, memory
                )
            else:
                counters.word_reads += scored * scheme.hits * w
    return best


def _metered(
    best: "MultiHitCombination | None",
    scored: int,
    scheme: Scheme,
    g: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    lam_start: int,
    lam_end: int,
    counters: "KernelCounters | None",
    memory: "MemoryConfig | None",
) -> "MultiHitCombination | None":
    """Meter the call's work and traffic exactly once, identically for the
    ``d == 0`` and ``d > 0`` paths.

    ``word_reads`` follows the memory-optimization model when ``memory``
    is given; otherwise it is the unoptimized kernel traffic (every
    combination reads all ``hits`` rows).  The two agree whenever no
    prefetch applies, so the MemOpt experiments see path-independent
    counts on equivalent grids.
    """
    if counters is None:
        return best
    w = tumor.n_words + normal.n_words
    counters.combos_scored += scored
    counters.word_ops += scored * (scheme.hits - 1) * w
    if memory is not None:
        counters.word_reads += global_word_reads(
            scheme, g, w, lam_start, lam_end, memory
        )
    else:
        counters.word_reads += scored * scheme.hits * w
    return best


def _n_combos(n: int, k: int) -> int:
    import math

    return math.comb(n, k) if n >= k else 0


@dataclass
class SingleGpuEngine:
    """Convenience wrapper: one simulated GPU searching a thread range.

    The distributed engine instantiates one of these per GPU partition;
    used standalone it searches the whole grid (the "single V100" baseline
    configuration of the prior paper).
    """

    scheme: Scheme
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        lam_start: int = 0,
        lam_end: "int | None" = None,
        counters: "KernelCounters | None" = None,
        bounds: "object | None" = None,
        iteration: int = 0,
    ) -> "MultiHitCombination | None":
        g = tumor.n_genes
        if lam_end is None:
            lam_end = total_threads(self.scheme, g)
        return best_in_thread_range(
            self.scheme,
            g,
            tumor,
            normal,
            params,
            lam_start,
            lam_end,
            counters=counters,
            memory=self.memory,
            bounds=bounds,
            iteration=iteration,
        )
