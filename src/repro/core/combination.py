"""The 20-byte combination record and deterministic tie-breaking.

Section III-E: a candidate is four ``int`` gene ids plus one ``float``
F value — 20 bytes.  The multi-stage reduction keeps one such record per
CUDA block, per GPU, and finally per MPI rank, which is what shrinks the
candidate list from terabytes to a handful of bytes on the wire.

Ties on F are broken toward the lexicographically smallest gene tuple so
every engine (sequential, vectorized, distributed, any schedule) returns
the identical winner — the property the equivalence tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "COMBO_DTYPE",
    "COMBO_RECORD_BYTES",
    "MultiHitCombination",
    "colex_rank",
    "better",
]

# Four gene ids + F, exactly as laid out on the GPU (20 bytes, packed).
COMBO_DTYPE = np.dtype(
    [("genes", np.int32, (4,)), ("f", np.float32)], align=False
)
COMBO_RECORD_BYTES = COMBO_DTYPE.itemsize
assert COMBO_RECORD_BYTES == 20


@dataclass(frozen=True, order=False)
class MultiHitCombination:
    """An ``h``-hit gene combination with its score breakdown."""

    genes: tuple[int, ...]
    f: float
    tp: int = 0
    tn: int = 0

    def __post_init__(self) -> None:
        g = tuple(int(x) for x in self.genes)
        object.__setattr__(self, "genes", g)
        if any(b <= a for a, b in zip(g, g[1:])):
            raise ValueError(f"genes must be strictly increasing, got {g}")

    @property
    def hits(self) -> int:
        return len(self.genes)

    def to_record(self) -> np.ndarray:
        """Pack into the 20-byte GPU record (pads genes to 4 with -1)."""
        rec = np.zeros(1, dtype=COMBO_DTYPE)
        padded = list(self.genes) + [-1] * (4 - len(self.genes))
        rec["genes"][0] = padded[:4]
        rec["f"][0] = self.f
        return rec[0]

    @classmethod
    def from_record(cls, rec: np.ndarray, tp: int = 0, tn: int = 0) -> "MultiHitCombination":
        genes = tuple(int(g) for g in rec["genes"] if g >= 0)
        return cls(genes=genes, f=float(rec["f"]), tp=tp, tn=tn)


def colex_rank(genes: Sequence[int]) -> int:
    """Combinatorial-number-system rank of a strictly increasing tuple."""
    return sum(math.comb(int(g), r + 1) for r, g in enumerate(genes))


def better(a: "MultiHitCombination | None", b: "MultiHitCombination | None") -> "MultiHitCombination | None":
    """Deterministic max: higher F wins; ties go to the smaller gene tuple."""
    if a is None:
        return b
    if b is None:
        return a
    if a.f != b.f:
        return a if a.f > b.f else b
    return a if a.genes <= b.genes else b
