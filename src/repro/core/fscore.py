"""The weighted-set-cover objective (Equation 1 of the paper).

    F = (alpha * TP + TN) / (Nt + Nn)

* ``TP`` — tumor samples carrying mutations in *all* genes of the
  combination (among the samples not yet covered by earlier iterations);
* ``TN`` — normal samples *not* carrying mutations in all genes;
* ``Nt`` / ``Nn`` — total tumor / normal sample counts (fixed
  denominators across greedy iterations);
* ``alpha = 0.1`` — penalty offsetting the algorithm's bias toward true
  positives relative to true negatives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DEFAULT_ALPHA", "FScoreParams", "fscore"]

DEFAULT_ALPHA = 0.1


@dataclass(frozen=True)
class FScoreParams:
    """Fixed per-run scoring parameters."""

    n_tumor: int
    n_normal: int
    alpha: float = DEFAULT_ALPHA

    def __post_init__(self) -> None:
        # n_tumor == 0 is legal (an already-covered / empty cohort solves
        # trivially with coverage 1.0); only negative counts are invalid.
        if self.n_tumor < 0:
            raise ValueError("n_tumor cannot be negative")
        if self.n_normal < 0:
            raise ValueError("n_normal cannot be negative")
        if self.alpha < 0:
            raise ValueError("alpha cannot be negative")

    @property
    def denominator(self) -> float:
        return float(self.n_tumor + self.n_normal)


def fscore(
    tp: "np.ndarray | float", tn: "np.ndarray | float", params: FScoreParams
) -> np.ndarray:
    """Vectorized Equation 1."""
    tp = np.asarray(tp, dtype=np.float64)
    tn = np.asarray(tn, dtype=np.float64)
    return (params.alpha * tp + tn) / params.denominator
