"""Reference sequential greedy solver (the pre-GPU algorithm of [15]).

Deliberately written as plain loops over ``itertools.combinations`` with
dense boolean matrices — slow, obviously correct, and the oracle every
vectorized/distributed engine is tested against.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams

__all__ = ["sequential_best_combo", "sequential_solve"]


def sequential_best_combo(
    tumor_dense: np.ndarray,
    normal_dense: np.ndarray,
    hits: int,
    params: FScoreParams,
    active_tumor: "np.ndarray | None" = None,
) -> "MultiHitCombination | None":
    """Exhaustive arg-max of F over all ``hits``-combinations.

    ``active_tumor`` masks out already-covered tumor columns.  Iterating
    ``itertools.combinations`` in lexicographic order and replacing only
    on strict improvement makes ties resolve to the lexicographically
    smallest tuple — the library-wide tie rule.
    """
    g = tumor_dense.shape[0]
    if normal_dense.shape[0] != g:
        raise ValueError("tumor and normal matrices must share the gene axis")
    if active_tumor is None:
        active_tumor = np.ones(tumor_dense.shape[1], dtype=bool)
    t = tumor_dense[:, active_tumor].astype(bool)
    n = normal_dense.astype(bool)
    best: "MultiHitCombination | None" = None
    for combo in itertools.combinations(range(g), hits):
        tp = int(np.logical_and.reduce(t[list(combo)], axis=0).sum())
        tn = params.n_normal - int(
            np.logical_and.reduce(n[list(combo)], axis=0).sum()
        )
        f = (params.alpha * tp + tn) / params.denominator
        if best is None or f > best.f:
            best = MultiHitCombination(genes=combo, f=f, tp=tp, tn=tn)
    return best


def sequential_solve(
    tumor_dense: np.ndarray,
    normal_dense: np.ndarray,
    hits: int,
    params: "FScoreParams | None" = None,
    max_iterations: "int | None" = None,
) -> list[MultiHitCombination]:
    """Full greedy loop on dense matrices; returns combinations in order.

    Stops when every tumor sample is covered, when the best remaining
    combination covers nothing (``TP == 0``), or after ``max_iterations``.
    """
    tumor_dense = np.asarray(tumor_dense).astype(bool)
    normal_dense = np.asarray(normal_dense).astype(bool)
    if params is None:
        params = FScoreParams(
            n_tumor=tumor_dense.shape[1], n_normal=normal_dense.shape[1]
        )
    active = np.ones(tumor_dense.shape[1], dtype=bool)
    found: list[MultiHitCombination] = []
    while active.any():
        if max_iterations is not None and len(found) >= max_iterations:
            break
        best = sequential_best_combo(
            tumor_dense, normal_dense, hits, params, active_tumor=active
        )
        if best is None or best.tp == 0:
            break
        found.append(best)
        covered = np.logical_and.reduce(tumor_dense[list(best.genes)], axis=0)
        active &= ~covered
    return found
