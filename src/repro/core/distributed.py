"""Distributed scale-out driver: schedule -> per-GPU search -> reduction.

One MPI rank per node, six GPU partitions per rank (Fig. 1).  Each GPU
searches its scheduled thread range with the vectorized engine and
reduces to a single 20-byte candidate; the rank reduces its six, and rank
0 reduces across ranks.  The default driver iterates ranks in-process
(deterministic); :mod:`repro.cluster.runtime` runs the identical rank
function under the thread-backed SimComm for true SPMD semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bitmatrix.matrix import BitMatrix
from repro.core.combination import MultiHitCombination
from repro.core.engine import best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.memopt import MemoryConfig
from repro.core.reduction import ReductionStats, multi_stage_reduce
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme

__all__ = ["DistributedEngine", "rank_best_combo"]

GPUS_PER_NODE = 6


def rank_best_combo(
    schedule: Schedule,
    rank: int,
    gpus_per_rank: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    memory: "MemoryConfig | None" = None,
    counters: "KernelCounters | None" = None,
    n_workers: int = 1,
    pool: "object | None" = None,
) -> "MultiHitCombination | None":
    """Search the ``gpus_per_rank`` partitions owned by one MPI rank.

    Partition ``rank * gpus_per_rank + local`` maps to local GPU
    ``local``; the per-GPU winners are reduced on-rank (stages 1-2 of the
    reduction happen inside :func:`best_in_thread_range` / here, so only
    one candidate leaves the rank).

    ``n_workers > 1`` searches the rank's partitions on a thread pool —
    the stand-in for a node's six GPUs running concurrently (NumPy
    releases the GIL in the bitwise kernels).  Counters are not supported
    concurrently (they are plain accumulators).

    ``pool`` (a :class:`repro.core.pool.PoolEngine`) searches each
    partition's thread range on that process pool instead — each
    simulated GPU's range is itself cut equi-area across the workers.
    Partitions are walked serially, so counters stay supported.
    """
    parts = [
        rank * gpus_per_rank + local
        for local in range(gpus_per_rank)
        if rank * gpus_per_rank + local < schedule.n_parts
    ]

    def search(part: int) -> "MultiHitCombination | None":
        lo, hi = schedule.thread_range(part)
        if pool is not None:
            return pool.best_combo(
                tumor, normal, params, lam_start=lo, lam_end=hi, counters=counters
            )
        return best_in_thread_range(
            schedule.scheme,
            schedule.g,
            tumor,
            normal,
            params,
            lo,
            hi,
            counters=counters if n_workers == 1 else None,
            memory=memory,
        )

    if pool is not None:
        return multi_stage_reduce([search(p) for p in parts])

    if n_workers > 1 and len(parts) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            candidates = list(executor.map(search, parts))
    else:
        candidates = [search(p) for p in parts]
    return multi_stage_reduce(candidates)


@dataclass
class DistributedEngine:
    """Multi-node search over a scheduled partition of the thread grid.

    Parameters mirror a Summit job: ``n_nodes`` MPI ranks with
    ``gpus_per_node`` GPU partitions each.  ``scheduler`` builds the
    partition (equi-area by default).
    """

    scheme: Scheme
    n_nodes: int
    gpus_per_node: int = GPUS_PER_NODE
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    scheduler: str = "equiarea"
    n_workers: int = 1  # threads per rank (simulates concurrent local GPUs)
    pool_workers: int = 0  # >0: pooled search inside each GPU's range

    def build_schedule(self, g: int) -> Schedule:
        n_parts = self.n_nodes * self.gpus_per_node
        if self.scheduler == "equiarea":
            return equiarea_schedule(self.scheme, g, n_parts)
        if self.scheduler == "equidistance":
            from repro.scheduling.equidistance import equidistance_schedule

            return equidistance_schedule(self.scheme, g, n_parts)
        raise ValueError(f"unknown scheduler {self.scheduler!r}")

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        counters: "KernelCounters | None" = None,
        reduction_stats: "ReductionStats | None" = None,
    ) -> "MultiHitCombination | None":
        """Full distributed arg-max: all ranks' results reduced at root."""
        schedule = self.build_schedule(tumor.n_genes)
        pool = None
        if self.pool_workers > 0:
            from repro.core.pool import PoolEngine

            pool = PoolEngine(
                scheme=self.scheme, n_workers=self.pool_workers, memory=self.memory
            )
        try:
            rank_winners: list["MultiHitCombination | None"] = []
            for rank in range(self.n_nodes):
                rank_winners.append(
                    rank_best_combo(
                        schedule,
                        rank,
                        self.gpus_per_node,
                        tumor,
                        normal,
                        params,
                        memory=self.memory,
                        counters=counters,
                        n_workers=self.n_workers,
                        pool=pool,
                    )
                )
            return multi_stage_reduce(rank_winners, stats=reduction_stats)
        finally:
            if pool is not None:
                pool.close()
