"""Distributed scale-out driver: schedule -> per-GPU search -> reduction.

One MPI rank per node, six GPU partitions per rank (Fig. 1).  Each GPU
searches its scheduled thread range with the vectorized engine and
reduces to a single 20-byte candidate; the rank reduces its six, and rank
0 reduces across ranks.  The default driver iterates ranks in-process
(deterministic); :mod:`repro.cluster.runtime` runs the identical rank
function under the thread-backed SimComm for true SPMD semantics.

Pruned iterations share one two-level bound table whose blocks merge the
partition boundaries; a GPU partition that covers only part of a
super-block simply falls back to per-block skip checks (the hierarchical
fast path requires the whole super inside the searched range), so
clipping is conservative, never unsound.  Rescheduled dead-rank ranges
are re-cut with their interior points snapped to block boundaries
(:func:`repro.faults.reschedule.reschedule_ranges_aligned`), so
survivors rebuild their slice of the table and recovery keeps the CELF
pruning speedup.

``elastic=True`` switches the engine from fixed one-partition-per-GPU
scheduling to lease-based work stealing: the λ-space is cut into
``lease_blocks`` equi-area leases on a :class:`repro.cluster.leases.
LeaseLedger`, ranks pull leases round-robin, a crashed or hung rank's
leases are forfeited back to the pool for survivors to steal, and
``membership``-site :class:`FaultSpec` churn (join/leave) resizes the
roster mid-call.  The merge folds per-lease winners in lease-id order,
so the winner is bit-identical to the static path's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bitmatrix.matrix import BitMatrix
from repro.core.combination import MultiHitCombination
from repro.core.engine import best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.memopt import MemoryConfig
from repro.core.reduction import ReductionStats, multi_stage_reduce
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultReport
from repro.faults.reschedule import (
    rank_partitions,
    reschedule_ranges,
    reschedule_ranges_aligned,
)
from repro.scheduling.equiarea import equiarea_schedule
from repro.scheduling.schedule import Schedule
from repro.scheduling.schemes import Scheme
from repro.telemetry.session import get_telemetry

__all__ = ["DistributedEngine", "rank_best_combo"]

GPUS_PER_NODE = 6


def rank_best_combo(
    schedule: Schedule,
    rank: int,
    gpus_per_rank: int,
    tumor: BitMatrix,
    normal: BitMatrix,
    params: FScoreParams,
    memory: "MemoryConfig | None" = None,
    counters: "KernelCounters | None" = None,
    n_workers: int = 1,
    pool: "object | None" = None,
    bounds: "object | None" = None,
    iteration: int = 0,
    sparse: bool = False,
    word_stride: "int | None" = None,
) -> "MultiHitCombination | None":
    """Search the ``gpus_per_rank`` partitions owned by one MPI rank.

    Partition ``rank * gpus_per_rank + local`` maps to local GPU
    ``local``; the per-GPU winners are reduced on-rank (stages 1-2 of the
    reduction happen inside :func:`best_in_thread_range` / here, so only
    one candidate leaves the rank).

    ``n_workers > 1`` searches the rank's partitions on a thread pool —
    the stand-in for a node's six GPUs running concurrently (NumPy
    releases the GIL in the bitwise kernels).  Counters are not supported
    concurrently (they are plain accumulators).

    ``pool`` (a :class:`repro.core.pool.PoolEngine`) searches each
    partition's thread range on that process pool instead — each
    simulated GPU's range is itself cut equi-area across the workers.
    Partitions are walked serially, so counters stay supported.

    ``bounds`` (a :class:`repro.core.bounds.BoundTable`) enables
    lazy-greedy pruning, but only on the serial path: the table is a
    plain mutable structure, so partitions searched concurrently
    (``n_workers > 1``) or through an inner process pool run unpruned.
    A partition whose range is not block-aligned also runs unpruned.
    """
    parts = [
        rank * gpus_per_rank + local
        for local in range(gpus_per_rank)
        if rank * gpus_per_rank + local < schedule.n_parts
    ]

    def search(part: int) -> "MultiHitCombination | None":
        lo, hi = schedule.thread_range(part)
        if pool is not None:
            return pool.best_combo(
                tumor, normal, params, lam_start=lo, lam_end=hi, counters=counters
            )
        part_bounds = (
            bounds
            if bounds is not None and n_workers == 1 and bounds.aligned(lo, hi)
            else None
        )
        return best_in_thread_range(
            schedule.scheme,
            schedule.g,
            tumor,
            normal,
            params,
            lo,
            hi,
            counters=counters if n_workers == 1 else None,
            memory=memory,
            bounds=part_bounds,
            iteration=iteration,
            sparse=sparse,
            word_stride=word_stride,
        )

    if pool is not None:
        return multi_stage_reduce([search(p) for p in parts])

    if n_workers > 1 and len(parts) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            candidates = list(executor.map(search, parts))
    else:
        candidates = [search(p) for p in parts]
    return multi_stage_reduce(candidates)


@dataclass
class DistributedEngine:
    """Multi-node search over a scheduled partition of the thread grid.

    Parameters mirror a Summit job: ``n_nodes`` MPI ranks with
    ``gpus_per_node`` GPU partitions each.  ``scheduler`` builds the
    partition (equi-area by default).

    Fault tolerance: each rank's search runs under the shared
    ``retry_policy`` — a rank that fails (injected via ``fault_plan``
    or raising for real) is retried with backoff up to
    ``retry_policy.resubmits`` times; a rank that stays dead has its
    λ-range re-cut equi-area across the surviving ranks, so the
    iteration completes with a bit-identical winner.  A rank whose
    wall time exceeds ``retry_policy.deadline_s`` (injected hang) is
    declared lost; one that finishes but exceeds
    ``retry_policy.straggler_after_s`` is recorded as a straggler.
    Everything detected/retried/rescheduled lands in ``report``.

    ``elastic`` replaces the fixed partition-per-GPU schedule with
    lease-based work stealing (``lease_blocks`` leases; ``0`` auto-sizes
    to ``4 * n_nodes``): ranks pull leases round-robin, crash/hang
    faults forfeit a rank's leases for survivors to steal, and
    membership churn specs grow/shrink the roster mid-call.  Winners
    stay bit-identical to the static path.
    """

    scheme: Scheme
    n_nodes: int
    gpus_per_node: int = GPUS_PER_NODE
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    scheduler: str = "equiarea"
    n_workers: int = 1  # threads per rank (simulates concurrent local GPUs)
    pool_workers: int = 0  # >0: pooled search inside each GPU's range
    fault_plan: "FaultPlan | None" = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    elastic: bool = False
    lease_blocks: int = 0
    sparse: bool = False
    word_stride: "int | None" = None
    report: FaultReport = field(
        default_factory=FaultReport, repr=False, compare=False
    )

    _calls: int = field(default=0, init=False, repr=False, compare=False)

    def build_schedule(self, g: int) -> Schedule:
        n_parts = self.n_nodes * self.gpus_per_node
        with get_telemetry().span(
            "schedule", cat="distributed", scheduler=self.scheduler, n_parts=n_parts
        ):
            if self.scheduler == "equiarea":
                return equiarea_schedule(self.scheme, g, n_parts)
            if self.scheduler == "equidistance":
                from repro.scheduling.equidistance import equidistance_schedule

                return equidistance_schedule(self.scheme, g, n_parts)
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    def lease_cuts(self, g: int) -> tuple[int, ...]:
        """Equi-area lease boundaries of the elastic path.

        Finer than one-per-rank (default ``4 * n_nodes``) so stealing
        has grain: losing a rank re-pools a few leases, not a sixth of
        the grid.
        """
        from repro.scheduling.equiarea import equiarea_range_boundaries
        from repro.scheduling.workload import total_threads

        n = self.lease_blocks if self.lease_blocks > 0 else 4 * self.n_nodes
        return equiarea_range_boundaries(
            self.scheme, g, 0, total_threads(self.scheme, g), n
        )

    def chunk_cuts(self, g: int) -> tuple[int, ...]:
        """The backend's range boundaries (for bound-table alignment).

        Static: the schedule's partition cuts.  Elastic: the lease cuts,
        so every lease a rank pulls is a whole number of λ-blocks and
        pruning survives work stealing.
        """
        if self.elastic:
            return self.lease_cuts(g)
        return tuple(self.build_schedule(g).boundaries)

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        counters: "KernelCounters | None" = None,
        reduction_stats: "ReductionStats | None" = None,
        bounds: "object | None" = None,
        iteration: int = 0,
    ) -> "MultiHitCombination | None":
        """Full distributed arg-max: all ranks' results reduced at root.

        Ranks that fail beyond the retry budget are declared dead and
        their λ-ranges re-cut across survivors before the reduction —
        the winner is bit-identical to the failure-free run.
        """
        call = self._calls
        self._calls += 1
        if self.elastic:
            return self._best_combo_elastic(
                tumor, normal, params, call, counters, reduction_stats,
                bounds, iteration,
            )
        schedule = self.build_schedule(tumor.n_genes)
        tel = get_telemetry()
        if tel.flight is not None:
            tel.flight.set_assignments(
                "distributed",
                [
                    {
                        "rank": rank,
                        "partitions": [
                            {
                                "part": p,
                                "lam_start": schedule.thread_range(p)[0],
                                "lam_end": schedule.thread_range(p)[1],
                            }
                            for p in rank_partitions(
                                schedule, rank, self.gpus_per_node
                            )
                        ],
                        "call": call,
                    }
                    for rank in range(self.n_nodes)
                ],
            )
        pool = None
        if self.pool_workers > 0:
            from repro.core.pool import PoolEngine

            pool = PoolEngine(
                scheme=self.scheme, n_workers=self.pool_workers,
                memory=self.memory, sparse=self.sparse,
                word_stride=self.word_stride,
            )
        try:
            rank_winners: list["MultiHitCombination | None"] = []
            dead: list[int] = []
            for rank in range(self.n_nodes):
                winner, alive = self._run_rank(
                    schedule, rank, call, tumor, normal, params, counters, pool,
                    bounds, iteration,
                )
                if alive:
                    rank_winners.append(winner)
                else:
                    dead.append(rank)
            if dead:
                rank_winners.extend(
                    self._reschedule_dead(
                        schedule, dead, call, tumor, normal, params, counters,
                        bounds, iteration,
                    )
                )
                # The black box for a survived failure: dumped *after*
                # rescheduling so it shows both the dead ranks and the
                # λ-ranges that were re-cut onto survivors.
                if tel.flight is not None:
                    tel.flight.dump(
                        "rank-rescheduled", telemetry=tel,
                        fault_report=self.report,
                    )
            with get_telemetry().span(
                "reduce", cat="distributed", candidates=len(rank_winners)
            ):
                return multi_stage_reduce(rank_winners, stats=reduction_stats)
        finally:
            if pool is not None:
                pool.close()

    # -- elastic lease path --------------------------------------------

    def _best_combo_elastic(
        self, tumor, normal, params, call, counters, reduction_stats,
        bounds, iteration,
    ) -> "MultiHitCombination | None":
        """Lease-based arg-max with deterministic in-process scheduling.

        Ranks pull leases round-robin in rank order (the in-process
        stand-in for "whichever rank is free pulls next"); a rank-site
        crash/hang fault kills the rank — its granted lease is forfeited
        back to the pool, and whoever pulls it next is the steal.
        Membership churn fires between grant rounds at its
        progress-fraction trigger.  The final merge folds per-lease
        winners in lease-id order, so none of this scheduling detail
        can reach the result.
        """
        from repro.cluster.leases import LeaseLedger

        g = tumor.n_genes
        tel = get_telemetry()
        ledger = LeaseLedger(self.lease_cuts(g))
        if tel.flight is not None:
            tel.flight.set_assignments("lease", ledger.assignment_rows(call))
        roster = list(range(self.n_nodes))
        next_rank = self.n_nodes
        dead: list[int] = []
        while not ledger.done:
            roster, next_rank = self._elastic_churn(
                ledger, roster, next_rank, call
            )
            workers = list(roster) or [-1]  # -1: the driver drains the pool
            progressed = False
            for rank in workers:
                lease = ledger.acquire(rank)
                if lease is None:
                    break
                spec = (
                    self.fault_plan.take("rank", rank, call)
                    if self.fault_plan is not None and rank >= 0
                    else None
                )
                if spec is not None and spec.kind in ("crash", "hang"):
                    # The rank dies holding the lease; forfeiture is the
                    # first-class fault edge — the range goes back to
                    # the pool and a survivor's next acquire steals it.
                    self.report.record(
                        spec.kind, "rank", rank, call, "lease-forfeit",
                        detail=(
                            f"lease {lease.lease_id} "
                            f"[{lease.lam_start}, {lease.lam_end})"
                        ),
                    )
                    ledger.retire(rank)
                    roster.remove(rank)
                    dead.append(rank)
                    continue
                self._search_lease(
                    ledger, lease, rank, spec, call, tumor, normal, params,
                    counters, bounds, iteration,
                )
                progressed = True
            if not progressed and not ledger.done and ledger.n_available == 0:
                # In-process, a grant is always followed synchronously by
                # completion or forfeiture, so this cannot be reached.
                raise RuntimeError(
                    "elastic scheduler stalled with granted leases"
                )  # pragma: no cover
        for lease in ledger.leases:
            # A stolen lease is rescheduled work: attribute the range
            # move exactly like the static path's survivor rescheduling.
            if lease.grants > 1 and lease.previous_holders:
                self.report.record_reschedule(
                    dead_rank=lease.previous_holders[0],
                    survivor=(
                        lease.completed_by
                        if lease.completed_by is not None
                        else -1
                    ),
                    lam_start=lease.lam_start,
                    lam_end=lease.lam_end,
                    call=call,
                )
        if dead and tel.flight is not None:
            tel.flight.set_assignments("lease", ledger.assignment_rows(call))
            tel.flight.dump(
                "lease-churn", telemetry=tel, fault_report=self.report
            )
        if counters is not None:
            ledger.merge_counters(counters)
        with tel.span(
            "reduce", cat="distributed", candidates=ledger.n_leases
        ) as sp:
            for ctx in ledger.completion_contexts():
                sp.link(ctx, kind="complete")
            return ledger.merge(stats=reduction_stats)

    def _elastic_churn(self, ledger, roster, next_rank, call):
        """Consume due membership specs between grant rounds."""
        if self.fault_plan is None:
            return roster, next_rank
        frac = ledger.completed_fraction()
        for spec in self.fault_plan.take_churn(call, frac):
            if spec.kind == "join":
                for _ in range(max(1, spec.target)):
                    roster.append(next_rank)
                    self.report.record(
                        "join", "membership", next_rank, call, "joined",
                        detail=f"at {frac:.2f} done",
                    )
                    next_rank += 1
            elif spec.target in roster:
                roster.remove(spec.target)
                self.report.record(
                    "leave", "membership", spec.target, call, "drained",
                    detail=f"at {frac:.2f} done",
                )
        return roster, next_rank

    def _search_lease(
        self, ledger, lease, rank, spec, call, tumor, normal, params,
        counters, bounds, iteration,
    ) -> None:
        tel = get_telemetry()
        lo, hi = lease.lam_start, lease.lam_end
        lease_bounds = None
        if bounds is not None and bounds.aligned(lo, hi):
            from repro.core.bounds import BoundTable

            lease_bounds = BoundTable.from_payload(bounds.slice_payload(lo, hi))
        # Metering rides the lease (not the run counters directly) so a
        # range that is stolen and computed twice still counts exactly
        # once: the ledger keeps the first completion's counters and
        # merge_counters folds them in lease-id order.
        lease_counters = KernelCounters() if counters is not None else None
        stolen = lease.grants > 1
        with tel.timed_span(
            "lease.search", cat="distributed", rank=rank,
            lease=lease.lease_id, lam_start=lo, lam_end=hi, call=call,
            **({"stolen": True} if stolen else {}),
        ) as span:
            span.link(lease.victim_ctx, kind="steal")
            if spec is not None and spec.kind == "straggler":
                with tel.span(
                    "comm.stall", cat="comm", rank=rank,
                    kind="straggler", delay_s=spec.delay_s,
                ):
                    time.sleep(spec.delay_s)
            winner = best_in_thread_range(
                self.scheme, tumor.n_genes, tumor, normal, params, lo, hi,
                counters=lease_counters,
                memory=self.memory,
                bounds=lease_bounds,
                iteration=iteration,
                sparse=self.sparse,
                word_stride=self.word_stride,
            )
        if spec is not None and spec.kind == "straggler":
            self.report.record(
                "straggler", "rank", rank, call, "observed",
                detail=f"{span.duration_s:.3f}s",
            )
        if lease_bounds is not None:
            deltas = lease_bounds.deltas(iteration)
            if deltas:
                bounds.apply_deltas(deltas, iteration)
        ledger.complete(
            lease.lease_id, rank, winner, counters=lease_counters
        )

    # -- fault-tolerant rank execution ---------------------------------

    def _run_rank(
        self, schedule, rank, call, tumor, normal, params, counters, pool,
        bounds=None, iteration=0,
    ) -> "tuple[MultiHitCombination | None, bool]":
        """One rank's search under the retry policy.

        Returns ``(winner, alive)``; ``alive=False`` marks the rank dead
        after exhausting ``retry_policy.resubmits`` — its range is then
        rescheduled by the caller.
        """
        tel = get_telemetry()
        policy = self.retry_policy
        last_kind = None
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                with tel.span(
                    "fault.retry", cat="distributed", rank=rank, attempt=attempt
                ):
                    policy.sleep_before(attempt - 1)
            spec = (
                self.fault_plan.take("rank", rank, call)
                if self.fault_plan is not None
                else None
            )
            if spec is not None and spec.kind in ("crash", "hang"):
                # A hang is surfaced by the deadline detector, a crash
                # by the dead pipe; both mean this attempt is lost.
                last_kind = spec.kind
                self.report.record(
                    spec.kind, "rank", rank, call, "detected", attempt=attempt,
                    detail="deadline exceeded" if spec.kind == "hang" else "",
                )
                continue
            # Span-as-stopwatch: the straggler detector reads the same
            # wall clock the trace records.
            with tel.timed_span(
                "rank.search", cat="distributed", rank=rank,
                call=call, attempt=attempt,
            ) as span:
                if spec is not None and spec.kind == "straggler":
                    time.sleep(spec.delay_s)
                winner = rank_best_combo(
                    schedule,
                    rank,
                    self.gpus_per_node,
                    tumor,
                    normal,
                    params,
                    memory=self.memory,
                    counters=counters,
                    n_workers=self.n_workers,
                    pool=pool,
                    bounds=bounds,
                    iteration=iteration,
                    sparse=self.sparse,
                    word_stride=self.word_stride,
                )
            wall = span.duration_s
            if policy.is_straggler(wall) or (
                spec is not None and spec.kind == "straggler"
            ):
                self.report.record(
                    "straggler", "rank", rank, call, "observed",
                    attempt=attempt, detail=f"{wall:.3f}s",
                )
            if attempt > 1 and last_kind is not None:
                self.report.record(
                    last_kind, "rank", rank, call, "resubmitted", attempt=attempt
                )
            return winner, True
        return None, False

    def _reschedule_dead(
        self, schedule, dead, call, tumor, normal, params, counters,
        bounds=None, iteration=0,
    ) -> "list[MultiHitCombination | None]":
        """Re-cut dead ranks' λ-ranges across survivors and search them.

        The equi-area re-cut keeps the recovered work balanced; the
        pieces feed the same reduction as regular rank winners, so the
        result cannot depend on which ranks died.  With a bound table
        the interior re-cut points are snapped to block boundaries, so
        each survivor rebuilds its local slice of the table and recovery
        keeps the CELF pruning speedup (refreshed bounds fold back as
        deltas, exactly like a pool chunk's).
        """
        tel = get_telemetry()
        survivors = [r for r in range(self.n_nodes) if r not in dead]
        dead_parts = [
            p
            for r in dead
            for p in rank_partitions(schedule, r, self.gpus_per_node)
        ]
        n_surv = max(1, len(survivors))
        if bounds is not None:
            shares = reschedule_ranges_aligned(
                schedule, dead_parts, n_surv, bounds.boundaries
            )
        else:
            shares = reschedule_ranges(schedule, dead_parts, n_surv)
        winners: list["MultiHitCombination | None"] = []
        for j, pieces in enumerate(shares):
            survivor = survivors[j] if survivors else -1  # -1: root recovers
            for part, lo, hi in pieces:
                self.report.record_reschedule(
                    dead_rank=part // self.gpus_per_node,
                    survivor=survivor,
                    lam_start=lo,
                    lam_end=hi,
                    call=call,
                )
                piece_bounds = None
                if bounds is not None and bounds.aligned(lo, hi):
                    from repro.core.bounds import BoundTable

                    piece_bounds = BoundTable.from_payload(
                        bounds.slice_payload(lo, hi)
                    )
                with tel.span(
                    "fault.reschedule", cat="distributed", rank=survivor,
                    dead_rank=part // self.gpus_per_node,
                    lam_start=lo, lam_end=hi,
                    pruned=piece_bounds is not None,
                ):
                    winners.append(
                        best_in_thread_range(
                            schedule.scheme,
                            schedule.g,
                            tumor,
                            normal,
                            params,
                            lo,
                            hi,
                            counters=counters,
                            memory=self.memory,
                            bounds=piece_bounds,
                            iteration=iteration,
                            sparse=self.sparse,
                            word_stride=self.word_stride,
                        )
                    )
                if piece_bounds is not None:
                    deltas = piece_bounds.deltas(iteration)
                    if deltas:
                        bounds.apply_deltas(deltas, iteration)
        return winners
