"""Top-level greedy multi-hit solver (the public entry point).

Wraps the per-iteration arg-max (single-GPU engine, distributed engine,
or the sequential oracle) in the weighted-set-cover greedy loop: score ->
pick best -> exclude covered tumor samples -> repeat.  Covered samples
are either *spliced* out of the packed matrix (BitSplicing, the paper's
approach) or masked in place (the ablation baseline) — results are
identical; the packed width, and hence the work per subsequent iteration,
is not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.splicing import splice_columns
from repro.core.bounds import BoundTable
from repro.core.combination import MultiHitCombination
from repro.core.distributed import DistributedEngine
from repro.core.engine import SingleGpuEngine
from repro.core.fscore import DEFAULT_ALPHA, FScoreParams
from repro.core.kernels import (
    DEFAULT_WORD_STRIDE,
    KernelCounters,
    validate_word_stride,
)
from repro.core.memopt import MemoryConfig
from repro.core.sequential import sequential_best_combo
from repro.faults.plan import FaultPlan
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultReport
from repro.scheduling.schemes import Scheme, scheme_for
from repro.telemetry.session import get_telemetry

__all__ = ["IterationRecord", "MultiHitResult", "MultiHitSolver"]


@dataclass(frozen=True)
class IterationRecord:
    """What one greedy iteration saw and chose.

    ``combos_scored`` / ``combos_pruned`` / ``word_reads`` are this
    iteration's deltas of the run counters — the per-iteration pruning
    trajectory the ``BENCH_greedy`` report plots.
    """

    iteration: int
    combination: MultiHitCombination
    newly_covered: int
    remaining_before: int
    remaining_after: int
    tumor_words: int
    wall_seconds: float
    combos_scored: int = 0
    combos_pruned: int = 0
    word_reads: int = 0


@dataclass
class MultiHitResult:
    """Output of a full greedy run."""

    combinations: list[MultiHitCombination]
    iterations: list[IterationRecord]
    params: FScoreParams
    uncovered: int
    counters: KernelCounters = field(default_factory=KernelCounters)
    fault_report: "FaultReport | None" = None

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def coverage(self) -> float:
        """Fraction of tumor samples covered by the returned combinations.

        An empty tumor set is vacuously covered: coverage is 1.0, not a
        ``ZeroDivisionError``.
        """
        if self.params.n_tumor == 0:
            return 1.0
        return 1.0 - self.uncovered / self.params.n_tumor

    def gene_sets(self) -> list[tuple[int, ...]]:
        return [c.genes for c in self.combinations]


@dataclass
class MultiHitSolver:
    """Greedy multi-hit weighted-set-cover solver.

    Parameters
    ----------
    hits:
        Combination order ``h`` (2, 3 or 4 in the paper).
    alpha:
        TP penalty weight of Equation 1.
    backend:
        ``"single"`` (vectorized single-GPU engine), ``"pool"`` (the
        single-GPU search fanned out over a persistent multiprocess
        worker pool), ``"distributed"`` (scheduled multi-node engine) or
        ``"sequential"`` (dense oracle).
    scheme:
        Loop-flattening scheme; defaults to ``(h-1)x1`` (the paper's 3x1
        for ``h = 4``).
    memory:
        Which memory optimizations are on.  ``memory.bitsplice`` selects
        splice-vs-mask handling of covered samples.
    n_nodes / gpus_per_node:
        Simulated Summit shape for the distributed backend.
    n_workers:
        Worker processes for the pool backend (ignored otherwise).
    fault_plan / retry_policy:
        Fault-tolerance knobs forwarded to the pool / distributed
        engine; detected faults and recovery actions come back on
        ``result.fault_report``.
    prune:
        Switch on the lazy-greedy pruned iteration engine: a persistent
        two-level :class:`repro.core.bounds.BoundTable` lets every
        iteration after the first skip whole super-blocks (and then
        individual blocks) whose previous best F cannot beat (or tie)
        the incumbent, surviving blocks are scored by the fused
        multi-block scan (one λ-decode per stride, word-stride-fused
        AND/popcount), and the scan runs on a column-compacted tumor
        matrix.  The fused gather reads each thread's fixed rows exactly
        once, subsuming the ``memory`` prefetch flags on this path
        (``memory.bitsplice`` still matters through the compacted word
        width).  Results are bit-identical to the unpruned engine on
        every backend; only the work counters (and wall time) change.
        Ignored by the ``"sequential"`` oracle.
    prune_blocks:
        Target λ-block count for the bound table (finer blocks prune
        more combinations at slightly more bookkeeping); the backend's
        chunk/partition cuts are merged in on top, and blocks are
        grouped into super-blocks of :attr:`BoundTable.super_size` for
        the hierarchical skip.
    elastic:
        Lease-based work stealing instead of fixed partitions
        (``"distributed"`` and ``"pool"`` backends).  The λ-space is cut
        into ``lease_blocks`` equi-area leases; ranks pull leases, a
        dead rank's leases are stolen by survivors, and ``membership``-
        site :class:`FaultSpec` churn (join/leave) resizes the fleet
        mid-solve.  Winners are bit-identical to the static run.
    lease_blocks:
        Leases per arg-max call when ``elastic`` (``0`` auto-sizes to
        four per rank/worker).
    sparse:
        Sparsity-driven scoring path (default on): nonzero-stride
        skipping, shared-prefix AND caching and zero-prefix run
        skipping in the fused kernels.  Winners, iteration trajectory
        and ``combos_scored`` are bit-identical either way; traffic
        counters switch from the dense model charge to the words
        actually gathered, with the difference in
        ``counters.word_reads_skipped``.  Ignored by the
        ``"sequential"`` oracle.
    word_stride:
        Fused-scan slice width in packed words (default 64).  Must be a
        positive multiple of 8 — the deployment policy; the kernels
        themselves accept any positive stride for testing.
    """

    hits: int = 4
    alpha: float = DEFAULT_ALPHA
    backend: str = "single"
    scheme: "Scheme | None" = None
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    n_nodes: int = 1
    gpus_per_node: int = 6
    n_workers: int = 2
    max_iterations: "int | None" = None
    fault_plan: "FaultPlan | None" = None
    retry_policy: "RetryPolicy | None" = None
    prune: bool = False
    prune_blocks: int = 64
    elastic: bool = False
    lease_blocks: int = 0
    sparse: bool = True
    word_stride: int = DEFAULT_WORD_STRIDE

    def __post_init__(self) -> None:
        if self.hits < 2:
            raise ValueError("hits must be >= 2")
        if self.scheme is None:
            self.scheme = scheme_for(self.hits, self.hits - 1)
        if self.scheme.hits != self.hits:
            raise ValueError(
                f"scheme searches {self.scheme.hits}-hit combos, expected {self.hits}"
            )
        if self.backend not in ("single", "pool", "distributed", "sequential"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.prune_blocks < 1:
            raise ValueError("prune_blocks must be >= 1")
        if self.lease_blocks < 0:
            raise ValueError("lease_blocks must be >= 0")
        if self.elastic and self.backend not in ("pool", "distributed"):
            raise ValueError(
                "elastic work stealing needs the pool or distributed backend"
            )
        validate_word_stride(self.word_stride)

    # -- per-iteration arg-max ----------------------------------------

    def _best(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        counters: KernelCounters,
        pool: "object | None" = None,
        dist: "DistributedEngine | None" = None,
        bounds: "BoundTable | None" = None,
        iteration: int = 0,
    ) -> "MultiHitCombination | None":
        if tumor.n_samples == 0:
            return None
        if self.backend == "sequential":
            return sequential_best_combo(
                tumor.to_dense(), normal.to_dense(), self.hits, params
            )
        if self.backend == "pool":
            return pool.best_combo(
                tumor, normal, params, counters=counters,
                bounds=bounds, iteration=iteration,
            )
        if self.backend == "single":
            engine = SingleGpuEngine(
                scheme=self.scheme, memory=self.memory,
                sparse=self.sparse, word_stride=self.word_stride,
            )
            return engine.best_combo(
                tumor, normal, params, counters=counters,
                bounds=bounds, iteration=iteration,
            )
        return dist.best_combo(
            tumor, normal, params, counters=counters,
            bounds=bounds, iteration=iteration,
        )

    # -- greedy loop ---------------------------------------------------

    def solve(
        self,
        tumor: "BitMatrix | np.ndarray",
        normal: "BitMatrix | np.ndarray",
        resume: "object | None" = None,
        on_iteration: "object | None" = None,
        should_stop: "object | None" = None,
    ) -> MultiHitResult:
        """Run the greedy cover loop to completion.

        ``resume`` is a :class:`repro.core.checkpoint.SolverState` from an
        interrupted run (the operational answer to Summit's queue-time
        limits: persist between greedy iterations, resume in the next
        allocation).  ``on_iteration(state)`` is called after every
        iteration with the current resumable state.

        ``should_stop()`` is polled between iterations (before each
        arg-max): when it returns truthy, the loop exits cooperatively
        and the result carries whatever was found so far.  Combined with
        checkpoints this is how a run is cancelled (the gateway's
        ``DELETE /v1/jobs/<id>``) or bounded by a wall-clock budget —
        cancellation lands within one solver iteration.
        """
        if not isinstance(tumor, BitMatrix):
            tumor = BitMatrix.from_dense(np.asarray(tumor))
        if not isinstance(normal, BitMatrix):
            normal = BitMatrix.from_dense(np.asarray(normal))
        if tumor.n_genes != normal.n_genes:
            raise ValueError("tumor and normal matrices must share the gene axis")
        if tumor.n_genes < self.hits:
            raise ValueError(
                f"need at least {self.hits} genes, got {tumor.n_genes}"
            )
        params = FScoreParams(
            n_tumor=tumor.n_samples, n_normal=normal.n_samples, alpha=self.alpha
        )
        counters = KernelCounters()
        combos: list[MultiHitCombination] = []
        records: list[IterationRecord] = []

        work = tumor  # spliced matrix (or masked view) of uncovered samples
        active = np.ones(tumor.n_samples, dtype=bool)  # vs original columns

        if resume is not None:
            combos, active = resume.restore(tumor, self.hits, params)
            work = self._compact(tumor, active)

        pool = None
        dist = None
        if self.backend == "pool":
            from repro.core.pool import PoolEngine

            # One persistent pool for the whole greedy run: workers (and
            # the normal matrix's shared segment) survive across
            # iterations; only the re-spliced tumor matrix is re-shipped.
            pool = PoolEngine(
                scheme=self.scheme,
                n_workers=self.n_workers,
                memory=self.memory,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy or RetryPolicy(),
                lease_blocks=(
                    (self.lease_blocks or 4 * self.n_workers)
                    if self.elastic
                    else 0
                ),
                sparse=self.sparse,
                word_stride=self.word_stride,
            )
        elif self.backend == "distributed":
            # One engine for the run so its arg-max call counter lines
            # up with greedy iterations ("rank 1 crashes at iteration
            # k") and its fault report spans the whole solve.
            dist = DistributedEngine(
                scheme=self.scheme,
                n_nodes=self.n_nodes,
                gpus_per_node=self.gpus_per_node,
                memory=self.memory,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy or RetryPolicy(),
                elastic=self.elastic,
                lease_blocks=self.lease_blocks,
                sparse=self.sparse,
                word_stride=self.word_stride,
            )
        tel = get_telemetry()
        try:
            try:
                table = self._build_bound_table(tumor.n_genes, pool, dist, resume)
                with tel.span(
                    "solve", cat="solver", backend=self.backend, hits=self.hits,
                    prune=self.prune,
                ):
                    result = self._greedy_loop(
                        tumor, normal, params, counters, combos, records, work,
                        active, on_iteration, pool, dist, table, should_stop,
                    )
            except Exception as exc:
                # Post-mortem black box for a run that dies mid-solve:
                # the recent span timeline, the registry snapshot, the
                # fault report so far, and the active λ assignments.
                if tel.flight is not None:
                    report = None
                    if pool is not None:
                        report = pool.report
                    elif dist is not None:
                        report = dist.report
                    tel.flight.dump(
                        "solver-exception", exc=exc, telemetry=tel,
                        fault_report=report,
                    )
                raise
            if pool is not None:
                result.fault_report = pool.report
            elif dist is not None:
                result.fault_report = dist.report
            if tel.enabled:
                tel.metrics.absorb_kernel_counters(counters)
                tel.count("solver.solves")
                tel.count("solver.iterations", len(result.iterations))
                tel.count("solver.combinations", len(result.combinations))
                tel.set_gauge("solver.coverage", result.coverage)
                tel.set_gauge("solver.uncovered", result.uncovered)
                if self.prune:
                    examined = counters.combos_scored + counters.combos_pruned
                    tel.set_gauge(
                        "prune.hit_rate",
                        counters.combos_pruned / examined if examined else 0.0,
                    )
            return result
        finally:
            if pool is not None:
                pool.close()

    # -- lazy-greedy machinery -----------------------------------------

    def _build_bound_table(
        self, g: int, pool, dist, resume
    ) -> "BoundTable | None":
        """Create (or adopt from a checkpoint) the run's bound table.

        The backend's chunk/partition cuts are merged into the block
        boundaries so every range a backend searches is a whole number
        of blocks.  A persisted table is adopted only when it describes
        the identical grid and blocks; otherwise it is silently dropped
        — the table is a cache, and starting stale merely costs rescans.
        """
        if not self.prune or self.backend == "sequential":
            return None
        cuts = None
        if pool is not None:
            cuts = pool.chunk_cuts(g)
        elif dist is not None:
            cuts = dist.chunk_cuts(g)
        with get_telemetry().span(
            "prune.table_build", cat="solver", n_blocks=self.prune_blocks
        ):
            table = BoundTable.build(
                self.scheme, g, cuts=cuts, n_blocks=self.prune_blocks
            )
        persisted = getattr(resume, "bound_table", None)
        if persisted is not None:
            restored = BoundTable.from_payload(persisted)
            if restored.matches(table):
                table = restored
        return table

    def _compact(self, tumor: BitMatrix, active: np.ndarray) -> BitMatrix:
        """The scoring matrix for the current ``active`` set.

        Pruned runs always repack the uncovered columns into a narrower
        matrix (less word traffic, narrower popcounts); unpruned runs
        honor the splice-vs-mask ablation knob.
        """
        if self.prune or self.memory.bitsplice:
            return splice_columns(tumor, active)
        mask = tumor.sample_mask_to_words(active)
        return BitMatrix(tumor.words & mask[None, :], tumor.n_samples)

    # -- greedy loop ---------------------------------------------------

    def _greedy_loop(
        self, tumor, normal, params, counters, combos, records, work, active,
        on_iteration, pool, dist, table, should_stop=None,
    ) -> MultiHitResult:
        tel = get_telemetry()
        if tel.enabled:
            # Live-progress plumbing: every iteration scans the same
            # C(g, hits) grid (scored + pruned partitions it), so the
            # scheduled gauge plus the running scored/pruned counters
            # give the monitor an in-iteration completion fraction.
            tel.set_gauge(
                "progress.combos_scheduled", math.comb(tumor.n_genes, self.hits)
            )
        while active.any():
            if self.max_iterations is not None and len(combos) >= self.max_iterations:
                break
            if should_stop is not None and should_stop():
                if tel.enabled:
                    tel.count("solver.stopped_early")
                break
            remaining_before = int(active.sum())
            scored_0 = counters.combos_scored
            pruned_0 = counters.combos_pruned
            reads_0 = counters.word_reads
            if tel.enabled:
                tel.set_gauge("progress.iteration", len(combos) + 1)
                live = tel.metrics.counters
                tel.set_gauge(
                    "progress.iteration_base",
                    live.get("progress.combos_scored", 0)
                    + live.get("progress.combos_pruned", 0),
                )
            # The span is the timing source: `timed_span` measures wall
            # time even with telemetry disabled, so `wall_seconds` keeps
            # its meaning (the arg-max wall clock) on every run.
            with tel.timed_span(
                "iteration",
                cat="solver",
                iteration=len(combos) + 1,
                remaining=remaining_before,
            ) as span:
                best = self._best(
                    work, normal, params, counters, pool, dist,
                    bounds=table, iteration=len(combos),
                )
            dt = span.duration_s
            iter_scored = counters.combos_scored - scored_0
            iter_pruned = counters.combos_pruned - pruned_0
            if tel.enabled:
                # The pool backend live-feeds progress.* per chunk as
                # futures resolve; every other backend reports here,
                # once per iteration, so the totals never double-count.
                if self.backend != "pool":
                    tel.count("progress.combos_scored", iter_scored)
                    tel.count("progress.combos_pruned", iter_pruned)
                if self.prune:
                    tel.observe("prune.iteration_combos_scored", iter_scored)
                    tel.observe("prune.iteration_combos_pruned", iter_pruned)
            if best is None or best.tp == 0:
                break
            combos.append(best)
            covered_now = tumor.samples_with_all(best.genes) & active
            active &= ~covered_now
            if self.prune:
                with tel.span(
                    "prune.compact", cat="solver", width_before=work.n_words
                ):
                    work = self._compact(tumor, active)
            elif self.memory.bitsplice:
                covered_local = work.samples_with_all(best.genes)
                work = splice_columns(work, ~covered_local)
            else:
                # Mask covered columns in place: same width, zeroed bits.
                mask = work.sample_mask_to_words(
                    ~work.samples_with_all(best.genes)
                )
                work = BitMatrix(work.words & mask[None, :], work.n_samples)
            records.append(
                IterationRecord(
                    iteration=len(combos),
                    combination=best,
                    newly_covered=int(covered_now.sum()),
                    remaining_before=remaining_before,
                    remaining_after=int(active.sum()),
                    tumor_words=work.n_words,
                    wall_seconds=dt,
                    combos_scored=iter_scored,
                    combos_pruned=iter_pruned,
                    word_reads=counters.word_reads - reads_0,
                )
            )
            if on_iteration is not None:
                from repro.core.checkpoint import SolverState

                on_iteration(
                    SolverState.capture(
                        self.hits, self.alpha, combos, active,
                        bound_table=(
                            table.to_payload() if table is not None else None
                        ),
                    )
                )
        return MultiHitResult(
            combinations=combos,
            iterations=records,
            params=params,
            uncovered=int(active.sum()),
            counters=counters,
        )
