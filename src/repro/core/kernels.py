"""Vectorized scoring kernels (the ``maxF`` kernel, NumPy edition).

Each CUDA thread ANDs the packed rows of its combination's genes over the
tumor matrix (popcount -> TP) and the normal matrix (popcount -> ``Nn -
TN``), then computes F.  Here a *block* of combinations is scored at once
with broadcast bitwise ops; results are bit-exact with the sequential
reference.

The kernels also meter their own global-memory traffic (word reads) so
the memory-optimization experiments can compare access volumes at any
scale without a hardware profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams, fscore

__all__ = ["KernelCounters", "score_combos", "best_of"]


@dataclass
class KernelCounters:
    """Accumulated work / traffic counters for one kernel invocation chain.

    The ``combos_pruned`` / ``blocks_*`` fields are populated only by the
    lazy-greedy pruned engine path (:mod:`repro.core.bounds`); they ride
    the same merge path as the scoring counters so pool workers and
    distributed ranks report pruning effectiveness for free.
    """

    combos_scored: int = 0
    word_reads: int = 0
    word_ops: int = 0
    combos_pruned: int = 0
    blocks_scanned: int = 0
    blocks_skipped: int = 0

    def merge(self, other: "KernelCounters") -> None:
        self.combos_scored += other.combos_scored
        self.word_reads += other.word_reads
        self.word_ops += other.word_ops
        self.combos_pruned += other.combos_pruned
        self.blocks_scanned += other.blocks_scanned
        self.blocks_skipped += other.blocks_skipped


def score_combos(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
    counters: "KernelCounters | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score a block of combinations; returns ``(f, tp, tn)`` arrays.

    ``combos`` has shape ``(B, h)`` with strictly increasing gene rows.
    ``TP`` counts tumor samples present in *all* rows of the combination,
    ``TN = Nn - (normal samples present in all rows)``.
    """
    combos = np.asarray(combos, dtype=np.int64)
    if combos.ndim != 2:
        raise ValueError(f"combos must be 2-D (B, h), got shape {combos.shape}")
    b, h = combos.shape
    if b == 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.astype(np.int64)

    # The fancy-indexed gather already materializes fresh arrays, so the
    # in-place ANDs below never clobber the matrix rows.
    t_and = tumor.words[combos[:, 0]]
    n_and = normal.words[combos[:, 0]]
    for c in range(1, h):
        np.bitwise_and(t_and, tumor.words[combos[:, c]], out=t_and)
        np.bitwise_and(n_and, normal.words[combos[:, c]], out=n_and)

    tp = np.bitwise_count(t_and).sum(axis=1).astype(np.int64)
    tn = params.n_normal - np.bitwise_count(n_and).sum(axis=1).astype(np.int64)
    f = fscore(tp, tn, params)

    if counters is not None:
        counters.combos_scored += b
        counters.word_reads += b * h * (tumor.n_words + normal.n_words)
        counters.word_ops += b * (h - 1) * (tumor.n_words + normal.n_words)
    return f, tp, tn


def best_of(
    combos: np.ndarray, f: np.ndarray, tp: np.ndarray, tn: np.ndarray
) -> "MultiHitCombination | None":
    """Deterministic arg-max of a scored block (ties -> smallest gene tuple)."""
    if len(f) == 0:
        return None
    fmax = f.max()
    tied = np.flatnonzero(f == fmax)
    # Lexicographic min over the tied gene tuples.
    best_idx = min(tied, key=lambda idx: tuple(combos[idx]))
    return MultiHitCombination(
        genes=tuple(int(x) for x in combos[best_idx]),
        f=float(fmax),
        tp=int(tp[best_idx]),
        tn=int(tn[best_idx]),
    )
