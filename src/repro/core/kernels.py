"""Vectorized scoring kernels (the ``maxF`` kernel, NumPy edition).

Each CUDA thread ANDs the packed rows of its combination's genes over the
tumor matrix (popcount -> TP) and the normal matrix (popcount -> ``Nn -
TN``), then computes F.  Here a *block* of combinations is scored at once
with broadcast bitwise ops; results are bit-exact with the sequential
reference.

The scoring primitives are *word-stride fused*: gather -> AND ->
popcount runs over slices of at most :data:`WORD_STRIDE` packed words at
a time, accumulating popcounts into per-combination integer totals, so
the broadcast working set stays cache-sized instead of materializing a
full ``(B, L, n_words)`` (or ``(B, n_words)``) intermediate.  Popcounts
are exact integers, so the fused pass is bit-identical to the
single-shot reference (kept as :func:`score_combos_reference` and
enforced by tests).

The kernels also meter their own global-memory traffic (word reads) so
the memory-optimization experiments can compare access volumes at any
scale without a hardware profiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams, fscore

__all__ = [
    "KernelCounters",
    "WORD_STRIDE",
    "fused_pair_popcount",
    "score_combos",
    "score_combos_reference",
    "best_of",
]

# Packed uint64 words per fused pass (512 B per row slice): with the
# broadcast chunking in the engine the live working set stays within L1/L2
# while each word is still touched exactly once.
WORD_STRIDE = 64


@dataclass
class KernelCounters:
    """Accumulated work / traffic counters for one kernel invocation chain.

    The ``combos_pruned`` / ``blocks_*`` / ``supers_skipped`` fields are
    populated only by the lazy-greedy pruned engine path
    (:mod:`repro.core.bounds`); ``decode_strides`` /
    ``inner_tables_built`` meter the fused scan (one decode per stride
    chunk, one inner AND-table build per level per call).  They all ride
    the same merge path as the scoring counters so pool workers and
    distributed ranks report pruning and fusion effectiveness for free.
    """

    combos_scored: int = 0
    word_reads: int = 0
    word_ops: int = 0
    combos_pruned: int = 0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    supers_skipped: int = 0
    decode_strides: int = 0
    inner_tables_built: int = 0

    def merge(self, other: "KernelCounters") -> None:
        self.combos_scored += other.combos_scored
        self.word_reads += other.word_reads
        self.word_ops += other.word_ops
        self.combos_pruned += other.combos_pruned
        self.blocks_scanned += other.blocks_scanned
        self.blocks_skipped += other.blocks_skipped
        self.supers_skipped += other.supers_skipped
        self.decode_strides += other.decode_strides
        self.inner_tables_built += other.inner_tables_built


def _fused_and_popcount(words: np.ndarray, combos: np.ndarray) -> np.ndarray:
    """Per-combination popcount of the AND of its gene rows, stride-fused.

    Equivalent to ``popcount(AND over h rows)`` summed across the full
    word width, but never holds more than a ``(B, WORD_STRIDE)`` slice:
    each stride is gathered, AND-reduced in place, popcounted, and folded
    into the int64 accumulator before the next stride is touched.
    """
    b, h = combos.shape
    total = np.zeros(b, dtype=np.int64)
    n_words = words.shape[1]
    for w0 in range(0, n_words, WORD_STRIDE):
        sl = slice(w0, min(w0 + WORD_STRIDE, n_words))
        acc = words[combos[:, 0], sl]
        for c in range(1, h):
            np.bitwise_and(acc, words[combos[:, c], sl], out=acc)
        total += np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    return total


def fused_pair_popcount(base: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """``(B, L)`` popcounts of ``base[b] & inner[l]``, stride-fused.

    The engine's nested-scheme hot loop: ``base`` holds each thread's
    AND-reduced fixed-gene rows, ``inner`` the cached AND-table of inner
    combinations.  The broadcast AND is evaluated one word stride at a
    time so the transient cube is ``(B, L, WORD_STRIDE)`` at most, never
    ``(B, L, n_words)``.
    """
    n_words = base.shape[1]
    out = np.zeros((base.shape[0], inner.shape[0]), dtype=np.int64)
    for w0 in range(0, n_words, WORD_STRIDE):
        sl = slice(w0, min(w0 + WORD_STRIDE, n_words))
        out += np.bitwise_count(base[:, None, sl] & inner[None, :, sl]).sum(
            axis=2, dtype=np.int64
        )
    return out


def score_combos(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
    counters: "KernelCounters | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score a block of combinations; returns ``(f, tp, tn)`` arrays.

    ``combos`` has shape ``(B, h)`` with strictly increasing gene rows.
    ``TP`` counts tumor samples present in *all* rows of the combination,
    ``TN = Nn - (normal samples present in all rows)``.
    """
    combos = np.asarray(combos, dtype=np.int64)
    if combos.ndim != 2:
        raise ValueError(f"combos must be 2-D (B, h), got shape {combos.shape}")
    b, h = combos.shape
    if b == 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.astype(np.int64)

    tp = _fused_and_popcount(tumor.words, combos)
    tn = params.n_normal - _fused_and_popcount(normal.words, combos)
    f = fscore(tp, tn, params)

    if counters is not None:
        counters.combos_scored += b
        counters.word_reads += b * h * (tumor.n_words + normal.n_words)
        counters.word_ops += b * (h - 1) * (tumor.n_words + normal.n_words)
    return f, tp, tn


def score_combos_reference(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Single-shot (non-strided) reference scorer.

    Materializes the full ``(B, n_words)`` AND intermediates the fused
    kernel avoids; kept as the oracle the fused path must match
    bit-for-bit.  The fancy-indexed gather already materializes fresh
    arrays, so the in-place ANDs never clobber the matrix rows.
    """
    combos = np.asarray(combos, dtype=np.int64)
    b, h = combos.shape
    if b == 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.astype(np.int64)
    t_and = tumor.words[combos[:, 0]]
    n_and = normal.words[combos[:, 0]]
    for c in range(1, h):
        np.bitwise_and(t_and, tumor.words[combos[:, c]], out=t_and)
        np.bitwise_and(n_and, normal.words[combos[:, c]], out=n_and)
    tp = np.bitwise_count(t_and).sum(axis=1).astype(np.int64)
    tn = params.n_normal - np.bitwise_count(n_and).sum(axis=1).astype(np.int64)
    return fscore(tp, tn, params), tp, tn


def best_of(
    combos: np.ndarray, f: np.ndarray, tp: np.ndarray, tn: np.ndarray
) -> "MultiHitCombination | None":
    """Deterministic arg-max of a scored block (ties -> smallest gene tuple)."""
    if len(f) == 0:
        return None
    fmax = f.max()
    tied = np.flatnonzero(f == fmax)
    # Lexicographic min over the tied gene tuples.
    best_idx = min(tied, key=lambda idx: tuple(combos[idx]))
    return MultiHitCombination(
        genes=tuple(int(x) for x in combos[best_idx]),
        f=float(fmax),
        tp=int(tp[best_idx]),
        tn=int(tn[best_idx]),
    )
