"""Vectorized scoring kernels (the ``maxF`` kernel, NumPy edition).

Each CUDA thread ANDs the packed rows of its combination's genes over the
tumor matrix (popcount -> TP) and the normal matrix (popcount -> ``Nn -
TN``), then computes F.  Here a *block* of combinations is scored at once
with broadcast bitwise ops; results are bit-exact with the sequential
reference.

The scoring primitives are *word-stride fused*: gather -> AND ->
popcount runs over slices of at most ``word_stride`` packed words at a
time (default :data:`DEFAULT_WORD_STRIDE`), accumulating popcounts into
per-combination integer totals, so the broadcast working set stays
cache-sized instead of materializing a full ``(B, L, n_words)`` (or
``(B, n_words)``) intermediate.  Popcounts are exact integers, so the
fused pass is bit-identical to the single-shot reference (kept as
:func:`score_combos_reference` and enforced by tests).

``sparse=True`` switches :func:`score_combos` to the sparsity-driven
path (Prabhu et al.): a :class:`~repro.bitmatrix.sparsity.SparsityIndex`
on each matrix marks which stride slices of each row contain any set
bit, the λ-lexicographic decode order groups consecutive combinations
into runs sharing their high-order ``h - 1`` genes so the prefix AND is
computed once per run, and stride slices whose combined mask is empty
are skipped outright.  All of that is exact — an all-zero slice
contributes 0 to every popcount — so ``(f, tp, tn)`` are bit-identical
to the dense path.  ``skip_below`` additionally enables *zero-prefix run
skipping*: when the tumor prefix AND of a run is already all-zero, every
member has ``TP = 0``, and if the caller's incumbent F strictly exceeds
the ``TP = 0`` ceiling ``fscore(0, Nn)`` the run cannot win or tie, so
its members are reported with the ceiling as a (sound) upper bound
instead of being scored.  Only engine scans pass ``skip_below``; the
public scoring API stays exact.

The kernels meter their own global-memory traffic (word reads) so the
memory-optimization experiments can compare access volumes at any scale
without a hardware profiler.  On the sparse path the meter counts the
words *actually* gathered, and ``word_reads_skipped`` carries the
complement, so ``word_reads + word_reads_skipped`` always equals the
dense charge for the same call (an identity the tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.bitmatrix.sparsity import stride_any_mask
from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams, fscore

__all__ = [
    "DEFAULT_WORD_STRIDE",
    "KernelCounters",
    "WORD_STRIDE",
    "best_of",
    "fused_pair_popcount",
    "resolve_word_stride",
    "score_combos",
    "score_combos_reference",
    "tp_zero_ceiling",
    "validate_word_stride",
]

# Packed uint64 words per fused pass (512 B per row slice): with the
# broadcast chunking in the engine the live working set stays within L1/L2
# while each word is still touched exactly once.
DEFAULT_WORD_STRIDE = 64

# Back-compat module constant; the kernels now take ``word_stride`` as a
# parameter and fall back to this default when passed ``None``.
WORD_STRIDE = DEFAULT_WORD_STRIDE


def resolve_word_stride(word_stride: "int | None") -> int:
    """Kernel-level stride resolution: any positive int is mechanically
    valid (tests exercise stride 1); ``None`` means the default."""
    if word_stride is None:
        return DEFAULT_WORD_STRIDE
    ws = int(word_stride)
    if ws < 1:
        raise ValueError(f"word_stride must be >= 1, got {word_stride}")
    return ws


def validate_word_stride(word_stride: int) -> int:
    """Solver-level stride policy: a positive multiple of 8, so every
    configuration ships whole cache lines and all workers agree."""
    ws = int(word_stride)
    if ws < 1 or ws % 8:
        raise ValueError(
            f"word_stride must be a positive multiple of 8, got {word_stride}"
        )
    return ws


@dataclass
class KernelCounters:
    """Accumulated work / traffic counters for one kernel invocation chain.

    The ``combos_pruned`` / ``blocks_*`` / ``supers_skipped`` fields are
    populated only by the lazy-greedy pruned engine path
    (:mod:`repro.core.bounds`); ``decode_strides`` /
    ``inner_tables_built`` meter the fused scan (one decode per stride
    chunk, one inner AND-table build per level per call).  The sparse
    path adds four more: ``strides_skipped_sparse`` (stride slices the
    nonzero-mask intersection proved empty), ``prefix_and_hits``
    (combinations that reused a cached shared-prefix AND),
    ``zero_prefix_runs_skipped`` (suffix runs resolved wholesale from an
    all-zero tumor prefix), and ``word_reads_skipped`` (the traffic the
    dense path would have charged minus what was actually gathered — so
    ``word_reads + word_reads_skipped`` reproduces the dense charge
    exactly).  They all ride the same merge path as the scoring counters
    so pool workers, distributed ranks, and elastic leases report
    pruning, fusion, and sparsity effectiveness for free.
    """

    combos_scored: int = 0
    word_reads: int = 0
    word_ops: int = 0
    combos_pruned: int = 0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    supers_skipped: int = 0
    decode_strides: int = 0
    inner_tables_built: int = 0
    strides_skipped_sparse: int = 0
    prefix_and_hits: int = 0
    zero_prefix_runs_skipped: int = 0
    word_reads_skipped: int = 0

    def merge(self, other: "KernelCounters") -> None:
        self.combos_scored += other.combos_scored
        self.word_reads += other.word_reads
        self.word_ops += other.word_ops
        self.combos_pruned += other.combos_pruned
        self.blocks_scanned += other.blocks_scanned
        self.blocks_skipped += other.blocks_skipped
        self.supers_skipped += other.supers_skipped
        self.decode_strides += other.decode_strides
        self.inner_tables_built += other.inner_tables_built
        self.strides_skipped_sparse += other.strides_skipped_sparse
        self.prefix_and_hits += other.prefix_and_hits
        self.zero_prefix_runs_skipped += other.zero_prefix_runs_skipped
        self.word_reads_skipped += other.word_reads_skipped


def tp_zero_ceiling(params: FScoreParams) -> float:
    """The best F any ``TP = 0`` combination can reach: ``fscore(0, Nn)``.

    ``TN <= Nn`` and IEEE division by the fixed positive denominator is
    monotone, so every real ``TP = 0`` score is ``<= `` this ceiling —
    the bound zero-prefix run skipping compares the incumbent against.
    Returns ``-inf`` for an empty cohort (skipping disabled).
    """
    if params.denominator <= 0:
        return float("-inf")
    return float(params.n_normal) / params.denominator


def _lexmin_rows(rows: np.ndarray) -> np.ndarray:
    """Lexicographically smallest row of an int matrix (vectorized)."""
    order = np.lexsort(tuple(rows[:, c] for c in range(rows.shape[1] - 1, -1, -1)))
    return rows[order[0]]


def _fused_and_popcount(
    words: np.ndarray, combos: np.ndarray, word_stride: int
) -> np.ndarray:
    """Per-combination popcount of the AND of its gene rows, stride-fused.

    Equivalent to ``popcount(AND over h rows)`` summed across the full
    word width, but never holds more than a ``(B, word_stride)`` slice:
    each stride is gathered, AND-reduced in place, popcounted, and folded
    into the int64 accumulator before the next stride is touched.
    """
    b, h = combos.shape
    total = np.zeros(b, dtype=np.int64)
    n_words = words.shape[1]
    for w0 in range(0, n_words, word_stride):
        sl = slice(w0, min(w0 + word_stride, n_words))
        acc = words[combos[:, 0], sl]
        for c in range(1, h):
            np.bitwise_and(acc, words[combos[:, c], sl], out=acc)
        total += np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    return total


def _prefix_run_starts(combos: np.ndarray) -> np.ndarray:
    """Boundaries of maximal runs sharing gene columns ``1:``.

    ``combos_from_linear`` peels the top index first, so column 0 (the
    lowest gene) varies fastest along λ: consecutive decoded rows share
    their ``h - 1`` high-order genes — the shareable prefix.  Returns the
    ``len(runs) + 1`` start offsets (last entry is ``B``).
    """
    b, h = combos.shape
    if h == 1:
        # No shared prefix: every combination is its own run.
        return np.arange(b + 1, dtype=np.int64)
    change = np.any(combos[1:, 1:] != combos[:-1, 1:], axis=1)
    return np.concatenate(
        ([0], np.flatnonzero(change) + 1, [b])
    ).astype(np.int64)


def _and_rows(words: np.ndarray, genes: np.ndarray) -> np.ndarray:
    """Full-width AND of the given rows (a fresh array)."""
    out = words[int(genes[0])].copy()
    for c in genes[1:]:
        np.bitwise_and(out, words[int(c)], out=out)
    return out


def _score_combos_sparse(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
    counters: "KernelCounters | None",
    word_stride: int,
    skip_below: "float | None",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparsity-driven scoring: stride skipping + shared-prefix caching +
    (optional) zero-prefix run skipping.  See :func:`score_combos`."""
    b, h = combos.shape
    t_words, n_words = tumor.words, normal.words
    t_index = tumor.sparsity(word_stride)
    n_index = normal.sparsity(word_stride)
    tp = np.zeros(b, dtype=np.int64)
    n_hits = np.zeros(b, dtype=np.int64)  # normal samples in all rows

    ceiling = tp_zero_ceiling(params)
    skip_runs = skip_below is not None and skip_below > ceiling
    starts = _prefix_run_starts(combos)

    reads = 0
    ops = 0
    prefix_hits = 0
    zero_runs = 0
    strides_skipped = 0

    def member_pass(
        words, index, pre, accum, lo, hi
    ) -> tuple[int, int, int]:
        """AND each member's own row into the (possibly cached) prefix,
        stride by stride, skipping slices the masks prove empty."""
        last = combos[lo:hi, 0]
        mask = index.stride_any[last]
        if pre is not None:
            mask = mask & stride_any_mask(pre, word_stride)[None, :]
        w = words.shape[1]
        r = o = skipped = 0
        for s in range(index.n_strides):
            rows_on = np.flatnonzero(mask[:, s])
            if rows_on.size == 0:
                skipped += 1
                continue
            sl = slice(s * word_stride, min((s + 1) * word_stride, w))
            width = sl.stop - sl.start
            gathered = words[last[rows_on], sl]
            if pre is not None:
                np.bitwise_and(gathered, pre[sl][None, :], out=gathered)
                o += rows_on.size * width
            accum[lo + rows_on] += np.bitwise_count(gathered).sum(
                axis=1, dtype=np.int64
            )
            r += rows_on.size * width
        return r, o, skipped

    for i in range(len(starts) - 1):
        lo, hi = int(starts[i]), int(starts[i + 1])
        k = hi - lo
        pre_t = pre_n = None
        if h > 1:
            prefix = combos[lo, 1:]
            pre_t = _and_rows(t_words, prefix)
            reads += (h - 1) * tumor.n_words
            ops += (h - 2) * tumor.n_words
            prefix_hits += k - 1
            if skip_runs and not pre_t.any():
                # TP = 0 for the whole run and the incumbent strictly
                # beats the TP = 0 ceiling: resolve the run wholesale.
                # tp stays 0 (exact); n_hits stays 0, reporting
                # TN = Nn — the sound upper bound fscore folds into
                # exactly the ceiling.  Neither can displace or tie the
                # incumbent, so the winner is unchanged.
                zero_runs += 1
                continue
            pre_n = _and_rows(n_words, prefix)
            reads += (h - 1) * normal.n_words
            ops += (h - 2) * normal.n_words
        r, o, sk = member_pass(t_words, t_index, pre_t, tp, lo, hi)
        reads, ops, strides_skipped = reads + r, ops + o, strides_skipped + sk
        r, o, sk = member_pass(n_words, n_index, pre_n, n_hits, lo, hi)
        reads, ops, strides_skipped = reads + r, ops + o, strides_skipped + sk

    tn = params.n_normal - n_hits
    f = fscore(tp, tn, params)
    if counters is not None:
        dense_reads = b * h * (tumor.n_words + normal.n_words)
        counters.combos_scored += b
        counters.word_reads += reads
        counters.word_ops += ops
        counters.word_reads_skipped += dense_reads - reads
        counters.prefix_and_hits += prefix_hits
        counters.zero_prefix_runs_skipped += zero_runs
        counters.strides_skipped_sparse += strides_skipped
    return f, tp, tn


def fused_pair_popcount(
    base: np.ndarray,
    inner: np.ndarray,
    word_stride: "int | None" = None,
    base_mask: "np.ndarray | None" = None,
    inner_mask: "np.ndarray | None" = None,
    counters: "KernelCounters | None" = None,
) -> np.ndarray:
    """``(B, L)`` popcounts of ``base[b] & inner[l]``, stride-fused.

    The engine's nested-scheme hot loop: ``base`` holds each thread's
    AND-reduced fixed-gene rows, ``inner`` the cached AND-table of inner
    combinations.  The broadcast AND is evaluated one word stride at a
    time so the transient cube is ``(B, L, word_stride)`` at most, never
    ``(B, L, n_words)``.

    ``base_mask`` / ``inner_mask`` (bool ``(B, S)`` / ``(L, S)``
    stride-nonzero masks) switch on the sparse path: a stride where
    either side has no nonzero rows is skipped outright, and within an
    active stride only the nonzero rows on each side are broadcast —
    zero rows contribute 0 to every popcount, so the result is
    bit-identical.  ``counters`` then meters the AND work actually
    performed (``word_ops``) and the slices skipped.
    """
    ws = resolve_word_stride(word_stride)
    n_words = base.shape[1]
    out = np.zeros((base.shape[0], inner.shape[0]), dtype=np.int64)
    sparse = base_mask is not None and inner_mask is not None
    for s, w0 in enumerate(range(0, n_words, ws)):
        sl = slice(w0, min(w0 + ws, n_words))
        if not sparse:
            out += np.bitwise_count(base[:, None, sl] & inner[None, :, sl]).sum(
                axis=2, dtype=np.int64
            )
            if counters is not None:
                counters.word_ops += base.shape[0] * inner.shape[0] * (
                    sl.stop - sl.start
                )
            continue
        rows_on = np.flatnonzero(base_mask[:, s])
        cols_on = np.flatnonzero(inner_mask[:, s])
        if rows_on.size == 0 or cols_on.size == 0:
            if counters is not None:
                counters.strides_skipped_sparse += 1
            continue
        part = np.bitwise_count(
            base[rows_on][:, None, sl] & inner[cols_on][None, :, sl]
        ).sum(axis=2, dtype=np.int64)
        out[np.ix_(rows_on, cols_on)] += part
        if counters is not None:
            counters.word_ops += rows_on.size * cols_on.size * (sl.stop - sl.start)
    return out


def score_combos(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
    counters: "KernelCounters | None" = None,
    word_stride: "int | None" = None,
    sparse: bool = False,
    skip_below: "float | None" = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Score a block of combinations; returns ``(f, tp, tn)`` arrays.

    ``combos`` has shape ``(B, h)`` with strictly increasing gene rows.
    ``TP`` counts tumor samples present in *all* rows of the combination,
    ``TN = Nn - (normal samples present in all rows)``.

    ``sparse=True`` takes the sparsity-driven path — bit-identical
    ``(f, tp, tn)`` with less traffic, metered as actually performed
    (the dense path's charge equals its actual traffic, so both paths
    meter reality; ``word_reads_skipped`` keeps the closure
    ``sparse reads + skipped == dense reads`` exact).  ``skip_below``
    (an incumbent F from the engine scan) additionally lets runs whose
    tumor prefix AND is all-zero be resolved wholesale; their ``tp`` is
    exact (0) but ``f`` / ``tn`` are then the ``TP = 0`` ceiling upper
    bounds rather than exact values, so only callers maintaining an
    incumbent under the strict ``better`` rule may pass it.
    """
    combos = np.asarray(combos, dtype=np.int64)
    if combos.ndim != 2:
        raise ValueError(f"combos must be 2-D (B, h), got shape {combos.shape}")
    b, h = combos.shape
    if b == 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.astype(np.int64)
    ws = resolve_word_stride(word_stride)

    if sparse:
        return _score_combos_sparse(
            tumor, normal, combos, params, counters, ws, skip_below
        )

    tp = _fused_and_popcount(tumor.words, combos, ws)
    tn = params.n_normal - _fused_and_popcount(normal.words, combos, ws)
    f = fscore(tp, tn, params)

    if counters is not None:
        # The dense fused pass touches every gathered word exactly once,
        # so the closed form below *is* the actual traffic.
        counters.combos_scored += b
        counters.word_reads += b * h * (tumor.n_words + normal.n_words)
        counters.word_ops += b * (h - 1) * (tumor.n_words + normal.n_words)
    return f, tp, tn


def score_combos_reference(
    tumor: BitMatrix,
    normal: BitMatrix,
    combos: np.ndarray,
    params: FScoreParams,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Single-shot (non-strided) reference scorer.

    Materializes the full ``(B, n_words)`` AND intermediates the fused
    kernel avoids; kept as the oracle the fused path must match
    bit-for-bit.  The fancy-indexed gather already materializes fresh
    arrays, so the in-place ANDs never clobber the matrix rows.
    """
    combos = np.asarray(combos, dtype=np.int64)
    b, h = combos.shape
    if b == 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.astype(np.int64)
    t_and = tumor.words[combos[:, 0]]
    n_and = normal.words[combos[:, 0]]
    for c in range(1, h):
        np.bitwise_and(t_and, tumor.words[combos[:, c]], out=t_and)
        np.bitwise_and(n_and, normal.words[combos[:, c]], out=n_and)
    tp = np.bitwise_count(t_and).sum(axis=1).astype(np.int64)
    tn = params.n_normal - np.bitwise_count(n_and).sum(axis=1).astype(np.int64)
    return fscore(tp, tn, params), tp, tn


def best_of(
    combos: np.ndarray, f: np.ndarray, tp: np.ndarray, tn: np.ndarray
) -> "MultiHitCombination | None":
    """Deterministic arg-max of a scored block (ties -> smallest gene tuple).

    The tie-break is the vectorized lexicographic row-min — one
    ``np.lexsort`` over the tied rows instead of a Python ``min`` over
    materialized tuples, which matters when a block ties broadly (e.g.
    all-zero matrices where every combination scores the same).
    """
    if len(f) == 0:
        return None
    fmax = f.max()
    tied = np.flatnonzero(f == fmax)
    if tied.size == 1:
        best_idx = int(tied[0])
    else:
        rows = combos[tied]
        winner = _lexmin_rows(rows)
        best_idx = int(tied[np.flatnonzero((rows == winner).all(axis=1))[0]])
    return MultiHitCombination(
        genes=tuple(int(x) for x in combos[best_idx]),
        f=float(fmax),
        tp=int(tp[best_idx]),
        tn=int(tn[best_idx]),
    )
