"""The paper's primary contribution: the multi-hit weighted-set-cover solver.

Greedy loop (Section II-B): each iteration scores *every* ``h``-gene
combination with ``F = (alpha*TP + TN) / (Nt + Nn)``, keeps the best,
removes the tumor samples it covers, and repeats until every tumor sample
is covered (or no combination covers anything new).  The engines here
implement that search sequentially (reference), vectorized (the
"single-GPU" engine, mirroring the CUDA kernel structure), and
distributed over a simulated Summit (schedule -> per-GPU search ->
multi-stage reduction).
"""

from repro.core.bounds import BoundTable
from repro.core.fscore import FScoreParams, fscore
from repro.core.combination import (
    COMBO_DTYPE,
    COMBO_RECORD_BYTES,
    MultiHitCombination,
    colex_rank,
)
from repro.core.kernels import best_of, score_combos
from repro.core.memopt import MemoryConfig
from repro.core.sequential import sequential_best_combo, sequential_solve
from repro.core.engine import SingleGpuEngine, best_in_thread_range
from repro.core.reduction import ReductionStats, block_reduce, multi_stage_reduce
from repro.core.distributed import DistributedEngine
from repro.core.pool import ChunkRecord, PoolDegradedWarning, PoolEngine, PoolStats
from repro.core.solver import IterationRecord, MultiHitResult, MultiHitSolver
from repro.core.checkpoint import (
    SolverState,
    load_state,
    save_state,
    solve_with_checkpoints,
)

__all__ = [
    "BoundTable",
    "FScoreParams",
    "fscore",
    "COMBO_DTYPE",
    "COMBO_RECORD_BYTES",
    "MultiHitCombination",
    "colex_rank",
    "score_combos",
    "best_of",
    "MemoryConfig",
    "sequential_best_combo",
    "sequential_solve",
    "SingleGpuEngine",
    "best_in_thread_range",
    "ReductionStats",
    "block_reduce",
    "multi_stage_reduce",
    "DistributedEngine",
    "PoolEngine",
    "PoolStats",
    "ChunkRecord",
    "PoolDegradedWarning",
    "MultiHitSolver",
    "MultiHitResult",
    "IterationRecord",
    "SolverState",
    "save_state",
    "load_state",
    "solve_with_checkpoints",
]
