"""Checkpoint / resume for long greedy runs.

Summit's scheduler caps allocations (the paper notes sub-100-node jobs
were limited to two hours, which forced the 100-node baseline).  The
greedy loop has a natural checkpoint granularity: between iterations the
entire solver state is just the combinations found so far plus the
uncovered-sample mask.  :class:`SolverState` captures that state,
round-trips it through JSON, and rebuilds the loop's working set on
resume; continuing a run produces bit-identical results to an
uninterrupted one (asserted by the tests).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.core.combination import MultiHitCombination
from repro.core.fscore import FScoreParams
from repro.telemetry.session import get_telemetry

__all__ = ["SolverState", "save_state", "load_state", "solve_with_checkpoints"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SolverState:
    """Resumable snapshot of the greedy loop between iterations.

    ``bound_table`` is the lazy-greedy engine's per-λ-block bound cache
    (:meth:`repro.core.bounds.BoundTable.to_payload`).  It is strictly
    optional: bounds are exact upper bounds derived from earlier
    iterations, so a resumed run that drops the table (older checkpoint,
    different backend geometry, pruning disabled) rescans a few blocks
    but produces bit-identical iterations.
    """

    hits: int
    alpha: float
    combinations: tuple[MultiHitCombination, ...]
    active: np.ndarray  # uncovered tumor samples (vs original columns)
    bound_table: "dict | None" = None

    @classmethod
    def capture(
        cls,
        hits: int,
        alpha: float,
        combos: list[MultiHitCombination],
        active: np.ndarray,
        bound_table: "dict | None" = None,
    ) -> "SolverState":
        return cls(
            hits=hits,
            alpha=alpha,
            combinations=tuple(combos),
            active=active.copy(),
            bound_table=bound_table,
        )

    def restore(
        self, tumor: BitMatrix, hits: int, params: FScoreParams
    ) -> tuple[list[MultiHitCombination], np.ndarray]:
        """Validate against the run being resumed and return (combos, active)."""
        if hits != self.hits:
            raise ValueError(
                f"checkpoint is for {self.hits}-hit search, solver wants {hits}"
            )
        if abs(params.alpha - self.alpha) > 1e-12:
            raise ValueError("checkpoint alpha differs from solver alpha")
        if self.active.shape != (tumor.n_samples,):
            raise ValueError(
                f"checkpoint covers {self.active.shape[0]} samples, "
                f"matrix has {tumor.n_samples}"
            )
        # Consistency: every recorded combination's samples are inactive.
        for c in self.combinations:
            covered = tumor.samples_with_all(c.genes)
            if bool((covered & self.active).any()):
                raise ValueError(
                    f"checkpoint inconsistent: combination {c.genes} still "
                    "covers active samples"
                )
        return list(self.combinations), self.active.copy()

    @property
    def n_found(self) -> int:
        return len(self.combinations)

    @property
    def n_uncovered(self) -> int:
        return int(self.active.sum())


def save_state(state: SolverState, path: "str | Path") -> None:
    """Persist a checkpoint as JSON, atomically.

    The payload is written to a sibling temp file, flushed to disk, and
    renamed over ``path`` with :func:`os.replace` — a crash mid-write
    (the very failure checkpoints exist to survive) can never leave a
    torn checkpoint behind: ``path`` holds either the previous complete
    snapshot or the new one.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "hits": state.hits,
        "alpha": state.alpha,
        "combinations": [
            {"genes": list(c.genes), "f": c.f, "tp": c.tp, "tn": c.tn}
            for c in state.combinations
        ],
        "active": [int(i) for i in np.flatnonzero(state.active)],
        "n_samples": int(state.active.shape[0]),
    }
    if state.bound_table is not None:
        payload["bound_table"] = state.bound_table
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    telemetry = get_telemetry()
    encoded = json.dumps(payload) + "\n"
    with telemetry.span(
        "checkpoint", cat="checkpoint",
        iterations=len(state.combinations), bytes=len(encoded),
    ):
        try:
            with open(tmp, "w") as fh:
                fh.write(encoded)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
    if telemetry.enabled:
        telemetry.count("checkpoint.writes")
        telemetry.count("checkpoint.bytes", len(encoded))


def load_state(path: "str | Path") -> SolverState:
    """Inverse of :func:`save_state`."""
    raw = json.loads(Path(path).read_text())
    if raw.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {raw.get('format_version')!r}")
    active = np.zeros(raw["n_samples"], dtype=bool)
    active[raw["active"]] = True
    combos = tuple(
        MultiHitCombination(genes=tuple(c["genes"]), f=c["f"], tp=c["tp"], tn=c["tn"])
        for c in raw["combinations"]
    )
    return SolverState(
        hits=raw["hits"],
        alpha=raw["alpha"],
        combinations=combos,
        active=active,
        bound_table=raw.get("bound_table"),
    )


def solve_with_checkpoints(
    solver,
    tumor,
    normal,
    path: "str | Path",
    resume_if_exists: bool = True,
    every: int = 1,
    on_iteration=None,
    should_stop=None,
):
    """Run a solver, persisting a checkpoint every ``every`` iterations.

    If ``path`` exists (and ``resume_if_exists``), the run continues from
    it; either way the file tracks a recent completed iteration, so an
    interrupted process can always be relaunched with the same call.
    ``every > 1`` trades re-computable iterations for checkpoint I/O;
    the final state is always persisted regardless of cadence, and each
    write is atomic (see :func:`save_state`).

    ``on_iteration(state)`` is chained after the checkpoint bookkeeping
    (the gateway's progress feed rides this).  ``should_stop`` is
    forwarded to :meth:`MultiHitSolver.solve`; a cooperative stop still
    persists the final state, so a cancelled run resumes from where it
    stopped.
    """
    if every < 1:
        raise ValueError("every must be >= 1")
    path = Path(path)
    resume = None
    if resume_if_exists and path.exists():
        resume = load_state(path)

    last: "list[SolverState | None]" = [None]
    seen = [0]

    def _on_iteration(state: SolverState) -> None:
        seen[0] += 1
        last[0] = state
        if seen[0] % every == 0:
            save_state(state, path)
            last[0] = None
        if on_iteration is not None:
            on_iteration(state)

    result = solver.solve(
        tumor, normal, resume=resume, on_iteration=_on_iteration,
        should_stop=should_stop,
    )
    if last[0] is not None:
        save_state(last[0], path)
    return result
