"""Persistent per-λ-block bound tables for the lazy-greedy engine.

Between greedy iterations only the tumor matrix changes: covered sample
columns are removed, so every combination's ``TP`` is monotonically
non-increasing while ``TN`` (a function of the fixed normal matrix) never
changes.  With ``F = (alpha * TP + TN) / (Nt + Nn)`` and monotone float
rounding, each combination's F is non-increasing across iterations —
which makes the best F a λ-block achieved at *any* earlier iteration an
exact upper bound on the block's best F now.

:class:`BoundTable` stores one float bound plus an iteration stamp per
fixed-boundary λ-block.  The engine visits blocks in descending
stale-bound order (CELF-style lazy evaluation): the first blocks scored
establish a strong incumbent, and any block whose stored bound is
*strictly* below the incumbent's F cannot contain the winner — nor a tie,
since ties need an equal F — and is skipped without touching a single
matrix word.  Skipped blocks keep their stale bound, which remains a
valid (if loose) upper bound forever; rescored blocks are refreshed and
stamped with the iteration that scored them.

The table is *hierarchical*: blocks are grouped into super-blocks of
``super_size`` λ-adjacent blocks, each carrying a derived aggregate (max
member bound, all-members-stamped flag, summed work).  CELF visitation
runs at the super level first — a super-block whose every member is
stamped and whose max bound is strictly below the incumbent is skipped
in one step, without touching any per-block metadata — and the
λ-adjacency of a super's members is what lets the engine scan its
surviving blocks as one fused multi-block pass (a single λ-decode per
stride, not per block).  The super layer is derived data, rebuilt from
the per-block arrays wherever the table travels (payload slices, delta
fold-backs, checkpoints), so it changes no persistence format and no
soundness argument.

The table is a cache, never a source of truth: dropping it (or any slice
of it) only costs rescans, so fault recovery and checkpoint resume are
free to discard bounds whose provenance is unclear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scheduling.equiarea import equiarea_range_boundaries
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import (
    cumulative_work_before,
    total_threads,
    work_prefix_by_level,
)

__all__ = ["BoundTable"]


@dataclass
class BoundTable:
    """Per-λ-block upper bounds on F, persistent across greedy iterations.

    Attributes
    ----------
    scheme_key:
        ``(hits, flattened, inner)`` of the scheme the blocks partition —
        a table only ever applies to the grid it was cut for.
    g:
        Gene count (the λ grid is over genes; column compaction never
        changes it, so one table survives a whole greedy run).
    boundaries:
        ``(B + 1,)`` int64 block cut points covering ``[0, C(g, f))`` —
        or a sub-range of it, for a slice shipped to a pool worker.
    bounds:
        ``(B,)`` float64 per-block upper bounds; ``+inf`` means "never
        scored" (never prunable).
    stamps:
        ``(B,)`` int64 iteration that last refreshed each bound; ``-1``
        means never.
    works:
        ``(B,)`` int64 combinations per block (for pruned-combo
        accounting).
    offset:
        Global index of block 0 — nonzero only for worker-side slices,
        so their deltas address the parent table's blocks.
    super_size:
        Blocks per super-block (the hierarchy's fan-out).  The super
        aggregates are derived and rebuilt locally, so slices and
        checkpoints may regroup freely without invalidating anything.
    """

    scheme_key: tuple[int, int, int]
    g: int
    boundaries: np.ndarray
    bounds: np.ndarray
    stamps: np.ndarray
    works: np.ndarray
    offset: int = 0
    super_size: int = 8
    _index: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.super_size < 1:
            raise ValueError("super_size must be >= 1")
        self.boundaries = np.asarray(self.boundaries, dtype=np.int64)
        self.bounds = np.asarray(self.bounds, dtype=np.float64)
        self.stamps = np.asarray(self.stamps, dtype=np.int64)
        self.works = np.asarray(self.works, dtype=np.int64)
        self._index = {int(b): i for i, b in enumerate(self.boundaries)}
        self._rebuild_supers()

    def _rebuild_supers(self) -> None:
        k = self.super_size
        n_sup = (self.n_blocks + k - 1) // k
        self._super_bounds = np.empty(n_sup, dtype=np.float64)
        self._super_stamped = np.empty(n_sup, dtype=bool)
        self._super_works = np.empty(n_sup, dtype=np.int64)
        for s in range(n_sup):
            self._refresh_super(s)

    def _refresh_super(self, s: int) -> None:
        a, b = self.super_block_range(s)
        self._super_bounds[s] = self.bounds[a:b].max()
        self._super_stamped[s] = bool((self.stamps[a:b] >= 0).all())
        self._super_works[s] = int(self.works[a:b].sum())

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        scheme: Scheme,
        g: int,
        cuts: "tuple[int, ...] | list[int] | None" = None,
        n_blocks: int = 64,
        super_size: int = 8,
    ) -> "BoundTable":
        """Cut ``[0, C(g, f))`` into ~``n_blocks`` equi-area blocks.

        ``cuts`` (a backend's chunk / partition boundaries) are merged
        into the block boundaries so every chunk a backend searches is a
        whole number of blocks — the alignment the pruned engine path
        requires.
        """
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        total = total_threads(scheme, g)
        points = set(equiarea_range_boundaries(scheme, g, 0, total, n_blocks))
        points.update((0, total))
        if cuts is not None:
            points.update(int(c) for c in cuts if 0 <= int(c) <= total)
        # The set dedups coinciding equi-area cuts (tiny g), so every
        # block is non-empty by construction.
        boundaries = np.asarray(sorted(points), dtype=np.int64)
        n = len(boundaries) - 1
        prefix = work_prefix_by_level(scheme, g)
        cum = [cumulative_work_before(scheme, g, int(b), prefix) for b in boundaries]
        works = np.diff(np.asarray(cum, dtype=np.int64))
        return cls(
            scheme_key=(scheme.hits, scheme.flattened, scheme.inner),
            g=g,
            boundaries=boundaries,
            bounds=np.full(n, np.inf),
            stamps=np.full(n, -1, dtype=np.int64),
            works=works,
            super_size=super_size,
        )

    # -- block addressing ----------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self.bounds)

    def block_range(self, b: int) -> tuple[int, int]:
        return int(self.boundaries[b]), int(self.boundaries[b + 1])

    def block_work(self, b: int) -> int:
        return int(self.works[b])

    # -- super-block addressing ----------------------------------------

    @property
    def n_supers(self) -> int:
        return len(self._super_bounds)

    def super_of(self, b: int) -> int:
        return b // self.super_size

    def super_block_range(self, s: int) -> tuple[int, int]:
        """Block index range ``[a, b)`` making up super-block ``s``."""
        a = s * self.super_size
        return a, min(a + self.super_size, self.n_blocks)

    def super_work(self, s: int) -> int:
        return int(self._super_works[s])

    def aligned(self, lam_start: int, lam_end: int) -> bool:
        """Whether ``[lam_start, lam_end)`` is a whole number of blocks."""
        return lam_start in self._index and lam_end in self._index

    def block_slice(self, lam_start: int, lam_end: int) -> tuple[int, int]:
        """Block index range ``[i0, i1)`` covering ``[lam_start, lam_end)``."""
        if not self.aligned(lam_start, lam_end):
            raise ValueError(
                f"λ range [{lam_start}, {lam_end}) is not aligned to the "
                "bound table's block boundaries"
            )
        return self._index[lam_start], self._index[lam_end]

    # -- the lazy-greedy contract --------------------------------------

    def visit_order(self, i0: int, i1: int) -> np.ndarray:
        """Blocks of ``[i0, i1)`` in descending stale-bound order.

        Ties (equal bounds, including the fresh ``+inf``) resolve to the
        lower block id, so visitation — and therefore which blocks get
        skipped — is fully deterministic.
        """
        ids = np.arange(i0, i1)
        return ids[np.lexsort((ids, -self.bounds[i0:i1]))]

    def can_skip(self, b: int, incumbent_f: float) -> bool:
        """True when block ``b`` cannot contain the winner *or a tie*.

        Requires a strict inequality: a block whose bound equals the
        incumbent F may still hold an equal-F combination with a
        lexicographically smaller gene tuple, which the library-wide tie
        rule must surface.
        """
        return bool(self.stamps[b] >= 0 and self.bounds[b] < incumbent_f)

    def super_visit_order(self, i0: int, i1: int) -> np.ndarray:
        """Super-blocks overlapping ``[i0, i1)`` in descending bound order.

        The same deterministic tie rule as :meth:`visit_order`: equal
        aggregate bounds resolve to the lower super id, so the visitation
        sequence — and which supers get skipped — never depends on dict
        or scheduling order.
        """
        s0 = i0 // self.super_size
        s1 = (i1 + self.super_size - 1) // self.super_size
        ids = np.arange(s0, s1)
        return ids[np.lexsort((ids, -self._super_bounds[s0:s1]))]

    def can_skip_super(self, s: int, incumbent_f: float) -> bool:
        """True when no member block of super ``s`` can hold the winner.

        Sound for the same reason as :meth:`can_skip`: the aggregate is
        the max of member bounds, each an exact upper bound on its
        block's best F, and the strict inequality preserves the
        lexicographic tie rule.  Requires every member stamped — a fresh
        ``+inf`` member makes the aggregate ``+inf`` anyway, but the flag
        keeps the check cheap and explicit.
        """
        return bool(
            self._super_stamped[s] and self._super_bounds[s] < incumbent_f
        )

    def refresh(self, b: int, max_f: float, iteration: int) -> None:
        """Record the block's scanned maximum observed at ``iteration``.

        With the sparse scan's zero-prefix run skipping the stored value
        is a valid *upper bound* rather than the exact maximum (skipped
        runs report the ``TP = 0`` ceiling, which dominates anything
        they could score) — still sound for the strict-inequality skip,
        since F is non-increasing across greedy iterations and the
        ceiling is constant (``Nn`` never shrinks).
        """
        self.bounds[b] = max_f
        self.stamps[b] = iteration
        self._refresh_super(self.super_of(b))

    def reset(self) -> None:
        """Forget everything (always sound — the table is a cache)."""
        self.bounds.fill(np.inf)
        self.stamps.fill(-1)
        self._rebuild_supers()

    # -- cross-process slices (pool workers) ---------------------------

    def slice_payload(self, lam_start: int, lam_end: int) -> dict:
        """Picklable slice covering one worker chunk."""
        i0, i1 = self.block_slice(lam_start, lam_end)
        return {
            "scheme_key": list(self.scheme_key),
            "g": self.g,
            "offset": self.offset + i0,
            "boundaries": [int(x) for x in self.boundaries[i0 : i1 + 1]],
            "bounds": [
                None if s < 0 else float(v)
                for v, s in zip(self.bounds[i0:i1], self.stamps[i0:i1])
            ],
            "stamps": [int(x) for x in self.stamps[i0:i1]],
            "works": [int(x) for x in self.works[i0:i1]],
            "super_size": self.super_size,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "BoundTable":
        bounds = np.asarray(
            [np.inf if v is None else v for v in payload["bounds"]], dtype=np.float64
        )
        return cls(
            scheme_key=tuple(payload["scheme_key"]),
            g=int(payload["g"]),
            boundaries=np.asarray(payload["boundaries"], dtype=np.int64),
            bounds=bounds,
            stamps=np.asarray(payload["stamps"], dtype=np.int64),
            works=np.asarray(payload["works"], dtype=np.int64),
            offset=int(payload.get("offset", 0)),
            super_size=int(payload.get("super_size", 8)),
        )

    def deltas(self, iteration: int) -> list[tuple[int, float]]:
        """Global ``(block_id, new_bound)`` pairs refreshed at ``iteration``."""
        hit = np.flatnonzero(self.stamps == iteration)
        return [(self.offset + int(b), float(self.bounds[b])) for b in hit]

    def apply_deltas(
        self, deltas: "list[tuple[int, float]] | None", iteration: int
    ) -> None:
        """Fold a worker slice's refreshed bounds back into this table."""
        if not deltas:
            return
        touched = set()
        for b, v in deltas:
            self.bounds[b - self.offset] = v
            self.stamps[b - self.offset] = iteration
            touched.add(self.super_of(b - self.offset))
        for s in touched:
            self._refresh_super(s)

    # -- checkpoint persistence ----------------------------------------

    def to_payload(self) -> dict:
        """Full-table JSON-safe snapshot (``slice_payload`` of everything)."""
        return self.slice_payload(
            int(self.boundaries[0]), int(self.boundaries[-1])
        )

    def matches(self, other: "BoundTable") -> bool:
        """Same grid, same blocks — a persisted table may replace ``other``."""
        return (
            self.scheme_key == other.scheme_key
            and self.g == other.g
            and self.offset == other.offset
            and np.array_equal(self.boundaries, other.boundaries)
        )
