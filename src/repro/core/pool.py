"""Multiprocess equi-area execution backend (the ``"pool"`` backend).

The paper's scale-out fans the per-iteration arg-max over thousands of
GPUs: cut the thread grid into equal-*work* (equi-area) partitions,
search each independently, reduce the per-partition winners through the
multi-stage max-reduction.  This module realizes the identical
shard -> score -> reduce shape on CPU cores:

* the λ thread-range is cut with the O(G) equi-area level walk
  (:func:`repro.scheduling.equiarea.equiarea_range_boundaries`, so a
  single simulated GPU's sub-range can itself be pooled);
* each chunk runs :func:`repro.core.engine.best_in_thread_range` in a
  persistent worker process (one pool per engine, reused across greedy
  iterations);
* per-chunk :class:`KernelCounters` are merged in partition order and
  the per-chunk winners flow through the same
  :func:`repro.core.reduction.multi_stage_reduce` as every other engine,
  so tie-breaking is bit-exact with the ``"single"`` and
  ``"sequential"`` backends regardless of worker count or partition
  boundaries.

The packed :class:`BitMatrix` words are shipped **once per greedy
iteration** via POSIX shared memory (``multiprocessing.shared_memory``),
not re-pickled per chunk: a chunk task carries only segment names,
shapes and the λ range; workers attach lazily and cache the mapping
until the segment names change.

Pruned iterations ship each aligned chunk its slice of the two-level
bound table (:meth:`repro.core.bounds.BoundTable.slice_payload`); the
worker-side slice rebuilds its derived super-block aggregates locally on
construction, so the hierarchical skip and the fused multi-block runs
work identically in-process and cross-process, and the refreshed bounds
ride back as per-chunk deltas.  The fused-scan counters
(``decode_strides``, ``inner_tables_built``, ``supers_skipped``) merge
across workers like every other :class:`KernelCounters` field.

A lost worker never loses a greedy iteration: a crashed or timed-out
chunk is re-submitted per the engine's :class:`repro.faults.RetryPolicy`
(with exponential backoff) and finally retried inline in the parent
(with a one-time :class:`PoolDegradedWarning`); a broken pool is rebuilt
before the next attempt.  Every detection and recovery is recorded in
the engine's :class:`repro.faults.FaultReport`, and a
:class:`repro.faults.FaultPlan` can deterministically inject chunk
crashes, hangs, and stragglers for testing.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.bitmatrix.matrix import BitMatrix
from repro.core.bounds import BoundTable
from repro.core.combination import MultiHitCombination
from repro.core.engine import best_in_thread_range
from repro.core.fscore import FScoreParams
from repro.core.kernels import KernelCounters
from repro.core.memopt import MemoryConfig
from repro.core.reduction import multi_stage_reduce
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultReport
from repro.scheduling.equiarea import equiarea_range_boundaries
from repro.scheduling.schemes import Scheme
from repro.telemetry.session import Telemetry, get_telemetry
from repro.scheduling.workload import (
    cumulative_work_before,
    total_threads,
    work_prefix_by_level,
)

__all__ = ["ChunkRecord", "PoolDegradedWarning", "PoolEngine", "PoolStats"]


class PoolDegradedWarning(RuntimeWarning):
    """A worker chunk was recovered inline after a crash or timeout."""


# -- chunk task / result (what actually crosses the process boundary) ----


@dataclass(frozen=True)
class _ChunkTask:
    """Everything a worker needs to search one λ chunk.

    Matrices travel by shared-memory segment name, never by value.
    """

    scheme: Scheme
    g: int
    tumor_name: str
    tumor_shape: tuple[int, int]
    tumor_samples: int
    normal_name: str
    normal_shape: tuple[int, int]
    normal_samples: int
    params: FScoreParams
    lam_start: int
    lam_end: int
    memory: "MemoryConfig | None"
    fault: "FaultSpec | None" = None
    trace: bool = False  # worker records spans/metrics and ships them back
    # Causal context of the dispatching span (repro.telemetry.causal):
    # the worker session adopts it, so its scan_chunk span re-roots to
    # the parent's timeline and joins the parent's trace_id.
    trace_ctx: "dict | None" = None
    # Lazy-greedy pruning: the parent table's slice covering this chunk
    # (BoundTable.slice_payload) and the greedy iteration stamp.  The
    # worker prunes against the slice and ships refreshed bounds back as
    # deltas in the result tuple.
    bounds: "dict | None" = None
    iteration: int = 0
    sparse: bool = False
    word_stride: "int | None" = None


# Per-worker cache: segment name -> (SharedMemory handle, word-array view).
_ATTACHED: dict = {}


def _attach(name: str, shape: tuple[int, int]) -> np.ndarray:
    entry = _ATTACHED.get(name)
    if entry is None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        words = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        _ATTACHED[name] = entry = (shm, words)
    return entry[1]


def _evict_stale(keep: set) -> None:
    """Drop cached mappings from earlier iterations (segments renamed)."""
    for name in [n for n in _ATTACHED if n not in keep]:
        shm, _ = _ATTACHED.pop(name)
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view still referenced
            pass


def _apply_worker_fault(spec: FaultSpec) -> None:
    """Worker-side realization of an injected chunk fault."""
    if spec.kind == "crash":
        os._exit(17)  # hard death: no exception crosses the pipe
    elif spec.kind in ("hang", "straggler"):
        # A hang outlives the parent's deadline (which recovers the
        # chunk); a straggler merely finishes late.
        time.sleep(spec.delay_s)


def _search_chunk(task: _ChunkTask):
    """Worker-side: attach, search the λ range, return winner + accounting.

    Returns ``(winner, counters, pid, wall_s, telemetry_state, deltas)``
    where ``deltas`` are the bound-table entries this chunk refreshed
    (``None`` when pruning is off).  When ``task.trace`` is set the
    worker records a ``scan_chunk`` span (and chunk metrics) in a *fresh
    local* session — never the fork-inherited global one — and ships the
    exported state back over this result channel for the parent to merge.
    """
    telemetry = Telemetry(enabled=task.trace)
    telemetry.adopt_context(task.trace_ctx)
    with telemetry.timed_span(
        "scan_chunk", cat="pool", lam_start=task.lam_start, lam_end=task.lam_end
    ) as span:
        if task.fault is not None:
            _apply_worker_fault(task.fault)
        _evict_stale({task.tumor_name, task.normal_name})
        tumor = BitMatrix(
            _attach(task.tumor_name, task.tumor_shape), task.tumor_samples
        )
        normal = BitMatrix(
            _attach(task.normal_name, task.normal_shape), task.normal_samples
        )
        counters = KernelCounters()
        local_bounds = (
            BoundTable.from_payload(task.bounds) if task.bounds is not None else None
        )
        best = best_in_thread_range(
            task.scheme,
            task.g,
            tumor,
            normal,
            task.params,
            task.lam_start,
            task.lam_end,
            counters=counters,
            memory=task.memory,
            bounds=local_bounds,
            iteration=task.iteration,
            sparse=task.sparse,
            word_stride=task.word_stride,
        )
    deltas = (
        local_bounds.deltas(task.iteration) if local_bounds is not None else None
    )
    state = None
    if task.trace:
        telemetry.count("pool.worker_chunks")
        telemetry.observe("pool.chunk_wall_s", span.duration_s)
        state = telemetry.export_state()
    return best, counters, os.getpid(), span.duration_s, state, deltas


# -- per-run statistics --------------------------------------------------


@dataclass(frozen=True)
class ChunkRecord:
    """What one worker chunk of one arg-max call did."""

    chunk: int
    lam_start: int
    lam_end: int
    work: int
    combos_scored: int
    wall_seconds: float
    worker_pid: int
    inline_retry: bool


@dataclass
class PoolStats:
    """Measured partition stats, accumulated over best_combo calls."""

    n_workers: int = 0
    chunks: list[ChunkRecord] = field(default_factory=list)
    publish_seconds: float = 0.0
    shipped_bytes: int = 0
    n_publishes: int = 0

    @property
    def n_inline_retries(self) -> int:
        return sum(c.inline_retry for c in self.chunks)

    def per_worker(self) -> dict[int, dict]:
        """Aggregate chunk stats per worker pid (parent pid = inline)."""
        out: dict[int, dict] = {}
        for c in self.chunks:
            row = out.setdefault(
                c.worker_pid,
                {"chunks": 0, "work": 0, "combos_scored": 0, "wall_seconds": 0.0},
            )
            row["chunks"] += 1
            row["work"] += c.work
            row["combos_scored"] += c.combos_scored
            row["wall_seconds"] += c.wall_seconds
        return out

    def describe(self) -> str:
        work = [c.work for c in self.chunks] or [0]
        mean = sum(work) / len(work)
        lines = [
            f"PoolStats workers={self.n_workers} chunks={len(self.chunks)} "
            f"inline_retries={self.n_inline_retries} "
            f"shipped={self.shipped_bytes}B in {self.n_publishes} publishes "
            f"({self.publish_seconds * 1e3:.2f} ms) "
            f"chunk-work imbalance={max(work) / mean if mean else 1.0:.4f}",
            "  worker pid | chunks |        work | combos scored | wall (s)",
        ]
        for pid, row in sorted(self.per_worker().items()):
            lines.append(
                f"  {pid:10d} | {row['chunks']:6d} | {row['work']:11d} | "
                f"{row['combos_scored']:13d} | {row['wall_seconds']:8.4f}"
            )
        return "\n".join(lines)


# -- the engine ----------------------------------------------------------


@dataclass
class _Segment:
    matrix: BitMatrix  # held so the identity check stays valid
    shm: object


@dataclass
class PoolEngine:
    """Equi-area multiprocess arg-max over a λ thread-range.

    Parameters
    ----------
    scheme:
        Loop-flattening scheme (the thread grid being partitioned).
    n_workers:
        Worker processes in the persistent pool.
    memory:
        Memory-optimization config forwarded to every chunk search.
    chunks_per_worker:
        Equi-area chunks submitted per worker and call.  1 (default)
        matches the paper's one-partition-per-device shape; larger
        values trade scheduling granularity for tail latency.
    timeout:
        Per-chunk seconds before the parent gives up on a worker and
        recovers the chunk (``None`` falls back to
        ``retry_policy.deadline_s``; if both are ``None``, waits
        forever).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``.
    retry_policy:
        Shared recovery policy: ``resubmits`` re-submissions to the
        (rebuilt) pool with backoff before the guaranteed inline
        retry; ``deadline_s`` as the default chunk deadline;
        ``straggler_after_s`` as the soft straggler-detection
        threshold.
    fault_plan:
        Optional deterministic fault injection (site ``"pool"``,
        target = chunk index, call = arg-max call number).
    lease_blocks:
        ``> 0`` switches the call to lease-grained scheduling: the range
        is cut into ``lease_blocks`` equi-area leases (finer than
        one-per-worker) all submitted up front — the executor's task
        queue then *is* the work-stealing mechanism (a free worker pulls
        the next lease, so a straggling worker cannot hold back more
        than one lease's work), and the timeout/resubmit recovery path
        doubles as the steal of a lost lease.  Winners and merged
        counters are bit-identical to the default cut: both feed the
        same partition-ordered reduce.
    sparse / word_stride:
        Forwarded to every chunk's :func:`best_in_thread_range`; the
        sparsity-driven path changes traffic (and its counters are
        partition-dependent, since prefix runs split at chunk
        boundaries) but winners and ``combos_scored`` stay identical.
    """

    scheme: Scheme
    n_workers: int = 2
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    chunks_per_worker: int = 1
    timeout: "float | None" = None
    start_method: "str | None" = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    fault_plan: "FaultPlan | None" = None
    lease_blocks: int = 0
    sparse: bool = False
    word_stride: "int | None" = None
    report: FaultReport = field(
        default_factory=FaultReport, repr=False, compare=False
    )

    _pool: "ProcessPoolExecutor | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _segments: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _warned: bool = field(default=False, init=False, repr=False, compare=False)
    _timed_out: bool = field(default=False, init=False, repr=False, compare=False)
    _calls: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        if self.lease_blocks < 0:
            raise ValueError("lease_blocks must be >= 0")

    @property
    def _n_cuts(self) -> int:
        """Ranges per call: lease-grained when leasing, else per-worker."""
        if self.lease_blocks > 0:
            return max(self.lease_blocks, self.n_workers)
        return self.n_workers * self.chunks_per_worker

    # -- pool / shared-memory lifecycle -------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            method = self.start_method
            if method is None:
                methods = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in methods else methods[0]
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=multiprocessing.get_context(method),
            )
        return self._pool

    def _publish(self, slot: str, matrix: BitMatrix, stats: "PoolStats | None"):
        """Copy a matrix into a named segment once; reuse while unchanged."""
        seg = self._segments.get(slot)
        if seg is not None and seg.matrix is matrix:
            return seg.shm.name
        from multiprocessing import shared_memory

        tel = get_telemetry()
        with tel.timed_span(
            "comm.shm_publish", cat="pool", slot=slot, bytes=matrix.words.nbytes
        ) as span:
            if seg is not None:
                seg.shm.close()
                seg.shm.unlink()
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, matrix.words.nbytes)
            )
            if matrix.words.nbytes:
                dst = np.ndarray(matrix.words.shape, dtype=np.uint64, buffer=shm.buf)
                dst[:] = matrix.words
            self._segments[slot] = _Segment(matrix, shm)
        if tel.enabled:
            tel.count("pool.publishes")
            tel.count("pool.shipped_bytes", matrix.words.nbytes)
        if stats is not None:
            stats.publish_seconds += span.duration_s
            stats.shipped_bytes += matrix.words.nbytes
            stats.n_publishes += 1
        return shm.name

    def close(self) -> None:
        """Shut the pool down and release the shared-memory segments."""
        if self._pool is not None:
            # A timed-out chunk leaves its worker running an abandoned
            # search; without a kill, interpreter exit would block on it.
            stuck = (
                list(getattr(self._pool, "_processes", {}).values())
                if self._timed_out
                else []
            )
            self._pool.shutdown(wait=False, cancel_futures=True)
            for proc in stuck:
                if proc.is_alive():
                    proc.terminate()
            self._pool = None
        for seg in self._segments.values():
            try:
                seg.shm.close()
                seg.shm.unlink()
            except (FileNotFoundError, BufferError):  # pragma: no cover
                pass
        self._segments.clear()

    def __enter__(self) -> "PoolEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- degradation ---------------------------------------------------

    def _note_failure(self, exc: BaseException) -> None:
        """Bookkeeping common to every detected chunk loss."""
        tel = get_telemetry()
        tel.count("pool.degraded")
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"pool worker lost ({type(exc).__name__}: {exc}); "
                "recovering the λ-range — results are unaffected",
                PoolDegradedWarning,
                stacklevel=4,
            )
            # First degradation of the run: snapshot the black box while
            # the timeline still shows the healthy-to-degraded edge.
            if tel.flight is not None:
                tel.flight.dump(
                    "pool-degraded", exc=exc, telemetry=tel,
                    fault_report=self.report,
                )
        if isinstance(exc, TimeoutError):
            self._timed_out = True
        if isinstance(exc, BrokenExecutor) and self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None  # rebuilt on the next attempt

    def _recover_chunk(
        self, exc: BaseException, chunk: int, call: int, task: _ChunkTask,
        tumor, normal, params, timeout: "float | None",
    ):
        """Detected loss of one chunk: resubmit per policy, then inline."""
        kind = "hang" if isinstance(exc, TimeoutError) else "crash"
        self._note_failure(exc)
        if self.lease_blocks > 0:
            # On the lease path a recovered chunk is a stolen lease: the
            # range moves from the lost worker to a new holder (another
            # worker on resubmit, the parent on the inline fallback).
            get_telemetry().count("lease.steals")
        policy = self.retry_policy
        self.report.record(
            kind, "pool", chunk, call, "detected",
            detail=f"{type(exc).__name__}: {exc}",
        )
        tel = get_telemetry()
        for attempt in range(1, policy.resubmits + 1):
            with tel.span(
                "fault.retry", cat="pool", chunk=chunk, call=call, attempt=attempt
            ):
                policy.sleep_before(attempt)
                fault = (
                    self.fault_plan.take("pool", chunk, call)
                    if self.fault_plan is not None
                    else None
                )
                # Re-root the retried chunk under the retry span so the
                # critical path threads detection -> retry -> rescan.
                retry_task = replace(
                    task, fault=fault,
                    trace_ctx=tel.context() or task.trace_ctx,
                )
                try:
                    out = self._ensure_pool().submit(
                        _search_chunk, retry_task
                    ).result(timeout=timeout)
                except (BrokenExecutor, TimeoutError, OSError) as exc2:
                    self._note_failure(exc2)
                    self.report.record(
                        "hang" if isinstance(exc2, TimeoutError) else "crash",
                        "pool", chunk, call, "detected", attempt=attempt + 1,
                        detail=f"{type(exc2).__name__}: {exc2}",
                    )
                    continue
            self.report.record(
                kind, "pool", chunk, call, "resubmitted", attempt=attempt + 1
            )
            return out + (False,)
        self.report.record(
            kind, "pool", chunk, call, "inline-retry",
            attempt=policy.resubmits + 2,
        )
        return self._recover_inline(tumor, normal, params, task) + (True,)

    def _recover_inline(self, tumor, normal, params, task: _ChunkTask):
        """Re-run a lost chunk in the parent (the guaranteed fallback).

        The ``scan_chunk`` span lands directly in the parent's session
        (``inline=True``), so the shipped-state slot is ``None``.  The
        chunk's bound slice is rebuilt from the task payload, exactly as
        a worker would, so pruning (and the deltas shipped back) are
        identical to the lost attempt's.
        """
        lo, hi = task.lam_start, task.lam_end
        counters = KernelCounters()
        local_bounds = (
            BoundTable.from_payload(task.bounds) if task.bounds is not None else None
        )
        with get_telemetry().timed_span(
            "scan_chunk", cat="pool", lam_start=lo, lam_end=hi, inline=True
        ) as span:
            best = best_in_thread_range(
                self.scheme,
                tumor.n_genes,
                tumor,
                normal,
                params,
                lo,
                hi,
                counters=counters,
                memory=self.memory,
                bounds=local_bounds,
                iteration=task.iteration,
                sparse=task.sparse,
                word_stride=task.word_stride,
            )
        deltas = (
            local_bounds.deltas(task.iteration)
            if local_bounds is not None
            else None
        )
        return best, counters, os.getpid(), span.duration_s, None, deltas

    def _ingest(self, result, tel):
        """Merge one chunk result into the live session as it arrives.

        Worker spans/metrics are absorbed (and progress counters fed)
        here — in future-resolution order, not after the whole call —
        so a concurrent ``/metrics`` scrape or progress monitor sees
        per-chunk movement mid-iteration.  The later partition-order
        loop only merges kernel counters and bound deltas, keeping
        those bit-deterministic.
        """
        _, chunk_counters, _, _, tel_state, _, _ = result
        tel.absorb_state(tel_state)
        if tel.enabled:
            tel.count("progress.combos_scored", chunk_counters.combos_scored)
            tel.count("progress.combos_pruned", chunk_counters.combos_pruned)
        return result

    # -- the arg-max ---------------------------------------------------

    def chunk_cuts(self, g: int) -> tuple[int, ...]:
        """The deterministic equi-area chunk boundaries of a full-grid call.

        The solver merges these into its bound table's block boundaries
        so every worker chunk is a whole number of λ-blocks.
        """
        total = total_threads(self.scheme, g)
        return equiarea_range_boundaries(self.scheme, g, 0, total, self._n_cuts)

    def best_combo(
        self,
        tumor: BitMatrix,
        normal: BitMatrix,
        params: FScoreParams,
        lam_start: int = 0,
        lam_end: "int | None" = None,
        counters: "KernelCounters | None" = None,
        stats: "PoolStats | None" = None,
        bounds: "BoundTable | None" = None,
        iteration: int = 0,
    ) -> "MultiHitCombination | None":
        """Pooled arg-max over ``[lam_start, lam_end)``.

        Bit-exact with :class:`SingleGpuEngine` over the same range: the
        per-chunk winners are reduced with the library-wide tie rule, so
        worker count and chunk boundaries never change the result.

        ``bounds`` enables lazy-greedy pruning: each chunk task carries
        the parent table's slice for its λ-range, workers prune against
        it, and refreshed bounds come back as per-chunk deltas that are
        folded into the parent table here.  A chunk whose range does not
        align with the table's blocks simply runs unpruned.
        """
        g = tumor.n_genes
        if normal.n_genes != g:
            raise ValueError("tumor and normal matrices must share the gene axis")
        total = total_threads(self.scheme, g)
        if lam_end is None:
            lam_end = total
        lam_start = max(0, lam_start)
        lam_end = min(lam_end, total)
        if lam_end <= lam_start:
            return None
        call = self._calls
        self._calls += 1
        tel = get_telemetry()
        timeout = (
            self.timeout
            if self.timeout is not None
            else self.retry_policy.deadline_s
        )
        if stats is not None:
            stats.n_workers = self.n_workers

        cuts = equiarea_range_boundaries(
            self.scheme, g, lam_start, lam_end, self._n_cuts
        )
        ranges = [
            (cuts[i], cuts[i + 1])
            for i in range(len(cuts) - 1)
            if cuts[i + 1] > cuts[i]
        ]

        t_name = self._publish("tumor", tumor, stats)
        n_name = self._publish("normal", normal, stats)
        # One dispatch context for the whole batch: the caller's current
        # span (the solver's iteration / schedule span) — worker sessions
        # adopt it so scan_chunk spans re-root onto this timeline.
        dispatch_ctx = tel.context()
        tasks = [
            _ChunkTask(
                scheme=self.scheme,
                g=g,
                tumor_name=t_name,
                tumor_shape=tumor.words.shape,
                tumor_samples=tumor.n_samples,
                normal_name=n_name,
                normal_shape=normal.words.shape,
                normal_samples=normal.n_samples,
                params=params,
                lam_start=lo,
                lam_end=hi,
                memory=self.memory,
                fault=(
                    self.fault_plan.take("pool", i, call)
                    if self.fault_plan is not None
                    else None
                ),
                trace=tel.enabled,
                trace_ctx=dispatch_ctx,
                bounds=(
                    bounds.slice_payload(lo, hi)
                    if bounds is not None and bounds.aligned(lo, hi)
                    else None
                ),
                iteration=iteration,
                sparse=self.sparse,
                word_stride=self.word_stride,
            )
            for i, (lo, hi) in enumerate(ranges)
        ]

        if tel.flight is not None:
            tel.flight.set_assignments(
                "pool",
                [
                    {"chunk": i, "lam_start": lo, "lam_end": hi, "call": call}
                    for i, (lo, hi) in enumerate(ranges)
                ],
            )

        pool = self._ensure_pool()
        try:
            futures = [pool.submit(_search_chunk, task) for task in tasks]
        except BrokenExecutor as exc:  # pragma: no cover - submit-time break
            futures = None
            results = [
                self._ingest(
                    self._recover_chunk(
                        exc, i, call, task, tumor, normal, params, timeout
                    ),
                    tel,
                )
                for i, task in enumerate(tasks)
            ]
        if futures is not None:
            results = []
            for i, (fut, task) in enumerate(zip(futures, tasks)):
                try:
                    result = fut.result(timeout=timeout) + (False,)
                except (BrokenExecutor, TimeoutError, OSError) as exc:
                    result = self._recover_chunk(
                        exc, i, call, task, tumor, normal, params, timeout
                    )
                results.append(self._ingest(result, tel))

        prefix = work_prefix_by_level(self.scheme, g)
        winners: list["MultiHitCombination | None"] = []
        for i, (
            (lo, hi),
            (best, chunk_counters, pid, wall, tel_state, deltas, retried),
        ) in enumerate(zip(ranges, results)):
            winners.append(best)
            if bounds is not None and deltas:
                bounds.apply_deltas(deltas, iteration)
            if counters is not None:
                counters.merge(chunk_counters)
            if not retried and self.retry_policy.is_straggler(wall):
                self.report.record(
                    "straggler", "pool", i, call, "observed",
                    detail=f"{wall:.3f}s",
                )
            if stats is not None:
                stats.chunks.append(
                    ChunkRecord(
                        chunk=i,
                        lam_start=lo,
                        lam_end=hi,
                        work=cumulative_work_before(self.scheme, g, hi, prefix)
                        - cumulative_work_before(self.scheme, g, lo, prefix),
                        combos_scored=chunk_counters.combos_scored,
                        wall_seconds=wall,
                        worker_pid=pid,
                        inline_retry=retried,
                    )
                )
        if tel.enabled:
            tel.count("pool.chunks", len(ranges))
            tel.count("pool.calls")
            if self.lease_blocks > 0:
                # Lease accounting on the pool path: every submitted
                # range is a grant (steals are counted at recovery).
                tel.count("lease.grants", len(ranges))
        if tel.flight is not None:
            # One registry snapshot per arg-max call: the black box's
            # metric trail, sampled at the call cadence rather than on a
            # timer so replay lines up with the span timeline.
            tel.flight.record_metrics(tel.metrics)
        with tel.span("reduce", cat="pool", candidates=len(winners)):
            return multi_stage_reduce(winners)
