"""Memory-optimization configuration and access-volume model (Section III-D).

Three optimizations from the paper, all of which change *how much* global
memory the scoring kernel touches without changing the result:

* **MemOpt1** — prefetch the packed row of gene ``i`` into registers /
  local memory once per thread instead of once per inner combination;
* **MemOpt2** — same for gene ``j``;
* **BitSplicing** — physically remove covered sample columns after each
  greedy iteration, shrinking the word width every kernel touches.

``global_word_reads`` computes the exact number of global-memory word
reads a thread-range would perform under a configuration — the quantity
NVPROF's DRAM counters measure up to caching effects — and is what the
Fig. 5 experiment compares across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import level_range, level_work
from repro.combinatorics.decode import top_index_array

import numpy as np

__all__ = [
    "MemoryConfig",
    "fused_word_reads",
    "global_word_reads",
    "sparse_fused_word_reads",
]


@dataclass(frozen=True)
class MemoryConfig:
    """Which of the paper's memory optimizations are active."""

    prefetch_i: bool = True   # MemOpt1
    prefetch_j: bool = True   # MemOpt2
    bitsplice: bool = True    # splice covered columns out of the tumor matrix

    @property
    def label(self) -> str:
        parts = []
        if self.prefetch_i:
            parts.append("MemOpt1")
        if self.prefetch_j:
            parts.append("MemOpt2")
        if self.bitsplice:
            parts.append("BitSplicing")
        return "+".join(parts) if parts else "baseline"

    @property
    def prefetched_rows(self) -> int:
        return int(self.prefetch_i) + int(self.prefetch_j)


NONE = MemoryConfig(False, False, False)


def global_word_reads(
    scheme: Scheme,
    g: int,
    words: int,
    lam_start: int,
    lam_end: int,
    config: MemoryConfig,
) -> int:
    """Global-memory word reads for threads ``[lam_start, lam_end)``.

    A thread whose tuple has ``f`` fixed genes and runs ``w`` inner
    combinations of ``d`` further genes reads, per inner combination, the
    rows of the non-prefetched fixed genes plus the ``d`` inner-loop
    genes; prefetched rows are read exactly once per thread.  Each row is
    ``words`` uint64 words wide (BitSplicing shrinks ``words``).
    """
    if lam_end <= lam_start:
        return 0
    f = scheme.flattened
    d = scheme.inner
    pre = min(config.prefetched_rows, f)
    per_combo_rows = (f - pre) + d
    total = 0
    # Walk the levels intersecting the range; within a level the work per
    # thread is constant, so the sum is closed-form.
    lo_top = int(top_index_array(np.asarray([lam_start]), f)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f)[0])
    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        n_threads = min(b, lam_end) - max(a, lam_start)
        if n_threads <= 0:
            continue
        w = level_work(scheme, g, m)
        total += n_threads * (pre + w * per_combo_rows)
    return total * words


def fused_word_reads(
    scheme: Scheme,
    g: int,
    words: int,
    lam_start: int,
    lam_end: int,
    charged_levels: "set[int] | None" = None,
) -> int:
    """Global-memory word reads of the *fused* scan over a thread range.

    The fused kernel (the lazy-greedy engine's scoring pass) touches each
    global word exactly once per logical load: every thread's ``f`` fixed
    rows are gathered and AND-reduced a single time (full-width prefetch —
    this subsumes MemOpt1/2, so :class:`MemoryConfig` prefetch flags do
    not appear here), and each workload level's inner AND-table
    (``C(g-1-m, d)`` combinations of ``d`` rows) is built once per scan
    call and reused across every thread and block that touches the level.
    The word-stride broadcast re-reads hit cache by construction, so only
    first touches count — the same convention the paper's MemOpt
    accounting uses for prefetched rows.

    ``charged_levels`` carries first-touch state across the multiple
    block scans of one engine call (the engine passes the set backing its
    inner-table cache); each level's table-build cost is charged exactly
    once per set.  Passing ``None`` charges every intersected level,
    which is the single-range closed form.
    """
    if lam_end <= lam_start:
        return 0
    f = scheme.flattened
    d = scheme.inner
    total = 0
    lo_top = int(top_index_array(np.asarray([lam_start]), f)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f)[0])
    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        n_threads = min(b, lam_end) - max(a, lam_start)
        if n_threads <= 0:
            continue
        if d > 0:
            inner = level_work(scheme, g, m)
            if inner == 0:
                continue  # empty inner loops: the engine never gathers
            total += n_threads * f
            if charged_levels is None or m not in charged_levels:
                total += inner * d
                if charged_levels is not None:
                    charged_levels.add(m)
        else:
            # Fully flattened: every thread is one combination reading
            # its h = f rows once.
            total += n_threads * f
    return total * words


def sparse_fused_word_reads(
    scheme: Scheme,
    g: int,
    words: int,
    lam_start: int,
    lam_end: int,
    charged_levels: "set[int] | None" = None,
    *,
    nonzero_fraction: float = 1.0,
    prefix_run_length: float = 1.0,
) -> int:
    """Predicted word reads of the *sparse* fused scan over a thread range.

    Extends :func:`fused_word_reads` with the two first-order effects of
    the sparsity-driven path:

    * **Shared-prefix AND caching** — λ-decode order shares one prefix
      AND across each run of consecutive tuples, so a thread's ``f``-row
      gather amortizes to ``(f - 1) / r + 1`` rows for an average run
      length of ``r = prefix_run_length`` tuples (``r = 1`` recovers the
      dense charge; ``f = 1`` has no prefix to share).
    * **Nonzero-stride skipping** — the fused broadcast gathers only
      stride slices whose mask intersection is nonzero, scaling every
      charge by ``nonzero_fraction`` (the
      :attr:`~repro.bitmatrix.sparsity.SparsityIndex.nonzero_fraction`
      of the scanned matrices, or 1.0 for a dense instance).

    At ``(nonzero_fraction=1.0, prefix_run_length=1.0)`` this equals
    :func:`fused_word_reads` exactly (up to the integer floor).  It is a
    *model* — the engine meters actual sparse traffic — used for
    capacity planning and for sanity-checking measured reductions.
    """
    if not 0.0 <= nonzero_fraction <= 1.0:
        raise ValueError(
            f"nonzero_fraction must be in [0, 1], got {nonzero_fraction}"
        )
    if prefix_run_length < 1.0:
        raise ValueError(
            f"prefix_run_length must be >= 1, got {prefix_run_length}"
        )
    if lam_end <= lam_start:
        return 0
    f = scheme.flattened
    d = scheme.inner
    per_thread = (f - 1) / prefix_run_length + 1 if f > 1 else float(f)
    total = 0.0
    lo_top = int(top_index_array(np.asarray([lam_start]), f)[0])
    hi_top = int(top_index_array(np.asarray([lam_end - 1]), f)[0])
    for m in range(lo_top, hi_top + 1):
        a, b = level_range(scheme, m)
        n_threads = min(b, lam_end) - max(a, lam_start)
        if n_threads <= 0:
            continue
        if d > 0:
            inner = level_work(scheme, g, m)
            if inner == 0:
                continue
            total += n_threads * per_thread
            if charged_levels is None or m not in charged_levels:
                total += inner * d
                if charged_levels is not None:
                    charged_levels.add(m)
        else:
            total += n_threads * per_thread
    return int(total * words * nonzero_fraction)
