"""Multi-stage, multi-kernel parallel max-reduction (Section III-E).

Storing one 20-byte candidate per thread at 3x1 scale (``C(G, 3)`` ~
1.22e12 threads for BRCA) would need ~24 TB.  The paper's pipeline:

* **stage 1** — inside the ``maxF`` kernel each CUDA block (512 threads)
  reduces to a single candidate: list shrinks 512x (~47.5 GB, fits in
  node memory);
* **stage 2** — the ``parallelReduceMax`` kernel tree-reduces all block
  candidates on each GPU to one;
* **stage 3** — each MPI rank sends its single 20-byte record to rank 0,
  which reduces across ranks.

The functional reduction here applies the same staging to real candidate
lists (with the library-wide tie rule), and :func:`reduction_plan`
computes the stage sizes / bytes that reproduce the paper's 24 TB -> 47.5
GB -> 20 B accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.combination import COMBO_RECORD_BYTES, MultiHitCombination, better
from repro.scheduling.schemes import Scheme
from repro.scheduling.workload import total_threads

__all__ = ["DEFAULT_BLOCK_SIZE", "ReductionStats", "block_reduce", "multi_stage_reduce", "reduction_plan"]

DEFAULT_BLOCK_SIZE = 512


@dataclass
class ReductionStats:
    """Entry counts and byte volumes at each reduction stage."""

    stage_entries: list[int] = field(default_factory=list)

    def record(self, entries: int) -> None:
        self.stage_entries.append(entries)

    @property
    def stage_bytes(self) -> list[int]:
        return [e * COMBO_RECORD_BYTES for e in self.stage_entries]


def block_reduce(
    candidates: list["MultiHitCombination | None"], block_size: int = DEFAULT_BLOCK_SIZE
) -> list["MultiHitCombination | None"]:
    """Stage-1 reduction: one winner per ``block_size`` consecutive candidates."""
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    out: list["MultiHitCombination | None"] = []
    for start in range(0, len(candidates), block_size):
        blk = candidates[start : start + block_size]
        winner: "MultiHitCombination | None" = None
        for c in blk:
            winner = better(winner, c)
        out.append(winner)
    return out


def multi_stage_reduce(
    candidates: list["MultiHitCombination | None"],
    block_size: int = DEFAULT_BLOCK_SIZE,
    stats: "ReductionStats | None" = None,
) -> "MultiHitCombination | None":
    """Repeated block reduction until one candidate remains.

    ``block_size`` must be at least 2: a 1-wide block maps every
    candidate to itself, so the list would never shrink.
    """
    if block_size < 2:
        raise ValueError("multi-stage reduction needs block_size >= 2")
    level = list(candidates)
    if stats is not None:
        stats.record(len(level))
    while len(level) > 1:
        level = block_reduce(level, block_size)
        if stats is not None:
            stats.record(len(level))
    return level[0] if level else None


def reduction_plan(
    scheme: Scheme,
    g: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
    n_gpus: int = 1,
) -> dict:
    """Stage sizes for the paper's memory accounting.

    Returns entries/bytes for: the naive per-thread candidate list, the
    post-stage-1 (per-block) list, the per-GPU result set, and the bytes
    each MPI rank returns to root.
    """
    threads = total_threads(scheme, g)
    blocks = (threads + block_size - 1) // block_size
    return {
        "threads": threads,
        "naive_list_bytes": threads * COMBO_RECORD_BYTES,
        "blocks": blocks,
        "block_list_bytes": blocks * COMBO_RECORD_BYTES,
        "per_gpu_entries": 1,
        "per_rank_bytes_to_root": COMBO_RECORD_BYTES,
        "root_reduce_entries": n_gpus,
    }
