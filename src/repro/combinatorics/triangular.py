"""Linear index <-> upper-triangular pair maps (Algorithms 1-2).

Pairs ``(i, j)`` with ``0 <= i < j < G`` are enumerated in the
*combinatorial number system* order

    lambda = C(j, 2) + i

so pairs are sorted by their larger element first: (0,1), (0,2), (1,2),
(0,3), ... .  The closed-form inverse used on the GPU is

    j = floor( (1 + sqrt(1 + 8*lambda)) / 2 )
    i = lambda - j*(j-1)/2

This module provides scalar exact versions (arbitrary-precision Python
ints, used for validation and scheduling) and vectorized float64 versions
(what a CUDA thread would compute).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "triangular_size",
    "linear_from_pair",
    "pair_from_linear",
    "pair_from_linear_array",
]


def triangular_size(g: int) -> int:
    """Number of pairs ``C(g, 2)`` — the thread-grid size of the 2x2 scheme."""
    return math.comb(g, 2) if g >= 2 else 0


def linear_from_pair(i: int, j: int) -> int:
    """Forward map ``(i, j) -> lambda`` with ``i < j``."""
    if not 0 <= i < j:
        raise ValueError(f"require 0 <= i < j, got ({i}, {j})")
    return j * (j - 1) // 2 + i


def pair_from_linear(lam: int) -> tuple[int, int]:
    """Exact inverse map ``lambda -> (i, j)`` using integer arithmetic.

    ``math.isqrt`` keeps this exact for arbitrarily large ``lambda``,
    unlike the float closed form, which loses precision past 2**52.
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    # Largest j with C(j,2) <= lam:  j = floor((1 + sqrt(1+8*lam)) / 2)
    j = (1 + math.isqrt(1 + 8 * lam)) // 2
    # isqrt truncation can land one off at triangular-number boundaries.
    while j * (j - 1) // 2 > lam:
        j -= 1
    while (j + 1) * j // 2 <= lam:
        j += 1
    i = lam - j * (j - 1) // 2
    return i, j


def pair_from_linear_array(lam: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized closed-form inverse, the form a GPU thread evaluates.

    Float64 ``sqrt`` is exact enough for ``lambda < 2**52``; a one-step
    integer correction repairs any boundary rounding, so results are exact
    over that range (covers ``C(G, 2)`` for every realistic gene count).
    """
    lam = np.asarray(lam, dtype=np.uint64)
    if lam.size and int(lam.max()) >= (1 << 52):
        raise OverflowError("lambda exceeds float64-exact range (2**52)")
    lf = lam.astype(np.float64)
    j = np.floor((1.0 + np.sqrt(1.0 + 8.0 * lf)) / 2.0).astype(np.uint64)
    # Boundary repair: ensure C(j,2) <= lam < C(j+1,2).
    tri = j * (j - np.uint64(1)) // np.uint64(2)
    over = tri > lam
    j = np.where(over, j - np.uint64(1), j)
    tri = j * (j - np.uint64(1)) // np.uint64(2)
    under = (j + np.uint64(1)) * j // np.uint64(2) <= lam
    j = np.where(under, j + np.uint64(1), j)
    tri = j * (j - np.uint64(1)) // np.uint64(2)
    i = lam - tri
    return i.astype(np.int64), j.astype(np.int64)
