"""Exact and vectorized binomial coefficients.

The schedulers and index maps need ``C(n, k)`` for ``k in {1, 2, 3, 4}``
over the full range of gene counts (``G`` up to ~20000, so ``C(G, 4)`` is
about ``6.2e15`` and must be computed exactly in 64-bit-safe integer
arithmetic).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "binomial",
    "binomial_float",
    "binomial2_array",
    "binomial3_array",
    "cumulative_triangular",
    "cumulative_tetrahedral",
]


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; zero when out of range.

    Unlike :func:`math.comb`, negative ``n`` is treated as an empty
    selection pool (returns 0) rather than an error, which simplifies the
    boundary arithmetic in the schedulers.
    """
    if n < 0 or k < 0 or k > n:
        return 0
    return math.comb(n, k)


def binomial_float(n: np.ndarray | float, k: int) -> np.ndarray:
    """Vectorized float64 ``C(n, k)`` for small fixed ``k`` (k <= 4).

    Used in performance models where float precision suffices; exact for
    values below 2**53.
    """
    n = np.asarray(n, dtype=np.float64)
    if k == 0:
        return np.ones_like(n)
    if k == 1:
        return np.where(n >= 1, n, 0.0)
    if k == 2:
        return np.where(n >= 2, n * (n - 1) / 2.0, 0.0)
    if k == 3:
        return np.where(n >= 3, n * (n - 1) * (n - 2) / 6.0, 0.0)
    if k == 4:
        return np.where(n >= 4, n * (n - 1) * (n - 2) * (n - 3) / 24.0, 0.0)
    raise ValueError(f"binomial_float supports k <= 4, got k={k}")


def binomial2_array(n: np.ndarray) -> np.ndarray:
    """Exact vectorized ``C(n, 2)`` as uint64 (valid for n < ~6.1e9)."""
    n = np.asarray(n, dtype=np.uint64)
    return np.where(n >= 2, n * (n - np.uint64(1)) // np.uint64(2), np.uint64(0))


def binomial3_array(n: np.ndarray) -> np.ndarray:
    """Exact vectorized ``C(n, 3)`` as uint64.

    Safe without overflow for ``n`` up to ~3.8e6: the intermediate product
    is formed as ``C(n,2) * (n-2)`` where ``C(n,2)`` is already divided by
    two, and the final division by 3 is exact because one of the three
    consecutive integers is divisible by 3.
    """
    n = np.asarray(n, dtype=np.uint64)
    c2 = binomial2_array(n)
    return np.where(n >= 3, c2 * (n - np.uint64(2)) // np.uint64(3), np.uint64(0))


def cumulative_triangular(g: int) -> np.ndarray:
    """Table ``T[j] = C(j, 2)`` for ``j in [0, g]``.

    ``T[j]`` is the linear index of the first pair whose larger element is
    ``j`` under the enumeration ``lambda = C(j, 2) + i`` with ``i < j``.
    """
    if g < 0:
        raise ValueError("g must be non-negative")
    return binomial2_array(np.arange(g + 1, dtype=np.uint64))


def cumulative_tetrahedral(g: int) -> np.ndarray:
    """Table ``T[k] = C(k, 3)`` for ``k in [0, g]``.

    ``T[k]`` is the linear index of the first triple whose largest element
    is ``k`` under ``lambda = C(k, 3) + C(j, 2) + i`` with ``i < j < k``.
    """
    if g < 0:
        raise ValueError("g must be non-negative")
    return binomial3_array(np.arange(g + 1, dtype=np.uint64))
