"""Exact combinatorics and closed-form linear-index maps.

The scale-out algorithm launches one flat grid of threads and recovers the
gene indices ``(i, j)`` (2x2 scheme) or ``(i, j, k)`` (3x1 scheme) of each
thread from its linear id ``lambda`` using closed-form inverses of the
triangular / tetrahedral enumeration order (Algorithms 1-3 of the paper).
This package implements those maps both in the paper's floating-point
closed form (including the log/exp trick that avoids 128-bit arithmetic)
and as exact integer inversions used for validation.
"""

from repro.combinatorics.binomial import (
    binomial,
    binomial_float,
    cumulative_tetrahedral,
    cumulative_triangular,
)
from repro.combinatorics.triangular import (
    pair_from_linear,
    pair_from_linear_array,
    linear_from_pair,
    triangular_size,
)
from repro.combinatorics.tetrahedral import (
    triple_from_linear,
    triple_from_linear_array,
    triple_from_linear_closed_form,
    linear_from_triple,
    tetrahedral_size,
    sqrt_729l2_minus_3_logexp,
)
from repro.combinatorics.enumeration import (
    combinations_array,
    iter_combination_blocks,
)

__all__ = [
    "binomial",
    "binomial_float",
    "cumulative_tetrahedral",
    "cumulative_triangular",
    "pair_from_linear",
    "pair_from_linear_array",
    "linear_from_pair",
    "triangular_size",
    "triple_from_linear",
    "triple_from_linear_array",
    "triple_from_linear_closed_form",
    "linear_from_triple",
    "tetrahedral_size",
    "sqrt_729l2_minus_3_logexp",
    "combinations_array",
    "iter_combination_blocks",
]
