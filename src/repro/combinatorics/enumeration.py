"""Block-wise enumeration of gene combinations for the kernel drivers.

The vectorized engines process combinations in contiguous blocks of the
linear thread id; this module turns ``[lambda_start, lambda_end)`` ranges
into index arrays via the closed-form maps, which is exactly what happens
on-device in the CUDA code.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

import numpy as np

from repro.combinatorics.tetrahedral import (
    tetrahedral_size,
    triple_from_linear_array,
)
from repro.combinatorics.triangular import pair_from_linear_array, triangular_size

__all__ = ["combinations_array", "iter_combination_blocks"]


def combinations_array(order: int, lam_start: int, lam_end: int) -> np.ndarray:
    """Decode linear ids ``[lam_start, lam_end)`` into index tuples.

    ``order`` is 2 (pairs) or 3 (triples); the result has shape
    ``(lam_end - lam_start, order)`` with strictly increasing rows.
    """
    if lam_end < lam_start:
        raise ValueError("lam_end must be >= lam_start")
    lam = np.arange(lam_start, lam_end, dtype=np.uint64)
    if order == 2:
        i, j = pair_from_linear_array(lam)
        return np.stack([i, j], axis=1)
    if order == 3:
        i, j, k = triple_from_linear_array(lam)
        return np.stack([i, j, k], axis=1)
    raise ValueError(f"order must be 2 or 3, got {order}")


def iter_combination_blocks(
    order: int, g: int, block: int
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(lam_start, indices)`` blocks covering all ``C(g, order)`` ids.

    Mirrors the grid-stride pattern of the CUDA kernels: a fixed block of
    ``block`` linear ids is decoded and processed at a time.
    """
    if block <= 0:
        raise ValueError("block must be positive")
    total = triangular_size(g) if order == 2 else tetrahedral_size(g)
    for start in itertools.count(0, block):
        if start >= total:
            return
        end = min(start + block, total)
        yield start, combinations_array(order, start, end)
