"""Linear index <-> upper-tetrahedral triple maps (Algorithm 3).

Triples ``(i, j, k)`` with ``0 <= i < j < k < G`` are enumerated in the
combinatorial number system order

    lambda = C(k, 3) + C(j, 2) + i

The 3x1 scheme launches ``C(G, 3)`` threads; each thread recovers its
``(i, j, k)`` from ``lambda`` with a closed-form inverse derived from
Cardano's formula for the tetrahedral-number cubic.  The paper evaluates
the discriminant ``sqrt(729*lambda**2 - 3)`` without 128-bit arithmetic by
factoring it through logarithms:

    A = exp(0.5 * (log(3*lambda) + log(243*lambda - 1/lambda)))

since ``3*lambda * (243*lambda - 1/lambda) = 729*lambda**2 - 3``.  Both the
float closed form and an exact arbitrary-precision inverse are provided;
the closed form carries an explicit integer boundary repair, which makes
it exact wherever ``lambda`` is below the float64-exact threshold used by
the repair arithmetic.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "tetrahedral_size",
    "linear_from_triple",
    "triple_from_linear",
    "triple_from_linear_array",
    "triple_from_linear_closed_form",
    "sqrt_729l2_minus_3_logexp",
]

_CBRT9 = 9.0 ** (1.0 / 3.0)
_CBRT3 = 3.0 ** (1.0 / 3.0)


def tetrahedral_size(g: int) -> int:
    """Number of triples ``C(g, 3)`` — the thread-grid size of the 3x1 scheme."""
    return math.comb(g, 3) if g >= 3 else 0


def linear_from_triple(i: int, j: int, k: int) -> int:
    """Forward map ``(i, j, k) -> lambda`` with ``i < j < k``."""
    if not 0 <= i < j < k:
        raise ValueError(f"require 0 <= i < j < k, got ({i}, {j}, {k})")
    return k * (k - 1) * (k - 2) // 6 + j * (j - 1) // 2 + i


def _c3(k: int) -> int:
    return k * (k - 1) * (k - 2) // 6


def triple_from_linear(lam: int) -> tuple[int, int, int]:
    """Exact inverse ``lambda -> (i, j, k)`` via integer arithmetic.

    Starts from a float cube-root estimate of the tetrahedral level and
    repairs it exactly, so the result is correct for arbitrarily large
    Python-int ``lambda``.
    """
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    # Largest k with C(k,3) <= lam.  C(k,3) ~ (k-1)^3 / 6.
    k = int(round((6.0 * float(lam)) ** (1.0 / 3.0))) + 1
    while _c3(k) > lam:
        k -= 1
    while _c3(k + 1) <= lam:
        k += 1
    rem = lam - _c3(k)
    # Largest j with C(j,2) <= rem.
    j = (1 + math.isqrt(1 + 8 * rem)) // 2
    while j * (j - 1) // 2 > rem:
        j -= 1
    while (j + 1) * j // 2 <= rem:
        j += 1
    i = rem - j * (j - 1) // 2
    return i, j, k


def sqrt_729l2_minus_3_logexp(lam: np.ndarray) -> np.ndarray:
    """``sqrt(729*lambda**2 - 3)`` via the paper's log/exp factorization.

    Directly squaring ``lambda`` (a 64-bit thread id) overflows 64-bit
    integer arithmetic and loses precision in float64 once
    ``729*lambda**2`` exceeds 2**53; the paper instead computes the product
    under a logarithm where only ``O(lambda)``-magnitude intermediates
    appear.  Requires ``lambda >= 1``.
    """
    lf = np.asarray(lam, dtype=np.float64)
    if np.any(lf < 1.0):
        raise ValueError("log/exp form requires lambda >= 1")
    return np.exp(0.5 * (np.log(3.0 * lf) + np.log(243.0 * lf - 1.0 / lf)))


def triple_from_linear_closed_form(
    lam: np.ndarray, *, use_logexp: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized Cardano closed-form inverse, as a GPU thread computes it.

    Solves ``m**3 - m = 6*lambda`` (where ``m = k + 1`` for the largest
    level ``k`` with ``C(k, 3) <= lambda``):

        q = cbrt(27*lambda + sqrt(729*lambda**2 - 3))
        m = q / 9**(1/3)  +  9**(1/3) / (3*q)

    then recovers ``(i, j)`` from the triangular remainder.  An integer
    boundary repair on the level makes the result exact up to the point
    where the int64 level check would overflow (lambda ~ 2**60) — far
    beyond both gene-level grids (``C(20000, 3)`` ~ 1.3e12) and
    mutation-level grids (``C(4e5, 3)`` ~ 1.1e16).

    ``lambda = 0`` is special-cased (the log/exp discriminant needs
    ``lambda >= 1``), mirroring the CUDA implementation that starts its
    1-based loop at 1.
    """
    lam = np.asarray(lam, dtype=np.uint64)
    # The float estimate may start a couple of levels off near 2**52, but
    # the repair loops below compare in exact int64, so results stay exact
    # until the falling-product level check itself would overflow int64.
    if lam.size and int(lam.max()) >= (1 << 60):
        raise OverflowError("lambda exceeds int64-exact repair range (~2**60)")
    lf = lam.astype(np.float64)
    safe = np.maximum(lf, 1.0)
    if use_logexp:
        disc = sqrt_729l2_minus_3_logexp(safe)
    else:
        disc = np.sqrt(729.0 * safe * safe - 3.0)
    q = np.cbrt(27.0 * safe + disc)
    m = q / _CBRT9 + _CBRT9 / (3.0 * q)
    # m solves m**3 - m = 6*lambda.  Since C(k,3) <= lambda is equivalent to
    # (k-1)**3 - (k-1) <= 6*lambda, the level is k = floor(m) + 1.
    k = np.floor(m).astype(np.int64) + 1
    k = np.maximum(k, 2)  # smallest valid level: triple (0, 1, 2) at lambda = 0
    # Integer boundary repair: ensure C(k,3) <= lam < C(k+1,3).  The float
    # estimate is within a couple of units, so these loops run O(1) times.
    lam_i = lam.astype(np.int64)

    def c3(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) * (x - 2) // 6

    while True:
        over = c3(k) > lam_i
        if not over.any():
            break
        k = np.where(over, k - 1, k)
    while True:
        under = c3(k + 1) <= lam_i
        if not under.any():
            break
        k = np.where(under, k + 1, k)
    rem = lam_i - c3(k)
    j = np.floor((1.0 + np.sqrt(1.0 + 8.0 * rem.astype(np.float64))) / 2.0).astype(
        np.int64
    )
    j = np.maximum(j, 1)
    while True:
        over = j * (j - 1) // 2 > rem
        if not over.any():
            break
        j = np.where(over, j - 1, j)
    while True:
        under = (j + 1) * j // 2 <= rem
        if not under.any():
            break
        j = np.where(under, j + 1, j)
    i = rem - j * (j - 1) // 2
    return i, j, k


def triple_from_linear_array(
    lam: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized exact inverse — alias for the repaired closed form."""
    return triple_from_linear_closed_form(lam)
