"""Generic combinatorial-number-system decoding for any order.

The order-2/3 closed forms in :mod:`triangular` / :mod:`tetrahedral`
mirror what each CUDA thread computes; this module provides the general
``order``-dimensional decode (needed e.g. by the 4x1 scheme where a
thread id encodes a full 4-combination) by peeling the top index one
binomial at a time.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["binomial_clamped", "top_index_array", "combos_from_linear"]

_INT64_MAX = np.int64(np.iinfo(np.int64).max)

# Ceiling for admissible lambda values (and the value clamped entries of
# the exact vectorized binomial report).  Any lane of
# :func:`binomial_clamped` whose divide-as-you-go intermediate would
# exceed int64 is clamped *to* the guard; such a lane's true value
# exceeds ``INT64_MAX // order >= 2**60`` for every supported order
# (<= 8), so both the clamp and the truth sit strictly above every
# admissible lambda and all ``<=`` / ``>`` boundary comparisons stay
# exact.  2**60 ~ 1.15e18 still admits e.g. the full order-4 grid at
# 70,000 genes.
_GUARD = np.int64(1) << np.int64(60)

# Supported-order cap implied by the guard analysis above.
_MAX_ORDER = 8


def binomial_clamped(x: np.ndarray, order: int) -> np.ndarray:
    """Exact elementwise ``C(x, order)``, clamped above a guard ceiling.

    Computed divide-as-you-go — ``C(x, r + 1) = C(x, r) * (x - r) //
    (r + 1)`` is exact at every step because any ``r + 1`` consecutive
    integers contain a multiple of ``r + 1`` — so intermediates stay a
    factor ``order`` below the naive falling product (which wraps int64
    negative around ``C(55_000, 4)``).  Lanes whose next multiply would
    overflow int64 anyway are clamped to ``_GUARD`` (and stay clamped);
    their true value exceeds ``INT64_MAX // order``, so comparisons
    against any admissible lambda (all strictly below the guard) are
    unaffected.  Negative ``x - r`` terms clamp to zero, so out-of-range
    ``x`` yields 0 like :func:`math.comb` on ``k > n``.
    """
    if not 1 <= order <= _MAX_ORDER:
        raise ValueError(f"order must be in [1, {_MAX_ORDER}]")
    x = np.asarray(x, dtype=np.int64)
    out = np.ones_like(x)
    clamped = np.zeros(x.shape, dtype=bool)
    for r in range(order):
        term = np.maximum(x - r, 0)
        clamped |= (term > 0) & (out > _INT64_MAX // np.maximum(term, 1))
        # Clamped lanes may wrap here; their value is overwritten below
        # and the sticky mask keeps them pinned for later rounds.
        out = out * term // (r + 1)
    return np.where(clamped, _GUARD, out)


def top_index_array(lam: np.ndarray, order: int) -> np.ndarray:
    """Largest ``m`` with ``C(m, order) <= lam`` for each entry (exact).

    Float estimate ``C(m, order) ~ (m - (order-1)/2)**order / order!``
    followed by exact boundary repair with the overflow-safe clamped
    binomial (a naive int64 falling product wraps negative around
    ``C(55000, 4)`` and the repair loops never converge).
    """
    if not 1 <= order <= _MAX_ORDER:
        raise ValueError(f"order must be in [1, {_MAX_ORDER}]")
    lam_i = np.asarray(lam, dtype=np.int64)
    if np.any(lam_i < 0):
        raise ValueError("lambda must be non-negative")
    if np.any(lam_i >= _GUARD):
        raise ValueError("lambda must be below the guard ceiling 2**60")
    fact = math.factorial(order)
    lf = lam_i.astype(np.float64)
    m = np.floor((fact * lf) ** (1.0 / order) + (order - 1) / 2.0).astype(np.int64)
    m = np.maximum(m, order - 1)

    while True:
        over = binomial_clamped(m, order) > lam_i
        if not over.any():
            break
        m = np.where(over, m - 1, m)
    while True:
        under = binomial_clamped(m + 1, order) <= lam_i
        if not under.any():
            break
        m = np.where(under, m + 1, m)
    return m


def combos_from_linear(lam: np.ndarray, order: int) -> np.ndarray:
    """Decode linear ids into strictly increasing ``order``-tuples.

    Inverse of the combinatorial number system
    ``lam = sum_r C(combo[r], r + 1)``.  Returns shape ``(len(lam), order)``
    with columns sorted ascending.
    """
    lam_i = np.asarray(lam, dtype=np.int64)
    out = np.empty((lam_i.size, order), dtype=np.int64)
    rem = lam_i.copy()
    for r in range(order, 0, -1):
        m = top_index_array(rem, r)
        out[:, r - 1] = m
        rem = rem - binomial_clamped(m, r)
    return out
