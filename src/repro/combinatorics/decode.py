"""Generic combinatorial-number-system decoding for any order.

The order-2/3 closed forms in :mod:`triangular` / :mod:`tetrahedral`
mirror what each CUDA thread computes; this module provides the general
``order``-dimensional decode (needed e.g. by the 4x1 scheme where a
thread id encodes a full 4-combination) by peeling the top index one
binomial at a time.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["top_index_array", "combos_from_linear"]


def _falling_product(x: np.ndarray, order: int) -> np.ndarray:
    """``x * (x-1) * ... * (x-order+1)`` with negatives clamped to zero."""
    out = np.ones_like(x)
    for r in range(order):
        out = out * np.maximum(x - r, 0)
    return out


def top_index_array(lam: np.ndarray, order: int) -> np.ndarray:
    """Largest ``m`` with ``C(m, order) <= lam`` for each entry (exact).

    Float estimate ``C(m, order) ~ (m - (order-1)/2)**order / order!``
    followed by exact int64 boundary repair.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    lam_i = np.asarray(lam, dtype=np.int64)
    if np.any(lam_i < 0):
        raise ValueError("lambda must be non-negative")
    fact = math.factorial(order)
    lf = lam_i.astype(np.float64)
    m = np.floor((fact * lf) ** (1.0 / order) + (order - 1) / 2.0).astype(np.int64)
    m = np.maximum(m, order - 1)

    def c(x: np.ndarray) -> np.ndarray:
        return _falling_product(x, order) // fact

    while True:
        over = c(m) > lam_i
        if not over.any():
            break
        m = np.where(over, m - 1, m)
    while True:
        under = c(m + 1) <= lam_i
        if not under.any():
            break
        m = np.where(under, m + 1, m)
    return m


def combos_from_linear(lam: np.ndarray, order: int) -> np.ndarray:
    """Decode linear ids into strictly increasing ``order``-tuples.

    Inverse of the combinatorial number system
    ``lam = sum_r C(combo[r], r + 1)``.  Returns shape ``(len(lam), order)``
    with columns sorted ascending.
    """
    lam_i = np.asarray(lam, dtype=np.int64)
    out = np.empty((lam_i.size, order), dtype=np.int64)
    rem = lam_i.copy()
    fact = 1
    for r in range(order, 0, -1):
        m = top_index_array(rem, r)
        out[:, r - 1] = m
        fact = math.factorial(r)
        rem = rem - _falling_product(m, r) // fact
    return out
