"""Fault tolerance: deterministic injection, retry policy, rescheduling.

Three pillars (see DESIGN § fault model):

* :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, seedable
  fault-injection plan (rank crash at iteration *k*, worker hang, recv
  drop/delay, slow-GPU straggler) hooked into the pool, distributed,
  SPMD/SimComm and gpusim layers, so any failure scenario is a
  reproducible test case;
* :class:`RetryPolicy` — the shared retry/backoff/deadline policy every
  recovery layer consults (extracted from the pool's PR 1 inline retry);
* :func:`reschedule_ranges` + :class:`FaultReport` — survivor
  rescheduling of a dead rank's λ-range via the equi-area level walk,
  with a per-run record of what was detected, retried, and rescheduled.

Results under any injected plan are bit-identical to the failure-free
run: recovery changes *who* searches a thread range, never which
candidates exist or how ties break.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjected,
    FaultPlan,
    FaultSpec,
)
from repro.faults.policy import RetryPolicy
from repro.faults.report import FaultEvent, FaultReport, RescheduledRange
from repro.faults.reschedule import rank_partitions, reschedule_ranges

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "FaultEvent",
    "FaultReport",
    "RescheduledRange",
    "rank_partitions",
    "reschedule_ranges",
]
